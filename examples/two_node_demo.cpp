// Two-node demo: block replication across a real trust boundary. A
// leader node mines a Mixed-workload stream and announces every accepted
// block — fully serialized, schedule and all — over an in-process pipe
// to a follower node, which re-validates each published schedule exactly
// as the paper's validator does and appends only what checks out.
//
// Midway through, the wire turns Byzantine: the announce for block #5 is
// replaced in transit with a copy whose state root is corrupted. The
// commitments still verify (the root is a published claim, not a sealed
// one), so it is the follower's own deterministic replay that catches
// the lie. The follower Nacks, recovers to its last accepted boundary
// snapshot (the PR-4 re-org machinery doing fork-choice duty), and pulls
// an honest retransmission of #5 from the leader's announce log — then
// the stream continues as if nothing happened.
//
// Exit code 0 means the follower CONVERGED: same height as the leader,
// every block byte-identical on re-encode, and the Byzantine event was
// actually observed (one Nack, one recovery) — a demo where the fault
// never fired proves nothing.
//
// Build & run:  ./build/examples/two_node_demo

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "net/peer.hpp"
#include "net/replication.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "node/node.hpp"
#include "util/bytes.hpp"
#include "workload/workload.hpp"

using namespace concord;

namespace {

std::vector<std::uint8_t> encoded(const chain::Block& block) {
  util::ByteWriter w;
  block.encode(w);
  return std::move(w).take();
}

}  // namespace

int main() {
  workload::StreamSpec spec;
  spec.kind = workload::BenchmarkKind::kMixed;
  spec.blocks = 12;
  spec.txs_per_block = 60;
  spec.conflict_percent = 20;

  // Two nodes, one genesis. The follower starts from its own copy of the
  // same world — everything it learns after that arrives as bytes.
  workload::Fixture leader_fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(leader_fixture.transactions);
  workload::Fixture follower_fixture = workload::make_stream_fixture(spec);

  auto [follower_end, leader_end] = net::PipeTransport::make_pair();
  net::Peer follower_peer(std::move(follower_end), net::PeerConfig{.name = "follower"});
  auto peers = std::make_shared<net::PeerSet>();
  peers->add(std::make_shared<net::Peer>(std::move(leader_end),
                                         net::PeerConfig{.name = "leader"}));
  net::Leader leader(peers, leader_fixture.world->state_root());

  node::NodeConfig leader_cfg;
  leader_cfg.batch.target_txs = spec.txs_per_block;
  leader_cfg.mempool_capacity = 2 * spec.txs_per_block;
  leader_cfg.pipelined = true;
  leader_cfg.pipeline_depth = 2;
  // The chaos seam, moved onto the wire: before the honest announce of
  // block #5 goes out, broadcast a corrupted double of it. The announce
  // log keeps only honest blocks, so the follower's post-Nack
  // BlockRequest is answered with the real #5.
  leader_cfg.on_block_accepted = [&leader, &peers,
                                  fired = std::make_shared<bool>(false)](
                                     const chain::Block& block) {
    if (!*fired && block.header.number == 5) {
      *fired = true;
      chain::Block forged = block;
      forged.header.state_root.bytes[0] ^= 0xff;
      std::printf("byzantine wire: announcing block #5 with a corrupted state root\n");
      peers->broadcast(net::BlockAnnounce{std::move(forged)});
    }
    leader.announce(block);
  };
  node::Node leader_node(std::move(leader_fixture.world), leader_cfg);

  node::NodeConfig follower_cfg;  // Follower never mines; defaults are fine.
  node::Node follower_node(std::move(follower_fixture.world), follower_cfg);

  leader.start();
  std::jthread follower_session(
      [&follower_node, &follower_peer] { follower_node.run_follower(follower_peer); });
  std::jthread producer([&leader_node, &stream] {
    std::printf("producer: submitting %zu transactions to the leader\n", stream.size());
    (void)leader_node.mempool().submit_many(std::move(stream));
    leader_node.mempool().close();
  });
  leader_node.run();

  // The leader mined everything; wait for the follower to ack the tip
  // (the Byzantine detour costs it one recovery round-trip).
  const std::uint64_t height = leader_node.chain().height();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto progress = leader.progress();
    if (!progress.empty() && progress[0].acked >= height) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  leader.stop();
  follower_session.join();

  // Convergence check: height, hash AND serialized bytes at every level —
  // the replica must be indistinguishable from the leader on the wire.
  bool identical = follower_node.chain().height() == height;
  for (std::uint64_t n = 1; identical && n <= height; ++n) {
    const chain::Block& ours = leader_node.chain().at(n);
    const chain::Block& theirs = follower_node.chain().at(n);
    identical = ours.hash() == theirs.hash() && encoded(ours) == encoded(theirs);
  }

  const node::NodeStats& fstats = follower_node.stats();
  const auto progress = leader.progress();
  std::printf("\nleader:   height %llu, %llu blocks announced\n",
              static_cast<unsigned long long>(height),
              static_cast<unsigned long long>(leader.announced()));
  std::printf("follower: height %llu, %llu announces seen, %llu acks, %llu nacks, "
              "%llu recoveries (%.1f ms)\n",
              static_cast<unsigned long long>(follower_node.chain().height()),
              static_cast<unsigned long long>(fstats.net_announces),
              static_cast<unsigned long long>(fstats.net_acks_sent),
              static_cast<unsigned long long>(fstats.net_nacks_sent),
              static_cast<unsigned long long>(fstats.recoveries), fstats.recovery_ms);
  if (!follower_node.ok()) {
    std::printf("follower rejected: %s (%s) — recovered and converged\n",
                std::string(core::to_string(follower_node.failure().reason)).c_str(),
                follower_node.failure().detail.c_str());
  }
  if (!progress.empty()) {
    std::printf("leader view of follower: acked %llu, %llu nacks, %llu retransmissions, "
                "diverged: %s\n",
                static_cast<unsigned long long>(progress[0].acked),
                static_cast<unsigned long long>(progress[0].nacks),
                static_cast<unsigned long long>(progress[0].requests_served),
                progress[0].diverged ? "YES" : "no");
  }
  std::printf("chains byte-identical at every height: %s\n", identical ? "yes" : "NO");

  // Exit contract: converged AND the Byzantine block was really rejected
  // once (Nack observed on both ends, one recovery, no divergence).
  const bool byzantine_observed = fstats.rejected_blocks == 1 && fstats.recoveries == 1 &&
                                  !progress.empty() && progress[0].nacks == 1 &&
                                  !progress[0].diverged;
  return (identical && byzantine_observed) ? 0 : 1;
}
