// Node demo: the continuously-running subsystem end to end, re-org
// included. A producer thread feeds a stream of Mixed-workload
// transactions into the mempool; the node cuts block-sized batches,
// mines each speculatively (Algorithm 1) and validates through a
// depth-3 handoff ring — while the validator replays block N (Algorithm
// 2), the miner is already up to three blocks ahead against its own
// unvalidated output. Midway through, an injected fault corrupts one
// block's published state root: the validator rejects it, the
// speculative suffix is aborted out of the ring, both stages
// re-materialize from the last accepted boundary snapshot, and the node
// keeps mining — rejection is a recoverable event, not a crash.
//
// Build & run:  ./build/examples/node_demo
// Pass --detect to run with ConcordSan on: every mined block's access
// logs go through the lockset checker and the schedule-soundness oracle,
// and the run fails if any block is non-clean.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "node/node.hpp"
#include "workload/workload.hpp"

using namespace concord;

int main(int argc, char** argv) {
  bool detect = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--detect") == 0) detect = true;
  }

  workload::StreamSpec spec;
  spec.kind = workload::BenchmarkKind::kMixed;
  spec.blocks = 12;
  spec.txs_per_block = 80;
  spec.conflict_percent = 20;

  // One genesis world. The node snapshots it at construction and forks
  // the validator's replica from the snapshot (a COW page-sharing fork,
  // not a deep copy), so both stages share a single state by
  // construction.
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);

  node::NodeConfig config;
  config.miner.detect = detect;
  config.batch.target_txs = spec.txs_per_block;
  config.mempool_capacity = 2 * spec.txs_per_block;  // Producer backpressure.
  config.pipelined = true;
  config.pipeline_depth = 3;  // Mining may run 3 blocks ahead of validation.
  // The chaos seam: corrupt the FIRST block mined as number 5. Its
  // rejection dooms whatever the miner speculated on top; the node
  // recovers from the pre-5 boundary snapshot and mines on.
  config.post_mine_hook = [fired = std::make_shared<bool>(false)](chain::Block& block) {
    if (!*fired && block.header.number == 5) {
      *fired = true;
      std::printf("chaos: corrupting the state root of mined block #5\n");
      block.header.state_root.bytes[0] ^= 0xff;
    }
  };

  node::Node node(std::move(fixture.world), config);

  // The client side: submit the whole stream, then announce end-of-traffic.
  std::jthread producer([&node, &stream] {
    std::printf("producer: submitting %zu transactions\n", stream.size());
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });

  // The read side: a client thread serving "as of the latest block"
  // balance queries against pinned MVCC snapshots the whole time the
  // node mines — across the injected re-org included. Queries never
  // take the write path's locks; they read a frozen boundary world.
  std::atomic<bool> storm_done{false};
  std::jthread reader([&node, &storm_done] {
    const vm::Address probe = vm::Address::from_u64(1, 0xAB);
    while (!storm_done.load(std::memory_order_relaxed)) {
      const core::QueryOutcome outcome =
          node.query_latest([&probe](const vm::World& world, vm::ExecContext& ctx) {
            (void)world.balances().get(ctx, probe);
          });
      if (outcome.status != core::QueryStatus::kOk) break;
      std::this_thread::yield();
    }
  });

  node.run();
  storm_done.store(true, std::memory_order_relaxed);
  reader.join();

  const chain::Blockchain& chain = node.chain();
  const bool links_ok = chain.verify_links();
  for (std::uint64_t n = 1; n <= chain.height(); ++n) {
    const chain::Block& block = chain.at(n);
    std::printf("block #%llu: %zu txs, %zu schedule edges, state root %.16s…\n",
                static_cast<unsigned long long>(block.header.number), block.transactions.size(),
                block.schedule.edges.size(), block.header.state_root.to_hex().c_str());
  }

  const node::NodeStats& stats = node.stats();
  if (!node.ok()) {
    std::printf("\nrejection observed: %s (%s) — recovered, node kept running\n",
                std::string(core::to_string(node.failure().reason)).c_str(),
                node.failure().detail.c_str());
  }
  std::printf("chain height %llu, links verified: %s\n",
              static_cast<unsigned long long>(chain.height()), links_ok ? "yes" : "NO");
  std::printf("sustained: %.0f tx/s, %.2f blocks/s over %.1f ms wall\n", stats.tx_per_sec(),
              stats.blocks_per_sec(), stats.wall_ms);
  std::printf("stages: mine %.1f ms, validate %.1f ms (overlapped), snapshots %.1f ms\n",
              stats.mine_ms, stats.validate_ms, stats.snapshot_ms);
  std::printf("stalls: mempool %.1f ms, handoff %.1f ms, validator %.1f ms\n",
              stats.mempool_wait_ms, stats.handoff_wait_ms, stats.validator_stall_ms);
  std::printf("ring: depth %zu, high water %zu in flight\n", config.pipeline_depth,
              stats.ring_high_water);
  std::printf("re-org: %llu rejected, %llu speculative blocks aborted, %llu txs dropped, "
              "%llu recoveries in %.1f ms\n",
              static_cast<unsigned long long>(stats.rejected_blocks),
              static_cast<unsigned long long>(stats.aborted_blocks),
              static_cast<unsigned long long>(stats.dropped_transactions),
              static_cast<unsigned long long>(stats.recoveries), stats.recovery_ms);
  std::printf("speculation: %llu attempts, %llu conflict aborts, lock-table high water %zu\n",
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.conflict_aborts),
              stats.lock_table_high_water);
  std::printf("read path: %llu queries served (%llu gas metered), %zu snapshots retained "
              "at high water, %llu pins expired\n",
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.query_gas_used),
              stats.snapshots_retained_high_water,
              static_cast<unsigned long long>(stats.pins_expired));

  bool detect_clean = true;
  if (detect) {
    detect_clean = stats.detect_violations == 0;
    std::printf("concordsan: %llu violations across %llu blocks\n",
                static_cast<unsigned long long>(stats.detect_violations),
                static_cast<unsigned long long>(stats.blocks + stats.rejected_blocks));
    if (const auto& report = node.first_detect_report(); report.has_value()) {
      for (const auto& v : report->lockset) std::printf("  %s\n", v.describe().c_str());
      for (const auto& v : report->soundness) std::printf("  %s\n", v.describe().c_str());
    }
  }

  // The smoke-test contract: exit 0 means the chain is linked AND the
  // injected rejection was recovered from (not fatal, accounting closed)
  // AND the concurrent reader was actually served queries AND — under
  // --detect — ConcordSan found nothing.
  const bool recovered = stats.rejected_blocks == 1 &&
                         stats.transactions + stats.dropped_transactions ==
                             spec.total_transactions();
  const bool reads_served = stats.queries_served > 0;
  return (links_ok && recovered && reads_served && detect_clean) ? 0 : 1;
}
