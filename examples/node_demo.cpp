// Node demo: the continuously-running subsystem end to end. A producer
// thread feeds a stream of Mixed-workload transactions into the mempool;
// the node cuts block-sized batches, mines each speculatively (Algorithm
// 1) and — pipelined — validates block N (Algorithm 2) while block N+1 is
// already being mined against the miner's post-N world. Prints the chain
// and the per-stage sustained-throughput numbers.
//
// Build & run:  ./build/examples/node_demo

#include <cstdio>
#include <thread>

#include "node/node.hpp"
#include "workload/workload.hpp"

using namespace concord;

int main() {
  workload::StreamSpec spec;
  spec.kind = workload::BenchmarkKind::kMixed;
  spec.blocks = 12;
  spec.txs_per_block = 80;
  spec.conflict_percent = 20;

  // One genesis world. The node snapshots it at construction and clones
  // the validator's replica from the snapshot, so both stages share a
  // single state by construction.
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);

  node::NodeConfig config;
  config.batch.target_txs = spec.txs_per_block;
  config.mempool_capacity = 2 * spec.txs_per_block;  // Producer backpressure.
  config.pipelined = true;

  node::Node node(std::move(fixture.world), config);

  // The client side: submit the whole stream, then announce end-of-traffic.
  std::jthread producer([&node, &stream] {
    std::printf("producer: submitting %zu transactions\n", stream.size());
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });

  node.run();

  if (!node.ok()) {
    std::printf("NODE STOPPED: %s (%s)\n",
                std::string(core::to_string(node.failure().reason)).c_str(),
                node.failure().detail.c_str());
    return 1;
  }

  const chain::Blockchain& chain = node.chain();
  const bool links_ok = chain.verify_links();
  for (std::uint64_t n = 1; n <= chain.height(); ++n) {
    const chain::Block& block = chain.at(n);
    std::printf("block #%llu: %zu txs, %zu schedule edges, state root %.16s…\n",
                static_cast<unsigned long long>(block.header.number), block.transactions.size(),
                block.schedule.edges.size(), block.header.state_root.to_hex().c_str());
  }

  const node::NodeStats& stats = node.stats();
  std::printf("\nchain height %llu, links verified: %s\n",
              static_cast<unsigned long long>(chain.height()), links_ok ? "yes" : "NO");
  std::printf("sustained: %.0f tx/s, %.2f blocks/s over %.1f ms wall\n", stats.tx_per_sec(),
              stats.blocks_per_sec(), stats.wall_ms);
  std::printf("stages: mine %.1f ms, validate %.1f ms (overlapped)\n", stats.mine_ms,
              stats.validate_ms);
  std::printf("stalls: mempool %.1f ms, handoff %.1f ms, validator %.1f ms\n",
              stats.mempool_wait_ms, stats.handoff_wait_ms, stats.validator_stall_ms);
  std::printf("speculation: %llu attempts, %llu conflict aborts, lock-table high water %zu\n",
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.conflict_aborts),
              stats.lock_table_high_water);
  // The smoke-test contract: exit 0 means the chain is actually linked.
  return links_ok ? 0 : 1;
}
