// A full election lifecycle on the Ballot contract across three mined
// blocks: registration, a voting wave (with double-vote attempts and
// delegation), and the tally. Demonstrates that reverted transactions are
// first-class citizens of the published schedule: every validator replays
// them into the same failure.
//
// Build & run:  ./build/examples/ballot_election

#include <cstdio>
#include <memory>

#include "chain/blockchain.hpp"
#include "contracts/ballot.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "vm/world.hpp"

using namespace concord;

namespace {

const vm::Address kBallot = vm::Address::from_u64(1, 0xCC);
const vm::Address kChair = vm::Address::from_u64(999, 0x04);
constexpr std::uint64_t kVoters = 90;

vm::Address voter(std::uint64_t i) { return vm::Address::from_u64(i, 0x01); }

std::unique_ptr<vm::World> make_world() {
  auto world = std::make_unique<vm::World>();
  world->contracts().add(std::make_unique<contracts::Ballot>(
      kBallot, kChair,
      std::vector<std::string>{"expand-the-harbor", "build-the-library", "fix-the-roads"}));
  return world;
}

}  // namespace

int main() {
  auto world = make_world();
  chain::Blockchain chain(world->state_root());
  core::Miner miner(*world, core::MinerConfig{.threads = 3});

  // Block 1 — the chairperson registers every voter. All transactions
  // write distinct voter entries: embarrassingly parallel.
  std::vector<chain::Transaction> registrations;
  for (std::uint64_t v = 0; v < kVoters; ++v) {
    registrations.push_back(contracts::Ballot::make_give_right_tx(kBallot, kChair, voter(v)));
  }
  chain.append(miner.mine(registrations, chain.tip()));
  std::printf("block 1: %zu registrations, %zu happens-before edges\n", registrations.size(),
              chain.tip().schedule.edges.size());

  // Block 2 — voting. A third of the electorate delegates; a few voters
  // try to vote twice (those must revert, deterministically).
  std::vector<chain::Transaction> votes;
  for (std::uint64_t v = 0; v < 60; ++v) {
    votes.push_back(contracts::Ballot::make_vote_tx(kBallot, voter(v), v % 3));
  }
  for (std::uint64_t v = 60; v < kVoters; ++v) {
    votes.push_back(contracts::Ballot::make_delegate_tx(kBallot, voter(v), voter(v - 60)));
  }
  votes.push_back(contracts::Ballot::make_vote_tx(kBallot, voter(3), 0));  // Double vote.
  votes.push_back(contracts::Ballot::make_vote_tx(kBallot, voter(4), 0));  // Double vote.
  chain.append(miner.mine(votes, chain.tip()));

  std::size_t reverted = 0;
  for (const auto status : chain.tip().statuses) {
    reverted += status == vm::TxStatus::kReverted ? 1 : 0;
  }
  std::printf("block 2: %zu ballots (%zu reverted), %llu speculative attempts\n", votes.size(),
              reverted, static_cast<unsigned long long>(miner.last_stats().attempts));

  // Block 3 — close the election: one winningProposal() query.
  chain.append(miner.mine({contracts::Ballot::make_winning_proposal_tx(kBallot, kChair)},
                          chain.tip()));

  // An independent validator node replays the whole chain.
  auto replica = make_world();
  core::Validator validator(*replica, core::ValidatorConfig{.threads = 3});
  for (std::uint64_t b = 1; b <= chain.height(); ++b) {
    const auto report = validator.validate_parallel(chain.at(b));
    if (!report.ok) {
      std::printf("block %llu REJECTED: %s\n", static_cast<unsigned long long>(b),
                  std::string(core::to_string(report.reason)).c_str());
      return 1;
    }
  }
  std::printf("validator replayed %llu blocks successfully\n",
              static_cast<unsigned long long>(chain.height()));

  auto& ballot = replica->contracts().as<contracts::Ballot>(kBallot);
  for (std::size_t p = 0; p < ballot.proposal_count(); ++p) {
    std::printf("  %-20s %lld votes\n", ballot.proposal_names()[p].c_str(),
                static_cast<long long>(ballot.raw_vote_count(p)));
  }
  return 0;
}
