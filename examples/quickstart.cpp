// Quickstart: the full miner → blockchain → validator pipeline in ~100
// lines. Deploys the Ballot contract, mines a block of votes speculatively
// in parallel (paper Algorithm 1), then re-validates it deterministically
// with a fork-join replay (Algorithm 2) on an independent "node".
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "chain/blockchain.hpp"
#include "contracts/ballot.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "vm/world.hpp"

using namespace concord;

namespace {

constexpr std::uint64_t kVoters = 64;
const vm::Address kBallotAddr = vm::Address::from_u64(1, 0xCC);
const vm::Address kChair = vm::Address::from_u64(1, 0x04);

/// Both the miner node and the validator node bootstrap the same genesis
/// state — in a real deployment this is the chain's prior state.
std::unique_ptr<vm::World> make_genesis_world() {
  auto world = std::make_unique<vm::World>();
  auto ballot = std::make_unique<contracts::Ballot>(
      kBallotAddr, kChair, std::vector<std::string>{"mountains", "seaside"});
  for (std::uint64_t v = 0; v < kVoters; ++v) {
    ballot->raw_register_voter(vm::Address::from_u64(v, 0x01), 1);
  }
  world->contracts().add(std::move(ballot));
  return world;
}

}  // namespace

int main() {
  // --- Miner node --------------------------------------------------------
  auto miner_world = make_genesis_world();
  chain::Blockchain chain(miner_world->state_root());

  // A block of votes; voter 7 tries to vote twice (the second must revert,
  // and must revert *deterministically* on every validator too).
  std::vector<chain::Transaction> txs;
  for (std::uint64_t v = 0; v < kVoters; ++v) {
    txs.push_back(contracts::Ballot::make_vote_tx(
        kBallotAddr, vm::Address::from_u64(v, 0x01), v % 2));
  }
  txs.push_back(contracts::Ballot::make_vote_tx(kBallotAddr, vm::Address::from_u64(7, 0x01), 0));

  core::Miner miner(*miner_world, core::MinerConfig{.threads = 3});
  const chain::Block block = miner.mine(txs, chain.tip());
  chain.append(block);

  const core::MinerStats& stats = miner.last_stats();
  std::printf("mined block #%llu: %zu txs, %llu speculative attempts, %llu conflict aborts\n",
              static_cast<unsigned long long>(block.header.number), block.transactions.size(),
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.conflict_aborts));
  std::printf("published schedule: %zu happens-before edges, %zu bytes\n",
              block.schedule.edges.size(), stats.schedule_bytes);
  std::printf("state root: %s\n", block.header.state_root.to_hex().c_str());

  // --- Validator node ------------------------------------------------------
  auto validator_world = make_genesis_world();
  core::Validator validator(*validator_world, core::ValidatorConfig{.threads = 3});
  const core::ValidationReport report = validator.validate_parallel(block);
  if (!report.ok) {
    std::printf("VALIDATION FAILED: %s (%s)\n",
                std::string(core::to_string(report.reason)).c_str(), report.detail.c_str());
    return 1;
  }
  std::printf("validator accepted the block (replayed %llu txs, %llu steals)\n",
              static_cast<unsigned long long>(report.replayed),
              static_cast<unsigned long long>(report.steals));

  // Inspect the outcome on the validator's copy of the state.
  auto& ballot = validator_world->contracts().as<contracts::Ballot>(kBallotAddr);
  std::printf("tallies: mountains=%lld seaside=%lld (double vote reverted as expected)\n",
              static_cast<long long>(ballot.raw_vote_count(0)),
              static_cast<long long>(ballot.raw_vote_count(1)));
  return 0;
}
