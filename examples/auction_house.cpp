// An auction house scenario on SimpleAuction: a bidding war (every bid
// conflicts on highestBid — the worst case for speculation), then a block
// of withdrawals (each touches only its own pendingReturns slot — the
// best case). Prints the miner's abort accounting and the schedule
// parallelism metrics for both regimes side by side.
//
// Build & run:  ./build/examples/auction_house

#include <cstdio>
#include <memory>

#include "chain/blockchain.hpp"
#include "contracts/simple_auction.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "graph/happens_before.hpp"
#include "vm/world.hpp"

using namespace concord;

namespace {

const vm::Address kAuction = vm::Address::from_u64(2, 0xCC);
const vm::Address kSeller = vm::Address::from_u64(999, 0x04);
constexpr std::uint64_t kBidders = 48;

vm::Address bidder(std::uint64_t i) { return vm::Address::from_u64(i, 0x02); }

std::unique_ptr<vm::World> make_world() {
  auto world = std::make_unique<vm::World>();
  world->contracts().add(std::make_unique<contracts::SimpleAuction>(kAuction, kSeller));
  // The house escrow backs withdrawals.
  world->balances().raw_set(kAuction, 1'000'000);
  return world;
}

void report_block(const char* label, const chain::Block& block, const core::MinerStats& stats) {
  const auto metrics =
      graph::compute_metrics(block.schedule.to_graph(block.transactions.size()));
  std::printf("%-12s %3zu txs | attempts %3llu | critical path %3zu | parallelism %5.2f\n",
              label, block.transactions.size(),
              static_cast<unsigned long long>(stats.attempts), metrics.critical_path,
              metrics.parallelism);
}

}  // namespace

int main() {
  auto world = make_world();
  chain::Blockchain chain(world->state_root());
  core::Miner miner(*world, core::MinerConfig{.threads = 3});

  // Block 1 — the bidding war. Each bid reads-for-update highestBid, so
  // the discovered schedule is one long chain: speculation finds no
  // parallelism to exploit, and the published critical path says so.
  std::vector<chain::Transaction> bids;
  for (std::uint64_t b = 0; b < kBidders; ++b) {
    bids.push_back(contracts::SimpleAuction::make_bid_tx(kAuction, bidder(b),
                                                         100 + static_cast<vm::Amount>(b)));
  }
  chain.append(miner.mine(bids, chain.tip()));
  report_block("bidding war", chain.tip(), miner.last_stats());

  // Block 2 — the losers withdraw. Disjoint pendingReturns slots: the
  // schedule is (near) edgeless and the critical path collapses to ~1.
  std::vector<chain::Transaction> withdrawals;
  for (std::uint64_t b = 0; b < kBidders - 1; ++b) {
    withdrawals.push_back(contracts::SimpleAuction::make_withdraw_tx(kAuction, bidder(b)));
  }
  chain.append(miner.mine(withdrawals, chain.tip()));
  report_block("withdrawals", chain.tip(), miner.last_stats());

  // Block 3 — the seller closes the auction.
  chain.append(
      miner.mine({contracts::SimpleAuction::make_auction_end_tx(kAuction, kSeller)}, chain.tip()));

  // Validate the whole chain on a fresh node.
  auto replica = make_world();
  core::Validator validator(*replica, core::ValidatorConfig{.threads = 3});
  for (std::uint64_t b = 1; b <= chain.height(); ++b) {
    const auto report = validator.validate_parallel(chain.at(b));
    if (!report.ok) {
      std::printf("block %llu REJECTED: %s\n", static_cast<unsigned long long>(b),
                  std::string(core::to_string(report.reason)).c_str());
      return 1;
    }
  }

  auto& auction = replica->contracts().as<contracts::SimpleAuction>(kAuction);
  std::printf("auction ended: winner=%s..., winning bid=%lld, seller balance=%lld\n",
              auction.raw_highest_bidder().to_hex().substr(0, 8).c_str(),
              static_cast<long long>(auction.raw_highest_bid()),
              static_cast<long long>(replica->balances().raw_get(kSeller)));
  return 0;
}
