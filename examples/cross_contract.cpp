// Cross-contract calls as nested speculative actions: PaymentSplitter
// calls Token.transfer once per payee. One distribution is deliberately
// under-funded so a leg reverts mid-call — the nested action aborts, the
// parent keeps going, and a fresh validator reproduces the exact same
// partial outcome.
//
// Build & run:  ./build/examples/cross_contract

#include <cstdio>
#include <memory>

#include "contracts/payment_splitter.hpp"
#include "contracts/token.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "vm/world.hpp"

using namespace concord;

namespace {

const vm::Address kToken = vm::Address::from_u64(10, 0xCC);
const vm::Address kSplitter = vm::Address::from_u64(11, 0xCC);
const vm::Address kTreasury = vm::Address::from_u64(1, 0x04);
const std::vector<vm::Address> kTeam = {
    vm::Address::from_u64(21, 0x05), vm::Address::from_u64(22, 0x05),
    vm::Address::from_u64(23, 0x05)};

std::unique_ptr<vm::World> make_world() {
  auto world = std::make_unique<vm::World>();
  auto token = std::make_unique<contracts::Token>(kToken, "CCD", kTreasury);
  // Exactly 2500 tokens: the fourth 900-token distribution (3 × 300)
  // finds only 2500 − 3·900 = −200... i.e. runs dry on its second leg.
  token->raw_mint(kSplitter, 2'500);
  world->contracts().add(std::move(token));
  world->contracts().add(
      std::make_unique<contracts::PaymentSplitter>(kSplitter, kToken, kTeam));
  return world;
}

chain::Block genesis_of(const vm::World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

}  // namespace

int main() {
  auto world = make_world();
  core::Miner miner(*world, core::MinerConfig{.threads = 3});

  std::vector<chain::Transaction> txs;
  for (int d = 0; d < 4; ++d) {
    txs.push_back(contracts::PaymentSplitter::make_distribute_tx(kSplitter, kTreasury, 900));
  }
  const chain::Block block = miner.mine(txs, genesis_of(*world));

  std::printf("mined %zu distribute() calls (each fans out 3 nested Token.transfer calls)\n",
              txs.size());
  for (std::size_t i = 0; i < block.statuses.size(); ++i) {
    std::printf("  tx %zu: %s\n", i, std::string(vm::to_string(block.statuses[i])).c_str());
  }

  auto& token = world->contracts().as<contracts::Token>(kToken);
  auto& splitter = world->contracts().as<contracts::PaymentSplitter>(kSplitter);
  std::printf("miner state: splitter balance %lld, failed legs %lld\n",
              static_cast<long long>(token.raw_balance(kSplitter)),
              static_cast<long long>(splitter.raw_failed_legs()));

  // Fresh validator node must reproduce the identical partial failure.
  auto replica = make_world();
  core::Validator validator(*replica, core::ValidatorConfig{.threads = 3});
  const auto report = validator.validate_parallel(block);
  if (!report.ok) {
    std::printf("REJECTED: %s (%s)\n", std::string(core::to_string(report.reason)).c_str(),
                report.detail.c_str());
    return 1;
  }
  auto& rtoken = replica->contracts().as<contracts::Token>(kToken);
  auto& rsplitter = replica->contracts().as<contracts::PaymentSplitter>(kSplitter);
  std::printf("validator state: splitter balance %lld, failed legs %lld — identical: %s\n",
              static_cast<long long>(rtoken.raw_balance(kSplitter)),
              static_cast<long long>(rsplitter.raw_failed_legs()),
              replica->state_root() == block.header.state_root ? "yes" : "NO");
  for (const auto& member : kTeam) {
    std::printf("  payee %s... received %lld\n", member.to_hex().substr(0, 8).c_str(),
                static_cast<long long>(rtoken.raw_balance(member)));
  }
  return 0;
}
