// A proof-of-existence registry on EtherDoc, demonstrating the tamper
// detection path: after mining an honest block, this example forges two
// dishonest variants — a schedule stripped of its ordering edges (the "data
// race" case) and a block claiming a wrong final state — and shows the
// validator rejecting each with a precise reason.
//
// Build & run:  ./build/examples/document_registry

#include <cstdio>
#include <memory>

#include "contracts/etherdoc.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "util/sha256.hpp"
#include "vm/world.hpp"

using namespace concord;

namespace {

const vm::Address kRegistry = vm::Address::from_u64(3, 0xCC);
const vm::Address kNotary = vm::Address::from_u64(999, 0x04);
constexpr std::uint64_t kDocs = 40;

vm::Address owner(std::uint64_t i) { return vm::Address::from_u64(i, 0x03); }

std::unique_ptr<vm::World> make_world() {
  auto world = std::make_unique<vm::World>();
  auto registry = std::make_unique<contracts::EtherDoc>(kRegistry, kNotary);
  for (std::uint64_t d = 0; d < kDocs; ++d) {
    // Document hashcodes come from content digests, as EtherDoc intends.
    registry->raw_add_document(util::sha256("deed #" + std::to_string(d)).prefix64(), owner(d));
  }
  world->contracts().add(std::move(registry));
  return world;
}

chain::Block genesis_of(const vm::World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

void try_validate(const char* label, const chain::Block& block) {
  auto replica = make_world();
  core::Validator validator(*replica, core::ValidatorConfig{.threads = 3});
  const auto report = validator.validate_parallel(block);
  std::printf("%-24s → %s%s%s\n", label, report.ok ? "ACCEPTED" : "REJECTED: ",
              report.ok ? "" : std::string(core::to_string(report.reason)).c_str(),
              report.ok ? "" : (" (" + report.detail + ")").c_str());
}

}  // namespace

int main() {
  auto world = make_world();
  core::Miner miner(*world, core::MinerConfig{.threads = 3});

  // Half existence checks (parallel reads), half transfers to the notary
  // (all serialized on the notary's document list).
  std::vector<chain::Transaction> txs;
  for (std::uint64_t d = 0; d < kDocs; ++d) {
    const std::uint64_t hashcode = util::sha256("deed #" + std::to_string(d)).prefix64();
    if (d % 2 == 0) {
      txs.push_back(contracts::EtherDoc::make_exists_tx(kRegistry, owner(d), hashcode));
    } else {
      txs.push_back(contracts::EtherDoc::make_transfer_tx(kRegistry, owner(d), hashcode, kNotary));
    }
  }
  const chain::Block honest = miner.mine(txs, genesis_of(*world));
  std::printf("mined %zu txs: %zu schedule edges, %zu schedule bytes\n", txs.size(),
              honest.schedule.edges.size(), miner.last_stats().schedule_bytes);

  try_validate("honest block", honest);

  // Forgery 1: strip the happens-before edges ("publish a racy schedule")
  // and re-seal the header so only semantic validation can catch it.
  chain::Block racy = honest;
  racy.schedule.edges.clear();
  racy.header.schedule_hash = racy.schedule.hash();
  try_validate("raceable schedule", racy);

  // Forgery 2: claim a different final state.
  chain::Block forged_state = honest;
  forged_state.header.state_root = util::sha256("not the real state");
  try_validate("forged state root", forged_state);

  // Forgery 3: flip one transaction's recorded outcome and re-seal.
  chain::Block forged_status = honest;
  forged_status.statuses[1] = vm::TxStatus::kReverted;
  forged_status.header.status_root = forged_status.compute_status_root();
  try_validate("forged tx status", forged_status);

  return 0;
}
