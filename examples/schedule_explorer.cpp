// Schedule explorer: mines one block per conflict level of the paper's
// Mixed workload, then prints what a block explorer would show about the
// published scheduling metadata — the §4 incentive quantities (critical
// path, parallelism) plus a Graphviz rendering of the smallest block's
// happens-before graph, so you can literally look at the schedule the
// validator will replay.
//
// Build & run:  ./build/examples/schedule_explorer
//               ./build/examples/schedule_explorer | tail -n +12 | dot -Tpng > sched.png

#include <cstdio>

#include "core/miner.hpp"
#include "graph/dot_export.hpp"
#include "graph/happens_before.hpp"
#include "workload/workload.hpp"

using namespace concord;

int main() {
  std::printf("conflict%%  edges  critical-path  parallelism  schedule-bytes\n");
  for (const unsigned conflict : {0u, 25u, 50u, 75u, 100u}) {
    const workload::WorkloadSpec spec{workload::BenchmarkKind::kMixed, 60, conflict, 42};
    auto fixture = workload::make_fixture(spec);
    core::Miner miner(*fixture.world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
    const chain::Block block = miner.mine(fixture.transactions, fixture.genesis());
    const auto graph = block.schedule.to_graph(block.transactions.size());
    const auto metrics = graph::compute_metrics(graph);
    std::printf("%8u %6zu %14zu %12.2f %15zu\n", conflict, metrics.edges, metrics.critical_path,
                metrics.parallelism, block.schedule.encoded_size());
  }

  // Render one small block's schedule as DOT.
  const workload::WorkloadSpec spec{workload::BenchmarkKind::kBallot, 12, 50, 7};
  auto fixture = workload::make_fixture(spec);
  core::Miner miner(*fixture.world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const chain::Block block = miner.mine(fixture.transactions, fixture.genesis());
  const auto graph = block.schedule.to_graph(block.transactions.size());
  std::printf("\nBallot block, 12 txs at 50%% conflict — happens-before graph:\n%s",
              graph::to_dot(graph, {.name = "ballot_schedule"}).c_str());
  return 0;
}
