// Ablation: mode-aware abstract locks (READ/INCREMENT sharing — footnote 3
// of the paper generalized) versus the paper's strictly-mutual-exclusion
// base design. Runs the Ballot conflict sweep both ways.
//
// The interesting rows are the low-conflict ones: under exclusive-only
// locks every vote serializes on the proposal's voteCount entry even when
// no two transactions share a voter, so the miner's speedup collapses —
// the cost footnote 3 quietly avoids. Ballot's *validator* collapses too:
// the published schedule must chain all votes.
//
// Usage: bench_ablation_modes [--quick] [--samples=N] [--threads=N] ...

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;

  std::printf("Ablation: commutativity-aware lock modes vs exclusive-only locks\n");
  std::printf("Workload: Ballot, %zu transactions, %u threads\n\n", txs, config.threads);

  for (const bool exclusive : {false, true}) {
    config.exclusive_locks_only = exclusive;
    std::printf("%s abstract locks:\n",
                exclusive ? "EXCLUSIVE-ONLY (paper base design)" : "MODE-AWARE (this library)");
    bench::print_point_header();
    for (const unsigned conflict : bench::conflict_axis(config.quick)) {
      workload::WorkloadSpec spec{workload::BenchmarkKind::kBallot, txs, conflict, 42};
      bench::print_point(bench::measure_point(spec, config));
    }
    std::printf("\n");
  }
  return 0;
}
