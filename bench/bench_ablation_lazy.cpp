// Ablation: eager vs lazy version management (paper §3: "The scheme
// described here is eager... An alternative lazy implementation could
// buffer changes to a contract's storage, applying them only on commit").
//
// Workload: KvStore blocks whose put() transactions do read-check-write,
// with a tunable fraction of traffic aimed at one hot key. Both backends
// present identical lock footprints, so any timing difference is purely
// the version-management strategy: eager pays inverse logging always and
// undo replay on abort; lazy pays overlay lookups on reads and a second
// application pass on commit, but aborts by discarding.
//
// Usage: bench_ablation_lazy [--quick] [--samples=N] [--threads=N] ...

#include <chrono>
#include <cstdio>
#include <memory>

#include "contracts/kv_store.hpp"
#include "core/miner.hpp"
#include "harness.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace concord;
using contracts::KvStore;
using Clock = std::chrono::steady_clock;

const vm::Address kStoreAddr = vm::Address::from_u64(80, 0xCC);

std::unique_ptr<vm::World> make_world(KvStore::Backend backend) {
  auto world = std::make_unique<vm::World>();
  world->contracts().add(std::make_unique<KvStore>(kStoreAddr, backend));
  return world;
}

std::vector<chain::Transaction> make_block(std::size_t n, unsigned hot_percent,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const vm::Address sender = vm::Address::from_u64(1000 + i, 0x06);
    const std::uint64_t key = rng.chance_percent(hot_percent) ? 1 : 100 + rng.below(100'000);
    txs.push_back(KvStore::make_put_tx(kStoreAddr, sender, key,
                                       static_cast<std::int64_t>(rng.below(1'000))));
  }
  return txs;
}

chain::Block genesis_of(const vm::World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;

  core::MinerConfig miner_config;
  miner_config.threads = config.threads;
  miner_config.nanos_per_gas = config.nanos_per_gas;

  std::printf("Ablation: eager (undo-log) vs lazy (write-buffer) version management\n");
  std::printf("Workload: KvStore read-check-write puts, %zu transactions, %u threads\n\n", txs,
              config.threads);
  std::printf("# %-8s %12s %12s %10s\n", "hot-key%", "eager_ms", "lazy_ms", "lazy/eager");

  for (const unsigned hot : {0u, 10u, 25u, 50u, 75u, 95u}) {
    double means[2] = {0, 0};
    int which = 0;
    for (const KvStore::Backend backend : {KvStore::Backend::kEager, KvStore::Backend::kLazy}) {
      util::RunningStats stats;
      for (int r = 0; r < config.warmups + config.samples; ++r) {
        auto world = make_world(backend);
        const auto block_txs = make_block(txs, hot, 42);
        const chain::Block parent = genesis_of(*world);
        core::Miner miner(*world, miner_config);
        const auto start = Clock::now();
        (void)miner.mine(block_txs, parent);
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        if (r >= config.warmups) stats.add(ms);
      }
      means[which++] = stats.mean();
    }
    std::printf("%8u %12.3f %12.3f %10.3f\n", hot, means[0], means[1], means[1] / means[0]);
    std::fflush(stdout);
  }
  return 0;
}
