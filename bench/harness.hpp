#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/miner.hpp"
#include "core/validator.hpp"
#include "graph/happens_before.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace concord::bench {

/// Shared methodology for the figure/table benches, mirroring the paper's
/// §7.2: "The running time is collected five times and the mean and
/// standard deviation are measured. All runs are given three warm-up runs
/// per collection." The miner and the validator both run with a pool of
/// three threads; the serial miner is the baseline.
struct RunConfig {
  unsigned threads = 3;
  int warmups = 3;
  int samples = 5;
  double nanos_per_gas = vm::GasMeter::kDefaultNanosPerGas;
  bool exclusive_locks_only = false;

  bool quick = false;

  /// Parses --quick (1 warmup / 3 samples, thinner axes), --samples=N,
  /// --warmups=N, --threads=N, --nanos-per-gas=X, and --json=FILE (mirror
  /// every measured point into FILE as a JSON array, for the perf
  /// trajectory — see bench/run_all.sh) from argv. Unknown flags are
  /// ignored so binaries can layer their own.
  static RunConfig from_args(int argc, char** argv);
};

/// Measured results for one (benchmark, txs, conflict%) point.
struct PointResult {
  workload::WorkloadSpec spec;
  util::TimingSummary serial;
  util::TimingSummary miner;
  util::TimingSummary validator;
  core::MinerStats mining_stats;       ///< From the last mining sample.
  graph::ScheduleMetrics schedule;     ///< Of the last mined block.

  [[nodiscard]] double miner_speedup() const {
    return miner.mean_ms > 0 ? serial.mean_ms / miner.mean_ms : 0.0;
  }
  [[nodiscard]] double validator_speedup() const {
    return validator.mean_ms > 0 ? serial.mean_ms / validator.mean_ms : 0.0;
  }
  /// Sustained throughput: every transaction both mined *and* validated
  /// over wall time (mine + validate back-to-back) — the number an
  /// unpipelined node would sustain on this workload, and the key shared
  /// with bench_node_throughput's JSON so all benches report comparably.
  [[nodiscard]] double sustained_tx_per_sec() const {
    const double total_ms = miner.mean_ms + validator.mean_ms;
    return total_ms > 0 ? static_cast<double>(spec.transactions) * 1e3 / total_ms : 0.0;
  }
};

/// Times serial baseline, parallel miner and parallel validator for one
/// workload point, each from a freshly-rebuilt fixture per run. Verifies
/// on every validator sample that the block is accepted (a benchmark that
/// silently measured rejected blocks would be meaningless) and aborts via
/// exception otherwise. Every measured point is also mirrored into the
/// JSON sink when --json=FILE was passed.
[[nodiscard]] PointResult measure_point(const workload::WorkloadSpec& spec,
                                        const RunConfig& config);

/// Mirrors one pre-formatted JSON object (braces included) into the
/// --json sink alongside the measure_point() records. For benches whose
/// measurement loop doesn't fit PointResult (bench_node_throughput's
/// sustained pipeline runs); no-op when --json wasn't passed. Objects
/// should carry the shared "sustained_tx_per_sec" key where applicable,
/// and must run any free-form text (benchmark names, error details)
/// through json_escape() before embedding it in a string value.
void write_json_object(const std::string& object);

/// Escapes `raw` for embedding inside a JSON string literal: quotes,
/// backslashes and control characters per RFC 8259. Used by the harness's
/// own point writer and by bespoke benches building write_json_object()
/// payloads, so a workload name (or failure detail) with a quote can't
/// corrupt the results file.
[[nodiscard]] std::string json_escape(std::string_view raw);

/// The paper's sweep axes.
[[nodiscard]] std::vector<std::size_t> blocksize_axis(bool quick);
[[nodiscard]] std::vector<unsigned> conflict_axis(bool quick);

/// gnuplot-friendly table row output helpers.
void print_point_header();
void print_point(const PointResult& point);

}  // namespace concord::bench
