// Microbenchmarks (google-benchmark) for the STM substrate's primitives:
// the per-operation costs a speculative miner pays on top of plain
// execution. These are the ablation numbers backing DESIGN.md's claim that
// synchronization overhead is small relative to calibrated VM work.

#include <benchmark/benchmark.h>

#include "stm/runtime.hpp"
#include "stm/speculative_action.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_map.hpp"
#include "vm/exec_context.hpp"
#include "vm/world.hpp"

namespace {

using namespace concord;

vm::GasMeter no_burn_meter() {
  return vm::GasMeter(vm::gas::kDefaultTxGasLimit, 0.0);
}

void BM_UncontendedLockAcquireCommit(benchmark::State& state) {
  stm::BoostingRuntime rt;
  std::uint64_t key = 0;
  for (auto _ : state) {
    stm::SpeculativeAction action(rt, 0, rt.next_birth());
    action.acquire(rt.locks().get(stm::LockId{1, key++}), stm::LockMode::kWrite);
    benchmark::DoNotOptimize(action.commit());
  }
}
BENCHMARK(BM_UncontendedLockAcquireCommit);

void BM_ReacquireHeldLock(benchmark::State& state) {
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  stm::AbstractLock& lock = rt.locks().get(stm::LockId{1, 1});
  action.acquire(lock, stm::LockMode::kWrite);
  for (auto _ : state) {
    action.acquire(lock, stm::LockMode::kWrite);  // Covered: fast path.
  }
  (void)action.commit();
}
BENCHMARK(BM_ReacquireHeldLock);

void BM_SharedReadAcquire(benchmark::State& state) {
  stm::BoostingRuntime rt;
  stm::AbstractLock& lock = rt.locks().get(stm::LockId{1, 1});
  std::uint32_t tx = 0;
  for (auto _ : state) {
    stm::SpeculativeAction action(rt, tx++, rt.next_birth());
    action.acquire(lock, stm::LockMode::kRead);
    benchmark::DoNotOptimize(action.commit());
  }
}
BENCHMARK(BM_SharedReadAcquire);

void BM_UndoLogAppendReplay(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  std::int64_t value = 0;
  for (auto _ : state) {
    stm::UndoLog log;
    for (std::size_t i = 0; i < entries; ++i) {
      log.record([&value] { ++value; });
    }
    log.replay_and_clear();
  }
  benchmark::DoNotOptimize(value);
}
BENCHMARK(BM_UndoLogAppendReplay)->Arg(1)->Arg(8)->Arg(64);

void BM_BoostedMapPutSerial(benchmark::State& state) {
  vm::World world;
  vm::BoostedMap<std::uint64_t, std::int64_t> map(1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    vm::ExecContext ctx = vm::ExecContext::serial(world, no_burn_meter());
    map.put(ctx, key++ % 1024, 7);
    ctx.commit_local();
  }
}
BENCHMARK(BM_BoostedMapPutSerial);

void BM_BoostedMapPutSpeculative(benchmark::State& state) {
  vm::World world;
  vm::BoostedMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  std::uint64_t key = 0;
  for (auto _ : state) {
    stm::SpeculativeAction action(rt, 0, rt.next_birth());
    vm::ExecContext ctx = vm::ExecContext::speculative(world, rt, action, no_burn_meter());
    map.put(ctx, key++ % 1024, 7);
    benchmark::DoNotOptimize(action.commit());
  }
}
BENCHMARK(BM_BoostedMapPutSpeculative);

void BM_BoostedMapPutReplay(benchmark::State& state) {
  vm::World world;
  vm::BoostedMap<std::uint64_t, std::int64_t> map(1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    vm::TraceRecorder trace;
    vm::ExecContext ctx = vm::ExecContext::replay(world, trace, no_burn_meter());
    map.put(ctx, key++ % 1024, 7);
    ctx.commit_local();
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_BoostedMapPutReplay);

void BM_CounterMapAddSpeculative(benchmark::State& state) {
  vm::World world;
  vm::BoostedCounterMap<std::uint64_t> counters(1);
  stm::BoostingRuntime rt;
  for (auto _ : state) {
    stm::SpeculativeAction action(rt, 0, rt.next_birth());
    vm::ExecContext ctx = vm::ExecContext::speculative(world, rt, action, no_burn_meter());
    counters.add(ctx, 42, 1);  // Same key every time: shared INC lock.
    benchmark::DoNotOptimize(action.commit());
  }
}
BENCHMARK(BM_CounterMapAddSpeculative);

void BM_NestedActionCommit(benchmark::State& state) {
  stm::BoostingRuntime rt;
  for (auto _ : state) {
    stm::SpeculativeAction parent(rt, 0, rt.next_birth());
    {
      stm::SpeculativeAction child(parent);
      child.acquire(rt.locks().get(stm::LockId{1, 7}), stm::LockMode::kWrite);
      child.commit_nested();
    }
    benchmark::DoNotOptimize(parent.commit());
  }
}
BENCHMARK(BM_NestedActionCommit);

void BM_ProfileCanonicalize(benchmark::State& state) {
  const auto locks = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    stm::LockProfile profile;
    for (std::uint64_t i = 0; i < locks; ++i) {
      profile.entries.push_back({{locks - i, i}, stm::LockMode::kRead, i});
    }
    profile.canonicalize();
    benchmark::DoNotOptimize(profile.entries.data());
  }
}
BENCHMARK(BM_ProfileCanonicalize)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
