#include "harness.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace concord::bench {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

bool parse_flag(std::string_view arg, std::string_view name, long& out) {
  if (!arg.starts_with(name)) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  out = std::strtol(arg.data() + 1, nullptr, 10);
  return true;
}

bool parse_flag_double(std::string_view arg, std::string_view name, double& out) {
  if (!arg.starts_with(name)) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  out = std::strtod(arg.data() + 1, nullptr);
  return true;
}

/// Process-wide sink mirroring every measure_point() into a JSON array so
/// bench/run_all.sh can collect machine-readable results without each
/// bench main threading a writer through. The closing bracket is written
/// by the function-local static's destructor at normal process exit, so a
/// bench that opens the sink but measures no points still leaves valid
/// JSON.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void open(const std::string& path) {
    out_.open(path, std::ios::trunc);
    if (out_.is_open()) {
      out_ << "[";
    } else {
      std::fprintf(stderr, "warning: --json: cannot open '%s'; JSON output disabled\n",
                   path.c_str());
    }
  }

  void write(const PointResult& point) {
    std::ostringstream object;
    object << "{"
           << "\"benchmark\": \"" << json_escape(workload::to_string(point.spec.kind)) << "\""
           << ", \"transactions\": " << point.spec.transactions
           << ", \"conflict_percent\": " << point.spec.conflict_percent
           << ", \"serial_ms\": " << point.serial.mean_ms
           << ", \"serial_stddev_ms\": " << point.serial.stddev_ms
           << ", \"miner_ms\": " << point.miner.mean_ms
           << ", \"miner_stddev_ms\": " << point.miner.stddev_ms
           << ", \"validator_ms\": " << point.validator.mean_ms
           << ", \"validator_stddev_ms\": " << point.validator.stddev_ms
           << ", \"miner_speedup\": " << point.miner_speedup()
           << ", \"validator_speedup\": " << point.validator_speedup()
           << ", \"sustained_tx_per_sec\": " << point.sustained_tx_per_sec()
           << ", \"conflict_aborts\": " << point.mining_stats.conflict_aborts
           << ", \"critical_path\": " << point.schedule.critical_path
           << ", \"parallelism\": " << point.schedule.parallelism
           << ", \"schedule_bytes\": " << point.mining_stats.schedule_bytes << "}";
    write_raw(object.str());
  }

  void write_raw(const std::string& object) {
    if (!out_.is_open()) return;
    out_ << (first_ ? "\n" : ",\n") << "  " << object;
    out_.flush();
    first_ = false;
  }

  ~JsonSink() {
    if (out_.is_open()) out_ << "\n]\n";
  }

 private:
  std::ofstream out_;
  bool first_ = true;
};

}  // namespace

void write_json_object(const std::string& object) { JsonSink::instance().write_raw(object); }

std::string json_escape(std::string_view raw) { return util::json_escape(raw); }

RunConfig RunConfig::from_args(int argc, char** argv) {
  RunConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    long value = 0;
    double dvalue = 0.0;
    if (arg == "--quick") {
      config.quick = true;
      config.warmups = 1;
      config.samples = 3;
    } else if (parse_flag(arg, "--samples", value)) {
      config.samples = static_cast<int>(value);
    } else if (parse_flag(arg, "--warmups", value)) {
      config.warmups = static_cast<int>(value);
    } else if (parse_flag(arg, "--threads", value)) {
      config.threads = static_cast<unsigned>(value);
    } else if (parse_flag_double(arg, "--nanos-per-gas", dvalue)) {
      config.nanos_per_gas = dvalue;
    } else if (arg == "--exclusive-locks") {
      config.exclusive_locks_only = true;
    } else if (arg.starts_with("--json=")) {
      JsonSink::instance().open(std::string(arg.substr(7)));
    }
  }
  return config;
}

PointResult measure_point(const workload::WorkloadSpec& spec, const RunConfig& config) {
  PointResult point;
  point.spec = spec;

  core::MinerConfig miner_config;
  miner_config.threads = config.threads;
  miner_config.nanos_per_gas = config.nanos_per_gas;
  miner_config.exclusive_locks_only = config.exclusive_locks_only;

  core::ValidatorConfig validator_config;
  validator_config.threads = config.threads;
  validator_config.nanos_per_gas = config.nanos_per_gas;
  validator_config.exclusive_locks_only = config.exclusive_locks_only;

  const int total_runs = config.warmups + config.samples;

  // --- Serial baseline --------------------------------------------------
  {
    std::vector<double> runs;
    for (int r = 0; r < total_runs; ++r) {
      auto fixture = workload::make_fixture(spec);
      core::Miner miner(*fixture.world, miner_config);
      const auto start = Clock::now();
      (void)miner.execute_serial_baseline(fixture.transactions);
      const double ms = ms_since(start);
      if (r >= config.warmups) runs.push_back(ms);
    }
    point.serial = util::summarize_ms(runs);
  }

  // --- Parallel (speculative) miner --------------------------------------
  chain::Block reference_block;  // Last mined block, reused for validation.
  {
    std::vector<double> runs;
    for (int r = 0; r < total_runs; ++r) {
      auto fixture = workload::make_fixture(spec);
      const chain::Block parent = fixture.genesis();
      core::Miner miner(*fixture.world, miner_config);
      const auto start = Clock::now();
      chain::Block block = miner.mine(fixture.transactions, parent);
      const double ms = ms_since(start);
      if (r >= config.warmups) runs.push_back(ms);
      point.mining_stats = miner.last_stats();
      reference_block = std::move(block);
    }
    point.miner = util::summarize_ms(runs);
    point.schedule = graph::compute_metrics(
        reference_block.schedule.to_graph(reference_block.transactions.size()));
  }

  // --- Parallel (deterministic fork-join) validator -----------------------
  {
    std::vector<double> runs;
    for (int r = 0; r < total_runs; ++r) {
      auto fixture = workload::make_fixture(spec);
      core::Validator validator(*fixture.world, validator_config);
      const auto start = Clock::now();
      const core::ValidationReport report = validator.validate_parallel(reference_block);
      const double ms = ms_since(start);
      if (!report.ok) {
        throw std::runtime_error(std::string("benchmark block rejected: ") +
                                 std::string(core::to_string(report.reason)) + " — " +
                                 report.detail);
      }
      if (r >= config.warmups) runs.push_back(ms);
    }
    point.validator = util::summarize_ms(runs);
  }

  JsonSink::instance().write(point);
  return point;
}

std::vector<std::size_t> blocksize_axis(bool quick) {
  if (quick) return {10, 50, 100, 200};
  return {10, 25, 50, 100, 150, 200, 250, 300, 350, 400};
}

std::vector<unsigned> conflict_axis(bool quick) {
  if (quick) return {0, 30, 60, 100};
  return {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

void print_point_header() {
  std::printf("# %-14s %5s %9s %12s %12s %14s %8s %8s %10s %7s %9s\n", "benchmark", "txs",
              "conflict%", "serial_ms", "miner_ms", "validator_ms", "m_spd", "v_spd", "aborts",
              "cpath", "sched_B");
}

void print_point(const PointResult& point) {
  std::printf("%-16s %5zu %9u %9.3f±%-5.3f %9.3f±%-5.3f %9.3f±%-5.3f %8.2fx %8.2fx %10llu %7zu %9zu\n",
              std::string(workload::to_string(point.spec.kind)).c_str(),
              point.spec.transactions, point.spec.conflict_percent, point.serial.mean_ms,
              point.serial.stddev_ms, point.miner.mean_ms, point.miner.stddev_ms,
              point.validator.mean_ms, point.validator.stddev_ms, point.miner_speedup(),
              point.validator_speedup(),
              static_cast<unsigned long long>(point.mining_stats.conflict_aborts),
              point.schedule.critical_path, point.mining_stats.schedule_bytes);
  std::fflush(stdout);
}

}  // namespace concord::bench
