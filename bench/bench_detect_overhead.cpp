// ConcordSan overhead: miner throughput with detection off versus on.
//
// The detect-off column is the one the trajectory gate cares about: with
// MinerConfig::detect false no AccessRecorder is wired into the
// ExecContext, every on_data_access call short-circuits on a null
// pointer, and the hot path must measure the same as before the analysis
// layer existed (bench_node_throughput's recorded points are that gate).
// The detect-on column prices the lane itself — per-access event
// recording plus the post-block lockset sweep and soundness oracle — so
// CI has a number to watch when the detector grows.
//
// Usage: bench_detect_overhead [--quick] [--samples=N] [--threads=N]
//        [--json=FILE]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.hpp"
#include "util/stats.hpp"

using namespace concord;

namespace {

struct OverheadPoint {
  util::TimingSummary off;
  util::TimingSummary on;
  std::uint64_t accesses = 0;  ///< Events the detect-on run recorded.
};

/// Times Miner::mine() over freshly-rebuilt fixtures, detect as given.
util::TimingSummary time_mine(const workload::WorkloadSpec& spec, const bench::RunConfig& run,
                              bool detect, std::uint64_t* accesses_out) {
  core::MinerConfig config;
  config.threads = run.threads;
  config.nanos_per_gas = run.nanos_per_gas;
  config.exclusive_locks_only = run.exclusive_locks_only;
  config.detect = detect;

  std::vector<double> runs_ms;
  for (int i = 0; i < run.warmups + run.samples; ++i) {
    workload::Fixture fixture = workload::make_fixture(spec);
    core::Miner miner(*fixture.world, config);
    const auto start = std::chrono::steady_clock::now();
    const chain::Block block = miner.mine(fixture.transactions, fixture.genesis());
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (block.transactions.empty()) throw std::runtime_error("bench_detect_overhead: empty block");
    if (detect && !miner.last_detect_report().clean()) {
      throw std::runtime_error("bench_detect_overhead: stock workload flagged: " +
                               miner.last_detect_report().to_json());
    }
    if (i >= run.warmups) runs_ms.push_back(ms);
    if (accesses_out != nullptr) *accesses_out = miner.last_detect_report().accesses;
  }
  return util::summarize_ms(runs_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;
  const unsigned conflict = 15;

  std::printf("ConcordSan overhead: speculative mining, detect off vs on\n");
  std::printf("%zu transactions/block, conflict %u%%, %u threads, %d samples\n\n", txs, conflict,
              config.threads, config.samples);
  std::printf("%-14s %12s %12s %10s %10s %10s\n", "benchmark", "off tx/s", "on tx/s", "overhead",
              "off ms", "accesses");

  for (const auto kind : workload::kAllBenchmarks) {
    workload::WorkloadSpec spec{kind, txs, conflict, 42};
    OverheadPoint point;
    point.off = time_mine(spec, config, /*detect=*/false, nullptr);
    point.on = time_mine(spec, config, /*detect=*/true, &point.accesses);

    const double off_tx = point.off.mean_ms > 0
                              ? static_cast<double>(txs) * 1e3 / point.off.mean_ms
                              : 0.0;
    const double on_tx =
        point.on.mean_ms > 0 ? static_cast<double>(txs) * 1e3 / point.on.mean_ms : 0.0;
    const double overhead =
        point.off.mean_ms > 0 ? (point.on.mean_ms - point.off.mean_ms) / point.off.mean_ms : 0.0;

    const std::string name(workload::to_string(kind));
    std::printf("%-14s %12.0f %12.0f %9.1f%% %10.3f %10llu\n", name.c_str(), off_tx, on_tx,
                overhead * 100.0, point.off.mean_ms,
                static_cast<unsigned long long>(point.accesses));

    char json[512];
    std::snprintf(json, sizeof(json),
                  "{\"bench\": \"detect_overhead\", \"benchmark\": \"%s\", "
                  "\"transactions\": %zu, \"conflict_percent\": %u, "
                  "\"detect_off_tx_per_sec\": %.1f, \"detect_on_tx_per_sec\": %.1f, "
                  "\"detect_overhead_frac\": %.4f, \"accesses\": %llu}",
                  bench::json_escape(name).c_str(), txs, conflict, off_tx, on_tx, overhead,
                  static_cast<unsigned long long>(point.accesses));
    bench::write_json_object(json);
  }

  std::printf("\nThe detect-off column is gated by the bench_node_throughput trajectory\n"
              "(detect defaults off there); the on/off gap is the price of the lane.\n");
  return 0;
}
