// Snapshot + materialize cost vs state size: the price of the depth-k
// ring's per-block boundary snapshot, before and after the COW state
// layer.
//
// Two strategies over identical worlds (a KvStore with N keys plus N/10
// native balances):
//
//  - deep: the PR-4 deep-clone baseline, reproduced through the COW API
//    by forking and then rewriting every key (detaching every page — a
//    full structural copy) and eagerly hashing the replica, which is
//    exactly the work `WorldSnapshot` used to do per block: O(state)
//    copy + O(state) root hash.
//  - cow: what the node does today — `WorldSnapshot(world)` (an
//    O(contracts) page-sharing fork; the root is lazy and the node seeds
//    it from the accepted block, so no hash runs), then a small dirty
//    set of writes on the live world (the detach-on-write cost the fork
//    defers to the next block's mining), then `materialize()` (another
//    fork — the validator/recovery side).
//
// The honest COW boundary cost is snapshot + dirty-detach; the
// acceptance bar for the redesign is deep / (snapshot + dirty) ≥ 10 at
// 100k keys.
//
// Usage: bench_snapshot_cost [--quick] [--samples=N] [--json=FILE] ...

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "contracts/kv_store.hpp"
#include "harness.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vm/world.hpp"

namespace {

using namespace concord;
using Clock = std::chrono::steady_clock;

const vm::Address kStoreAddr = vm::Address::from_u64(90, 0xCC);
constexpr std::size_t kDirtyWrites = 16;  ///< Small per-block dirty set.

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::unique_ptr<vm::World> make_world(std::size_t keys) {
  auto world = std::make_unique<vm::World>();
  auto store = std::make_unique<contracts::KvStore>(kStoreAddr, contracts::KvStore::Backend::kEager);
  for (std::size_t k = 0; k < keys; ++k) {
    store->raw_put(k, static_cast<std::int64_t>(k * 7 + 1));
  }
  world->contracts().add(std::move(store));
  for (std::size_t a = 0; a < keys / 10; ++a) {
    world->balances().raw_set(vm::Address::from_u64(a, 0x06), static_cast<vm::Amount>(a + 1));
  }
  return world;
}

/// The deep-clone baseline: fork, then force a full structural copy by
/// rewriting every entry (same values, so the state is unchanged), then
/// hash eagerly — the O(state)+O(state) work the pre-COW WorldSnapshot
/// constructor performed per block boundary.
std::unique_ptr<vm::World> deep_clone(const vm::World& world, std::size_t keys) {
  auto replica = world.fork();
  auto& store = replica->contracts().as<contracts::KvStore>(kStoreAddr);
  for (std::size_t k = 0; k < keys; ++k) {
    store.raw_put(k, static_cast<std::int64_t>(k * 7 + 1));
  }
  for (std::size_t a = 0; a < keys / 10; ++a) {
    replica->balances().raw_set(vm::Address::from_u64(a, 0x06), static_cast<vm::Amount>(a + 1));
  }
  (void)replica->state_root();
  return replica;
}

struct SizeResult {
  util::RunningStats deep;
  util::RunningStats snapshot;
  util::RunningStats dirty;
  util::RunningStats materialize;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  // The 100k point is the acceptance criterion, so even --quick keeps the
  // full axis and only trims samples.
  const std::vector<std::size_t> sizes = {1'000, 10'000, 100'000};

  std::printf("Snapshot cost: deep-clone baseline vs COW fork (dirty set = %zu writes)\n\n",
              kDirtyWrites);
  std::printf("# %8s %12s %12s %12s %14s %10s\n", "keys", "deep_ms", "snapshot_ms", "dirty_ms",
              "materialize_ms", "speedup");

  for (const std::size_t keys : sizes) {
    const auto world = make_world(keys);
    SizeResult result;
    util::Rng rng(keys);

    for (int r = 0; r < config.warmups + config.samples; ++r) {
      const bool measured = r >= config.warmups;
      {
        const auto t0 = Clock::now();
        auto deep = deep_clone(*world, keys);
        if (measured) result.deep.add(ms_since(t0));
      }
      {
        const auto t0 = Clock::now();
        const vm::WorldSnapshot boundary(*world);
        const double snapshot_ms = ms_since(t0);

        // The deferred COW cost: the next block's writes detach the pages
        // they touch while the snapshot keeps the frozen versions alive.
        auto& store = world->contracts().as<contracts::KvStore>(kStoreAddr);
        const auto t1 = Clock::now();
        for (std::size_t w = 0; w < kDirtyWrites; ++w) {
          store.raw_put(rng.below(keys), static_cast<std::int64_t>(rng.below(1'000'000)));
        }
        const double dirty_ms = ms_since(t1);

        const auto t2 = Clock::now();
        auto replica = boundary.materialize();
        const double materialize_ms = ms_since(t2);
        if (measured) {
          result.snapshot.add(snapshot_ms);
          result.dirty.add(dirty_ms);
          result.materialize.add(materialize_ms);
        }
      }
    }

    const double boundary_cost = result.snapshot.mean() + result.dirty.mean();
    const double speedup = boundary_cost > 0 ? result.deep.mean() / boundary_cost : 0.0;
    std::printf("%10zu %12.4f %12.4f %12.4f %14.4f %9.1fx\n", keys, result.deep.mean(),
                result.snapshot.mean(), result.dirty.mean(), result.materialize.mean(), speedup);
    std::fflush(stdout);

    std::ostringstream object;
    object << "{\"benchmark\": \"SnapshotCost/KvStore\""
           << ", \"keys\": " << keys
           << ", \"dirty_writes\": " << kDirtyWrites
           << ", \"deep_clone_ms\": " << result.deep.mean()
           << ", \"deep_clone_stddev_ms\": " << result.deep.stddev()
           << ", \"cow_snapshot_ms\": " << result.snapshot.mean()
           << ", \"cow_dirty_detach_ms\": " << result.dirty.mean()
           << ", \"cow_materialize_ms\": " << result.materialize.mean()
           << ", \"boundary_speedup\": " << speedup << "}";
    bench::write_json_object(object.str());
  }

  std::printf(
      "\nspeedup = deep_ms / (snapshot_ms + dirty_ms): the per-boundary cost ratio.\n"
      "deep reproduces the pre-COW WorldSnapshot (full copy + eager root hash);\n"
      "the node's real snapshot path is the cow columns (lazy root, seeded).\n");
  return 0;
}
