// Reproduces the RIGHT column of Figure 1: "the speedup as the data
// conflict percentage increases for fixed blocks of 200 transactions" —
// one series per benchmark, conflict ∈ [0%, 100%], 3 threads.
//
// Usage: bench_fig1_conflict [--quick] [--samples=N] [--threads=N] ...

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;

  std::printf("Figure 1 (right column): speedup vs conflict%%, %zu transactions, %u threads\n",
              txs, config.threads);
  bench::print_point_header();

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    for (const unsigned conflict : bench::conflict_axis(config.quick)) {
      workload::WorkloadSpec spec;
      spec.kind = kind;
      spec.transactions = txs;
      spec.conflict_percent = conflict;
      spec.seed = 42;
      bench::print_point(bench::measure_point(spec, config));
    }
    std::printf("\n");
  }
  return 0;
}
