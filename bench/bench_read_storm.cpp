// MVCC read-path storm: M reader threads hammer query_latest / pinned
// query_at("head - 3") against a node while its full pipeline mines the
// same Mixed stream the throughput bench uses. Reports sustained read
// QPS with p50/p99 latency, the write-path tx/s delta versus a
// no-readers baseline of the identical stream, and — the correctness
// gate — verifies that every state root recorded through a pinned
// boundary is byte-identical to the root the chain later reports for
// that block. A torn or stale snapshot fails the run (exit 1); the
// write-delta threshold is informational unless --gate is passed
// (shared CI boxes can't promise a stable 5%).
//
// Usage: bench_read_storm [--quick] [--samples=N] [--threads=N]
//                         [--readers=N] [--read-pace-us=N]
//                         [--mine-shards=1,4] [--gate] [--json=FILE]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "node/node.hpp"
#include "util/cycle_burner.hpp"
#include "util/stats.hpp"

namespace {

using namespace concord;
using Clock = std::chrono::steady_clock;

struct StormResult {
  node::NodeStats stats;               ///< Node counters for the run.
  std::vector<double> latencies_us;    ///< Per-query read latencies.
  std::uint64_t pin_checks = 0;        ///< Historical roots recorded…
  std::uint64_t pin_mismatches = 0;    ///< …and how many disagreed with the chain.
  std::uint64_t pin_evictions = 0;     ///< pin_at misses (window/races), not errors.

  [[nodiscard]] double read_qps() const {
    return stats.wall_ms > 0
               ? static_cast<double>(stats.queries_served) * 1e3 / stats.wall_ms
               : 0.0;
  }
};

double percentile_us(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

node::NodeConfig make_node_config(const workload::StreamSpec& spec,
                                  const bench::RunConfig& config, std::uint32_t mine_shards) {
  node::NodeConfig node_config;
  node_config.miner.threads = config.threads;
  node_config.miner.nanos_per_gas = config.nanos_per_gas;
  node_config.miner.exclusive_locks_only = config.exclusive_locks_only;
  node_config.validator.threads = config.threads;
  node_config.validator.nanos_per_gas = config.nanos_per_gas;
  node_config.validator.exclusive_locks_only = config.exclusive_locks_only;
  node_config.batch.target_txs = spec.txs_per_block;
  node_config.mempool_capacity = 4 * spec.txs_per_block;
  node_config.pipelined = true;
  node_config.pipeline_depth = 2;
  node_config.mine_shards = mine_shards;
  node_config.mining = node::MiningMode::kSpeculative;
  return node_config;
}

/// One stream run with `readers` query threads riding along. readers ==
/// 0 is the write-path baseline (the read path stays enabled — its cost
/// when idle is one COW fork per accepted block — so the delta isolates
/// the *query traffic*, not the subsystem's existence).
StormResult run_storm(const workload::StreamSpec& spec, const bench::RunConfig& config,
                      std::uint32_t mine_shards, unsigned readers, unsigned pace_us) {
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);

  node::Node node(std::move(fixture.world), make_node_config(spec, config, mine_shards));

  StormResult result;
  std::atomic<bool> stop{false};
  std::mutex merge_mu;  // Guards result's vectors/counters during joins.
  // (block, root) pairs recorded through pinned boundaries mid-run;
  // verified against the chain afterwards. Reading node.chain() DURING
  // the run would race the appending thread — the pin is exactly the
  // mechanism that makes mid-run reads safe, so the checker uses only
  // what the pin itself carries.
  std::vector<std::pair<std::uint64_t, util::Hash256>> pinned_roots;

  std::vector<std::jthread> storm;
  storm.reserve(readers + 1);
  for (unsigned r = 0; r < readers; ++r) {
    storm.emplace_back([&, r] {
      std::vector<double> local_lat;
      std::uint64_t probe = r;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        (void)node.query_latest([&probe](const vm::World& world, vm::ExecContext& ctx) {
          // A handful of balance reads per query — the "how many tokens
          // does account X hold right now" shape, off the frozen head.
          for (int i = 0; i < 4; ++i) {
            (void)world.balances().get(ctx, vm::Address::from_u64(probe + i));
          }
          probe += 7;
        });
        local_lat.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
        if (pace_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
      }
      std::scoped_lock lk(merge_mu);
      result.latencies_us.insert(result.latencies_us.end(), local_lat.begin(),
                                 local_lat.end());
    });
  }

  if (readers > 0) {
    // The pin checker: repeatedly pins "head − 3" and records the root
    // the pinned boundary claims for that block.
    storm.emplace_back([&] {
      std::vector<std::pair<std::uint64_t, util::Hash256>> local;
      std::uint64_t evictions = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::optional<std::uint64_t> head = node.snapshots().head_number();
        if (head.has_value() && *head >= 3) {
          try {
            const node::Node::Pin pin = node.pin_at(*head - 3);
            local.emplace_back(pin->number, pin->snapshot.state_root());
          } catch (const node::SnapshotEvicted&) {
            ++evictions;  // Raced the window forward; explicit, never torn.
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(pace_us > 0 ? pace_us : 100));
      }
      std::scoped_lock lk(merge_mu);
      pinned_roots.insert(pinned_roots.end(), local.begin(), local.end());
      result.pin_evictions += evictions;
    });
  }

  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
  stop.store(true, std::memory_order_relaxed);
  storm.clear();  // Joins readers + checker.

  if (!node.ok()) {
    throw std::runtime_error(std::string("node rejected a block: ") +
                             std::string(core::to_string(node.failure().reason)) + " — " +
                             node.failure().detail);
  }

  // The MVCC acceptance check: every root served through a pin must be
  // the root the (now settled) chain records for that block.
  for (const auto& [number, root] : pinned_roots) {
    ++result.pin_checks;
    if (node.chain().at(number).header.state_root != root) ++result.pin_mismatches;
  }

  result.stats = node.stats();
  return result;
}

void emit_json(const workload::StreamSpec& spec, std::uint32_t mine_shards, unsigned readers,
               const StormResult& baseline, StormResult& storm, double p50, double p99,
               double write_delta_pct) {
  std::ostringstream object;
  object << "{\"benchmark\": \"ReadStorm/" << bench::json_escape(workload::to_string(spec.kind))
         << "\""
         << ", \"blocks\": " << storm.stats.blocks
         << ", \"txs_per_block\": " << spec.txs_per_block
         << ", \"mine_shards\": " << mine_shards
         << ", \"readers\": " << readers
         << ", \"read_qps\": " << storm.read_qps()
         << ", \"read_p50_us\": " << p50
         << ", \"read_p99_us\": " << p99
         << ", \"queries_served\": " << storm.stats.queries_served
         << ", \"query_gas_used\": " << storm.stats.query_gas_used
         << ", \"pins_expired\": " << storm.stats.pins_expired
         << ", \"snapshots_retained_high_water\": " << storm.stats.snapshots_retained_high_water
         << ", \"pin_checks\": " << storm.pin_checks
         << ", \"pin_mismatches\": " << storm.pin_mismatches
         << ", \"baseline_tx_per_sec\": " << baseline.stats.tx_per_sec()
         << ", \"write_tx_per_sec\": " << storm.stats.tx_per_sec()
         << ", \"write_delta_pct\": " << write_delta_pct
         << ", \"machine_iters_per_us\": " << util::iterations_per_microsecond() << "}";
  bench::write_json_object(object.str());
}

std::vector<std::size_t> parse_csv(std::string_view csv) {
  std::vector<std::size_t> values;
  while (!csv.empty()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(csv.data(), &end, 10);
    if (end == csv.data() || v == 0) return {};
    values.push_back(v);
    csv.remove_prefix(static_cast<std::size_t>(end - csv.data()));
    if (!csv.empty() && csv.front() == ',') csv.remove_prefix(1);
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  workload::StreamSpec spec;
  spec.kind = workload::BenchmarkKind::kMixed;
  spec.blocks = config.quick ? 8 : 16;
  spec.txs_per_block = config.quick ? 50 : 120;
  spec.conflict_percent = 15;

  unsigned readers = 4;
  unsigned pace_us = 250;
  bool gate = false;
  std::vector<std::size_t> shard_axis{1, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--readers=")) readers = std::strtoul(arg.data() + 10, nullptr, 10);
    if (arg.starts_with("--read-pace-us=")) {
      pace_us = std::strtoul(arg.data() + 15, nullptr, 10);
    }
    if (arg.starts_with("--mine-shards=")) shard_axis = parse_csv(arg.substr(14));
    if (arg == "--gate") gate = true;
  }
  if (readers == 0 || shard_axis.empty()) {
    std::fprintf(stderr,
                 "bench_read_storm: --readers must be positive and --mine-shards a comma "
                 "list of positive values\n");
    return 2;
  }

  std::printf(
      "MVCC read storm: %zu blocks x %zu txs (Mixed), %u reader(s) @ %u us pace, "
      "%u threads/stage\n",
      spec.blocks, spec.txs_per_block, readers, pace_us, config.threads);
  if (const unsigned hw = std::thread::hardware_concurrency();
      hw < 2 * config.threads + readers) {
    std::printf(
        "note: %u hardware thread(s) for two %u-thread stages + %u reader(s) — readers and\n"
        "      the pipeline share cores here, so the write delta overstates what parallel\n"
        "      hardware would see (pass --gate only where readers get their own cores)\n",
        hw, config.threads, readers);
  }
  std::printf("# %-14s %7s %10s %10s %10s %12s %12s %8s\n", "benchmark", "shards", "read_qps",
              "p50_us", "p99_us", "base_tx/s", "storm_tx/s", "delta%");

  bool pins_ok = true;
  bool delta_ok = true;
  for (const std::size_t shards : shard_axis) {
    const auto mine_shards = static_cast<std::uint32_t>(shards);
    // One warmup pass settles the allocator/page-cache; then a single
    // measured pass per mode — the storm's QPS/latency distribution is
    // already thousands of samples deep within one run.
    (void)run_storm(spec, config, mine_shards, 0, pace_us);
    const StormResult baseline = run_storm(spec, config, mine_shards, 0, pace_us);
    StormResult storm = run_storm(spec, config, mine_shards, readers, pace_us);

    std::sort(storm.latencies_us.begin(), storm.latencies_us.end());
    const double p50 = percentile_us(storm.latencies_us, 0.50);
    const double p99 = percentile_us(storm.latencies_us, 0.99);
    const double base_tps = baseline.stats.tx_per_sec();
    const double storm_tps = storm.stats.tx_per_sec();
    const double delta_pct =
        base_tps > 0 ? (base_tps - storm_tps) / base_tps * 100.0 : 0.0;

    std::printf("%-16s %7u %10.0f %10.1f %10.1f %12.0f %12.0f %7.1f%%\n", "ReadStorm/mixed",
                mine_shards, storm.read_qps(), p50, p99, base_tps, storm_tps, delta_pct);
    std::fflush(stdout);
    emit_json(spec, mine_shards, readers, baseline, storm, p50, p99, delta_pct);

    if (storm.pin_mismatches > 0 || storm.pin_checks == 0) {
      std::fprintf(stderr,
                   "FAIL: pinned-read verification (shards=%u): %llu of %llu recorded roots "
                   "disagree with the chain%s\n",
                   mine_shards, static_cast<unsigned long long>(storm.pin_mismatches),
                   static_cast<unsigned long long>(storm.pin_checks),
                   storm.pin_checks == 0 ? " (no pins were ever recorded)" : "");
      pins_ok = false;
    }
    if (delta_pct > 5.0) {
      std::printf("note: write-path delta %.1f%% exceeds the 5%% budget (shards=%u)%s\n",
                  delta_pct, mine_shards,
                  gate ? "" : " — informational on shared hardware, pass --gate to enforce");
      if (gate) delta_ok = false;
    }
  }

  return pins_ok && delta_ok ? 0 : 1;
}
