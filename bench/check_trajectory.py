#!/usr/bin/env python3
"""Trajectory consumer: diff sustained_tx_per_sec across the committed
bench/trajectory/BENCH_*.json files and fail on a regression.

Each trajectory file (written by record_trajectory.sh) wraps one
bench_node_throughput run: {commit, date, hardware_threads,
node_throughput: [points...]}, plus optional state_scale and read_storm
arrays (the bench_state_scale arena ablation and the bench_read_storm
MVCC read-path storm, both reported informationally but never gated).
node_throughput points are keyed by
(benchmark, pipelined, pipeline_depth, mine_shards); files that predate
the depth-k ring carry no pipeline_depth field and read as depth 1, and
files that predate sharded production carry no mine_shards field and
read as 1 shard. Only mine_shards == 1 points gate — the shard-scaling
lane is reported informationally, exactly like state_scale.

The gate compares the NEWEST file against its predecessor only — older
transitions are history (they were green when committed, and a
retroactively-red gate would block every future PR). A >--threshold drop
in sustained_tx_per_sec on any shared key fails with exit 1. Files
measured on different hardware_threads counts are not comparable
(pipeline overlap needs cores); the gate warns and passes instead of
guessing. The same applies to the machine-speed fingerprint
(machine_iters_per_us, the CycleBurner calibration recorded per run):
on shared infrastructure the same box can run 2x slower between
recording dates, which hardware_threads cannot see — when the
fingerprints of the two newest files disagree by more than 10% (or only
one file carries one), absolute tx/s is not comparable and the gate
skips instead of red-flagging phantom regressions. The full history
table is always printed.

usage: check_trajectory.py [--threshold=0.15] [trajectory-dir]
"""

import json
import pathlib
import sys


def load_points(path):
    """-> (meta dict, {key: {"tx": sustained_tx_per_sec, "snapshot_ms": ...}}).

    snapshot_ms (the per-run boundary-snapshot time; O(state) deep clones
    before the COW state layer, O(contracts) forks after) is carried for
    informational reporting only — it never gates."""
    data = json.loads(path.read_text())
    points = {}
    for point in data.get("node_throughput") or []:
        key = (
            point.get("benchmark", "?"),
            bool(point.get("pipelined")),
            int(point.get("pipeline_depth", 1)),
            int(point.get("mine_shards", 1)),
        )
        points[key] = {
            "tx": float(point.get("sustained_tx_per_sec", 0.0)),
            "snapshot_ms": float(point.get("snapshot_ms", 0.0)),
        }
    return data, points


def machine_speed(meta):
    """CycleBurner burn-iterations/µs the run was recorded at, or None.

    Newer files carry it in the header (record_trajectory.sh lifts it
    from the points); fall back to scanning the points so a hand-rolled
    file still fingerprints. Files predating the field return None."""
    value = meta.get("machine_iters_per_us")
    if value:
        return float(value)
    for point in meta.get("node_throughput") or []:
        if point.get("machine_iters_per_us"):
            return float(point["machine_iters_per_us"])
    return None


def fmt_key(key):
    benchmark, pipelined, depth, shards = key
    mode = f"pipelined k={depth}" if pipelined else "sequential"
    if shards > 1:
        mode += f" shards={shards}"
    return f"{benchmark} [{mode}]"


def report_state_scale(meta, name):
    """Informational arena-ablation summary from a file's state_scale
    points (recorded by record_trajectory.sh when bench_state_scale ran
    alongside bench_node_throughput). Never gates: the ablation's own
    acceptance — arena on beating off — is asserted where the points are
    measured; here the interest is the cross-PR trend line."""
    points = meta.get("state_scale") or []
    pairs = {}
    for point in points:
        key = (point.get("benchmark", "?"), int(point.get("accounts", 0)))
        side = "on" if point.get("arena") else "off"
        pairs.setdefault(key, {})[side] = float(point.get("sustained_tx_per_sec", 0.0))
    if not pairs:
        return
    print(f"  [info] {name} state-scale arena ablation (informational, non-gating):")
    for (benchmark, accounts), sides in sorted(pairs.items()):
        on, off = sides.get("on", 0.0), sides.get("off", 0.0)
        gain = f"{(on - off) / off:+.1%}" if off > 0 else "n/a"
        print(
            f"    {benchmark} @ {accounts} accounts: "
            f"arena {on:.0f} vs heap {off:.0f} tx/s ({gain})"
        )


def report_read_storm(meta, name):
    """Informational MVCC read-path summary from a file's read_storm
    points (recorded by record_trajectory.sh when bench_read_storm ran
    alongside bench_node_throughput). Never gates: read QPS and the
    write-path delta are core-count-shaped (a 1-vCPU runner timeshares
    readers against the miner), so the interest is the cross-PR trend
    line, and the bench's own pinned-root check is the correctness
    gate where the points are measured."""
    points = meta.get("read_storm") or []
    if not points:
        return
    print(f"  [info] {name} MVCC read storm (informational, non-gating):")
    for point in points:
        qps = float(point.get("read_qps", 0.0))
        p99 = float(point.get("read_p99_us", 0.0))
        delta = float(point.get("write_delta_pct", 0.0))
        print(
            f"    {point.get('benchmark', '?')} shards={point.get('mine_shards', 1)} "
            f"readers={point.get('readers', 0)}: {qps:.0f} reads/s "
            f"(p99 {p99:.1f}µs), write-path delta {delta:+.1f}%"
        )


def report_shard_scaling(points, name):
    """Informational shard-scaling summary from a file's mine_shards > 1
    node-throughput points, compared against the 1-shard point at the
    same (benchmark, pipelined, depth). Never gates: cross-shard traffic
    makes n-shard throughput workload-dependent by design; the interest
    here is the cross-PR trend line."""
    sharded = {key: p for key, p in points.items() if key[3] > 1}
    if not sharded:
        return
    print(f"  [info] {name} shard scaling (informational, non-gating):")
    for key in sorted(sharded):
        benchmark, pipelined, depth, shards = key
        base = points.get((benchmark, pipelined, depth, 1))
        n_tx = sharded[key]["tx"]
        if base and base["tx"] > 0:
            ratio = f"{n_tx / base['tx']:.2f}x vs 1 shard"
        else:
            ratio = "no 1-shard reference"
        print(f"    {fmt_key(key)}: {n_tx:.0f} tx/s ({ratio})")


def main(argv):
    threshold = 0.15
    trajectory_dir = pathlib.Path(__file__).resolve().parent / "trajectory"
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            trajectory_dir = pathlib.Path(arg)

    files = sorted(trajectory_dir.glob("BENCH_*.json"))
    if not files:
        print(f"check_trajectory: no BENCH_*.json under {trajectory_dir}; nothing to check")
        return 0

    loaded = []
    for path in files:
        try:
            meta, points = load_points(path)
        except (json.JSONDecodeError, ValueError) as err:
            print(f"check_trajectory: FAIL — {path.name} is unreadable: {err}")
            return 1
        loaded.append((path.name, meta, points))
    # Chronology comes from the recorded date, not the filename (commit
    # hashes don't sort by time).
    loaded.sort(key=lambda item: item[1].get("date", ""))

    print(f"check_trajectory: {len(loaded)} trajectory file(s), threshold {threshold:.0%}")
    for name, meta, points in loaded:
        line = ", ".join(
            f"{fmt_key(key)}: {p['tx']:.0f} tx/s" for key, p in sorted(points.items())
        )
        speed = machine_speed(meta)
        speed_txt = f", {speed:.0f} iters/µs" if speed else ""
        print(
            f"  {meta.get('date', '?')} {name} "
            f"(hw={meta.get('hardware_threads', '?')}{speed_txt}): {line}"
        )

    report_state_scale(loaded[-1][1], loaded[-1][0])
    report_read_storm(loaded[-1][1], loaded[-1][0])
    report_shard_scaling(loaded[-1][2], loaded[-1][0])

    if len(loaded) < 2:
        print("check_trajectory: single data point — no transition to gate")
        return 0

    (prev_name, prev_meta, prev_points) = loaded[-2]
    (cur_name, cur_meta, cur_points) = loaded[-1]

    if prev_meta.get("hardware_threads") != cur_meta.get("hardware_threads"):
        print(
            f"check_trajectory: SKIP — {prev_name} (hw={prev_meta.get('hardware_threads')}) and "
            f"{cur_name} (hw={cur_meta.get('hardware_threads')}) ran on different hardware; "
            "sustained throughput is not comparable across core counts"
        )
        return 0

    prev_speed, cur_speed = machine_speed(prev_meta), machine_speed(cur_meta)
    if (prev_speed is None) != (cur_speed is None):
        unfingerprinted = prev_name if prev_speed is None else cur_name
        print(
            f"check_trajectory: SKIP — {unfingerprinted} carries no machine-speed fingerprint; "
            "without machine_iters_per_us on both sides, absolute tx/s cannot be attributed to "
            "code vs. host state (shared-infra frequency/steal shifts)"
        )
        return 0
    if prev_speed is not None and cur_speed is not None and prev_speed > 0:
        drift = abs(cur_speed - prev_speed) / prev_speed
        if drift > 0.10:
            print(
                f"check_trajectory: SKIP — machine speed drifted {drift:.0%} between runs "
                f"({prev_speed:.0f} -> {cur_speed:.0f} burn-iters/µs); the host, not the code, "
                "changed — absolute tx/s is not comparable"
            )
            return 0

    # Gate only the 1-shard keys: shard-scaling points are informational
    # (cross-shard arbitration makes their throughput workload-shaped).
    shared = sorted(key for key in set(prev_points) & set(cur_points) if key[3] == 1)
    if not shared:
        print(f"check_trajectory: SKIP — {prev_name} and {cur_name} share no benchmark keys")
        return 0

    regressions = []
    for key in shared:
        prev_tx, cur_tx = prev_points[key]["tx"], cur_points[key]["tx"]
        if prev_tx <= 0:
            continue
        delta = (cur_tx - prev_tx) / prev_tx
        marker = ""
        if delta < -threshold:
            marker = "  << REGRESSION"
            regressions.append((key, prev_tx, cur_tx, delta))
        print(f"  {fmt_key(key)}: {prev_tx:.0f} -> {cur_tx:.0f} tx/s ({delta:+.1%}){marker}")

    # snapshot_ms deltas are informational only (never gate): the number
    # tracks the COW fork cost per boundary, and how much of it a PR moved
    # between snapshot_ms and mine_ms (detach-on-write) is a design choice,
    # not a regression.
    for key in shared:
        prev_ms, cur_ms = prev_points[key]["snapshot_ms"], cur_points[key]["snapshot_ms"]
        if prev_ms <= 0 and cur_ms <= 0:
            continue
        delta_txt = f"{(cur_ms - prev_ms) / prev_ms:+.1%}" if prev_ms > 0 else "n/a"
        print(
            f"  [info] {fmt_key(key)}: snapshot_ms {prev_ms:.3f} -> {cur_ms:.3f} "
            f"({delta_txt}; informational, non-gating)"
        )

    if regressions:
        print(
            f"check_trajectory: FAIL — {len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%} between {prev_name} and {cur_name}"
        )
        return 1
    print(f"check_trajectory: OK — no regression beyond {threshold:.0%} in {cur_name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
