// State-scale bench: sustained mining throughput and allocation traffic
// as a function of account count and Zipf skew, with the page arena on
// versus the plain-heap baseline (the ablation axis of the COW memory
// layer — see vm/arena.hpp and the README's "Memory layer" section).
//
// Each point builds one Zipf fixture (a world holding `accounts` genesis
// entries plus a deterministic transaction stream), then repeatedly
// materializes a fresh replica from the genesis snapshot and mines the
// stream block by block at the node's recovery cadence: a boundary
// snapshot is frozen after every block, and retiring the previous
// boundary is what returns the prior block's private pages to the arena
// for the next block's detaches to recycle.
//
// Metric definitions (all emitted per point):
//  - sustained_tx_per_sec: transactions over the mining loop's wall time
//    MINUS state-root publication time. The root is a full O(state)
//    sort-and-hash that is byte-for-byte identical work with the arena
//    on or off — including it would only compress the allocator
//    ablation into hash noise at million-account scale. This is the
//    state layer's honest sustained rate.
//  - end_to_end_tx_per_sec: the same loop with root publication
//    included (the number a full node would see; state_root_ms makes
//    the difference explicit).
//  - heap_allocs / heap_alloc_bytes: global operator new calls during
//    the measured loop, counted by this binary's allocator shims. The
//    arena turns per-page mallocs into pooled free-list hits, so
//    arena-on must come in well below the baseline here.
//  - genesis_build_ms / genesis_heap_allocs: cost of seeding the
//    `accounts`-entry world — the bulk-ingest side of the same story.
//
// Synthetic gas burn defaults to OFF (--nanos-per-gas=0): this bench
// measures the state layer, not simulated contract compute.
//
// Usage: bench_state_scale [--quick] [--accounts=100000,1000000]
//                          [--skews=0.9] [--blocks=N] [--block-txs=N]
//                          [--conflict=N] [--samples=N] [--threads=N]
//                          [--json=FILE] ...

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "chain/block.hpp"
#include "core/miner.hpp"
#include "harness.hpp"
#include "util/cycle_burner.hpp"
#include "util/stats.hpp"
#include "vm/world.hpp"
#include "workload/workload.hpp"

// ---------------------------------------------------------------------
// Global allocation counters. Replacing operator new/delete is the one
// portable way to count every heap allocation the process makes —
// including those inside std:: containers — without an interposing
// malloc library. The replacements must have external linkage, so they
// live outside the anonymous namespace.
// ---------------------------------------------------------------------

namespace bench_alloc {
std::atomic<std::uint64_t> count{0};
std::atomic<std::uint64_t> bytes{0};

inline void* checked(void* p) {
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* alloc(std::size_t size) {
  count.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

inline void* alloc_aligned(std::size_t size, std::size_t align) {
  count.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}
}  // namespace bench_alloc

void* operator new(std::size_t size) { return bench_alloc::checked(bench_alloc::alloc(size)); }
void* operator new[](std::size_t size) { return bench_alloc::checked(bench_alloc::alloc(size)); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return bench_alloc::alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return bench_alloc::alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return bench_alloc::checked(
      bench_alloc::alloc_aligned(size, static_cast<std::size_t>(align)));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return bench_alloc::checked(
      bench_alloc::alloc_aligned(size, static_cast<std::size_t>(align)));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace concord;

/// One mining pass over the whole stream against a fresh replica.
struct RunResult {
  double wall_ms = 0.0;       ///< Full loop, root publication included.
  double root_ms = 0.0;       ///< Sum of per-block state-root time.
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_bytes = 0;
  core::MinerStats last;      ///< Stats after the final block.
  util::Hash256 final_root;
};

/// Aggregated point result across samples.
struct PointResult {
  util::TimingSummary state_wall;  ///< wall - root per run.
  util::TimingSummary full_wall;   ///< wall per run.
  double root_ms = 0.0;            ///< Mean per-run root total.
  double genesis_build_ms = 0.0;
  std::uint64_t genesis_heap_allocs = 0;
  RunResult last;
  util::Hash256 genesis_root;
  std::size_t transactions = 0;

  [[nodiscard]] double state_tx_per_sec() const {
    return state_wall.mean_ms > 0
               ? static_cast<double>(transactions) * 1e3 / state_wall.mean_ms
               : 0.0;
  }
  [[nodiscard]] double end_to_end_tx_per_sec() const {
    return full_wall.mean_ms > 0
               ? static_cast<double>(transactions) * 1e3 / full_wall.mean_ms
               : 0.0;
  }
};

RunResult run_block_loop(const vm::WorldSnapshot& genesis_snap, const chain::Block& genesis,
                         const std::vector<chain::Transaction>& stream, std::size_t blocks,
                         std::size_t block_txs, const bench::RunConfig& config,
                         std::size_t accounts) {
  std::unique_ptr<vm::World> world = genesis_snap.materialize();
  core::MinerConfig miner_config;
  miner_config.threads = config.threads;
  miner_config.nanos_per_gas = config.nanos_per_gas;
  miner_config.exclusive_locks_only = config.exclusive_locks_only;
  miner_config.lock_table_reserve = accounts;  // The workload hint the knob exists for.
  core::Miner miner(*world, miner_config);

  RunResult result;
  chain::Block parent = genesis;
  // Rolling boundary snapshot, the node's recovery cadence: freezing
  // post-block state re-shares every page, so the next block's writes
  // detach again, and retiring the previous boundary frees the pages
  // those detaches recycle.
  vm::WorldSnapshot boundary = genesis_snap;
  std::vector<chain::Transaction> batch;

  const bool phase_debug = std::getenv("SS_PHASES") != nullptr;
  double mine_ms = 0.0, boundary_ms = 0.0;
  const std::uint64_t allocs0 = bench_alloc::count.load(std::memory_order_relaxed);
  const std::uint64_t bytes0 = bench_alloc::bytes.load(std::memory_order_relaxed);
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < blocks; ++b) {
    batch.assign(stream.begin() + static_cast<std::ptrdiff_t>(b * block_txs),
                 stream.begin() + static_cast<std::ptrdiff_t>((b + 1) * block_txs));
    const auto t0 = std::chrono::steady_clock::now();
    chain::Block block = miner.mine(batch, parent);
    const auto t1 = std::chrono::steady_clock::now();
    result.root_ms += miner.last_stats().state_root_ms;
    boundary = vm::WorldSnapshot(*world, block.header.state_root);
    const auto t2 = std::chrono::steady_clock::now();
    mine_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    boundary_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    parent = std::move(block);
  }
  if (phase_debug) {
    const vm::ArenaStats a = world->arena_stats();
    std::fprintf(stderr,
                 "SS_PHASES mine=%.2fms (root=%.2fms, exec=%.2fms) boundary=%.2fms "
                 "arena_total=%llu\n",
                 mine_ms, result.root_ms, mine_ms - result.root_ms, boundary_ms,
                 static_cast<unsigned long long>(a.fresh_allocs + a.recycle_hits));
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin)
          .count();
  result.heap_allocs = bench_alloc::count.load(std::memory_order_relaxed) - allocs0;
  result.heap_bytes = bench_alloc::bytes.load(std::memory_order_relaxed) - bytes0;
  result.last = miner.last_stats();
  result.final_root = parent.header.state_root;
  return result;
}

PointResult measure_point(const workload::ZipfSpec& spec, std::size_t blocks,
                          std::size_t block_txs, const bench::RunConfig& config) {
  PointResult point;
  point.transactions = blocks * block_txs;

  const std::uint64_t allocs0 = bench_alloc::count.load(std::memory_order_relaxed);
  const auto build_begin = std::chrono::steady_clock::now();
  workload::Fixture fixture = workload::make_zipf_fixture(spec);
  point.genesis_build_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - build_begin)
                               .count();
  point.genesis_heap_allocs =
      bench_alloc::count.load(std::memory_order_relaxed) - allocs0;

  const chain::Block genesis = fixture.genesis();  // One O(state) root per point.
  point.genesis_root = genesis.header.state_root;
  const vm::WorldSnapshot genesis_snap(*fixture.world, genesis.header.state_root);

  std::vector<double> state_runs;
  std::vector<double> full_runs;
  double root_total = 0.0;
  int measured = 0;
  for (int r = 0; r < config.warmups + config.samples; ++r) {
    const RunResult run = run_block_loop(genesis_snap, genesis, fixture.transactions, blocks,
                                         block_txs, config, spec.accounts);
    if (r >= config.warmups) {
      state_runs.push_back(run.wall_ms - run.root_ms);
      full_runs.push_back(run.wall_ms);
      root_total += run.root_ms;
      ++measured;
    }
    point.last = run;
  }
  point.state_wall = util::summarize_ms(state_runs);
  point.full_wall = util::summarize_ms(full_runs);
  point.root_ms = measured > 0 ? root_total / measured : 0.0;
  return point;
}

void emit_json(const workload::ZipfSpec& spec, std::size_t blocks, std::size_t block_txs,
               const PointResult& point) {
  const vm::ArenaStats& arena = point.last.last.arena;
  std::ostringstream object;
  object << "{\"benchmark\": \"StateScale/"
         << bench::json_escape(workload::to_string(spec.scenario)) << "\""
         << ", \"accounts\": " << spec.accounts
         << ", \"skew\": " << spec.skew
         << ", \"conflict_percent\": " << spec.conflict_percent
         << ", \"arena\": " << (spec.use_arena ? "true" : "false")
         << ", \"blocks\": " << blocks
         << ", \"txs_per_block\": " << block_txs
         << ", \"transactions\": " << point.transactions
         << ", \"sustained_tx_per_sec\": " << point.state_tx_per_sec()
         << ", \"end_to_end_tx_per_sec\": " << point.end_to_end_tx_per_sec()
         << ", \"wall_ms\": " << point.state_wall.mean_ms
         << ", \"wall_stddev_ms\": " << point.state_wall.stddev_ms
         << ", \"state_root_ms\": " << point.root_ms
         << ", \"genesis_build_ms\": " << point.genesis_build_ms
         << ", \"genesis_heap_allocs\": " << point.genesis_heap_allocs
         << ", \"heap_allocs\": " << point.last.heap_allocs
         << ", \"heap_alloc_bytes\": " << point.last.heap_bytes
         << ", \"conflict_aborts\": " << point.last.last.conflict_aborts
         << ", \"lock_table_memory_high_water\": "
         << point.last.last.lock_table_memory_high_water
         << ", \"arena_chunks\": " << arena.chunks
         << ", \"arena_chunk_bytes\": " << arena.chunk_bytes
         << ", \"arena_live_blocks\": " << arena.live_blocks
         << ", \"arena_live_bytes\": " << arena.live_bytes
         << ", \"arena_live_high_water\": " << arena.live_high_water
         << ", \"arena_fresh_allocs\": " << arena.fresh_allocs
         << ", \"arena_recycle_hits\": " << arena.recycle_hits
         << ", \"arena_oversize_allocs\": " << arena.oversize_allocs
         << ", \"state_root\": \"" << point.last.final_root.to_hex() << "\""
         << ", \"machine_iters_per_us\": " << util::iterations_per_microsecond() << "}";
  bench::write_json_object(object.str());
}

std::vector<std::size_t> parse_size_csv(std::string_view csv) {
  std::vector<std::size_t> out;
  while (!csv.empty()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(csv.data(), &end, 10);
    if (end == csv.data() || v == 0) return {};
    out.push_back(static_cast<std::size_t>(v));
    csv.remove_prefix(static_cast<std::size_t>(end - csv.data()));
    if (!csv.empty() && csv.front() == ',') csv.remove_prefix(1);
  }
  return out;
}

std::vector<double> parse_double_csv(std::string_view csv) {
  std::vector<double> out;
  while (!csv.empty()) {
    char* end = nullptr;
    const double v = std::strtod(csv.data(), &end);
    if (end == csv.data() || v < 0.0) return {};
    out.push_back(v);
    csv.remove_prefix(static_cast<std::size_t>(end - csv.data()));
    if (!csv.empty() && csv.front() == ',') csv.remove_prefix(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  std::vector<std::size_t> account_axis =
      config.quick ? std::vector<std::size_t>{20'000}
                   : std::vector<std::size_t>{100'000, 1'000'000};
  std::vector<double> skew_axis{0.9};
  std::size_t blocks = config.quick ? 4 : 8;
  std::size_t block_txs = config.quick ? 100 : 250;
  unsigned conflict = 15;
  bool gas_flag_given = false;
  std::string_view scenario_filter;  // Substring match; empty = all.
  std::string_view arena_filter;     // "on", "off" or empty = both.
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--accounts=")) account_axis = parse_size_csv(arg.substr(11));
    if (arg.starts_with("--scenarios=")) scenario_filter = arg.substr(12);
    if (arg.starts_with("--arena=")) arena_filter = arg.substr(8);
    if (arg.starts_with("--skews=")) skew_axis = parse_double_csv(arg.substr(8));
    if (arg.starts_with("--blocks=")) blocks = std::strtoul(arg.data() + 9, nullptr, 10);
    if (arg.starts_with("--block-txs=")) {
      block_txs = std::strtoul(arg.data() + 12, nullptr, 10);
    }
    if (arg.starts_with("--conflict=")) {
      conflict = static_cast<unsigned>(std::strtoul(arg.data() + 11, nullptr, 10));
    }
    if (arg.starts_with("--nanos-per-gas=")) gas_flag_given = true;
  }
  if (account_axis.empty() || skew_axis.empty() || blocks == 0 || block_txs == 0) {
    std::fprintf(stderr,
                 "bench_state_scale: --accounts/--skews need positive comma lists, "
                 "--blocks/--block-txs positive integers\n");
    return 2;
  }
  // This bench measures the state layer; simulated contract compute
  // would only dilute every point identically. Opt back in explicitly.
  if (!gas_flag_given) config.nanos_per_gas = 0.0;

  std::printf("State scale: %zu blocks x %zu txs per point, %u miner threads, gas %s\n",
              blocks, block_txs, config.threads,
              config.nanos_per_gas > 0 ? "on" : "off");
  std::printf("# %-16s %9s %5s %6s %10s %12s %12s %12s %12s\n", "scenario", "accounts",
              "skew", "arena", "build_ms", "state_tx/s", "e2e_tx/s", "heap_allocs",
              "recycles");

  // Final roots keyed by (scenario, accounts, skew): the arena must be
  // invisible to state — byte-identical roots on and off.
  std::map<std::string, std::string> roots;
  bool roots_match = true;

  for (const workload::ZipfScenario scenario : workload::kAllZipfScenarios) {
    if (!scenario_filter.empty() &&
        std::string_view(workload::to_string(scenario)).find(scenario_filter) ==
            std::string_view::npos) {
      continue;
    }
    for (const std::size_t accounts : account_axis) {
      for (const double skew : skew_axis) {
        for (const bool use_arena : {true, false}) {
          if (arena_filter == "on" && !use_arena) continue;
          if (arena_filter == "off" && use_arena) continue;
          workload::ZipfSpec spec;
          spec.scenario = scenario;
          spec.accounts = accounts;
          spec.skew = skew;
          spec.transactions = blocks * block_txs;
          spec.conflict_percent = conflict;
          spec.use_arena = use_arena;

          const PointResult point = measure_point(spec, blocks, block_txs, config);

          std::printf("%-18s %9zu %5.2f %6s %10.0f %12.0f %12.0f %12llu %12llu\n",
                      std::string(workload::to_string(scenario)).c_str(), accounts, skew,
                      use_arena ? "on" : "off", point.genesis_build_ms,
                      point.state_tx_per_sec(), point.end_to_end_tx_per_sec(),
                      static_cast<unsigned long long>(point.last.heap_allocs),
                      static_cast<unsigned long long>(point.last.last.arena.recycle_hits));
          std::fflush(stdout);

          emit_json(spec, blocks, block_txs, point);

          std::ostringstream key;
          key << static_cast<int>(scenario) << "/" << accounts << "/" << skew;
          const std::string root_hex =
              point.genesis_root.to_hex() + ":" + point.last.final_root.to_hex();
          auto [it, inserted] = roots.emplace(key.str(), root_hex);
          if (!inserted && it->second != root_hex) {
            roots_match = false;
            std::fprintf(stderr,
                         "state-root mismatch at %s: arena on/off disagree (%s vs %s)\n",
                         key.str().c_str(), it->second.c_str(), root_hex.c_str());
          }
        }
      }
    }
  }

  if (!roots_match) {
    std::fprintf(stderr, "bench_state_scale: arena changed observable state — FAIL\n");
    return 1;
  }
  std::printf("state roots: arena on/off byte-identical across all points\n");
  return 0;
}
