// Replication throughput over the network layer: a leader node mines a
// stream and fans every accepted block out to one follower over an
// in-process pipe transport; the follower validates each block against
// its published schedule and appends. Reports replicated blocks/s at
// the follower, announce→accept propagation latency (p50/p99, same
// process clock on both ends), wire volume, and the leader's tx/s delta
// versus an identical run with no follower attached — the cost of
// replication backpressure on the write path. The correctness gate:
// the follower's chain must match the leader's at every height, or the
// bench exits 1 (a throughput number for a diverging replica would be
// meaningless).
//
// Usage: bench_net_throughput [--quick] [--threads=N] [--json=FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "net/peer.hpp"
#include "net/replication.hpp"
#include "net/transport.hpp"
#include "node/node.hpp"
#include "util/cycle_burner.hpp"

namespace {

using namespace concord;
using Clock = std::chrono::steady_clock;

struct ReplicationResult {
  node::NodeStats leader;
  node::NodeStats follower;
  net::PeerStats wire;                 ///< Follower-side session counters.
  std::vector<double> propagation_us;  ///< Announce→accept, per block.
  std::uint64_t height = 0;
  bool chains_match = false;

  [[nodiscard]] double replicated_blocks_per_sec() const {
    return follower.wall_ms > 0
               ? static_cast<double>(follower.blocks) * 1e3 / follower.wall_ms
               : 0.0;
  }
};

double percentile_us(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

node::NodeConfig leader_config(const workload::StreamSpec& spec,
                               const bench::RunConfig& config) {
  node::NodeConfig node_config;
  node_config.miner.threads = config.threads;
  node_config.miner.nanos_per_gas = config.nanos_per_gas;
  node_config.miner.exclusive_locks_only = config.exclusive_locks_only;
  node_config.validator.threads = config.threads;
  node_config.validator.nanos_per_gas = config.nanos_per_gas;
  node_config.validator.exclusive_locks_only = config.exclusive_locks_only;
  node_config.batch.target_txs = spec.txs_per_block;
  node_config.mempool_capacity = 4 * spec.txs_per_block;
  node_config.pipelined = true;
  node_config.pipeline_depth = 2;
  return node_config;
}

/// The no-follower reference: same stream, same pipeline, no hook.
node::NodeStats run_baseline(const workload::StreamSpec& spec, const bench::RunConfig& config) {
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);
  node::Node node(std::move(fixture.world), leader_config(spec, config));
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
  return node.stats();
}

ReplicationResult run_replicated(const workload::StreamSpec& spec,
                                 const bench::RunConfig& config) {
  workload::Fixture leader_fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(leader_fixture.transactions);
  workload::Fixture follower_fixture = workload::make_stream_fixture(spec);

  auto [follower_end, leader_end] = net::PipeTransport::make_pair();
  net::Peer follower_peer(std::move(follower_end), net::PeerConfig{.name = "follower"});
  auto peers = std::make_shared<net::PeerSet>();
  peers->add(std::make_shared<net::Peer>(std::move(leader_end),
                                         net::PeerConfig{.name = "leader"}));
  net::Leader leader(peers, leader_fixture.world->state_root());

  // Propagation instrumentation: both hooks run in this process, so one
  // steady clock covers announce (leader validator thread) and accept
  // (follower session thread).
  std::mutex times_mu;
  std::map<std::uint64_t, Clock::time_point> announced_at;
  std::map<std::uint64_t, Clock::time_point> accepted_at;

  node::NodeConfig leader_cfg = leader_config(spec, config);
  leader_cfg.on_block_accepted = [&leader, &times_mu, &announced_at](const chain::Block& block) {
    {
      std::scoped_lock lk(times_mu);
      announced_at[block.header.number] = Clock::now();
    }
    leader.announce(block);
  };
  node::Node leader_node(std::move(leader_fixture.world), leader_cfg);

  node::NodeConfig follower_cfg;
  follower_cfg.miner.nanos_per_gas = config.nanos_per_gas;
  follower_cfg.miner.exclusive_locks_only = config.exclusive_locks_only;
  follower_cfg.validator.threads = config.threads;
  follower_cfg.validator.nanos_per_gas = config.nanos_per_gas;
  follower_cfg.validator.exclusive_locks_only = config.exclusive_locks_only;
  follower_cfg.on_block_accepted = [&times_mu, &accepted_at](const chain::Block& block) {
    std::scoped_lock lk(times_mu);
    accepted_at[block.header.number] = Clock::now();
  };
  node::Node follower_node(std::move(follower_fixture.world), follower_cfg);

  leader.start();
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node.run_follower(follower_peer); });
  std::jthread producer([&leader_node, &stream] {
    (void)leader_node.mempool().submit_many(std::move(stream));
    leader_node.mempool().close();
  });
  leader_node.run();

  const std::uint64_t height = leader_node.chain().height();
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  while (Clock::now() < deadline) {
    const auto progress = leader.progress();
    if (!progress.empty() && progress[0].acked >= height) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  leader.stop();
  follower_thread.join();

  ReplicationResult result;
  result.leader = leader_node.stats();
  result.follower = follower_node.stats();
  result.wire = follower_peer.stats();
  result.height = height;
  result.chains_match = follower_node.chain().height() == height;
  for (std::uint64_t n = 1; result.chains_match && n <= height; ++n) {
    result.chains_match = follower_node.chain().at(n).hash() == leader_node.chain().at(n).hash();
  }
  {
    std::scoped_lock lk(times_mu);
    for (const auto& [number, t_accept] : accepted_at) {
      const auto it = announced_at.find(number);
      if (it == announced_at.end()) continue;
      result.propagation_us.push_back(
          std::chrono::duration<double, std::micro>(t_accept - it->second).count());
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  workload::StreamSpec spec;
  spec.kind = workload::BenchmarkKind::kMixed;
  spec.blocks = config.quick ? 8 : 16;
  spec.txs_per_block = config.quick ? 50 : 120;
  spec.conflict_percent = 15;

  std::printf("net replication: %zu blocks x %zu txs (Mixed), 1 follower over pipe, "
              "%u threads/stage\n",
              spec.blocks, spec.txs_per_block, config.threads);
  std::printf("# %-18s %8s %10s %10s %10s %12s %12s %8s\n", "benchmark", "blocks", "repl_bps",
              "p50_us", "p99_us", "base_tx/s", "leader_tx/s", "delta%");

  // One warmup settles allocator and page cache; then one measured pass
  // per mode (each pass already spans the whole stream).
  (void)run_baseline(spec, config);
  const node::NodeStats baseline = run_baseline(spec, config);
  ReplicationResult replicated = run_replicated(spec, config);

  std::sort(replicated.propagation_us.begin(), replicated.propagation_us.end());
  const double p50 = percentile_us(replicated.propagation_us, 0.50);
  const double p99 = percentile_us(replicated.propagation_us, 0.99);
  const double base_tps = baseline.tx_per_sec();
  const double leader_tps = replicated.leader.tx_per_sec();
  const double delta_pct = base_tps > 0 ? (base_tps - leader_tps) / base_tps * 100.0 : 0.0;

  std::printf("%-20s %8llu %10.1f %10.1f %10.1f %12.0f %12.0f %7.1f%%\n", "NetThroughput/mixed",
              static_cast<unsigned long long>(replicated.height),
              replicated.replicated_blocks_per_sec(), p50, p99, base_tps, leader_tps, delta_pct);
  std::printf("wire: %llu frames / %llu bytes received at the follower; %llu acks sent\n",
              static_cast<unsigned long long>(replicated.wire.frames_received),
              static_cast<unsigned long long>(replicated.wire.bytes_received),
              static_cast<unsigned long long>(replicated.follower.net_acks_sent));

  std::ostringstream object;
  object << "{\"benchmark\": \"NetThroughput/"
         << bench::json_escape(workload::to_string(spec.kind)) << "\""
         << ", \"blocks\": " << replicated.height
         << ", \"txs_per_block\": " << spec.txs_per_block
         << ", \"replicated_blocks_per_sec\": " << replicated.replicated_blocks_per_sec()
         << ", \"propagation_p50_us\": " << p50
         << ", \"propagation_p99_us\": " << p99
         << ", \"baseline_tx_per_sec\": " << base_tps
         << ", \"leader_tx_per_sec\": " << leader_tps
         << ", \"leader_delta_pct\": " << delta_pct
         << ", \"wire_frames\": " << replicated.wire.frames_received
         << ", \"wire_bytes\": " << replicated.wire.bytes_received
         << ", \"follower_acks\": " << replicated.follower.net_acks_sent
         << ", \"follower_wire_errors\": " << replicated.follower.net_wire_errors
         << ", \"chains_match\": " << (replicated.chains_match ? "true" : "false")
         << ", \"machine_iters_per_us\": " << util::iterations_per_microsecond() << "}";
  bench::write_json_object(object.str());

  if (!replicated.chains_match) {
    std::fprintf(stderr, "FAIL: follower chain diverged from the leader (height %llu vs %llu)\n",
                 static_cast<unsigned long long>(replicated.follower.blocks),
                 static_cast<unsigned long long>(replicated.height));
    return 1;
  }
  return 0;
}
