#!/usr/bin/env bash
# Folds one bench_node_throughput JSON array into the cross-PR throughput
# record: bench/trajectory/BENCH_<commit>.json, one file per measured
# commit, committed to the repo so `sustained_tx_per_sec` can be compared
# across PRs (the ROADMAP's trajectory item). The file is also copied
# into the bench output dir so CI artifacts carry it.
#
# usage: bench/record_trajectory.sh <bench_node_throughput.json> [out-dir]
set -euo pipefail
SRC="${1:?usage: record_trajectory.sh <bench_node_throughput.json> [out-dir]}"
OUT_DIR="${2:-bench_results}"
# Resolve caller-relative paths before moving to the repo root.
SRC="$(readlink -f "$SRC")"
mkdir -p "$OUT_DIR"
OUT_DIR="$(readlink -f "$OUT_DIR")"
cd "$(dirname "$0")/.."

COMMIT="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
DIRTY=""
git diff --quiet HEAD 2>/dev/null || DIRTY="-dirty"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
HW_THREADS="$(nproc 2>/dev/null || echo 0)"
# Lift the bench's machine-speed fingerprint (CycleBurner calibration,
# burn-iterations/µs) into the file header so check_trajectory.py can
# refuse to compare runs from differently-fast machine states — a
# same-box frequency or steal-time shift is invisible to hardware_threads.
MACHINE_SPEED="$(python3 -c "
import json
points = json.load(open('$SRC'))
print(next((p['machine_iters_per_us'] for p in points
            if p.get('machine_iters_per_us')), 0))" 2>/dev/null || echo 0)"

# The state-scale ablation rides along when its JSON sits next to the
# node-throughput file (run_all.sh writes both into one dir). Recorded
# informationally — check_trajectory.py gates only node_throughput.
STATE_SRC="$(dirname "$SRC")/bench_state_scale.json"

# Same deal for the MVCC read storm: read QPS / latency / write-path
# delta recorded informationally next to the gated throughput points.
READ_SRC="$(dirname "$SRC")/bench_read_storm.json"

# And the network layer: replicated blocks/s, propagation p50/p99 and
# the leader's tx/s delta with a follower attached. Non-gating.
NET_SRC="$(dirname "$SRC")/bench_net_throughput.json"

mkdir -p bench/trajectory
DEST="bench/trajectory/BENCH_${COMMIT}${DIRTY}.json"
{
  printf '{\n'
  printf '  "commit": "%s%s",\n' "$COMMIT" "$DIRTY"
  printf '  "date": "%s",\n' "$DATE"
  printf '  "hardware_threads": %s,\n' "$HW_THREADS"
  printf '  "machine_iters_per_us": %s,\n' "$MACHINE_SPEED"
  if [[ -s "$STATE_SRC" ]] && grep -q '{' "$STATE_SRC"; then
    printf '  "state_scale": '
    cat "$STATE_SRC"
    printf ',\n'
  fi
  if [[ -s "$READ_SRC" ]] && grep -q '{' "$READ_SRC"; then
    printf '  "read_storm": '
    cat "$READ_SRC"
    printf ',\n'
  fi
  if [[ -s "$NET_SRC" ]] && grep -q '{' "$NET_SRC"; then
    printf '  "net": '
    cat "$NET_SRC"
    printf ',\n'
  fi
  printf '  "node_throughput": '
  cat "$SRC"
  printf '}\n'
} > "$DEST"
cp -f "$DEST" "$OUT_DIR/"
echo "trajectory: $DEST"
