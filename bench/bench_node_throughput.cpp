// Sustained node throughput: a stream of blocks through the full
// mempool → miner → validator pipeline, pipelined (validation of block N
// overlapped with mining of block N+1) versus the unpipelined
// mine-then-validate baseline on the identical transaction stream. This
// is the regime the one-shot figure benches can't see — and the regime
// follow-on frameworks (OptSmart et al.) evaluate.
//
// Usage: bench_node_throughput [--quick] [--samples=N] [--threads=N]
//                              [--blocks=N] [--block-txs=N] [--json=FILE] ...

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "node/node.hpp"
#include "util/stats.hpp"

namespace {

using namespace concord;

struct ModeResult {
  util::TimingSummary wall;
  node::NodeStats last;  ///< Stats of the last sample run.

  [[nodiscard]] double tx_per_sec() const {
    return wall.mean_ms > 0 ? static_cast<double>(last.transactions) * 1e3 / wall.mean_ms : 0.0;
  }
};

/// One full stream run: one genesis world (the node clones the
/// validator's replica itself), a producer thread feeding the mempool,
/// the node driving both stages to drain.
node::NodeStats run_stream(const workload::StreamSpec& spec, const bench::RunConfig& config,
                           bool pipelined) {
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);

  node::NodeConfig node_config;
  node_config.miner.threads = config.threads;
  node_config.miner.nanos_per_gas = config.nanos_per_gas;
  node_config.miner.exclusive_locks_only = config.exclusive_locks_only;
  node_config.validator.threads = config.threads;
  node_config.validator.nanos_per_gas = config.nanos_per_gas;
  node_config.validator.exclusive_locks_only = config.exclusive_locks_only;
  node_config.batch.target_txs = spec.txs_per_block;
  node_config.mempool_capacity = 4 * spec.txs_per_block;  // Realistic backpressure.
  node_config.pipelined = pipelined;
  node_config.mining = node::MiningMode::kSpeculative;

  node::Node node(std::move(fixture.world), node_config);
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
  if (!node.ok()) {
    throw std::runtime_error(std::string("node rejected a block: ") +
                             std::string(core::to_string(node.failure().reason)) + " — " +
                             node.failure().detail);
  }
  return node.stats();
}

ModeResult measure_mode(const workload::StreamSpec& spec, const bench::RunConfig& config,
                        bool pipelined) {
  ModeResult result;
  std::vector<double> runs;
  for (int r = 0; r < config.warmups + config.samples; ++r) {
    const node::NodeStats stats = run_stream(spec, config, pipelined);
    if (r >= config.warmups) runs.push_back(stats.wall_ms);
    result.last = stats;
  }
  result.wall = util::summarize_ms(runs);
  return result;
}

void emit_json(const workload::StreamSpec& spec, const ModeResult& mode, bool pipelined,
               double overlap_speedup) {
  std::ostringstream object;
  object << "{\"benchmark\": \"NodeStream/" << bench::json_escape(workload::to_string(spec.kind))
         << "\""
         << ", \"blocks\": " << mode.last.blocks
         << ", \"txs_per_block\": " << spec.txs_per_block
         << ", \"transactions\": " << mode.last.transactions
         << ", \"conflict_percent\": " << spec.conflict_percent
         << ", \"pipelined\": " << (pipelined ? "true" : "false")
         << ", \"wall_ms\": " << mode.wall.mean_ms
         << ", \"wall_stddev_ms\": " << mode.wall.stddev_ms
         << ", \"sustained_tx_per_sec\": " << mode.tx_per_sec()
         << ", \"blocks_per_sec\": " << mode.last.blocks_per_sec()
         << ", \"mine_ms\": " << mode.last.mine_ms
         << ", \"validate_ms\": " << mode.last.validate_ms
         << ", \"mempool_wait_ms\": " << mode.last.mempool_wait_ms
         << ", \"handoff_wait_ms\": " << mode.last.handoff_wait_ms
         << ", \"validator_stall_ms\": " << mode.last.validator_stall_ms
         << ", \"conflict_aborts\": " << mode.last.conflict_aborts
         << ", \"lock_table_high_water\": " << mode.last.lock_table_high_water
         << ", \"overlap_speedup\": " << overlap_speedup << "}";
  bench::write_json_object(object.str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  workload::StreamSpec base;
  base.blocks = config.quick ? 8 : 20;
  base.txs_per_block = config.quick ? 50 : 150;
  base.conflict_percent = 15;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--blocks=")) base.blocks = std::strtoul(arg.data() + 9, nullptr, 10);
    if (arg.starts_with("--block-txs=")) {
      base.txs_per_block = std::strtoul(arg.data() + 12, nullptr, 10);
    }
  }
  if (base.blocks == 0 || base.txs_per_block == 0) {
    // A typo'd flag must not record a degenerate zero-throughput point
    // into the committed trajectory files.
    std::fprintf(stderr, "bench_node_throughput: --blocks/--block-txs must be positive integers\n");
    return 2;
  }

  std::printf(
      "Node pipeline throughput: %zu blocks x %zu txs, 15%% conflict, %u threads/stage\n",
      base.blocks, base.txs_per_block, config.threads);
  if (const unsigned hw = std::thread::hardware_concurrency(); hw < 2 * config.threads) {
    std::printf(
        "note: %u hardware thread(s) for two %u-thread stages — both stages are CPU-bound,\n"
        "      so pipeline overlap can only beat the sequential baseline on parallel hardware\n",
        hw, config.threads);
  }
  std::printf("# %-14s %10s %14s %14s %9s %12s %12s %12s\n", "benchmark", "blocks",
              "seq_tx/s", "pipe_tx/s", "overlap", "mine_ms", "validate_ms", "stall_ms");

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    workload::StreamSpec spec = base;
    spec.kind = kind;

    const ModeResult sequential = measure_mode(spec, config, /*pipelined=*/false);
    const ModeResult pipelined = measure_mode(spec, config, /*pipelined=*/true);
    const double overlap =
        pipelined.wall.mean_ms > 0 ? sequential.wall.mean_ms / pipelined.wall.mean_ms : 0.0;

    std::printf("%-16s %10llu %14.0f %14.0f %8.2fx %12.1f %12.1f %12.1f\n",
                std::string(workload::to_string(kind)).c_str(),
                static_cast<unsigned long long>(pipelined.last.blocks), sequential.tx_per_sec(),
                pipelined.tx_per_sec(), overlap, pipelined.last.mine_ms,
                pipelined.last.validate_ms,
                pipelined.last.handoff_wait_ms + pipelined.last.validator_stall_ms);
    std::fflush(stdout);

    emit_json(spec, sequential, /*pipelined=*/false, 1.0);
    emit_json(spec, pipelined, /*pipelined=*/true, overlap);
  }
  return 0;
}
