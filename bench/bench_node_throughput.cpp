// Sustained node throughput: a stream of blocks through the full
// mempool → miner → validator pipeline, pipelined (validation of block N
// overlapped with mining of N+1..N+k through the depth-k handoff ring)
// versus the unpipelined mine-then-validate baseline on the identical
// transaction stream. This is the regime the one-shot figure benches
// can't see — and the regime follow-on frameworks (OptSmart et al.)
// evaluate. The --pipeline-depth sweep puts ring depth into the
// committed throughput trajectory.
//
// Usage: bench_node_throughput [--quick] [--samples=N] [--threads=N]
//                              [--blocks=N] [--block-txs=N]
//                              [--pipeline-depth=1,2,4]
//                              [--mine-shards=1,2,4] [--json=FILE] ...

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "node/node.hpp"
#include "util/cycle_burner.hpp"
#include "util/stats.hpp"

namespace {

using namespace concord;

struct ModeResult {
  util::TimingSummary wall;
  node::NodeStats last;  ///< Stats of the last sample run.

  [[nodiscard]] double tx_per_sec() const {
    return wall.mean_ms > 0 ? static_cast<double>(last.transactions) * 1e3 / wall.mean_ms : 0.0;
  }
};

/// One full stream run: one genesis world (the node forks the
/// validator's replica itself), a producer thread feeding the mempool,
/// the node driving both stages to drain. `pipeline_depth` is the
/// handoff ring's capacity; ignored by the sequential baseline.
node::NodeStats run_stream(const workload::StreamSpec& spec, const bench::RunConfig& config,
                           bool pipelined, std::size_t pipeline_depth,
                           std::uint32_t mine_shards = 1) {
  workload::Fixture fixture = workload::make_stream_fixture(spec);
  std::vector<chain::Transaction> stream = std::move(fixture.transactions);

  node::NodeConfig node_config;
  node_config.miner.threads = config.threads;
  node_config.miner.nanos_per_gas = config.nanos_per_gas;
  node_config.miner.exclusive_locks_only = config.exclusive_locks_only;
  node_config.validator.threads = config.threads;
  node_config.validator.nanos_per_gas = config.nanos_per_gas;
  node_config.validator.exclusive_locks_only = config.exclusive_locks_only;
  node_config.batch.target_txs = spec.txs_per_block;
  node_config.mempool_capacity = 4 * spec.txs_per_block;  // Realistic backpressure.
  node_config.pipelined = pipelined;
  node_config.pipeline_depth = pipeline_depth;
  node_config.mine_shards = mine_shards;
  node_config.mining = node::MiningMode::kSpeculative;

  node::Node node(std::move(fixture.world), node_config);
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
  if (!node.ok()) {
    throw std::runtime_error(std::string("node rejected a block: ") +
                             std::string(core::to_string(node.failure().reason)) + " — " +
                             node.failure().detail);
  }
  return node.stats();
}

ModeResult measure_mode(const workload::StreamSpec& spec, const bench::RunConfig& config,
                        bool pipelined, std::size_t pipeline_depth,
                        std::uint32_t mine_shards = 1) {
  ModeResult result;
  std::vector<double> runs;
  for (int r = 0; r < config.warmups + config.samples; ++r) {
    const node::NodeStats stats = run_stream(spec, config, pipelined, pipeline_depth, mine_shards);
    if (r >= config.warmups) runs.push_back(stats.wall_ms);
    result.last = stats;
  }
  result.wall = util::summarize_ms(runs);
  return result;
}

/// `pipeline_depth` is recorded for every point (1 for the unpipelined
/// baseline, which has no ring) so the trajectory consumer can key
/// points by (benchmark, pipelined, depth) across commits — older files
/// without the field read as depth 1. `mine_shards` follows the same
/// pattern: recorded on every point, read as 1 when absent, and points
/// with shards > 1 are informational in the trajectory (never gated).
void emit_json(const workload::StreamSpec& spec, const ModeResult& mode, bool pipelined,
               std::size_t pipeline_depth, double overlap_speedup,
               std::uint32_t mine_shards = 1) {
  std::ostringstream object;
  object << "{\"benchmark\": \"NodeStream/" << bench::json_escape(workload::to_string(spec.kind))
         << "\""
         << ", \"blocks\": " << mode.last.blocks
         << ", \"txs_per_block\": " << spec.txs_per_block
         << ", \"transactions\": " << mode.last.transactions
         << ", \"conflict_percent\": " << spec.conflict_percent
         << ", \"pipelined\": " << (pipelined ? "true" : "false")
         << ", \"pipeline_depth\": " << pipeline_depth
         << ", \"mine_shards\": " << mine_shards
         << ", \"cross_shard_conflicts\": " << mode.last.cross_shard_conflicts
         << ", \"requeued_transactions\": " << mode.last.requeued_transactions
         << ", \"wall_ms\": " << mode.wall.mean_ms
         << ", \"wall_stddev_ms\": " << mode.wall.stddev_ms
         << ", \"sustained_tx_per_sec\": " << mode.tx_per_sec()
         << ", \"blocks_per_sec\": " << mode.last.blocks_per_sec()
         << ", \"mine_ms\": " << mode.last.mine_ms
         << ", \"validate_ms\": " << mode.last.validate_ms
         << ", \"snapshot_ms\": " << mode.last.snapshot_ms
         << ", \"mempool_wait_ms\": " << mode.last.mempool_wait_ms
         << ", \"handoff_wait_ms\": " << mode.last.handoff_wait_ms
         << ", \"validator_stall_ms\": " << mode.last.validator_stall_ms
         << ", \"ring_high_water\": " << mode.last.ring_high_water
         << ", \"conflict_aborts\": " << mode.last.conflict_aborts
         << ", \"lock_table_high_water\": " << mode.last.lock_table_high_water
         // Arena counters (all zero when the stream ran the heap
         // baseline): how much of the state layer's page traffic the
         // World-scoped arena absorbed and recycled.
         << ", \"arena_chunks\": " << mode.last.arena.chunks
         << ", \"arena_chunk_bytes\": " << mode.last.arena.chunk_bytes
         << ", \"arena_live_blocks\": " << mode.last.arena.live_blocks
         << ", \"arena_recycle_hits\": " << mode.last.arena.recycle_hits
         << ", \"arena_fresh_allocs\": " << mode.last.arena.fresh_allocs
         // Cross-stripe free-list traffic: how often an allocating stripe
         // went shopping in a sibling's list. The per-shard stripe
         // affinity exists to keep these low relative to recycle_hits.
         << ", \"arena_steal_attempts\": " << mode.last.arena.steal_attempts
         << ", \"arena_steal_hits\": " << mode.last.arena.steal_hits
         << ", \"overlap_speedup\": " << overlap_speedup
         // Machine-speed fingerprint: absolute tx/s is only comparable
         // across trajectory files when the host ran at the same
         // effective speed. hardware_threads can't see a same-box
         // frequency/steal-time shift; the CycleBurner calibration can.
         << ", \"machine_iters_per_us\": " << util::iterations_per_microsecond() << "}";
  bench::write_json_object(object.str());
}

std::vector<std::size_t> parse_depths(std::string_view csv) {
  std::vector<std::size_t> depths;
  while (!csv.empty()) {
    char* end = nullptr;
    const unsigned long depth = std::strtoul(csv.data(), &end, 10);
    if (end == csv.data() || depth == 0) return {};  // Signal a usage error.
    depths.push_back(depth);
    csv.remove_prefix(static_cast<std::size_t>(end - csv.data()));
    if (!csv.empty() && csv.front() == ',') csv.remove_prefix(1);
  }
  return depths;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  workload::StreamSpec base;
  base.blocks = config.quick ? 8 : 20;
  base.txs_per_block = config.quick ? 50 : 150;
  base.conflict_percent = 15;
  std::vector<std::size_t> depths{1, 2, 4};
  std::vector<std::size_t> shard_axis{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--blocks=")) base.blocks = std::strtoul(arg.data() + 9, nullptr, 10);
    if (arg.starts_with("--block-txs=")) {
      base.txs_per_block = std::strtoul(arg.data() + 12, nullptr, 10);
    }
    if (arg.starts_with("--pipeline-depth=")) {
      depths = parse_depths(arg.substr(17));
    }
    if (arg.starts_with("--mine-shards=")) {
      shard_axis = parse_depths(arg.substr(14));
    }
  }
  if (base.blocks == 0 || base.txs_per_block == 0 || depths.empty() || shard_axis.empty()) {
    // A typo'd flag must not record a degenerate zero-throughput point
    // into the committed trajectory files.
    std::fprintf(stderr,
                 "bench_node_throughput: --blocks/--block-txs must be positive integers and "
                 "--pipeline-depth/--mine-shards comma lists of positive values\n");
    return 2;
  }

  std::printf(
      "Node pipeline throughput: %zu blocks x %zu txs, 15%% conflict, %u threads/stage\n",
      base.blocks, base.txs_per_block, config.threads);
  if (const unsigned hw = std::thread::hardware_concurrency(); hw < 2 * config.threads) {
    std::printf(
        "note: %u hardware thread(s) for two %u-thread stages — both stages are CPU-bound,\n"
        "      so pipeline overlap can only beat the sequential baseline on parallel hardware\n",
        hw, config.threads);
  }
  std::printf("# %-14s %6s %10s %14s %14s %9s %12s %12s %12s\n", "benchmark", "depth", "blocks",
              "seq_tx/s", "pipe_tx/s", "overlap", "mine_ms", "validate_ms", "stall_ms");

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    workload::StreamSpec spec = base;
    spec.kind = kind;

    const ModeResult sequential = measure_mode(spec, config, /*pipelined=*/false, 1);
    emit_json(spec, sequential, /*pipelined=*/false, 1, 1.0);

    for (const std::size_t depth : depths) {
      const ModeResult pipelined = measure_mode(spec, config, /*pipelined=*/true, depth);
      const double overlap =
          pipelined.wall.mean_ms > 0 ? sequential.wall.mean_ms / pipelined.wall.mean_ms : 0.0;

      std::printf("%-16s %6zu %10llu %14.0f %14.0f %8.2fx %12.1f %12.1f %12.1f\n",
                  std::string(workload::to_string(kind)).c_str(), depth,
                  static_cast<unsigned long long>(pipelined.last.blocks), sequential.tx_per_sec(),
                  pipelined.tx_per_sec(), overlap, pipelined.last.mine_ms,
                  pipelined.last.validate_ms,
                  pipelined.last.handoff_wait_ms + pipelined.last.validator_stall_ms);
      std::fflush(stdout);

      emit_json(spec, pipelined, /*pipelined=*/true, depth, overlap);
    }
  }

  // Shard scaling lane: parallel block production through the sharded
  // mempool and the deterministic merge layer, at ring depth 1 so the
  // axis isolates lane parallelism from pipeline overlap. shards=1 is
  // the depth sweep above (the exact single-miner path); these points
  // carry mine_shards > 1 and enter the trajectory informationally.
  bool shard_header_printed = false;
  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    workload::StreamSpec spec = base;
    spec.kind = kind;

    ModeResult lane1;  // shards=1 reference at the same ring depth.
    bool have_lane1 = false;
    for (const std::size_t shards : shard_axis) {
      if (shards <= 1) continue;
      if (!shard_header_printed) {
        std::printf("# %-14s %6s %10s %14s %14s %9s %12s %12s\n", "shard-scaling", "shards",
                    "blocks", "1shard_tx/s", "nshard_tx/s", "speedup", "xshard", "requeued");
        shard_header_printed = true;
      }
      if (!have_lane1) {
        lane1 = measure_mode(spec, config, /*pipelined=*/true, 1, /*mine_shards=*/1);
        have_lane1 = true;
      }
      const ModeResult sharded = measure_mode(spec, config, /*pipelined=*/true, 1,
                                              static_cast<std::uint32_t>(shards));
      const double speedup =
          sharded.wall.mean_ms > 0 ? lane1.wall.mean_ms / sharded.wall.mean_ms : 0.0;
      std::printf("%-16s %6zu %10llu %14.0f %14.0f %8.2fx %12llu %12llu\n",
                  std::string(workload::to_string(kind)).c_str(), shards,
                  static_cast<unsigned long long>(sharded.last.blocks), lane1.tx_per_sec(),
                  sharded.tx_per_sec(), speedup,
                  static_cast<unsigned long long>(sharded.last.cross_shard_conflicts),
                  static_cast<unsigned long long>(sharded.last.requeued_transactions));
      std::fflush(stdout);
      emit_json(spec, sharded, /*pipelined=*/true, 1, speedup,
                static_cast<std::uint32_t>(shards));
    }
  }
  return 0;
}
