// Reproduces the LEFT column of Figure 1: "speedup of the miner and
// validator versus serial mining ... as block size increases" — one series
// per benchmark, transactions ∈ [10, 400] at a fixed 15% data conflict,
// 3 miner threads, 3 validator threads.
//
// Usage: bench_fig1_blocksize [--quick] [--samples=N] [--threads=N] ...

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);

  std::printf("Figure 1 (left column): speedup vs block size, 15%% conflict, %u threads\n",
              config.threads);
  bench::print_point_header();

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    for (const std::size_t txs : bench::blocksize_axis(config.quick)) {
      workload::WorkloadSpec spec;
      spec.kind = kind;
      spec.transactions = txs;
      spec.conflict_percent = 15;
      spec.seed = 42;
      bench::print_point(bench::measure_point(spec, config));
    }
    std::printf("\n");  // gnuplot dataset separator per benchmark.
  }
  return 0;
}
