// Reproduces Appendix B: "Mean and Standard Deviation of Benchmark Running
// Times" — the absolute running times (ms) behind Figure 1, with one row
// per configuration carrying mean±stddev for Serial / Miner / Validator.
//
// Usage: bench_appendix_b [--quick] [--samples=N] [--threads=N] ...

#include <cstdio>

#include "harness.hpp"

namespace {

void print_time_header() {
  std::printf("# %-14s %5s %9s   %-18s %-18s %-18s\n", "benchmark", "txs", "conflict%",
              "serial_ms", "miner_ms", "validator_ms");
}

void print_time_row(const concord::bench::PointResult& point) {
  std::printf("%-16s %5zu %9u   %8.3f ± %-7.3f %8.3f ± %-7.3f %8.3f ± %-7.3f\n",
              std::string(concord::workload::to_string(point.spec.kind)).c_str(),
              point.spec.transactions, point.spec.conflict_percent, point.serial.mean_ms,
              point.serial.stddev_ms, point.miner.mean_ms, point.miner.stddev_ms,
              point.validator.mean_ms, point.validator.stddev_ms);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace concord;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t conflict_sweep_txs = config.quick ? 100 : 200;

  std::printf("Appendix B (left column): running times vs block size, 15%% conflict\n");
  print_time_header();
  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    for (const std::size_t txs : bench::blocksize_axis(config.quick)) {
      print_time_row(bench::measure_point({kind, txs, 15, 42}, config));
    }
    std::printf("\n");
  }

  std::printf("Appendix B (right column): running times vs conflict%%, %zu transactions\n",
              conflict_sweep_txs);
  print_time_header();
  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    for (const unsigned conflict : bench::conflict_axis(config.quick)) {
      print_time_row(bench::measure_point({kind, conflict_sweep_txs, conflict, 42}, config));
    }
    std::printf("\n");
  }
  return 0;
}
