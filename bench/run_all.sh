#!/usr/bin/env bash
# Builds a Release-flavored preset and runs every bench, writing per-bench
# JSON into bench_results/ for the perf trajectory (plus the raw table
# output as .log). Defaults to --quick so a full sweep stays CI-sized;
# pass --full for the paper's full axes.
#
# usage: bench/run_all.sh [--full] [--preset=NAME] [--out=DIR]
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="--quick"
PRESET="release"
OUT_DIR="bench_results"
for arg in "$@"; do
  case "$arg" in
    --full) QUICK="" ;;
    --preset=*) PRESET="${arg#--preset=}" ;;
    --out=*) OUT_DIR="${arg#--out=}" ;;
    *) echo "usage: $0 [--full] [--preset=NAME] [--out=DIR]" >&2; exit 2 ;;
  esac
done

cmake --preset "$PRESET"
cmake --build --preset "$PRESET"
mkdir -p "$OUT_DIR"

# Concatenates harness-emitted JSON arrays ("[", "  obj[,]"…, "]") into
# one array at $1 — pure shell, so the fold works where python3 doesn't.
fold_json_arrays() {
  local out="$1"
  shift
  {
    echo "["
    local first=1
    local part
    for part in "$@"; do
      grep -q '{' "$part" || continue
      [[ $first -eq 0 ]] && echo "  ,"
      sed '1d;$d' "$part"
      first=0
    done
    echo "]"
  } > "$out"
}

# The state-scale bench defaults to one (skew, conflict) point; the
# trajectory wants the surface, not the point. Sweep both axes — skew is
# a CSV the binary fans out itself, conflict takes one run per value —
# and fold every per-conflict array into the bench's single artifact.
STATE_SCALE_SKEWS="0.6,0.9,1.2"
STATE_SCALE_CONFLICTS=(5 15 40)

run_state_scale_sweep() {
  local bin="$1"
  local parts=()
  local conflict
  : > "$OUT_DIR/bench_state_scale.log"
  for conflict in "${STATE_SCALE_CONFLICTS[@]}"; do
    local part="$OUT_DIR/bench_state_scale.conflict$conflict.json"
    echo "--- bench_state_scale --skews=$STATE_SCALE_SKEWS --conflict=$conflict"
    "$bin" $QUICK --skews="$STATE_SCALE_SKEWS" --conflict="$conflict" \
      --json="$part" | tee -a "$OUT_DIR/bench_state_scale.log"
    parts+=("$part")
  done
  fold_json_arrays "$OUT_DIR/bench_state_scale.json" "${parts[@]}"
  rm -f "${parts[@]}"
}

# Glob the built binaries so the CMake target list stays the single source
# of truth — a bench added there is picked up here automatically.
BIN_DIR="build-$PRESET/bench"
for bin in "$BIN_DIR"/bench_*; do
  [[ -f "$bin" && -x "$bin" ]] || continue
  bench="$(basename "$bin")"
  [[ "$bench" == bench_stm_micro ]] && continue  # google-benchmark CLI, below
  if [[ "$bench" == bench_state_scale ]]; then
    echo "=== $bench (skew x conflict sweep)"
    run_state_scale_sweep "$bin"
    continue
  fi
  echo "=== $bench"
  "$bin" $QUICK --json="$OUT_DIR/$bench.json" | tee "$OUT_DIR/$bench.log"
  # Benches with bespoke measurement loops never feed the harness JSON
  # sink; flag the empty array so a trajectory consumer isn't surprised.
  if ! grep -q '{' "$OUT_DIR/$bench.json"; then
    echo "note: $bench emits no point JSON (custom output); use $bench.log"
  fi
done

# google-benchmark target; absent when the library isn't installed.
if [[ -x "$BIN_DIR/bench_stm_micro" ]]; then
  echo "=== bench_stm_micro"
  "$BIN_DIR/bench_stm_micro" --benchmark_format=json > "$OUT_DIR/bench_stm_micro.json"
fi

# Cross-PR sustained-throughput record: wrap the node-throughput points
# (they carry sustained_tx_per_sec) into bench/trajectory/BENCH_<commit>.json,
# then gate on the trajectory — a >15% sustained_tx_per_sec drop against
# the previous recorded commit fails the run (the ROADMAP's trajectory
# consumer). Cross-hardware transitions are skipped, not guessed at.
if [[ -s "$OUT_DIR/bench_node_throughput.json" ]] \
    && grep -q '{' "$OUT_DIR/bench_node_throughput.json"; then
  bench/record_trajectory.sh "$OUT_DIR/bench_node_throughput.json" "$OUT_DIR"
  if command -v python3 >/dev/null; then
    python3 bench/check_trajectory.py
  else
    echo "note: python3 unavailable; skipping trajectory regression check"
  fi
fi

echo "JSON results in $OUT_DIR/"
