// Extension sweep for the paper's §4 claim that "the validator is not
// required to match the miner's level of parallelism: using a
// work-stealing scheduler, the validator can exploit whatever degree of
// parallelism it has available."
//
// Blocks are mined once with the paper's 3 threads; validation then runs
// with 1..8 threads. Speedups are relative to the 3-thread serial miner
// baseline, like everything else.
//
// Usage: bench_validator_threads [--quick] [--samples=N] ...

#include <chrono>
#include <cstdio>

#include "core/miner.hpp"
#include "core/validator.hpp"
#include "harness.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  using Clock = std::chrono::steady_clock;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;
  const unsigned thread_axis[] = {1, 2, 3, 4, 6, 8};

  core::MinerConfig miner_config;
  miner_config.threads = 3;
  miner_config.nanos_per_gas = config.nanos_per_gas;

  std::printf("Validator thread scaling (%zu transactions, 15%% conflict; miner fixed at 3)\n",
              txs);
  std::printf("# %-14s %8s | %s\n", "benchmark", "serial", "validator_speedup by threads 1,2,3,4,6,8");

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    const workload::WorkloadSpec spec{kind, txs, 15, 42};

    // Serial baseline.
    util::RunningStats serial_stats;
    for (int r = 0; r < config.warmups + config.samples; ++r) {
      auto fixture = workload::make_fixture(spec);
      core::Miner miner(*fixture.world, miner_config);
      const auto start = Clock::now();
      (void)miner.execute_serial_baseline(fixture.transactions);
      const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
      if (r >= config.warmups) serial_stats.add(ms);
    }

    // One reference block.
    auto mine_fixture = workload::make_fixture(spec);
    core::Miner miner(*mine_fixture.world, miner_config);
    const chain::Block block = miner.mine(mine_fixture.transactions, mine_fixture.genesis());

    std::printf("%-16s %7.2fms |", std::string(workload::to_string(kind)).c_str(),
                serial_stats.mean());
    for (const unsigned threads : thread_axis) {
      core::ValidatorConfig validator_config;
      validator_config.threads = threads;
      validator_config.nanos_per_gas = config.nanos_per_gas;
      util::RunningStats stats;
      for (int r = 0; r < config.warmups + config.samples; ++r) {
        auto fixture = workload::make_fixture(spec);
        core::Validator validator(*fixture.world, validator_config);
        const auto start = Clock::now();
        const auto report = validator.validate_parallel(block);
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        if (!report.ok) {
          std::printf("\nREJECTED: %s\n", std::string(core::to_string(report.reason)).c_str());
          return 1;
        }
        if (r >= config.warmups) stats.add(ms);
      }
      std::printf(" %5.2fx", serial_stats.mean() / stats.mean());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
