// The paper's §4 incentive mechanism measures published schedules by
// parallelism ("reward miners more for publishing highly parallel
// schedules (for example, as measured by critical path length)... Because
// fork-join schedules are published in the blockchain, their degree of
// parallelism is easily evaluated").
//
// This bench evaluates exactly that: for each benchmark and conflict
// level it mines a 200-tx block and reports the published schedule's
// critical path, width, parallelism factor and wire size — the quantities
// a protocol would price.
//
// Usage: bench_schedule_metrics [--quick] ...

#include <cstdio>

#include "core/miner.hpp"
#include "graph/happens_before.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t txs = config.quick ? 100 : 200;

  core::MinerConfig miner_config;
  miner_config.threads = config.threads;
  miner_config.nanos_per_gas = 0.0;  // Metrics need no wall-clock realism.

  std::printf("Published-schedule parallelism metrics (%zu transactions)\n", txs);
  std::printf("# %-14s %9s %7s %7s %12s %7s %9s %9s\n", "benchmark", "conflict%", "edges",
              "cpath", "parallelism", "width", "sched_B", "B_per_tx");

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    for (const unsigned conflict : bench::conflict_axis(config.quick)) {
      const workload::WorkloadSpec spec{kind, txs, conflict, 42};
      auto fixture = workload::make_fixture(spec);
      core::Miner miner(*fixture.world, miner_config);
      const chain::Block block = miner.mine(fixture.transactions, fixture.genesis());
      const auto metrics =
          graph::compute_metrics(block.schedule.to_graph(block.transactions.size()));
      const std::size_t bytes = block.schedule.encoded_size();
      std::printf("%-16s %9u %7zu %7zu %12.2f %7zu %9zu %9.1f\n",
                  std::string(workload::to_string(kind)).c_str(), conflict, metrics.edges,
                  metrics.critical_path, metrics.parallelism, metrics.max_level_width, bytes,
                  static_cast<double>(bytes) / static_cast<double>(txs));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
