// Reproduces Table 1: "The average speedups for each benchmark" — for each
// of Ballot / SimpleAuction / EtherDoc / Mixed, the miner and validator
// speedups averaged over (a) the conflict sweep at 200 transactions and
// (b) the block-size sweep at 15% conflict, plus the overall averages the
// abstract quotes (1.33x miner / 1.69x validator on the authors' JVM).
//
// Usage: bench_table1 [--quick] [--samples=N] [--threads=N] ...

#include <cstdio>
#include <map>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace concord;
  const bench::RunConfig config = bench::RunConfig::from_args(argc, argv);
  const std::size_t conflict_sweep_txs = config.quick ? 100 : 200;

  struct Avg {
    double miner_conflict = 0, validator_conflict = 0;
    double miner_blocksize = 0, validator_blocksize = 0;
  };
  std::map<workload::BenchmarkKind, Avg> averages;

  for (const workload::BenchmarkKind kind : workload::kAllBenchmarks) {
    Avg& avg = averages[kind];

    const auto conflicts = bench::conflict_axis(config.quick);
    for (const unsigned conflict : conflicts) {
      workload::WorkloadSpec spec{kind, conflict_sweep_txs, conflict, 42};
      const auto point = bench::measure_point(spec, config);
      avg.miner_conflict += point.miner_speedup();
      avg.validator_conflict += point.validator_speedup();
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    avg.miner_conflict /= static_cast<double>(conflicts.size());
    avg.validator_conflict /= static_cast<double>(conflicts.size());

    const auto sizes = bench::blocksize_axis(config.quick);
    for (const std::size_t txs : sizes) {
      workload::WorkloadSpec spec{kind, txs, 15, 42};
      const auto point = bench::measure_point(spec, config);
      avg.miner_blocksize += point.miner_speedup();
      avg.validator_blocksize += point.validator_speedup();
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    avg.miner_blocksize /= static_cast<double>(sizes.size());
    avg.validator_blocksize /= static_cast<double>(sizes.size());
  }
  std::fprintf(stderr, "\n");

  std::printf("Table 1: average speedups per benchmark (%u threads)\n", config.threads);
  std::printf("%-16s | %-19s | %-19s\n", "", "Conflict sweep", "BlockSize sweep");
  std::printf("%-16s | %8s %9s | %8s %9s\n", "benchmark", "Miner", "Validator", "Miner",
              "Validator");
  double overall_miner = 0, overall_validator = 0;
  for (const auto& [kind, avg] : averages) {
    std::printf("%-16s | %7.2fx %8.2fx | %7.2fx %8.2fx\n",
                std::string(workload::to_string(kind)).c_str(), avg.miner_conflict,
                avg.validator_conflict, avg.miner_blocksize, avg.validator_blocksize);
    overall_miner += avg.miner_conflict + avg.miner_blocksize;
    overall_validator += avg.validator_conflict + avg.validator_blocksize;
  }
  overall_miner /= static_cast<double>(2 * averages.size());
  overall_validator /= static_cast<double>(2 * averages.size());
  std::printf("%-16s | miner %.2fx, validator %.2fx  (paper: 1.33x / 1.69x)\n", "OVERALL",
              overall_miner, overall_validator);
  return 0;
}
