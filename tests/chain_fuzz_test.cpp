// Robustness of the wire format against corruption: a validator decodes
// blocks from untrusted peers, so for ANY byte-level mutation of a valid
// encoding, Block::decode must either throw util::DecodeError or yield a
// block object — never crash, never hang, never accept silently corrupted
// commitments. (Structured fuzzing with deterministic seeds: every
// failure is reproducible from the test name.)

#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace concord::chain {
namespace {

Block make_reference_block() {
  const workload::WorkloadSpec spec{workload::BenchmarkKind::kMixed, 30, 40, 5};
  auto fixture = workload::make_fixture(spec);
  core::Miner miner(*fixture.world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  return miner.mine(fixture.transactions, fixture.genesis());
}

std::vector<std::uint8_t> encode_block(const Block& block) {
  util::ByteWriter w;
  block.encode(w);
  return std::move(w).take();
}

class ChainFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainFuzz, SingleByteMutationsNeverCrashOrSlipThrough) {
  static const Block reference = make_reference_block();
  static const std::vector<std::uint8_t> encoded = encode_block(reference);

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupted = encoded;
    const std::size_t pos = rng.below(corrupted.size());
    const auto old = corrupted[pos];
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    ASSERT_NE(corrupted[pos], old);

    util::ByteReader reader(corrupted);
    try {
      const Block decoded = Block::decode(reader);
      // Decoded fine: the mutation must be *detectable* — either the
      // header commitments no longer match the body, or the header
      // itself changed (block hash differs), or trailing garbage remains.
      const bool detectable = !decoded.commitments_consistent() ||
                              decoded.hash() != reference.hash() || !reader.exhausted() ||
                              decoded == reference;
      EXPECT_TRUE(detectable) << "undetected mutation at byte " << pos;
    } catch (const util::DecodeError&) {
      // Expected for structural corruption.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainFuzz, ::testing::Range(std::uint64_t{1}, std::uint64_t{9}),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(ChainFuzz, TruncationsAlwaysThrow) {
  const Block reference = make_reference_block();
  const std::vector<std::uint8_t> encoded = encode_block(reference);
  // Every strict prefix must fail to decode (the format has no trailing
  // optionality).
  util::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t cut = rng.below(encoded.size());
    const std::vector<std::uint8_t> truncated(encoded.begin(),
                                              encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    util::ByteReader reader(truncated);
    EXPECT_THROW((void)Block::decode(reader), util::DecodeError) << "cut at " << cut;
  }
}

TEST(ChainFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.below(600));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.below(256));
    util::ByteReader reader(garbage);
    try {
      const Block decoded = Block::decode(reader);
      // Vanishingly unlikely, but if it decodes it must not validate as
      // internally consistent *and* non-trivial.
      if (!decoded.transactions.empty()) {
        EXPECT_FALSE(decoded.commitments_consistent());
      }
    } catch (const util::DecodeError&) {
    }
  }
}

TEST(ChainFuzz, CorruptedScheduleStillRejectsAtValidation) {
  // End-to-end: flip bytes inside the *schedule region* specifically,
  // re-seal the commitments (simulating a malicious miner rather than
  // line noise), and require the semantic validator to reject.
  const workload::WorkloadSpec spec{workload::BenchmarkKind::kBallot, 40, 50, 6};
  auto fixture = workload::make_fixture(spec);
  core::Miner miner(*fixture.world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const Block honest = miner.mine(fixture.transactions, fixture.genesis());

  util::Rng rng(4321);
  int footprint_forgeries = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Block forged = honest;
    ASSERT_FALSE(forged.schedule.profiles.empty());
    auto& profile = forged.schedule.profiles[rng.below(forged.schedule.profiles.size())];
    if (profile.entries.empty()) continue;
    auto& entry = profile.entries[rng.below(profile.entries.size())];

    // Footprint forgeries — the profile now claims locks/modes the replay
    // trace cannot reproduce. These MUST always be rejected.
    const bool flip_lock = rng.chance_percent(50);
    if (flip_lock) {
      entry.lock.key ^= 1;
    } else {
      entry.mode = entry.mode == stm::LockMode::kRead ? stm::LockMode::kWrite
                                                      : stm::LockMode::kRead;
    }
    forged.header.schedule_hash = forged.schedule.hash();

    auto replica = workload::make_fixture(spec);
    core::Validator validator(*replica.world,
                              core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
    const auto report = validator.validate_parallel(forged);
    ++footprint_forgeries;
    EXPECT_FALSE(report.ok) << "trial " << trial << (flip_lock ? " (lock)" : " (mode)");
  }
  EXPECT_GT(footprint_forgeries, 0);

  // Counter shifts are different: they re-order the *claimed* schedule.
  // A shift may yield an equivalent (or merely over-serialized) schedule,
  // which a validator legitimately accepts — but acceptance must imply
  // the replayed state still matches, and no shift may crash.
  for (int trial = 0; trial < 40; ++trial) {
    Block forged = honest;
    auto& profile = forged.schedule.profiles[rng.below(forged.schedule.profiles.size())];
    if (profile.entries.empty()) continue;
    auto& entry = profile.entries[rng.below(profile.entries.size())];
    entry.counter += 1 + rng.below(5);
    // The honest edges may now miss derived constraints; republish the
    // edges a lying-but-consistent miner would derive from the forged
    // profiles, so acceptance hinges on semantics, not structure.
    const auto derived = graph::derive_happens_before(forged.schedule.profiles,
                                                      forged.transactions.size());
    if (!derived.is_acyclic()) continue;  // Malformed forgery; structural reject is trivial.
    forged.schedule.edges = derived.edges();
    forged.schedule.serial_order = *derived.topological_order();
    forged.header.schedule_hash = forged.schedule.hash();

    auto replica = workload::make_fixture(spec);
    core::Validator validator(*replica.world,
                              core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
    const auto report = validator.validate_parallel(forged);
    if (report.ok) {
      // Accepted ⇒ the reordering was semantically equivalent: the replay
      // reproduced the block's exact statuses and state root.
      EXPECT_EQ(replica.world->state_root(), forged.header.state_root);
    }
  }
}

}  // namespace
}  // namespace concord::chain
