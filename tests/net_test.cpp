#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "net/peer.hpp"
#include "net/replication.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "node/node.hpp"
#include "workload/workload.hpp"

namespace concord::net {
namespace {

using node::Node;
using node::NodeConfig;
using workload::BenchmarkKind;
using workload::StreamSpec;
using workload::make_stream_fixture;

StreamSpec stream_spec(std::size_t blocks, std::size_t txs_per_block) {
  StreamSpec spec;
  spec.kind = BenchmarkKind::kBallot;
  spec.blocks = blocks;
  spec.txs_per_block = txs_per_block;
  spec.conflict_percent = 20;
  return spec;
}

/// Honest single-node reference: serial-mine the fixture's stream into
/// blocks 1..N. Deterministic, so every call over the same spec produces
/// byte-identical blocks — the replication gate compares against these.
std::vector<chain::Block> make_reference_blocks(const StreamSpec& spec) {
  auto fixture = make_stream_fixture(spec);
  core::MinerConfig miner_config;
  miner_config.nanos_per_gas = 0.0;
  core::Miner miner(*fixture.world, miner_config);
  chain::Blockchain chain(fixture.world->state_root());
  std::vector<chain::Block> blocks;
  const auto& stream = fixture.transactions;
  for (std::size_t start = 0; start < stream.size(); start += spec.txs_per_block) {
    const std::size_t end = std::min(start + spec.txs_per_block, stream.size());
    const std::vector<chain::Transaction> batch(
        stream.begin() + static_cast<std::ptrdiff_t>(start),
        stream.begin() + static_cast<std::ptrdiff_t>(end));
    chain::Block block = miner.mine_serial(batch, chain.tip());
    chain.append(block);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

/// A follower node over the same fixture (same genesis world) as the
/// reference blocks; it never mines, only validates what the wire says.
std::unique_ptr<Node> make_follower(const StreamSpec& spec) {
  auto fixture = make_stream_fixture(spec);
  NodeConfig config;
  config.miner.nanos_per_gas = 0.0;
  config.validator.nanos_per_gas = 0.0;
  return std::make_unique<Node>(std::move(fixture.world), config);
}

std::vector<std::uint8_t> encoded(const chain::Block& block) {
  util::ByteWriter w;
  block.encode(w);
  return std::move(w).take();
}

/// Asserts the follower chain is byte-identical to the reference at
/// every height — the acceptance gate's strongest form.
void expect_chain_matches(const Node& follower, const std::vector<chain::Block>& reference,
                          std::uint64_t height) {
  ASSERT_EQ(follower.chain().height(), height);
  for (std::uint64_t n = 1; n <= height; ++n) {
    const chain::Block& ours = follower.chain().at(n);
    const chain::Block& honest = reference[static_cast<std::size_t>(n) - 1];
    EXPECT_EQ(ours.hash(), honest.hash()) << "block " << n << " hash diverged";
    EXPECT_EQ(encoded(ours), encoded(honest)) << "block " << n << " bytes diverged";
  }
}

// Test-side wire driver: raw frame reader/writer over one pipe endpoint,
// so tests can speak the protocol precisely — including violating it.
template <typename T>
T expect_msg(FrameReader& reader, const char* context) {
  std::optional<std::vector<std::uint8_t>> payload = reader.read_frame();
  if (!payload.has_value()) {
    throw std::runtime_error(std::string("stream ended early: ") + context);
  }
  Message message = decode_message(*payload);
  if (!std::holds_alternative<T>(message)) {
    throw std::runtime_error(std::string("unexpected ") + std::string(message_name(message)) +
                             " while waiting for " + context);
  }
  return std::get<T>(std::move(message));
}

void send_msg(FrameWriter& writer, const Message& message) {
  writer.write_frame(encode_message(message));
}

util::Hash256 test_hash(std::uint8_t fill) {
  util::Hash256 h;
  h.bytes.fill(fill);
  return h;
}

// ------------------------------------------------------- Wire codec ---

TEST(NetWire, RoundTripsEveryMessageType) {
  const std::vector<chain::Block> reference = make_reference_blocks(stream_spec(1, 8));
  const std::vector<Message> corpus = {
      Hello{kProtocolVersion, test_hash(0xaa), 42},
      BlockAnnounce{reference[0]},
      BlockRequest{7},
      Ack{3, test_hash(0x11)},
      Nack{5, NackReason::kOutOfOrder, "expected block 4"},
      Nack{0, NackReason::kWrongChain, ""},
  };
  for (const Message& message : corpus) {
    const std::vector<std::uint8_t> payload = encode_message(message);
    const Message back = decode_message(payload);
    EXPECT_EQ(back, message) << message_name(message);
    // The byte-identity guarantee: decode → re-encode is the identity on
    // accepted payloads, so a relay cannot mutate a frame unnoticed.
    EXPECT_EQ(encode_message(back), payload) << message_name(message);
  }
}

TEST(NetWire, BlockWithShardLanesSurvivesTheWire) {
  std::vector<chain::Block> reference = make_reference_blocks(stream_spec(1, 8));
  chain::Block block = std::move(reference[0]);
  // A (tiling) shard-lane vector plus re-sealed commitment: the wire
  // layer must carry the sharded schedule exactly.
  block.schedule.shard_lanes = {static_cast<std::uint32_t>(block.transactions.size())};
  block.header.schedule_hash = block.schedule.hash();
  const std::vector<std::uint8_t> payload = encode_message(Message{BlockAnnounce{block}});
  const Message back = decode_message(payload);
  const auto* announce = std::get_if<BlockAnnounce>(&back);
  ASSERT_NE(announce, nullptr);
  EXPECT_EQ(announce->block.schedule.shard_lanes, block.schedule.shard_lanes);
  EXPECT_EQ(encode_message(back), payload);
}

TEST(NetWire, TruncationCorpusEveryPrefixRejected) {
  const std::vector<chain::Block> reference = make_reference_blocks(stream_spec(1, 6));
  const std::vector<Message> corpus = {
      Hello{kProtocolVersion, test_hash(0x42), 9},
      BlockAnnounce{reference[0]},
      BlockRequest{300},  // Multi-byte varint.
      Ack{128, test_hash(0x02)},
      Nack{1, NackReason::kValidationFailed, "state root mismatch"},
  };
  for (const Message& message : corpus) {
    const std::vector<std::uint8_t> payload = encode_message(message);
    // Every strict prefix — a truncation at EVERY field boundary and
    // mid-field position — must be a typed error, never UB or a
    // partially-decoded message.
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const std::span<const std::uint8_t> prefix(payload.data(), len);
      EXPECT_THROW((void)decode_message(prefix), util::DecodeError)
          << message_name(message) << " prefix of " << len << "/" << payload.size();
    }
    // And one trailing byte breaks byte-identity, so it is an error too.
    std::vector<std::uint8_t> padded = payload;
    padded.push_back(0);
    EXPECT_THROW((void)decode_message(padded), util::DecodeError) << message_name(message);
  }
}

TEST(NetWire, UnknownTypeByteRejected) {
  for (const std::uint8_t type : {std::uint8_t{5}, std::uint8_t{17}, std::uint8_t{255}}) {
    const std::vector<std::uint8_t> payload = {type};
    EXPECT_THROW((void)decode_message(payload), util::DecodeError);
  }
}

TEST(NetWire, NonCanonicalVarintInBodyRejected) {
  // BlockRequest{5} canonically encodes as {type, 0x05}; the padded
  // {type, 0x85, 0x00} spelling would decode to the same message and
  // re-encode differently — byte identity demands rejection.
  const std::vector<std::uint8_t> padded = {
      static_cast<std::uint8_t>(MsgType::kBlockRequest), 0x85, 0x00};
  EXPECT_THROW((void)decode_message(padded), util::DecodeError);
}

TEST(NetWire, BadNackReasonRejected) {
  std::vector<std::uint8_t> payload = encode_message(Message{Nack{1, NackReason::kWrongChain, ""}});
  // The reason byte follows the (1-byte) number varint and the type byte.
  payload[2] = 9;
  EXPECT_THROW((void)decode_message(payload), util::DecodeError);
}

// -------------------------------------------------------- Transport ---

TEST(NetTransport, PipeRoundTripAndCleanEof) {
  auto [a, b] = PipeTransport::make_pair();
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  a->write_all(data);
  std::vector<std::uint8_t> out(data.size());
  std::size_t got = 0;
  while (got < out.size()) {
    got += b->read_some(std::span(out).subspan(got));
  }
  EXPECT_EQ(out, data);
  a->close();
  std::uint8_t byte = 0;
  EXPECT_EQ(b->read_some(std::span(&byte, 1)), 0u);  // EOF after drain.
  EXPECT_TRUE(b->closed());
}

TEST(NetTransport, WriteAfterCloseThrows) {
  auto [a, b] = PipeTransport::make_pair();
  b->close();
  const std::vector<std::uint8_t> data = {1};
  EXPECT_THROW(a->write_all(data), TransportError);
}

TEST(NetTransport, BackpressureBlocksWriterUntilReaderDrains) {
  auto [a, b] = PipeTransport::make_pair(/*capacity=*/4);
  std::atomic<bool> writer_done{false};
  std::jthread writer([&a = a, &writer_done] {
    const std::vector<std::uint8_t> burst(64, 0xab);
    a->write_all(burst);  // 16x the pipe capacity: must block on flow control.
    writer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load()) << "writer finished without flow control";
  std::vector<std::uint8_t> out(64);
  std::size_t got = 0;
  while (got < out.size()) {
    got += b->read_some(std::span(out).subspan(got));
  }
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_TRUE(std::all_of(out.begin(), out.end(), [](std::uint8_t v) { return v == 0xab; }));
}

TEST(NetFrame, RoundTripManyFramesConcurrently) {
  auto [a, b] = PipeTransport::make_pair(/*capacity=*/64);  // Small: forces partial writes.
  constexpr int kFrames = 200;
  std::jthread writer([&a = a] {
    FrameWriter w(*a);
    for (int i = 0; i < kFrames; ++i) {
      std::vector<std::uint8_t> payload(1 + static_cast<std::size_t>(i) % 37,
                                        static_cast<std::uint8_t>(i));
      w.write_frame(payload);
    }
    a->close();
  });
  FrameReader r(*b);
  for (int i = 0; i < kFrames; ++i) {
    const auto payload = r.read_frame();
    ASSERT_TRUE(payload.has_value()) << "stream ended at frame " << i;
    EXPECT_EQ(payload->size(), 1 + static_cast<std::size_t>(i) % 37);
    EXPECT_EQ(payload->front(), static_cast<std::uint8_t>(i));
  }
  EXPECT_FALSE(r.read_frame().has_value());  // Clean EOF on the boundary.
}

TEST(NetFrame, TruncatedFrameThrowsTransportError) {
  auto [a, b] = PipeTransport::make_pair();
  util::ByteWriter prefix;
  prefix.put_u32_fixed(100);  // Claim 100 payload bytes...
  a->write_all(prefix.bytes());
  const std::vector<std::uint8_t> partial(10, 0x55);  // ...deliver 10.
  a->write_all(partial);
  a->close();
  FrameReader r(*b);
  EXPECT_THROW((void)r.read_frame(), TransportError);
}

TEST(NetFrame, TruncatedLengthPrefixThrowsTransportError) {
  auto [a, b] = PipeTransport::make_pair();
  const std::vector<std::uint8_t> half_prefix = {0x10, 0x00};  // 2 of 4 length bytes.
  a->write_all(half_prefix);
  a->close();
  FrameReader r(*b);
  EXPECT_THROW((void)r.read_frame(), TransportError);
}

TEST(NetFrame, OversizedLengthRejectedBeforeAllocation) {
  auto [a, b] = PipeTransport::make_pair();
  util::ByteWriter prefix;
  prefix.put_u32_fixed(static_cast<std::uint32_t>(kMaxFrameBytes) + 1);
  a->write_all(prefix.bytes());
  FrameReader r(*b);
  EXPECT_THROW((void)r.read_frame(), util::DecodeError);
}

// ------------------------------------------------------------- Peer ---

TEST(NetPeer, SendAndReceiveBothDirections) {
  auto [a, b] = PipeTransport::make_pair();
  Peer alice(std::move(a), PeerConfig{.name = "alice"});
  Peer bob(std::move(b), PeerConfig{.name = "bob"});

  ASSERT_TRUE(alice.send(Message{Hello{kProtocolVersion, test_hash(1), 3}}));
  ASSERT_TRUE(bob.send(Message{Ack{3, test_hash(2)}}));

  const auto at_bob = bob.recv();
  ASSERT_TRUE(at_bob.has_value());
  EXPECT_EQ(*at_bob, Message(Hello{kProtocolVersion, test_hash(1), 3}));

  const auto at_alice = alice.recv();
  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(*at_alice, Message(Ack{3, test_hash(2)}));

  alice.close();
  EXPECT_FALSE(bob.recv().has_value());
  EXPECT_FALSE(bob.failed()) << bob.error();  // A close is not a wire failure.
  EXPECT_EQ(alice.stats().frames_sent, 1u);
  EXPECT_EQ(bob.stats().frames_received, 1u);
  EXPECT_GT(bob.stats().bytes_received, 0u);
}

TEST(NetPeer, MalformedPayloadKillsTheSession) {
  auto [a, b] = PipeTransport::make_pair();
  Peer victim(std::move(a), PeerConfig{.name = "victim"});
  FrameWriter attacker(*b);
  const std::vector<std::uint8_t> garbage = {0xff, 0x00, 0x13};  // Unknown type byte.
  attacker.write_frame(garbage);
  EXPECT_FALSE(victim.recv().has_value());
  EXPECT_TRUE(victim.failed());
  EXPECT_NE(victim.error().find("unknown message type"), std::string::npos) << victim.error();
}

TEST(NetPeer, InboundRingBoundsBufferingAndPreservesOrder) {
  auto [a, b] = PipeTransport::make_pair();
  Peer consumer(std::move(a), PeerConfig{.name = "consumer", .inbound_depth = 2});
  constexpr std::uint64_t kCount = 50;
  std::jthread producer([&b = b] {
    FrameWriter w(*b);
    for (std::uint64_t i = 1; i <= kCount; ++i) {
      w.write_frame(encode_message(Message{BlockRequest{i}}));
    }
    b->close();
  });
  // A deliberately slow consumer: the depth-2 ring plus transport
  // backpressure must deliver everything, in order, without unbounded
  // buffering.
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    const auto message = consumer.recv();
    ASSERT_TRUE(message.has_value()) << "stream ended at " << i;
    const auto* request = std::get_if<BlockRequest>(&*message);
    ASSERT_NE(request, nullptr);
    EXPECT_EQ(request->number, i);
  }
  EXPECT_FALSE(consumer.recv().has_value());
  EXPECT_FALSE(consumer.failed()) << consumer.error();
  EXPECT_LE(consumer.stats().inbound_high_water, 2u);
  EXPECT_EQ(consumer.stats().frames_received, kCount);
}

TEST(NetPeer, BroadcastReachesEveryPeerEncodedOnce) {
  auto peers = std::make_shared<PeerSet>();
  std::vector<std::unique_ptr<Peer>> remote_ends;
  for (int i = 0; i < 3; ++i) {
    auto [local, remote] = PipeTransport::make_pair();
    peers->add(std::make_shared<Peer>(std::move(local),
                                      PeerConfig{.name = "local-" + std::to_string(i)}));
    remote_ends.push_back(std::make_unique<Peer>(
        std::move(remote), PeerConfig{.name = "remote-" + std::to_string(i)}));
  }
  peers->broadcast(Message{BlockRequest{77}});
  for (auto& remote : remote_ends) {
    const auto message = remote->recv();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(*message, Message(BlockRequest{77}));
  }
  peers->close_all();
}

// ------------------------------------------- Leader/follower nodes ---

/// The honest gate: a leader node mines a >= 20-block stream and
/// replicates it over the wire; the follower's chain must be
/// byte-identical to the leader's at every height.
TEST(NetReplication, HonestTwentyBlockStreamReplicatesByteIdentically) {
  const StreamSpec spec = stream_spec(/*blocks=*/20, /*txs_per_block=*/25);

  // Wire: one pipe; follower session on one end, leader's peer set on
  // the other.
  auto [follower_end, leader_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  auto peers = std::make_shared<PeerSet>();
  peers->add(std::make_shared<Peer>(std::move(leader_end), PeerConfig{.name = "leader"}));

  // Leader: a real mining node in deterministic mode, sharded lanes on,
  // with replication hooked into block acceptance.
  auto leader_fixture = make_stream_fixture(spec);
  Leader leader(peers, leader_fixture.world->state_root());
  NodeConfig leader_config;
  leader_config.miner.nanos_per_gas = 0.0;
  leader_config.validator.nanos_per_gas = 0.0;
  leader_config.batch.target_txs = spec.txs_per_block;
  leader_config.mining = node::MiningMode::kSerial;
  leader_config.mine_shards = 2;  // Shard lanes cross the wire too.
  leader_config.on_block_accepted = leader.announcer();
  Node leader_node(std::move(leader_fixture.world), leader_config);
  leader.start();

  auto follower_node = make_follower(spec);
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });

  std::jthread producer([&leader_node, stream = std::move(leader_fixture.transactions)]() mutable {
    (void)leader_node.mempool().submit_many(std::move(stream));
    leader_node.mempool().close();
  });
  leader_node.run();
  ASSERT_TRUE(leader_node.ok());
  const std::uint64_t height = leader_node.chain().height();
  ASSERT_GE(height, 20u);
  EXPECT_EQ(leader.announced(), height);

  // Wait for the follower to ack the whole stream, then end the session.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto progress = leader.progress();
    if (!progress.empty() && progress[0].acked >= height) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto progress = leader.progress();
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress[0].acked, height);
  EXPECT_EQ(progress[0].nacks, 0u);
  EXPECT_FALSE(progress[0].diverged);
  leader.stop();
  follower_thread.join();

  // Byte identity at every height, leader vs follower.
  ASSERT_EQ(follower_node->chain().height(), height);
  for (std::uint64_t n = 1; n <= height; ++n) {
    EXPECT_EQ(follower_node->chain().at(n).hash(), leader_node.chain().at(n).hash())
        << "height " << n;
    EXPECT_EQ(encoded(follower_node->chain().at(n)), encoded(leader_node.chain().at(n)))
        << "height " << n;
  }
  EXPECT_TRUE(follower_node->ok());
  EXPECT_EQ(follower_node->stats().net_acks_sent, height);
  EXPECT_EQ(follower_node->stats().net_announces, height);
  EXPECT_EQ(follower_node->stats().net_wire_errors, 0u);

  // The follower serves reads: its snapshot ring published every
  // accepted boundary, so "as of block N" works on the replica.
  const Node::Pin pin = follower_node->pin_no_older_than(height, std::chrono::milliseconds(0));
  EXPECT_GE(pin->number, height);
  EXPECT_EQ(pin->snapshot.state_root(), follower_node->chain().tip().header.state_root);
}

/// Byzantine gate 1: an announced block whose header claims a corrupted
/// post-root is rejected deterministically; the follower Nacks, recovers
/// to its last accepted boundary, and accepts the honest retransmission
/// — the final chain is byte-identical to the honest reference.
TEST(NetReplication, ByzantineCorruptPostRootRejectedThenConverges) {
  const StreamSpec spec = stream_spec(/*blocks=*/4, /*txs_per_block=*/12);
  const std::vector<chain::Block> reference = make_reference_blocks(spec);
  ASSERT_GE(reference.size(), 4u);

  auto follower_node = make_follower(spec);
  auto [follower_end, test_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });

  FrameWriter to_follower(*test_end);
  FrameReader from_follower(*test_end);

  const Hello hello = expect_msg<Hello>(from_follower, "session opener");
  EXPECT_EQ(hello.head, 0u);

  // Block 1, honest.
  send_msg(to_follower, Message{BlockAnnounce{reference[0]}});
  const Ack ack1 = expect_msg<Ack>(from_follower, "ack for block 1");
  EXPECT_EQ(ack1.number, 1u);
  EXPECT_EQ(ack1.head_root, reference[0].header.state_root);

  // Block 2 with a corrupted post-root: commitments do not cover the
  // state root, so only honest replay can catch it.
  chain::Block corrupt = reference[1];
  corrupt.header.state_root.bytes[0] ^= 0xff;
  send_msg(to_follower, Message{BlockAnnounce{corrupt}});
  const Nack nack = expect_msg<Nack>(from_follower, "nack for corrupt block 2");
  EXPECT_EQ(nack.number, 2u);
  EXPECT_EQ(nack.reason, NackReason::kValidationFailed);
  EXPECT_NE(nack.detail.find("state root"), std::string::npos) << nack.detail;
  const BlockRequest retry = expect_msg<BlockRequest>(from_follower, "retransmission request");
  EXPECT_EQ(retry.number, 2u);

  // Honest retransmission converges.
  send_msg(to_follower, Message{BlockAnnounce{reference[1]}});
  const Ack ack2 = expect_msg<Ack>(from_follower, "ack for honest block 2");
  EXPECT_EQ(ack2.number, 2u);
  EXPECT_EQ(ack2.head_root, reference[1].header.state_root);

  send_msg(to_follower, Message{BlockAnnounce{reference[2]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 3");
  test_end->close();
  follower_thread.join();

  expect_chain_matches(*follower_node, reference, /*height=*/3);
  EXPECT_FALSE(follower_node->ok());  // The rejection is on the record...
  EXPECT_EQ(follower_node->stats().rejected_blocks, 1u);
  EXPECT_EQ(follower_node->stats().recoveries, 1u);  // ...and was recovered from.
  EXPECT_EQ(follower_node->stats().net_nacks_sent, 1u);
  EXPECT_EQ(follower_node->stats().net_wire_errors, 0u);
}

/// Byzantine gate 2: a schedule whose shard lanes do not tile the block,
/// re-sealed so the header commitments pass — only the validator's
/// structural check across the trust boundary catches it.
TEST(NetReplication, ByzantineNonTilingShardLanesRejectedThenConverges) {
  const StreamSpec spec = stream_spec(/*blocks=*/3, /*txs_per_block=*/10);
  const std::vector<chain::Block> reference = make_reference_blocks(spec);
  ASSERT_GE(reference.size(), 2u);

  auto follower_node = make_follower(spec);
  auto [follower_end, test_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });

  FrameWriter to_follower(*test_end);
  FrameReader from_follower(*test_end);
  (void)expect_msg<Hello>(from_follower, "session opener");

  // Block 1 with lanes claiming more transactions than the block holds.
  // The schedule hash is re-sealed, so Block::verify_commitments passes;
  // rejection must come from the validator's tiling check.
  chain::Block malformed = reference[0];
  malformed.schedule.shard_lanes = {
      static_cast<std::uint32_t>(malformed.transactions.size() + 1)};
  malformed.header.schedule_hash = malformed.schedule.hash();
  send_msg(to_follower, Message{BlockAnnounce{malformed}});
  const Nack nack = expect_msg<Nack>(from_follower, "nack for non-tiling lanes");
  EXPECT_EQ(nack.number, 1u);
  EXPECT_EQ(nack.reason, NackReason::kValidationFailed);
  EXPECT_NE(nack.detail.find("tile"), std::string::npos) << nack.detail;
  const BlockRequest retry = expect_msg<BlockRequest>(from_follower, "retransmission request");
  EXPECT_EQ(retry.number, 1u);

  send_msg(to_follower, Message{BlockAnnounce{reference[0]}});
  (void)expect_msg<Ack>(from_follower, "ack for honest block 1");
  send_msg(to_follower, Message{BlockAnnounce{reference[1]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 2");
  test_end->close();
  follower_thread.join();

  expect_chain_matches(*follower_node, reference, /*height=*/2);
  EXPECT_EQ(follower_node->stats().rejected_blocks, 1u);
  EXPECT_EQ(follower_node->stats().net_nacks_sent, 1u);
}

/// Byzantine gate 3: a frame truncated mid-payload kills the session (a
/// byte stream cannot resynchronize); a reconnect resumes from the last
/// accepted boundary and catch-up pulls converge the chain.
TEST(NetReplication, TruncatedFrameKillsSessionThenReconnectCatchesUp) {
  const StreamSpec spec = stream_spec(/*blocks=*/3, /*txs_per_block=*/10);
  const std::vector<chain::Block> reference = make_reference_blocks(spec);
  ASSERT_GE(reference.size(), 3u);
  auto follower_node = make_follower(spec);

  {  // Session 1: one honest block, then a truncated frame.
    auto [follower_end, test_end] = PipeTransport::make_pair();
    Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
    std::jthread follower_thread(
        [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });
    FrameWriter to_follower(*test_end);
    FrameReader from_follower(*test_end);
    (void)expect_msg<Hello>(from_follower, "session 1 opener");
    send_msg(to_follower, Message{BlockAnnounce{reference[0]}});
    (void)expect_msg<Ack>(from_follower, "ack for block 1");

    util::ByteWriter prefix;
    prefix.put_u32_fixed(4096);  // Claim 4 KiB...
    test_end->write_all(prefix.bytes());
    const std::vector<std::uint8_t> partial(16, 0x77);  // ...deliver 16 bytes.
    test_end->write_all(partial);
    test_end->close();
    follower_thread.join();
  }
  EXPECT_EQ(follower_node->chain().height(), 1u);
  EXPECT_EQ(follower_node->stats().net_wire_errors, 1u);
  EXPECT_EQ(follower_node->stats().net_sessions, 1u);

  {  // Session 2: reconnect; the leader's Hello advertises head 3 and
     // the follower pulls the gap block by block.
    auto [follower_end, test_end] = PipeTransport::make_pair();
    Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
    std::jthread follower_thread(
        [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });
    FrameWriter to_follower(*test_end);
    FrameReader from_follower(*test_end);
    const Hello hello = expect_msg<Hello>(from_follower, "session 2 opener");
    EXPECT_EQ(hello.head, 1u);  // Resumed from the accepted boundary, not genesis.

    send_msg(to_follower, Message{Hello{kProtocolVersion,
                                        follower_node->genesis_snapshot().state_root(),
                                        /*head=*/3}});
    const BlockRequest pull2 = expect_msg<BlockRequest>(from_follower, "pull for block 2");
    EXPECT_EQ(pull2.number, 2u);
    send_msg(to_follower, Message{BlockAnnounce{reference[1]}});
    (void)expect_msg<Ack>(from_follower, "ack for block 2");
    const BlockRequest pull3 = expect_msg<BlockRequest>(from_follower, "pull for block 3");
    EXPECT_EQ(pull3.number, 3u);
    send_msg(to_follower, Message{BlockAnnounce{reference[2]}});
    (void)expect_msg<Ack>(from_follower, "ack for block 3");
    test_end->close();
    follower_thread.join();
  }

  expect_chain_matches(*follower_node, reference, /*height=*/3);
  EXPECT_TRUE(follower_node->ok());  // A wire failure is not a validation failure.
  EXPECT_EQ(follower_node->stats().net_sessions, 2u);
  EXPECT_EQ(follower_node->stats().net_wire_errors, 1u);
}

/// Out-of-order announces are Nacked without touching state, and the
/// follower names the block it actually needs.
TEST(NetReplication, OutOfOrderAnnounceNackedThenConverges) {
  const StreamSpec spec = stream_spec(/*blocks=*/2, /*txs_per_block=*/10);
  const std::vector<chain::Block> reference = make_reference_blocks(spec);
  ASSERT_GE(reference.size(), 2u);

  auto follower_node = make_follower(spec);
  auto [follower_end, test_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });
  FrameWriter to_follower(*test_end);
  FrameReader from_follower(*test_end);
  (void)expect_msg<Hello>(from_follower, "session opener");

  send_msg(to_follower, Message{BlockAnnounce{reference[1]}});  // Block 2 first.
  const Nack nack = expect_msg<Nack>(from_follower, "out-of-order nack");
  EXPECT_EQ(nack.number, 2u);
  EXPECT_EQ(nack.reason, NackReason::kOutOfOrder);
  const BlockRequest request = expect_msg<BlockRequest>(from_follower, "gap request");
  EXPECT_EQ(request.number, 1u);

  send_msg(to_follower, Message{BlockAnnounce{reference[0]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 1");
  const BlockRequest next = expect_msg<BlockRequest>(from_follower, "catch-up request");
  EXPECT_EQ(next.number, 2u);
  send_msg(to_follower, Message{BlockAnnounce{reference[1]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 2");
  test_end->close();
  follower_thread.join();

  expect_chain_matches(*follower_node, reference, /*height=*/2);
  EXPECT_TRUE(follower_node->ok());  // No validation failure — only ordering.
  EXPECT_EQ(follower_node->stats().rejected_blocks, 0u);
}

/// A leader on a different chain (genesis mismatch) is refused at the
/// handshake: Nack kWrongChain, session closed, nothing appended.
TEST(NetReplication, WrongChainHelloRefusedAtHandshake) {
  const StreamSpec spec = stream_spec(/*blocks=*/1, /*txs_per_block=*/6);
  auto follower_node = make_follower(spec);
  auto [follower_end, test_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });
  FrameWriter to_follower(*test_end);
  FrameReader from_follower(*test_end);
  (void)expect_msg<Hello>(from_follower, "session opener");

  send_msg(to_follower, Message{Hello{kProtocolVersion, test_hash(0xcd), 5}});
  const Nack nack = expect_msg<Nack>(from_follower, "wrong-chain nack");
  EXPECT_EQ(nack.reason, NackReason::kWrongChain);
  follower_thread.join();  // The follower closed the session itself.
  EXPECT_EQ(follower_node->chain().height(), 0u);
  EXPECT_EQ(follower_node->stats().net_nacks_sent, 1u);
}

// --------------------------------------------- Read-your-writes pin ---

TEST(NetReadYourWrites, PinNoOlderThanWaitsForReplication) {
  const StreamSpec spec = stream_spec(/*blocks=*/3, /*txs_per_block=*/10);
  const std::vector<chain::Block> reference = make_reference_blocks(spec);
  auto follower_node = make_follower(spec);
  auto [follower_end, test_end] = PipeTransport::make_pair();
  Peer follower_peer(std::move(follower_end), PeerConfig{.name = "follower"});
  std::jthread follower_thread(
      [&follower_node, &follower_peer] { follower_node->run_follower(follower_peer); });
  FrameWriter to_follower(*test_end);
  FrameReader from_follower(*test_end);
  (void)expect_msg<Hello>(from_follower, "session opener");

  // The reading client pins "no older than block 2" BEFORE block 2 is
  // replicated: the pin must block until replication catches up.
  std::atomic<std::uint64_t> pinned_number{0};
  std::jthread reader([&follower_node, &pinned_number] {
    const Node::Pin pin =
        follower_node->pin_no_older_than(2, std::chrono::milliseconds(10'000));
    pinned_number.store(pin->number);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pinned_number.load(), 0u) << "pin returned before block 2 existed";

  send_msg(to_follower, Message{BlockAnnounce{reference[0]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 1");
  send_msg(to_follower, Message{BlockAnnounce{reference[1]}});
  (void)expect_msg<Ack>(from_follower, "ack for block 2");
  reader.join();
  EXPECT_GE(pinned_number.load(), 2u);

  test_end->close();
  follower_thread.join();
}

TEST(NetReadYourWrites, PinNoOlderThanTimesOutWithTypedError) {
  const StreamSpec spec = stream_spec(/*blocks=*/1, /*txs_per_block=*/6);
  auto follower_node = make_follower(spec);
  // Nothing is replicating: a pin for block 1 must fail fast and typed.
  EXPECT_THROW(
      (void)follower_node->pin_no_older_than(1, std::chrono::milliseconds(20)),
      node::SnapshotEvicted);
  // Genesis (block 0) is published at construction: satisfied instantly.
  const Node::Pin pin = follower_node->pin_no_older_than(0, std::chrono::milliseconds(0));
  EXPECT_EQ(pin->number, 0u);
}

}  // namespace
}  // namespace concord::net
