#include <gtest/gtest.h>

#include <memory>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/simple_auction.hpp"
#include "core/execution.hpp"
#include "vm/errors.hpp"
#include "vm/world.hpp"

namespace concord::contracts {
namespace {

using vm::Address;
using vm::ExecContext;
using vm::GasMeter;
using vm::MsgContext;
using vm::RevertError;
using vm::World;

GasMeter test_meter(std::uint64_t limit = vm::gas::kDefaultTxGasLimit) {
  return GasMeter(limit, /*nanos_per_gas=*/0.0);
}

const Address kChair = Address::from_u64(1);
const Address kAlice = Address::from_u64(2);
const Address kBob = Address::from_u64(3);
const Address kCarol = Address::from_u64(4);
const Address kBallotAddr = Address::from_u64(50, 0xCC);
const Address kAuctionAddr = Address::from_u64(51, 0xCC);
const Address kDocAddr = Address::from_u64(52, 0xCC);

/// Runs `fn(ctx)` as `sender` calling `contract` in serial mode.
template <typename Fn>
void as(World& world, const Address& sender, const Address& contract, Fn&& fn) {
  ExecContext ctx = ExecContext::serial(world, test_meter());
  ctx.push_msg(MsgContext{sender, contract, 0});
  fn(ctx);
  ctx.pop_msg();
}

// -------------------------------------------------------------- Ballot --

class BallotTest : public ::testing::Test {
 protected:
  BallotTest() {
    auto contract = std::make_unique<Ballot>(
        kBallotAddr, kChair, std::vector<std::string>{"alpha", "beta", "gamma"});
    ballot_ = contract.get();
    world_.contracts().add(std::move(contract));
    ballot_->raw_register_voter(kAlice, 1);
    ballot_->raw_register_voter(kBob, 1);
    ballot_->raw_register_voter(kCarol, 1);
  }

  World world_;
  Ballot* ballot_ = nullptr;
};

TEST_F(BallotTest, VoteCountsWeight) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 1); });
  EXPECT_EQ(ballot_->raw_vote_count(1), 1);
  EXPECT_TRUE(ballot_->raw_voter(kAlice).voted);
  EXPECT_EQ(ballot_->raw_voter(kAlice).vote, 1u);
}

TEST_F(BallotTest, DoubleVoteReverts) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 1); });
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->vote(ctx, 2), RevertError);
  });
  EXPECT_EQ(ballot_->raw_vote_count(1), 1);
  EXPECT_EQ(ballot_->raw_vote_count(2), 0);
}

TEST_F(BallotTest, OutOfRangeProposalReverts) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->vote(ctx, 17), RevertError);
  });
}

TEST_F(BallotTest, GiveRightToVoteOnlyChairperson) {
  const Address newcomer = Address::from_u64(99);
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->give_right_to_vote(ctx, newcomer), RevertError);
  });
  as(world_, kChair, kBallotAddr, [&](ExecContext& ctx) {
    ballot_->give_right_to_vote(ctx, newcomer);
  });
  EXPECT_EQ(ballot_->raw_voter(newcomer).weight, 1);
}

TEST_F(BallotTest, GiveRightToVotedVoterReverts) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 0); });
  as(world_, kChair, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->give_right_to_vote(ctx, kAlice), RevertError);
  });
}

TEST_F(BallotTest, DelegationAddsWeight) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->delegate(ctx, kBob); });
  EXPECT_EQ(ballot_->raw_voter(kBob).weight, 2);
  as(world_, kBob, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 2); });
  EXPECT_EQ(ballot_->raw_vote_count(2), 2);  // Bob's vote carries Alice's weight.
}

TEST_F(BallotTest, DelegationToVotedDelegateCountsImmediately) {
  as(world_, kBob, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 1); });
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->delegate(ctx, kBob); });
  EXPECT_EQ(ballot_->raw_vote_count(1), 2);
}

TEST_F(BallotTest, DelegationChainIsFollowed) {
  as(world_, kBob, kBallotAddr, [&](ExecContext& ctx) { ballot_->delegate(ctx, kCarol); });
  // Alice delegates to Bob, who already delegated to Carol → lands on Carol.
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->delegate(ctx, kBob); });
  EXPECT_EQ(ballot_->raw_voter(kAlice).delegate_to, kCarol);
  EXPECT_EQ(ballot_->raw_voter(kCarol).weight, 3);
}

TEST_F(BallotTest, SelfDelegationReverts) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->delegate(ctx, kAlice), RevertError);
  });
}

TEST_F(BallotTest, DelegateAfterVoteReverts) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 0); });
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(ballot_->delegate(ctx, kBob), RevertError);
  });
}

TEST_F(BallotTest, WinningProposalAndName) {
  as(world_, kAlice, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 2); });
  as(world_, kBob, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 2); });
  as(world_, kCarol, kBallotAddr, [&](ExecContext& ctx) { ballot_->vote(ctx, 0); });
  as(world_, kChair, kBallotAddr, [&](ExecContext& ctx) {
    EXPECT_EQ(ballot_->winning_proposal(ctx), 2u);
    EXPECT_EQ(ballot_->winner_name(ctx), "gamma");
  });
}

TEST_F(BallotTest, ExecuteDispatchesVoteTx) {
  const auto tx = Ballot::make_vote_tx(kBallotAddr, kAlice, 1);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  const auto status = core::execute_transaction(world_, tx, ctx);
  EXPECT_EQ(status, vm::TxStatus::kSuccess);
  EXPECT_EQ(ballot_->raw_vote_count(1), 1);
}

TEST_F(BallotTest, ExecuteRejectsUnknownSelector) {
  auto tx = Ballot::make_vote_tx(kBallotAddr, kAlice, 1);
  tx.selector = 999;
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kReverted);
}

TEST_F(BallotTest, ExecuteRejectsMalformedArgs) {
  auto tx = Ballot::make_delegate_tx(kBallotAddr, kAlice, kBob);
  tx.args.resize(3);  // Truncated address.
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kReverted);
}

TEST_F(BallotTest, RevertedVoteLeavesStateUntouched) {
  const auto root_before = world_.state_root();
  const auto tx = Ballot::make_vote_tx(kBallotAddr, kAlice, 99);  // Out of range.
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kReverted);
  EXPECT_EQ(world_.state_root(), root_before);
}

TEST_F(BallotTest, GasExhaustionRevertsCleanly) {
  const auto root_before = world_.state_root();
  auto tx = Ballot::make_vote_tx(kBallotAddr, kAlice, 1);
  tx.gas_limit = 2'000;  // Not enough for the vote body.
  ExecContext ctx = ExecContext::serial(world_, GasMeter(tx.gas_limit, 0.0));
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kOutOfGas);
  EXPECT_EQ(world_.state_root(), root_before);
}

TEST_F(BallotTest, ConstructorRequiresProposals) {
  EXPECT_THROW(Ballot(kBallotAddr, kChair, {}), vm::BadCall);
}

// ------------------------------------------------------ SimpleAuction --

class AuctionTest : public ::testing::Test {
 protected:
  AuctionTest() {
    auto contract = std::make_unique<SimpleAuction>(kAuctionAddr, kChair);
    auction_ = contract.get();
    world_.contracts().add(std::move(contract));
    world_.balances().raw_set(kAuctionAddr, 10'000);
  }

  World world_;
  SimpleAuction* auction_ = nullptr;
};

TEST_F(AuctionTest, FirstBidBecomesHighest) {
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  ctx.push_msg(MsgContext{kAlice, kAuctionAddr, 100});
  auction_->bid(ctx);
  ctx.pop_msg();
  EXPECT_EQ(auction_->raw_highest_bid(), 100);
  EXPECT_EQ(auction_->raw_highest_bidder(), kAlice);
}

TEST_F(AuctionTest, LowBidReverts) {
  auction_->raw_set_highest(kAlice, 100);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  ctx.push_msg(MsgContext{kBob, kAuctionAddr, 100});
  EXPECT_THROW(auction_->bid(ctx), RevertError);
  ctx.pop_msg();
}

TEST_F(AuctionTest, OutbidCreditsPreviousLeader) {
  auction_->raw_set_highest(kAlice, 100);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  ctx.push_msg(MsgContext{kBob, kAuctionAddr, 150});
  auction_->bid(ctx);
  ctx.pop_msg();
  EXPECT_EQ(auction_->raw_highest_bidder(), kBob);
  EXPECT_EQ(auction_->raw_pending(kAlice), 100);
}

TEST_F(AuctionTest, WithdrawPaysAndZeroes) {
  auction_->raw_add_pending(kAlice, 300);
  as(world_, kAlice, kAuctionAddr, [&](ExecContext& ctx) { auction_->withdraw(ctx); });
  EXPECT_EQ(auction_->raw_pending(kAlice), 0);
  EXPECT_EQ(world_.balances().raw_get(kAlice), 300);
  EXPECT_EQ(world_.balances().raw_get(kAuctionAddr), 9'700);
}

TEST_F(AuctionTest, WithdrawWithNothingPendingIsNoop) {
  as(world_, kBob, kAuctionAddr, [&](ExecContext& ctx) { auction_->withdraw(ctx); });
  EXPECT_EQ(world_.balances().raw_get(kBob), 0);
}

TEST_F(AuctionTest, BidPlusOneOutbidsByExactlyOne) {
  auction_->raw_set_highest(kAlice, 100);
  as(world_, kBob, kAuctionAddr, [&](ExecContext& ctx) { auction_->bid_plus_one(ctx); });
  EXPECT_EQ(auction_->raw_highest_bid(), 101);
  EXPECT_EQ(auction_->raw_highest_bidder(), kBob);
  EXPECT_EQ(auction_->raw_pending(kAlice), 100);
}

TEST_F(AuctionTest, AuctionEndPaysBeneficiaryOnce) {
  auction_->raw_set_highest(kAlice, 500);
  as(world_, kChair, kAuctionAddr, [&](ExecContext& ctx) { auction_->auction_end(ctx); });
  EXPECT_TRUE(auction_->raw_ended());
  EXPECT_EQ(world_.balances().raw_get(kChair), 500);
  as(world_, kChair, kAuctionAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(auction_->auction_end(ctx), RevertError);
  });
}

TEST_F(AuctionTest, BidAfterEndReverts) {
  as(world_, kChair, kAuctionAddr, [&](ExecContext& ctx) { auction_->auction_end(ctx); });
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  ctx.push_msg(MsgContext{kBob, kAuctionAddr, 999});
  EXPECT_THROW(auction_->bid(ctx), RevertError);
  ctx.pop_msg();
}

TEST_F(AuctionTest, ExecuteDispatchesWithdrawTx) {
  auction_->raw_add_pending(kAlice, 42);
  const auto tx = SimpleAuction::make_withdraw_tx(kAuctionAddr, kAlice);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kSuccess);
  EXPECT_EQ(world_.balances().raw_get(kAlice), 42);
}

TEST_F(AuctionTest, ExecuteDispatchesBidTxWithValue) {
  const auto tx = SimpleAuction::make_bid_tx(kAuctionAddr, kBob, 77);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kSuccess);
  EXPECT_EQ(auction_->raw_highest_bid(), 77);
}

// ----------------------------------------------------------- EtherDoc --

class EtherDocTest : public ::testing::Test {
 protected:
  EtherDocTest() {
    auto contract = std::make_unique<EtherDoc>(kDocAddr, kChair);
    etherdoc_ = contract.get();
    world_.contracts().add(std::move(contract));
  }

  World world_;
  EtherDoc* etherdoc_ = nullptr;
};

TEST_F(EtherDocTest, CreateThenExists) {
  as(world_, kAlice, kDocAddr, [&](ExecContext& ctx) {
    etherdoc_->create_document(ctx, 111);
    EXPECT_TRUE(etherdoc_->exists_document(ctx, 111));
    EXPECT_FALSE(etherdoc_->exists_document(ctx, 222));
  });
  EXPECT_EQ(etherdoc_->raw_owner_count(kAlice), 1);
  EXPECT_EQ(etherdoc_->raw_owner_docs(kAlice), (std::vector<std::uint64_t>{111}));
}

TEST_F(EtherDocTest, DuplicateCreateReverts) {
  etherdoc_->raw_add_document(111, kAlice);
  as(world_, kBob, kDocAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(etherdoc_->create_document(ctx, 111), RevertError);
  });
}

TEST_F(EtherDocTest, GetDocumentReturnsMetadata) {
  etherdoc_->raw_add_document(111, kAlice);
  as(world_, kBob, kDocAddr, [&](ExecContext& ctx) {
    const auto doc = etherdoc_->get_document(ctx, 111);
    EXPECT_EQ(doc.owner, kAlice);
    EXPECT_EQ(doc.version, 0u);
    EXPECT_THROW((void)etherdoc_->get_document(ctx, 999), RevertError);
  });
}

TEST_F(EtherDocTest, TransferMovesOwnership) {
  etherdoc_->raw_add_document(111, kAlice);
  as(world_, kAlice, kDocAddr, [&](ExecContext& ctx) {
    etherdoc_->transfer_ownership(ctx, 111, kBob);
  });
  EXPECT_EQ(etherdoc_->raw_document(111).owner, kBob);
  EXPECT_EQ(etherdoc_->raw_document(111).version, 1u);
  EXPECT_EQ(etherdoc_->raw_owner_count(kAlice), 0);
  EXPECT_EQ(etherdoc_->raw_owner_count(kBob), 1);
  EXPECT_TRUE(etherdoc_->raw_owner_docs(kAlice).empty());
  EXPECT_EQ(etherdoc_->raw_owner_docs(kBob), (std::vector<std::uint64_t>{111}));
}

TEST_F(EtherDocTest, TransferByNonOwnerReverts) {
  etherdoc_->raw_add_document(111, kAlice);
  as(world_, kBob, kDocAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(etherdoc_->transfer_ownership(ctx, 111, kBob), RevertError);
  });
}

TEST_F(EtherDocTest, TransferOfMissingDocReverts) {
  as(world_, kAlice, kDocAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(etherdoc_->transfer_ownership(ctx, 404, kBob), RevertError);
  });
}

TEST_F(EtherDocTest, ExecuteDispatchesTransferTx) {
  etherdoc_->raw_add_document(111, kAlice);
  const auto tx = EtherDoc::make_transfer_tx(kDocAddr, kAlice, 111, kBob);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kSuccess);
  EXPECT_EQ(etherdoc_->raw_document(111).owner, kBob);
}

TEST_F(EtherDocTest, HashStateTracksTransfers) {
  etherdoc_->raw_add_document(111, kAlice);
  const auto before = world_.state_root();
  as(world_, kAlice, kDocAddr, [&](ExecContext& ctx) {
    etherdoc_->transfer_ownership(ctx, 111, kBob);
  });
  EXPECT_NE(world_.state_root(), before);
}

}  // namespace
}  // namespace concord::contracts
