#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/cycle_burner.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"
#include "util/zipf.hpp"

namespace concord::util {
namespace {

// ---------------------------------------------------------------- Rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[rng.below(10)];
  for (const int count : seen) EXPECT_GT(count, 800);  // Roughly uniform.
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChancePercentExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance_percent(0));
    EXPECT_TRUE(rng.chance_percent(100));
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(5);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

// -------------------------------------------------------------- Bytes ---

TEST(Bytes, VarintRoundTrip) {
  const std::vector<std::uint64_t> values = {0,    1,    127,  128,   255,    300,
                                             1u << 14, (1u << 21) - 7, 1ull << 35, ~0ull};
  ByteWriter w;
  for (const auto v : values) w.put_varint(v);
  ByteReader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u32_fixed(0xdeadbeef);
  w.put_u64_fixed(0x0123456789abcdefULL);
  w.put_u8(0x7f);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u32_fixed(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64_fixed(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_u8(), 0x7f);
}

TEST(Bytes, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.put_string("hello contracts");
  w.put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello contracts");
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.put_string("abcdef");
  auto bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.get_string(), DecodeError);
}

TEST(Bytes, TruncatedVarintThrows) {
  const std::vector<std::uint8_t> bad = {0x80, 0x80};  // Continuation, no end.
  ByteReader r(bad);
  EXPECT_THROW((void)r.get_varint(), DecodeError);
}

TEST(Bytes, OverlongVarintThrows) {
  const std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_THROW((void)r.get_varint(), DecodeError);
}

TEST(Bytes, HexRoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "00deadbeefff");
  EXPECT_EQ(from_hex("00deadbeefff"), data);
}

TEST(Bytes, BadHexThrows) {
  EXPECT_THROW((void)from_hex("abc"), DecodeError);   // Odd length.
  EXPECT_THROW((void)from_hex("zz"), DecodeError);    // Bad digit.
}

TEST(Bytes, RawReadWrite) {
  ByteWriter w;
  const std::vector<std::uint8_t> raw = {9, 8, 7};
  w.put_raw(raw);
  ByteReader r(w.bytes());
  const auto back = r.get_raw(3);
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), back.begin()));
  EXPECT_THROW((void)r.get_raw(1), DecodeError);
}

TEST(Bytes, NonCanonicalVarintPaddingThrows) {
  // 0x85 0x00 decodes to 5 under a permissive reader, but 5 encodes as
  // a single byte — two encodings for one value would break the wire
  // layer's decode→re-encode byte-identity guarantee.
  {
    const std::vector<std::uint8_t> padded = {0x85, 0x00};
    ByteReader r(padded);
    EXPECT_THROW((void)r.get_varint(), DecodeError);
  }
  // Multi-byte padding flavor: 128 is {0x80, 0x01}; {0x80, 0x81, 0x00}
  // sneaks an empty continuation group on top.
  {
    const std::vector<std::uint8_t> padded = {0x80, 0x81, 0x00};
    ByteReader r(padded);
    EXPECT_THROW((void)r.get_varint(), DecodeError);
  }
  // The canonical encodings stay accepted — including a legitimate
  // trailing zero *group* that carries high bits ({0x80, 0x01} = 128).
  const std::vector<std::uint8_t> canonical = {0x80, 0x01};
  ByteReader r(canonical);
  EXPECT_EQ(r.get_varint(), 128u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, ForgedGiantLengthIsTypedErrorNotOverflow) {
  // Regression: `pos_ + n` wraps for n near 2^64, letting a forged
  // length pass the bounds check and read out of bounds. The subtraction
  // form must reject every oversized n with a typed error.
  const std::vector<std::uint8_t> data = {1, 2, 3};
  ByteReader r(data);
  EXPECT_EQ(r.get_u8(), 1);  // pos_ = 1, so pos_ + ~0ull wraps to 0.
  EXPECT_THROW((void)r.get_raw(~0ull), DecodeError);
  EXPECT_THROW((void)r.get_raw(~0ull - 1), DecodeError);
  // The reader stays usable after the rejected read.
  EXPECT_EQ(r.get_u8(), 2);
}

TEST(Bytes, ForgedCollectionCountRejectedBeforeAllocation) {
  // A length-prefixed field claiming ~2^61 elements must die on the
  // bounds check, not in the allocator.
  ByteWriter w;
  w.put_varint(1ull << 61);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get_count(/*min_item_bytes=*/1), DecodeError);
}

// ------------------------------------------------------------- Sha256 ---

TEST(Sha256, EmptyStringVector) {
  // FIPS 180-4 test vector.
  EXPECT_EQ(sha256("").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256("abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAVector) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog and more";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(data).substr(0, split));
    h.update(std::string_view(data).substr(split));
    EXPECT_EQ(h.finish(), sha256(data));
  }
}

TEST(Sha256, Hash256Helpers) {
  const Hash256 zero{};
  EXPECT_TRUE(zero.is_zero());
  const Hash256 h = sha256("x");
  EXPECT_FALSE(h.is_zero());
  EXPECT_NE(h.prefix64(), 0u);
  EXPECT_EQ(h.to_hex().size(), 64u);
}

// -------------------------------------------------------------- Stats ---

TEST(Stats, MeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // Sample stddev.
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SummarizeMs) {
  const auto summary = summarize_ms({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(summary.mean_ms, 2.0);
  EXPECT_EQ(summary.samples, 3u);
}

// ------------------------------------------------------- Cycle burner ---

// --------------------------------------------------------------- Zipf ---

TEST(Zipf, SameSeedSameSequence) {
  const ZipfSampler zipf(10'000, 0.9);
  Rng a(777);
  Rng b(777);
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(Zipf, SamplesStayInRange) {
  const ZipfSampler zipf(100, 1.2);
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.sample(rng), 100u);
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfSampler zipf(1'000, 0.0);
  // Analytic check: with s=0 every rank has mass 1/n exactly.
  EXPECT_NEAR(zipf.mass_below(1), 0.001, 1e-12);
  EXPECT_NEAR(zipf.mass_below(500), 0.5, 1e-9);
  // Empirical check: hottest 10% of ranks draw about 10% of samples.
  Rng rng(99);
  int hot = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.sample(rng) < 100) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.1, 0.01);
}

TEST(Zipf, SkewConcentratesMassOnHotRanks) {
  // At s=0.9 over 1M ranks, the hot head carries far more than its
  // uniform share; and empirical frequency tracks mass_below.
  const ZipfSampler zipf(1'000'000, 0.9);
  const double hot_mass = zipf.mass_below(1'000);  // Hottest 0.1% of ranks.
  EXPECT_GT(hot_mass, 0.3);
  EXPECT_LT(hot_mass, 0.9);

  Rng rng(4242);
  int hot = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.sample(rng) < 1'000) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, hot_mass, 0.02);
}

TEST(Zipf, MassBelowIsMonotoneAndCapsAtOne) {
  const ZipfSampler zipf(50, 1.0);
  EXPECT_EQ(zipf.mass_below(0), 0.0);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 50; ++k) {
    const double m = zipf.mass_below(k);
    EXPECT_GE(m, prev);
    prev = m;
  }
  EXPECT_DOUBLE_EQ(zipf.mass_below(50), 1.0);
  EXPECT_DOUBLE_EQ(zipf.mass_below(999), 1.0);  // Clamped past the end.
  EXPECT_EQ(zipf.size(), 50u);
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(CycleBurner, DeterministicResult) {
  EXPECT_EQ(burn_iterations(1000), burn_iterations(1000));
  EXPECT_NE(burn_iterations(1000), burn_iterations(1001));
}

TEST(CycleBurner, CalibrationIsPositiveAndCached) {
  const auto a = iterations_per_microsecond();
  const auto b = iterations_per_microsecond();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, b);
}

TEST(CycleBurner, BurnMicrosecondsTakesRoughlyThatLong) {
  using Clock = std::chrono::steady_clock;
  (void)iterations_per_microsecond();  // Calibrate outside timing.
  const auto start = Clock::now();
  volatile std::uint64_t sink = burn_microseconds(2000);
  (void)sink;
  const double elapsed_us = std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  EXPECT_GT(elapsed_us, 500.0);     // At least a quarter of the target.
  // Generous upper bound: under `ctest -j` the burner contends with other
  // test binaries for cores (and sanitizer builds slow it further), so a
  // tight cap flakes in CI. Still catches a burner that's off by orders of
  // magnitude.
  EXPECT_LT(elapsed_us, 200'000.0);
}

}  // namespace
}  // namespace concord::util
