#include <gtest/gtest.h>

#include "graph/happens_before.hpp"

namespace concord::graph {
namespace {

using stm::LockId;
using stm::LockMode;
using stm::LockProfile;
using stm::LockProfileEntry;

LockProfile profile(std::uint32_t tx,
                    std::initializer_list<LockProfileEntry> entries, bool reverted = false) {
  LockProfile p;
  p.tx = tx;
  p.reverted = reverted;
  p.entries = entries;
  p.canonicalize();
  return p;
}

// ----------------------------------------------------------- Basics ----

TEST(HappensBefore, EmptyGraph) {
  HappensBeforeGraph g(0);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.topological_order()->empty());
}

TEST(HappensBefore, AddAndQueryEdges) {
  HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 1);  // Duplicate ignored.
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.predecessors(2), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(g.successors(0), (std::vector<std::uint32_t>{1}));
}

TEST(HappensBefore, TopologicalOrderDeterministicTieBreak) {
  HappensBeforeGraph g(4);
  g.add_edge(2, 0);
  // 1, 2, 3 are roots; Kahn with min-index tie-break gives 1, 2, 0|3...
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::uint32_t>{1, 2, 0, 3}));
}

TEST(HappensBefore, CycleDetected) {
  HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(g.topological_order().has_value());
  EXPECT_FALSE(g.is_acyclic());
}

TEST(HappensBefore, IsTopologicalOrderChecks) {
  HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<std::uint32_t> good = {0, 1, 2};
  const std::vector<std::uint32_t> bad_order = {1, 0, 2};
  const std::vector<std::uint32_t> not_permutation = {0, 0, 2};
  const std::vector<std::uint32_t> wrong_size = {0, 1};
  EXPECT_TRUE(g.is_topological_order(good));
  EXPECT_FALSE(g.is_topological_order(bad_order));
  EXPECT_FALSE(g.is_topological_order(not_permutation));
  EXPECT_FALSE(g.is_topological_order(wrong_size));
}

TEST(HappensBefore, ImpliesDirectAndTransitive) {
  HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);

  HappensBeforeGraph direct(3);
  direct.add_edge(0, 1);
  HappensBeforeGraph transitive(3);
  transitive.add_edge(0, 2);  // Implied via 1.
  HappensBeforeGraph missing(3);
  missing.add_edge(2, 0);  // Reverse: not implied.

  EXPECT_TRUE(g.implies(direct));
  EXPECT_TRUE(g.implies(transitive));
  EXPECT_FALSE(g.implies(missing));
}

TEST(HappensBefore, TransitiveReductionDropsImpliedEdges) {
  HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // Implied.
  const HappensBeforeGraph reduced = g.transitive_reduction();
  EXPECT_EQ(reduced.edge_count(), 2u);
  EXPECT_TRUE(reduced.has_edge(0, 1));
  EXPECT_TRUE(reduced.has_edge(1, 2));
  EXPECT_FALSE(reduced.has_edge(0, 2));
  EXPECT_TRUE(reduced.implies(g));
}

// -------------------------------------------- Profile-derived edges ----

TEST(DeriveHappensBefore, WriteChain) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kWrite, 1}}),
      profile(1, {{lock, LockMode::kWrite, 2}}),
      profile(2, {{lock, LockMode::kWrite, 3}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));  // Implied, not materialized.
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(DeriveHappensBefore, CompatibleReadsUnordered) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kRead, 1}}),
      profile(1, {{lock, LockMode::kRead, 2}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 2);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DeriveHappensBefore, CompatibleIncrementsUnordered) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kIncrement, 1}}),
      profile(1, {{lock, LockMode::kIncrement, 2}}),
  };
  EXPECT_EQ(derive_happens_before(profiles, 2).edge_count(), 0u);
}

TEST(DeriveHappensBefore, WriteAfterReadsFansIn) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kRead, 1}}),
      profile(1, {{lock, LockMode::kRead, 2}}),
      profile(2, {{lock, LockMode::kWrite, 3}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(DeriveHappensBefore, ReadsAfterWriteFanOut) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kWrite, 1}}),
      profile(1, {{lock, LockMode::kRead, 2}}),
      profile(2, {{lock, LockMode::kRead, 3}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(DeriveHappensBefore, ReadIncrementReadAlternation) {
  const LockId lock{1, 1};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock, LockMode::kRead, 1}}),
      profile(1, {{lock, LockMode::kIncrement, 2}}),
      profile(2, {{lock, LockMode::kRead, 3}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  // 0 → 2 holds transitively; the run algorithm need not materialize it.
  EXPECT_TRUE(g.implies([] {
    HappensBeforeGraph need(3);
    need.add_edge(0, 2);
    return need;
  }()));
}

TEST(DeriveHappensBefore, DisjointLocksNoEdges) {
  const std::vector<LockProfile> profiles = {
      profile(0, {{LockId{1, 1}, LockMode::kWrite, 1}}),
      profile(1, {{LockId{1, 2}, LockMode::kWrite, 1}}),
      profile(2, {{LockId{2, 1}, LockMode::kWrite, 1}}),
  };
  EXPECT_EQ(derive_happens_before(profiles, 3).edge_count(), 0u);
}

TEST(DeriveHappensBefore, MultiLockTransaction) {
  const LockId lock_a{1, 1};
  const LockId lock_b{1, 2};
  const std::vector<LockProfile> profiles = {
      profile(0, {{lock_a, LockMode::kWrite, 1}, {lock_b, LockMode::kWrite, 1}}),
      profile(1, {{lock_a, LockMode::kWrite, 2}}),
      profile(2, {{lock_b, LockMode::kWrite, 2}}),
  };
  const HappensBeforeGraph g = derive_happens_before(profiles, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
}

// ------------------------------------------------------------ Metrics --

TEST(Metrics, ChainHasNoParallelism) {
  HappensBeforeGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const ScheduleMetrics m = compute_metrics(g);
  EXPECT_EQ(m.critical_path, 4u);
  EXPECT_DOUBLE_EQ(m.parallelism, 1.0);
  EXPECT_EQ(m.max_level_width, 1u);
}

TEST(Metrics, IndependentTransactionsFullyParallel) {
  HappensBeforeGraph g(8);
  const ScheduleMetrics m = compute_metrics(g);
  EXPECT_EQ(m.critical_path, 1u);
  EXPECT_DOUBLE_EQ(m.parallelism, 8.0);
  EXPECT_EQ(m.max_level_width, 8u);
}

TEST(Metrics, DiamondShape) {
  HappensBeforeGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const ScheduleMetrics m = compute_metrics(g);
  EXPECT_EQ(m.critical_path, 3u);
  EXPECT_EQ(m.max_level_width, 2u);
}

}  // namespace
}  // namespace concord::graph
