// Property: for ANY gas limit, a transaction either succeeds, reverts, or
// runs out of gas — and in the two failure cases the world state is
// byte-identical to never having run it. Sweeping the limit from 0 to
// past the success threshold walks the OutOfGas boundary through every
// charge site in the contract body, which is a cheap way to fault-inject
// "terminated and rolled back" (paper §1) at every execution point.

#include <gtest/gtest.h>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/simple_auction.hpp"
#include "core/execution.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace concord {
namespace {

using workload::BenchmarkKind;
using workload::WorkloadSpec;

class GasBoundary : public ::testing::TestWithParam<BenchmarkKind> {};

TEST_P(GasBoundary, EveryLimitYieldsCleanOutcome) {
  const WorkloadSpec spec{GetParam(), 4, 0, 42};

  // Find the gas each transaction actually needs.
  auto probe = workload::make_fixture(spec);
  std::vector<std::uint64_t> needed;
  for (const auto& tx : probe.transactions) {
    vm::ExecContext ctx = vm::ExecContext::serial(*probe.world, vm::GasMeter(tx.gas_limit, 0.0));
    ASSERT_EQ(core::execute_transaction(*probe.world, tx, ctx), vm::TxStatus::kSuccess);
    needed.push_back(ctx.gas().used());
  }

  // Sweep limits across the boundary for the FIRST transaction.
  const std::uint64_t full = needed[0];
  for (std::uint64_t limit : {std::uint64_t{0}, full / 4, full / 2, full - 1, full, full + 100}) {
    auto fixture = workload::make_fixture(spec);
    const auto root_before = fixture.world->state_root();
    auto tx = fixture.transactions[0];
    tx.gas_limit = limit;
    vm::ExecContext ctx = vm::ExecContext::serial(*fixture.world, vm::GasMeter(limit, 0.0));
    const vm::TxStatus status = core::execute_transaction(*fixture.world, tx, ctx);
    if (limit >= full) {
      EXPECT_EQ(status, vm::TxStatus::kSuccess) << "limit " << limit;
      // (A successful tx may be a pure read — EtherDoc's exists() — so no
      // state-change assertion here; the rollback property below is the
      // invariant under test.)
    } else {
      EXPECT_EQ(status, vm::TxStatus::kOutOfGas) << "limit " << limit;
      EXPECT_EQ(fixture.world->state_root(), root_before)
          << "state leaked at limit " << limit << "/" << full;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GasBoundary,
                         ::testing::Values(BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction,
                                           BenchmarkKind::kEtherDoc),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

TEST(GasBoundary, OutOfGasBlocksValidateDeterministically) {
  // A block whose transactions carry assorted too-small gas limits must
  // mine, publish, and validate: OutOfGas is part of the block's meaning.
  const WorkloadSpec spec{BenchmarkKind::kMixed, 40, 20, 9};
  auto fixture = workload::make_fixture(spec);
  util::Rng rng(17);
  std::vector<chain::Transaction> txs = fixture.transactions;
  for (auto& tx : txs) {
    if (rng.chance_percent(40)) tx.gas_limit = 1'000 + rng.below(9'000);  // Mostly too small.
  }

  core::Miner miner(*fixture.world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const chain::Block block = miner.mine(txs, fixture.genesis());

  std::size_t out_of_gas = 0;
  for (const auto s : block.statuses) out_of_gas += s == vm::TxStatus::kOutOfGas ? 1 : 0;
  EXPECT_GT(out_of_gas, 0u) << "sweep should produce some OutOfGas transactions";

  auto replica = workload::make_fixture(spec);
  core::Validator validator(*replica.world,
                            core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto report = validator.validate_parallel(block);
  EXPECT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
}

TEST(GasBoundary, DelegationChainExhaustsGasEventually) {
  // Appendix A warns that long delegation chains "might need more gas
  // than is available" — build one long chain and delegate into it with a
  // tight limit.
  const vm::Address ballot_addr = vm::Address::from_u64(1, 0xCC);
  const vm::Address chair = vm::Address::from_u64(1, 0x04);
  vm::World world;
  auto contract = std::make_unique<contracts::Ballot>(
      ballot_addr, chair, std::vector<std::string>{"a"});
  auto* ballot = contract.get();
  world.contracts().add(std::move(contract));

  // voter i delegates to voter i+1, pre-built in genesis state.
  constexpr std::uint64_t kChainLength = 200;
  for (std::uint64_t v = 0; v <= kChainLength; ++v) {
    ballot->raw_register_voter(vm::Address::from_u64(v, 0x01), 1);
  }
  for (std::uint64_t v = 1; v <= kChainLength; ++v) {
    vm::ExecContext ctx = vm::ExecContext::serial(world, vm::GasMeter(10'000'000, 0.0));
    ctx.push_msg(vm::MsgContext{vm::Address::from_u64(v, 0x01), ballot_addr, 0});
    ballot->delegate(ctx, vm::Address::from_u64(v + 1, 0x01));
    ctx.pop_msg();
  }

  // Voter 0 delegates into the 200-hop chain with only 20k gas: each hop
  // reads storage, so the walk must die with OutOfGas, cleanly.
  const auto root_before = world.state_root();
  auto tx = contracts::Ballot::make_delegate_tx(ballot_addr, vm::Address::from_u64(0, 0x01),
                                                vm::Address::from_u64(1, 0x01));
  tx.gas_limit = 20'000;
  vm::ExecContext ctx = vm::ExecContext::serial(world, vm::GasMeter(tx.gas_limit, 0.0));
  EXPECT_EQ(core::execute_transaction(world, tx, ctx), vm::TxStatus::kOutOfGas);
  EXPECT_EQ(world.state_root(), root_before);
}

}  // namespace
}  // namespace concord
