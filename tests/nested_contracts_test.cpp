#include <gtest/gtest.h>

#include <memory>

#include "contracts/payment_splitter.hpp"
#include "contracts/token.hpp"
#include "core/execution.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "vm/errors.hpp"
#include "vm/world.hpp"

namespace concord::contracts {
namespace {

using vm::Address;
using vm::ExecContext;
using vm::GasMeter;
using vm::MsgContext;
using vm::World;

GasMeter test_meter(std::uint64_t limit = vm::gas::kDefaultTxGasLimit) {
  return GasMeter(limit, 0.0);
}

const Address kIssuer = Address::from_u64(1);
const Address kAlice = Address::from_u64(2);
const Address kBob = Address::from_u64(3);
const Address kCarol = Address::from_u64(4);
const Address kTokenAddr = Address::from_u64(60, 0xCC);
const Address kSplitterAddr = Address::from_u64(61, 0xCC);

template <typename Fn>
void as(World& world, const Address& sender, const Address& contract, Fn&& fn) {
  ExecContext ctx = ExecContext::serial(world, test_meter());
  ctx.push_msg(MsgContext{sender, contract, 0});
  fn(ctx);
  ctx.pop_msg();
}

// --------------------------------------------------------------- Token --

class TokenTest : public ::testing::Test {
 protected:
  TokenTest() {
    auto contract = std::make_unique<Token>(kTokenAddr, "CCD", kIssuer);
    token_ = contract.get();
    world_.contracts().add(std::move(contract));
    token_->raw_mint(kAlice, 1'000);
  }

  World world_;
  Token* token_ = nullptr;
};

TEST_F(TokenTest, TransferMovesBalance) {
  as(world_, kAlice, kTokenAddr, [&](ExecContext& ctx) { token_->transfer(ctx, kBob, 250); });
  EXPECT_EQ(token_->raw_balance(kAlice), 750);
  EXPECT_EQ(token_->raw_balance(kBob), 250);
  EXPECT_EQ(token_->raw_total_supply(), 1'000);
}

TEST_F(TokenTest, OverdraftReverts) {
  as(world_, kAlice, kTokenAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(token_->transfer(ctx, kBob, 1'001), vm::RevertError);
  });
  EXPECT_EQ(token_->raw_balance(kAlice), 1'000);
}

TEST_F(TokenTest, NonPositiveTransferReverts) {
  as(world_, kAlice, kTokenAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(token_->transfer(ctx, kBob, 0), vm::RevertError);
    EXPECT_THROW(token_->transfer(ctx, kBob, -5), vm::RevertError);
  });
}

TEST_F(TokenTest, MintOnlyIssuer) {
  as(world_, kIssuer, kTokenAddr, [&](ExecContext& ctx) { token_->mint(ctx, kBob, 50); });
  EXPECT_EQ(token_->raw_balance(kBob), 50);
  as(world_, kAlice, kTokenAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(token_->mint(ctx, kBob, 50), vm::RevertError);
  });
}

TEST_F(TokenTest, BalanceOfReads) {
  as(world_, kBob, kTokenAddr, [&](ExecContext& ctx) {
    EXPECT_EQ(token_->balance_of(ctx, kAlice), 1'000);
    EXPECT_EQ(token_->balance_of(ctx, kCarol), 0);
  });
}

TEST_F(TokenTest, ExecuteDispatchesTransferTx) {
  const auto tx = Token::make_transfer_tx(kTokenAddr, kAlice, kBob, 10);
  ExecContext ctx = ExecContext::serial(world_, test_meter());
  EXPECT_EQ(core::execute_transaction(world_, tx, ctx), vm::TxStatus::kSuccess);
  EXPECT_EQ(token_->raw_balance(kBob), 10);
}

// ------------------------------------------------------ PaymentSplitter --

class SplitterTest : public ::testing::Test {
 protected:
  SplitterTest() {
    auto token = std::make_unique<Token>(kTokenAddr, "CCD", kIssuer);
    token_ = token.get();
    world_.contracts().add(std::move(token));
    auto splitter = std::make_unique<PaymentSplitter>(
        kSplitterAddr, kTokenAddr, std::vector<Address>{kAlice, kBob, kCarol});
    splitter_ = splitter.get();
    world_.contracts().add(std::move(splitter));
  }

  World world_;
  Token* token_ = nullptr;
  PaymentSplitter* splitter_ = nullptr;
};

TEST_F(SplitterTest, DistributesEqualShares) {
  token_->raw_mint(kSplitterAddr, 900);
  as(world_, kIssuer, kSplitterAddr, [&](ExecContext& ctx) { splitter_->distribute(ctx, 900); });
  EXPECT_EQ(token_->raw_balance(kAlice), 300);
  EXPECT_EQ(token_->raw_balance(kBob), 300);
  EXPECT_EQ(token_->raw_balance(kCarol), 300);
  EXPECT_EQ(splitter_->raw_distributions(), 1);
  EXPECT_EQ(splitter_->raw_failed_legs(), 0);
}

TEST_F(SplitterTest, NestedSenderIsSplitterContract) {
  // The Token debits msg.sender — which inside the nested call must be
  // the splitter contract, not the externally-owned account that called
  // distribute. If msg.sender were wrong, this would drain kIssuer.
  token_->raw_mint(kSplitterAddr, 300);
  token_->raw_mint(kIssuer, 77);
  as(world_, kIssuer, kSplitterAddr, [&](ExecContext& ctx) { splitter_->distribute(ctx, 300); });
  EXPECT_EQ(token_->raw_balance(kIssuer), 77);
  EXPECT_EQ(token_->raw_balance(kSplitterAddr), 0);
}

TEST_F(SplitterTest, PartialFailureCommitsSuccessfulLegs) {
  // Enough for two shares only: the third nested transfer reverts, the
  // first two stick — child abort does not abort the parent.
  token_->raw_mint(kSplitterAddr, 200);
  as(world_, kIssuer, kSplitterAddr, [&](ExecContext& ctx) { splitter_->distribute(ctx, 300); });
  EXPECT_EQ(token_->raw_balance(kAlice), 100);
  EXPECT_EQ(token_->raw_balance(kBob), 100);
  EXPECT_EQ(token_->raw_balance(kCarol), 0);
  EXPECT_EQ(splitter_->raw_failed_legs(), 1);
}

TEST_F(SplitterTest, TotalFailureRevertsDistribute) {
  // No balance at all: every leg fails and the whole call reverts, so the
  // stats counters stay untouched.
  as(world_, kIssuer, kSplitterAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(splitter_->distribute(ctx, 300), vm::RevertError);
  });
  EXPECT_EQ(splitter_->raw_distributions(), 0);
}

TEST_F(SplitterTest, TinyAmountReverts) {
  as(world_, kIssuer, kSplitterAddr, [&](ExecContext& ctx) {
    EXPECT_THROW(splitter_->distribute(ctx, 2), vm::RevertError);
  });
}

TEST_F(SplitterTest, RequiresPayees) {
  EXPECT_THROW(PaymentSplitter(Address::from_u64(77, 0xCC), kTokenAddr, {}), vm::BadCall);
}

// -------------------------------- Nested actions through the pipeline ---

/// Builds the token+splitter world used by the mining tests below.
std::unique_ptr<World> splitter_world() {
  auto world = std::make_unique<World>();
  auto token = std::make_unique<Token>(kTokenAddr, "CCD", kIssuer);
  token->raw_mint(kSplitterAddr, 1'000'000);
  for (std::uint64_t s = 0; s < 64; ++s) {
    token->raw_mint(Address::from_u64(100 + s), 10'000);
  }
  world->contracts().add(std::move(token));
  world->contracts().add(std::make_unique<PaymentSplitter>(
      kSplitterAddr, kTokenAddr, std::vector<Address>{kAlice, kBob, kCarol}));
  return world;
}

chain::Block genesis_of(const World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

TEST(NestedPipeline, MinedBlockWithNestedCallsValidates) {
  // A block mixing plain token transfers (distinct senders — parallel)
  // with distribute() calls whose nested transfers all debit the
  // splitter's balance (contended) and credit the same three payees.
  std::vector<chain::Transaction> txs;
  for (std::uint64_t s = 0; s < 64; ++s) {
    txs.push_back(Token::make_transfer_tx(kTokenAddr, Address::from_u64(100 + s),
                                          Address::from_u64(200 + s), 5));
  }
  for (int d = 0; d < 12; ++d) {
    txs.push_back(PaymentSplitter::make_distribute_tx(kSplitterAddr, kIssuer, 300));
  }

  auto miner_world = splitter_world();
  core::Miner miner(*miner_world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const chain::Block block = miner.mine(txs, genesis_of(*miner_world));

  for (const auto status : block.statuses) EXPECT_EQ(status, vm::TxStatus::kSuccess);

  auto validator_world = splitter_world();
  core::Validator validator(*validator_world,
                            core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto report = validator.validate_parallel(block);
  ASSERT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;

  auto& token = validator_world->contracts().as<Token>(kTokenAddr);
  EXPECT_EQ(token.raw_balance(kAlice), 12 * 100);
  EXPECT_EQ(token.raw_balance(kSplitterAddr), 1'000'000 - 12 * 300);
  EXPECT_EQ(token.raw_total_supply(), 1'000'000 + 64 * 10'000);
}

TEST(NestedPipeline, PartialLegFailuresAreDeterministic) {
  // Fund the splitter for exactly 2 full distributions plus 2 legs: the
  // serialization order decides which distribute() call hits the dry
  // balance mid-way, and the validator must reproduce that cut exactly.
  auto miner_world = splitter_world();
  auto& token = miner_world->contracts().as<Token>(kTokenAddr);
  token.raw_set_balance(kSplitterAddr, 800);

  std::vector<chain::Transaction> txs;
  for (int d = 0; d < 4; ++d) {
    txs.push_back(PaymentSplitter::make_distribute_tx(kSplitterAddr, kIssuer, 300));
  }

  core::Miner miner(*miner_world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const chain::Block block = miner.mine(txs, genesis_of(*miner_world));

  auto validator_world = splitter_world();
  auto& vtoken = validator_world->contracts().as<Token>(kTokenAddr);
  vtoken.raw_set_balance(kSplitterAddr, 800);
  core::Validator validator(*validator_world,
                            core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto report = validator.validate_parallel(block);
  ASSERT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
  EXPECT_EQ(validator_world->state_root(), block.header.state_root);
}

}  // namespace
}  // namespace concord::contracts
