#include <gtest/gtest.h>

#include "core/miner.hpp"
#include "core/validator.hpp"
#include "graph/happens_before.hpp"
#include "workload/workload.hpp"

namespace concord::core {
namespace {

using workload::BenchmarkKind;
using workload::WorkloadSpec;

MinerConfig miner_config(bool exclusive) {
  MinerConfig cfg;
  cfg.nanos_per_gas = 0.0;
  cfg.exclusive_locks_only = exclusive;
  return cfg;
}

ValidatorConfig validator_config(bool exclusive) {
  ValidatorConfig cfg;
  cfg.nanos_per_gas = 0.0;
  cfg.exclusive_locks_only = exclusive;
  return cfg;
}

TEST(ExclusiveLocksAblation, BlocksMineAndValidate) {
  // The paper's base design (every abstract lock mutually exclusive) must
  // be fully functional — it is a configuration, not a degraded mode.
  for (const BenchmarkKind kind : workload::kAllBenchmarks) {
    const WorkloadSpec spec{kind, 80, 30, 42};
    auto fixture = workload::make_fixture(spec);
    Miner miner(*fixture.world, miner_config(true));
    const chain::Block block = miner.mine(fixture.transactions, fixture.genesis());

    auto replica = workload::make_fixture(spec);
    Validator validator(*replica.world, validator_config(true));
    const auto report = validator.validate_parallel(block);
    EXPECT_TRUE(report.ok) << workload::to_string(kind) << ": " << to_string(report.reason)
                           << " " << report.detail;
  }
}

TEST(ExclusiveLocksAblation, SerializesCommutingVotes) {
  // Under exclusive-only locks, every Ballot vote conflicts on the shared
  // voteCount entry: the published schedule must chain all successful
  // votes. Under mode-aware locks the same workload is edge-free.
  const WorkloadSpec spec{BenchmarkKind::kBallot, 60, 0, 42};

  auto exclusive_fixture = workload::make_fixture(spec);
  Miner exclusive_miner(*exclusive_fixture.world, miner_config(true));
  const auto exclusive_block =
      exclusive_miner.mine(exclusive_fixture.transactions, exclusive_fixture.genesis());
  const auto exclusive_metrics = graph::compute_metrics(
      exclusive_block.schedule.to_graph(exclusive_block.transactions.size()));

  auto moded_fixture = workload::make_fixture(spec);
  Miner moded_miner(*moded_fixture.world, miner_config(false));
  const auto moded_block = moded_miner.mine(moded_fixture.transactions, moded_fixture.genesis());
  const auto moded_metrics =
      graph::compute_metrics(moded_block.schedule.to_graph(moded_block.transactions.size()));

  EXPECT_EQ(exclusive_metrics.critical_path, 60u);  // Full chain.
  EXPECT_EQ(moded_metrics.critical_path, 1u);       // Fully parallel.
  // Same final state either way (increments commute semantically).
  EXPECT_EQ(exclusive_block.header.state_root, moded_block.header.state_root);
}

TEST(ExclusiveLocksAblation, FlagMismatchIsRejected) {
  // A block mined with commutative modes carries INCREMENT/READ entries;
  // a validator running exclusive-only coarsens its traces to WRITE and
  // must reject (and vice versa) — the flag is consensus-critical.
  const WorkloadSpec spec{BenchmarkKind::kBallot, 50, 20, 42};
  auto fixture = workload::make_fixture(spec);
  Miner miner(*fixture.world, miner_config(false));
  const auto block = miner.mine(fixture.transactions, fixture.genesis());

  auto replica = workload::make_fixture(spec);
  Validator strict(*replica.world, validator_config(true));
  const auto report = strict.validate_parallel(block);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kProfileMismatch);
}

}  // namespace
}  // namespace concord::core
