#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "stm/conflict.hpp"
#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "stm/runtime.hpp"
#include "stm/speculative_action.hpp"

namespace concord::stm {
namespace {

// ---------------------------------------------------------- LockMode ---

TEST(LockMode, ConflictMatrix) {
  using enum LockMode;
  EXPECT_FALSE(conflicts(kRead, kRead));
  EXPECT_FALSE(conflicts(kIncrement, kIncrement));
  EXPECT_TRUE(conflicts(kRead, kWrite));
  EXPECT_TRUE(conflicts(kWrite, kRead));
  EXPECT_TRUE(conflicts(kWrite, kWrite));
  EXPECT_TRUE(conflicts(kRead, kIncrement));
  EXPECT_TRUE(conflicts(kIncrement, kRead));
  EXPECT_TRUE(conflicts(kIncrement, kWrite));
}

TEST(LockMode, Covers) {
  using enum LockMode;
  EXPECT_TRUE(covers(kWrite, kRead));
  EXPECT_TRUE(covers(kWrite, kIncrement));
  EXPECT_TRUE(covers(kWrite, kWrite));
  EXPECT_TRUE(covers(kRead, kRead));
  EXPECT_FALSE(covers(kRead, kWrite));
  EXPECT_FALSE(covers(kRead, kIncrement));
  EXPECT_FALSE(covers(kIncrement, kRead));
}

TEST(LockMode, CombineIsLeastUpperBound) {
  using enum LockMode;
  EXPECT_EQ(combine(kRead, kRead), kRead);
  EXPECT_EQ(combine(kIncrement, kIncrement), kIncrement);
  EXPECT_EQ(combine(kRead, kIncrement), kWrite);
  EXPECT_EQ(combine(kRead, kWrite), kWrite);
  EXPECT_EQ(combine(kIncrement, kWrite), kWrite);
}

// ------------------------------------------------------------ LockId ---

TEST(LockId, DeterministicHashes) {
  EXPECT_EQ(fnv1a64("voters"), fnv1a64("voters"));
  EXPECT_NE(fnv1a64("voters"), fnv1a64("voterz"));
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(LockId, Ordering) {
  const LockId a{1, 5};
  const LockId b{1, 6};
  const LockId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (LockId{1, 5}));
}

// --------------------------------------------------- Basic lifecycle ---

TEST(SpeculativeAction, CommitReleasesLocksAndBumpsCounters) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{1, 1});
  LockProfile profile;
  {
    SpeculativeAction action(rt, 0, rt.next_birth());
    action.acquire(lock, LockMode::kWrite);
    EXPECT_EQ(lock.holder_count(), 1u);
    profile = action.commit();
  }
  EXPECT_EQ(lock.holder_count(), 0u);
  EXPECT_EQ(lock.use_counter(), 1u);
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].lock, (LockId{1, 1}));
  EXPECT_EQ(profile.entries[0].mode, LockMode::kWrite);
  EXPECT_EQ(profile.entries[0].counter, 1u);
  EXPECT_FALSE(profile.reverted);
}

TEST(SpeculativeAction, AbortRunsInversesInReverseOrder) {
  BoostingRuntime rt;
  std::vector<int> undone;
  {
    SpeculativeAction action(rt, 0, rt.next_birth());
    action.log_inverse([&undone] { undone.push_back(1); });
    action.log_inverse([&undone] { undone.push_back(2); });
    action.log_inverse([&undone] { undone.push_back(3); });
    action.abort();
  }
  EXPECT_EQ(undone, (std::vector<int>{3, 2, 1}));
}

TEST(SpeculativeAction, DestructorAbortsActiveAction) {
  BoostingRuntime rt;
  int undone = 0;
  AbstractLock& lock = rt.locks().get(LockId{1, 2});
  {
    SpeculativeAction action(rt, 0, rt.next_birth());
    action.acquire(lock, LockMode::kWrite);
    action.log_inverse([&undone] { ++undone; });
  }
  EXPECT_EQ(undone, 1);
  EXPECT_EQ(lock.holder_count(), 0u);
  EXPECT_EQ(lock.use_counter(), 0u);  // Aborts do not bump use counters.
}

TEST(SpeculativeAction, RevertedCommitUndoesButPublishesProfile) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{1, 3});
  int undone = 0;
  SpeculativeAction action(rt, 7, rt.next_birth());
  action.acquire(lock, LockMode::kWrite);
  action.log_inverse([&undone] { ++undone; });
  const LockProfile profile = action.commit(/*reverted=*/true);
  EXPECT_EQ(undone, 1);
  EXPECT_TRUE(profile.reverted);
  EXPECT_EQ(profile.tx, 7u);
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(lock.use_counter(), 1u);  // Reverted txs still occupy schedule slots.
}

TEST(SpeculativeAction, ReacquireInCoveredModeIsIdempotent) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{2, 0});
  SpeculativeAction action(rt, 0, rt.next_birth());
  action.acquire(lock, LockMode::kWrite);
  action.acquire(lock, LockMode::kRead);
  action.acquire(lock, LockMode::kWrite);
  EXPECT_EQ(action.held_lock_count(), 1u);
  const LockProfile profile = action.commit();
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].mode, LockMode::kWrite);
}

TEST(SpeculativeAction, UpgradePublishesCombinedMode) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{2, 1});
  SpeculativeAction action(rt, 0, rt.next_birth());
  action.acquire(lock, LockMode::kRead);
  action.acquire(lock, LockMode::kWrite);  // Upgrade in place.
  const LockProfile profile = action.commit();
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].mode, LockMode::kWrite);
}

TEST(SpeculativeAction, ReadIncrementCombineToWrite) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{2, 2});
  SpeculativeAction action(rt, 0, rt.next_birth());
  action.acquire(lock, LockMode::kRead);
  action.acquire(lock, LockMode::kIncrement);
  const LockProfile profile = action.commit();
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].mode, LockMode::kWrite);
}

TEST(SpeculativeAction, ProfileIsCanonicallySorted) {
  BoostingRuntime rt;
  SpeculativeAction action(rt, 0, rt.next_birth());
  action.acquire(rt.locks().get(LockId{9, 9}), LockMode::kRead);
  action.acquire(rt.locks().get(LockId{1, 1}), LockMode::kRead);
  action.acquire(rt.locks().get(LockId{5, 5}), LockMode::kRead);
  const LockProfile profile = action.commit();
  ASSERT_EQ(profile.entries.size(), 3u);
  EXPECT_LT(profile.entries[0].lock, profile.entries[1].lock);
  EXPECT_LT(profile.entries[1].lock, profile.entries[2].lock);
}

// ----------------------------------------------------- Mode sharing ----

TEST(AbstractLock, CompatibleModesShareTheLock) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{3, 0});
  SpeculativeAction a(rt, 0, rt.next_birth());
  SpeculativeAction b(rt, 1, rt.next_birth());
  a.acquire(lock, LockMode::kRead);
  b.acquire(lock, LockMode::kRead);  // Must not block.
  EXPECT_EQ(lock.holder_count(), 2u);
  (void)a.commit();
  (void)b.commit();
  EXPECT_EQ(lock.use_counter(), 2u);
}

TEST(AbstractLock, IncrementsShareTheLock) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{3, 1});
  SpeculativeAction a(rt, 0, rt.next_birth());
  SpeculativeAction b(rt, 1, rt.next_birth());
  a.acquire(lock, LockMode::kIncrement);
  b.acquire(lock, LockMode::kIncrement);
  EXPECT_EQ(lock.holder_count(), 2u);
  (void)a.commit();
  (void)b.commit();
}

TEST(AbstractLock, WriterBlocksUntilReaderCommits) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{3, 2});
  SpeculativeAction reader(rt, 0, rt.next_birth());
  reader.acquire(lock, LockMode::kRead);

  std::atomic<bool> writer_acquired{false};
  std::jthread writer_thread([&rt, &lock, &writer_acquired] {
    SpeculativeAction writer(rt, 1, rt.next_birth());
    writer.acquire(lock, LockMode::kWrite);  // Blocks until the reader is done.
    writer_acquired.store(true);
    (void)writer.commit();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_acquired.load());
  (void)reader.commit();
  writer_thread.join();
  EXPECT_TRUE(writer_acquired.load());
  EXPECT_EQ(lock.use_counter(), 2u);
}

TEST(AbstractLock, ConflictingHoldersGetOrderedCounters) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{3, 3});
  LockProfile first;
  LockProfile second;
  {
    SpeculativeAction a(rt, 0, rt.next_birth());
    a.acquire(lock, LockMode::kWrite);
    first = a.commit();
  }
  {
    SpeculativeAction b(rt, 1, rt.next_birth());
    b.acquire(lock, LockMode::kWrite);
    second = b.commit();
  }
  EXPECT_LT(first.entries[0].counter, second.entries[0].counter);
}

// -------------------------------------------------- Nested actions -----

TEST(NestedAction, CommitPassesLocksAndLogToParent) {
  BoostingRuntime rt;
  AbstractLock& parent_lock = rt.locks().get(LockId{4, 0});
  AbstractLock& child_lock = rt.locks().get(LockId{4, 1});
  std::vector<int> undone;

  SpeculativeAction parent(rt, 0, rt.next_birth());
  parent.acquire(parent_lock, LockMode::kWrite);
  parent.log_inverse([&undone] { undone.push_back(1); });
  {
    SpeculativeAction child(parent);
    child.acquire(child_lock, LockMode::kWrite);
    child.log_inverse([&undone] { undone.push_back(2); });
    child.commit_nested();
  }
  EXPECT_EQ(parent.held_lock_count(), 2u);
  EXPECT_EQ(parent.undo_size(), 2u);
  parent.abort();  // Undoes child's work too, child-last... child-first.
  EXPECT_EQ(undone, (std::vector<int>{2, 1}));
  EXPECT_EQ(child_lock.holder_count(), 0u);
}

TEST(NestedAction, AbortUndoesChildButParentRetainsItsLocks) {
  BoostingRuntime rt;
  AbstractLock& parent_lock = rt.locks().get(LockId{4, 2});
  AbstractLock& child_lock = rt.locks().get(LockId{4, 3});
  std::vector<int> undone;

  SpeculativeAction parent(rt, 0, rt.next_birth());
  parent.acquire(parent_lock, LockMode::kWrite);
  parent.log_inverse([&undone] { undone.push_back(1); });
  {
    SpeculativeAction child(parent);
    child.acquire(child_lock, LockMode::kWrite);
    child.log_inverse([&undone] { undone.push_back(2); });
    child.abort();
  }
  EXPECT_EQ(undone, (std::vector<int>{2}));   // Child's effects undone...
  EXPECT_EQ(parent.held_lock_count(), 2u);    // ...but its lock transfers to
  EXPECT_EQ(child_lock.holder_count(), 1u);   // the parent (closed nesting):
  EXPECT_EQ(parent_lock.holder_count(), 1u);  // the child's observation stays
                                              // in the lineage's footprint.
  const LockProfile profile = parent.commit();
  EXPECT_EQ(profile.entries.size(), 2u);
  EXPECT_EQ(undone, (std::vector<int>{2}));   // Commit undoes nothing more.
  EXPECT_EQ(child_lock.holder_count(), 0u);   // Released at root commit.
}

TEST(NestedAction, ChildInheritsParentLocks) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{4, 4});
  SpeculativeAction parent(rt, 0, rt.next_birth());
  parent.acquire(lock, LockMode::kWrite);
  {
    SpeculativeAction child(parent);
    child.acquire(lock, LockMode::kWrite);  // Same lineage: no deadlock, no wait.
    child.commit_nested();
  }
  EXPECT_EQ(parent.held_lock_count(), 1u);
  (void)parent.commit();
}

TEST(NestedAction, GrandchildNesting) {
  BoostingRuntime rt;
  AbstractLock& lock = rt.locks().get(LockId{4, 5});
  std::vector<int> undone;
  SpeculativeAction parent(rt, 0, rt.next_birth());
  {
    SpeculativeAction child(parent);
    child.log_inverse([&undone] { undone.push_back(1); });
    {
      SpeculativeAction grandchild(child);
      grandchild.acquire(lock, LockMode::kWrite);
      grandchild.log_inverse([&undone] { undone.push_back(2); });
      grandchild.commit_nested();
    }
    EXPECT_EQ(child.held_lock_count(), 1u);
    child.commit_nested();
  }
  EXPECT_EQ(parent.held_lock_count(), 1u);
  EXPECT_EQ(parent.undo_size(), 2u);
  (void)parent.commit();
  EXPECT_TRUE(undone.empty());
}

// ------------------------------------------------- Deadlock handling ---

TEST(Deadlock, TwoActionCycleIsResolved) {
  BoostingRuntime rt;
  AbstractLock& lock_a = rt.locks().get(LockId{5, 0});
  AbstractLock& lock_b = rt.locks().get(LockId{5, 1});

  std::barrier sync(2);
  std::atomic<int> aborted{0};
  std::atomic<int> committed{0};

  const auto worker = [&](std::uint32_t tx, AbstractLock& first, AbstractLock& second) {
    const std::uint64_t birth = rt.next_birth();
    bool first_attempt = true;
    for (;;) {
      SpeculativeAction action(rt, tx, birth);
      try {
        action.acquire(first, LockMode::kWrite);
        if (first_attempt) {
          // Both workers hold their first lock before either requests the
          // second — a guaranteed cycle on the first attempt.
          first_attempt = false;
          sync.arrive_and_wait();
        }
        action.acquire(second, LockMode::kWrite);
        (void)action.commit();
        committed.fetch_add(1);
        return;
      } catch (const ConflictAbort&) {
        aborted.fetch_add(1);
      }
    }
  };

  std::jthread t1([&] { worker(0, lock_a, lock_b); });
  std::jthread t2([&] { worker(1, lock_b, lock_a); });
  t1.join();
  t2.join();

  EXPECT_EQ(committed.load(), 2);
  EXPECT_GE(aborted.load(), 1);
  EXPECT_GE(rt.deadlocks().victims(), 1u);
}

TEST(Deadlock, VictimsAreYoungest) {
  BoostingRuntime rt;
  AbstractLock& lock_a = rt.locks().get(LockId{5, 2});
  AbstractLock& lock_b = rt.locks().get(LockId{5, 3});

  // Older action takes A then B; younger takes B then A. Exactly one
  // aborts, and by policy it must be the younger (larger birth stamp).
  SpeculativeAction older(rt, 0, rt.next_birth());
  older.acquire(lock_a, LockMode::kWrite);

  std::atomic<bool> younger_aborted{false};
  std::jthread t([&] {
    SpeculativeAction younger(rt, 1, rt.next_birth());
    younger.acquire(lock_b, LockMode::kWrite);
    try {
      younger.acquire(lock_a, LockMode::kWrite);  // Blocks on older.
      (void)younger.commit();
    } catch (const ConflictAbort&) {
      younger_aborted.store(true);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Older now closes the cycle; the detector should doom the younger.
  older.acquire(lock_b, LockMode::kWrite);
  (void)older.commit();
  t.join();
  EXPECT_TRUE(younger_aborted.load());
}

// ------------------------------------------------------------ UndoLog --

TEST(UndoLog, TailReplay) {
  UndoLog log;
  std::vector<int> undone;
  log.record([&undone] { undone.push_back(1); });
  const std::size_t mark = log.mark();
  log.record([&undone] { undone.push_back(2); });
  log.record([&undone] { undone.push_back(3); });
  log.replay_tail_and_discard(mark);
  EXPECT_EQ(undone, (std::vector<int>{3, 2}));
  EXPECT_EQ(log.size(), 1u);
  log.replay_and_clear();
  EXPECT_EQ(undone, (std::vector<int>{3, 2, 1}));
  EXPECT_TRUE(log.empty());
}

// --------------------------------------------------------- LockTable ---

TEST(LockTable, SameIdSameLock) {
  LockTable table;
  AbstractLock& a = table.get(LockId{1, 2});
  AbstractLock& b = table.get(LockId{1, 2});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(LockTable, DistinctIdsDistinctLocks) {
  LockTable table;
  AbstractLock& a = table.get(LockId{1, 2});
  AbstractLock& b = table.get(LockId{1, 3});
  AbstractLock& c = table.get(LockId{2, 2});
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(table.size(), 3u);
}

TEST(LockTable, ResetClearsCountersAndReusesAllocations) {
  LockTable table;
  AbstractLock& before = table.get(LockId{1, 2});
  table.reset();
  // The node survives the reset with its counter zeroed…
  EXPECT_EQ(table.size(), 1u);
  AbstractLock& after = table.get(LockId{1, 2});
  EXPECT_EQ(&before, &after);
  EXPECT_EQ(after.use_counter(), 0u);
  EXPECT_EQ(after.holder_count(), 0u);
  EXPECT_EQ(table.high_water(), 1u);
}

TEST(LockTable, ResetShrinksPastThreshold) {
  LockTable table;
  for (std::uint64_t i = 0; i < 16; ++i) (void)table.get(LockId{1, i});
  EXPECT_EQ(table.high_water(), 16u);
  table.reset(/*shrink_threshold=*/8);
  EXPECT_EQ(table.size(), 0u);
  // The high-water mark survives the shrink.
  EXPECT_EQ(table.high_water(), 16u);
}

TEST(LockTable, ResetAtExactThresholdRecyclesNotDrops) {
  LockTable table;
  for (std::uint64_t i = 0; i < 8; ++i) (void)table.get(LockId{1, i});
  AbstractLock& before = table.get(LockId{1, 0});
  // The fallback is strictly-greater-than: a table sitting exactly at the
  // threshold is still recycled in place…
  table.reset(/*shrink_threshold=*/8);
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(&table.get(LockId{1, 0}), &before);
  // …and one lock past it is dropped wholesale.
  (void)table.get(LockId{1, 8});
  table.reset(/*shrink_threshold=*/8);
  EXPECT_EQ(table.size(), 0u);
}

TEST(LockTable, HighWaterOutlivesDropAndLaterRecycles) {
  LockTable table;
  for (std::uint64_t i = 0; i < 16; ++i) (void)table.get(LockId{1, i});
  table.reset(/*shrink_threshold=*/8);  // Wholesale drop at high water 16.
  ASSERT_EQ(table.size(), 0u);

  // Regrow below the old peak; recycling resets must keep reporting the
  // lifetime peak, not the post-drop working set.
  for (std::uint64_t i = 0; i < 4; ++i) (void)table.get(LockId{2, i});
  table.reset(/*shrink_threshold=*/8);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.high_water(), 16u);
}

// ----------------------------------------------- LockTable decay sweep ---

TEST(LockTableDecay, ColdLocksAgeOutWhileHotLocksSurvive) {
  LockTable table;
  (void)table.get(LockId{1, 1});  // Touched once, then never again.
  // A disjoint-id stream: every block touches fresh ids plus one hot id.
  for (std::uint64_t block = 0; block < 6; ++block) {
    (void)table.get(LockId{2, block});  // Cold: unique to this block.
    (void)table.get(LockId{3, 7});      // Hot: touched every block.
    table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);
  }
  // Cold ids idle ≥ 2 blocks are gone; the hot id and the freshest cold
  // ids (idle 0 and 1 at the last reset) remain.
  EXPECT_EQ(table.size(), 3u);
  EXPECT_GT(table.evicted(), 0u);
  // Recreating an evicted id works (fresh node, zeroed counter).
  EXPECT_EQ(table.get(LockId{1, 1}).use_counter(), 0u);
}

TEST(LockTableDecay, EvictionBoundaryIsBlocksSinceLastTouch) {
  LockTable table;
  (void)table.get(LockId{1, 1});
  // Idle 0 at the first reset, idle 1 at the second: both below the
  // decay horizon of 2 — the lock survives in place…
  AbstractLock& before = table.get(LockId{1, 1});
  table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);
  ASSERT_EQ(table.size(), 1u);
  table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(&table.get(LockId{1, 1}), &before);
  // …but that get() re-stamped it. The reset closing its touch block
  // sees idle 0; the next sees idle 1 — both keep it. At idle 2 the
  // horizon is hit exactly and the sweep evicts.
  table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);  // idle 0
  table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);  // idle 1
  ASSERT_EQ(table.size(), 1u);
  table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/2);  // idle 2
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evicted(), 1u);
}

TEST(LockTableDecay, ZeroDecayBlocksDisablesTheSweep) {
  LockTable table;
  (void)table.get(LockId{1, 1});
  for (int i = 0; i < 10; ++i) {
    table.reset(LockTable::kDefaultShrinkThreshold, /*decay_blocks=*/0);
  }
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.evicted(), 0u);
}

TEST(LockTableDecay, WholesaleDropStillBoundsASingleHugeBlock) {
  LockTable table;
  // One block touches more ids than any decay horizon can shed — the
  // shrink fallback must still fire, hot ids included.
  for (std::uint64_t i = 0; i < 16; ++i) (void)table.get(LockId{1, i});
  table.reset(/*shrink_threshold=*/8, /*decay_blocks=*/2);
  EXPECT_EQ(table.size(), 0u);
  // Wholesale drops are not decay evictions.
  EXPECT_EQ(table.evicted(), 0u);
  EXPECT_EQ(table.high_water(), 16u);
}

TEST(LockTableDecay, SteadyStateUnderDisjointStreamStaysBounded) {
  LockTable table;
  constexpr std::size_t kPerBlock = 10;
  constexpr std::size_t kDecay = 3;
  std::size_t peak = 0;
  for (std::uint64_t block = 0; block < 50; ++block) {
    for (std::uint64_t i = 0; i < kPerBlock; ++i) {
      (void)table.get(LockId{block, i});  // All-new ids every block.
    }
    (void)table.get(LockId{999, 999});  // The hot lock.
    table.reset(LockTable::kDefaultShrinkThreshold, kDecay);
    peak = std::max(peak, table.size());
  }
  // Retained set is bounded by decay_blocks × per-block ids (+ hot), far
  // below the shrink threshold.
  EXPECT_LE(peak, kDecay * (kPerBlock + 1));
  // Every cold id aged out on schedule (10 per reset once the horizon
  // filled: resets 3..49) and the hot lock — idle 0 at every sweep — was
  // never one of them.
  EXPECT_EQ(table.evicted(), 470u);
}

// ------------------------------- LockTable memory stats & reserve hint ---

TEST(LockTableStats, DecayKeepsEntriesAndBucketsBoundedUnderChurn) {
  // The million-id regression, scaled to unit-test time: a long stream
  // touching fresh ids every block must not grow the table with the
  // *cumulative* distinct-id count. Decay bounds the entries; entry
  // bounds cap the bucket arrays (which unordered_map never shrinks on
  // erase); approx_memory_bytes tracks both.
  LockTable table;
  constexpr std::size_t kBlocks = 200;
  constexpr std::size_t kPerBlock = 1'000;
  constexpr std::size_t kDecay = 2;
  std::size_t peak_size = 0;
  std::size_t peak_buckets = 0;
  for (std::uint64_t block = 0; block < kBlocks; ++block) {
    for (std::uint64_t i = 0; i < kPerBlock; ++i) {
      (void)table.get(LockId{block, i});  // All-new ids every block.
    }
    peak_size = std::max(peak_size, table.size());
    peak_buckets = std::max(peak_buckets, table.bucket_count());
    table.reset(LockTable::kDefaultShrinkThreshold, kDecay);
  }
  constexpr std::size_t kTotalIds = kBlocks * kPerBlock;  // 200k ever touched.
  // Live entries never exceed the decay window's worth of blocks (the
  // horizon plus the block just streamed).
  EXPECT_LE(peak_size, (kDecay + 1) * kPerBlock);
  // Buckets track the peak *live* set, not the 200k cumulative ids.
  EXPECT_LT(peak_buckets, kTotalIds / 10);
  // And the byte estimate therefore stays far under the unbounded-growth
  // shape, which would retain all kTotalIds entries.
  constexpr std::size_t kPerEntryFloor = sizeof(void*);  // Deliberately coarse.
  EXPECT_LT(table.memory_high_water(), kTotalIds * kPerEntryFloor * 4);
}

TEST(LockTableStats, WholesaleDropReleasesBucketMemory) {
  LockTable table;
  for (std::uint64_t i = 0; i < 50'000; ++i) (void)table.get(LockId{1, i});
  const std::size_t grown_buckets = table.bucket_count();
  const std::size_t grown_bytes = table.approx_memory_bytes();
  ASSERT_GT(grown_buckets, 50'000u / 2);  // Load factor ≤ 1: buckets ≈ entries.

  table.reset(/*shrink_threshold=*/1'000);
  EXPECT_EQ(table.size(), 0u);
  // The drop must release the bucket arrays too — clear() would keep
  // them, and after a huge block they are most of the footprint. 64
  // stripes of a freshly-constructed map is the floor we allow.
  EXPECT_LE(table.bucket_count(), 64u * 2);
  EXPECT_LT(table.approx_memory_bytes(), grown_bytes / 100);
  // The peak remains visible to stats after the memory is gone.
  EXPECT_GE(table.memory_high_water(), grown_bytes);
  EXPECT_GE(table.high_water(), 50'000u);
}

TEST(LockTableStats, ReservePreBucketsTheExpectedWorkingSet) {
  LockTable table;
  table.reserve(10'000);
  const std::size_t reserved_buckets = table.bucket_count();
  EXPECT_GE(reserved_buckets, 10'000u);

  // Inserting within the hint must not trigger wholesale rehashing: the
  // ids spread unevenly over the 64 stripes, so allow isolated stripes a
  // doubling, but the aggregate stays near the reserved shape. (This is
  // the property the Zipf benchmarks buy with lock_table_reserve.)
  for (std::uint64_t i = 0; i < 6'400; ++i) (void)table.get(LockId{1, i});
  EXPECT_LE(table.bucket_count(), reserved_buckets * 2);
  EXPECT_EQ(table.size(), 6'400u);
}

// ------------------------------------------- Parallel stress (smoke) ---

TEST(StmStress, ManyThreadsDisjointLocksAllCommit) {
  BoostingRuntime rt;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> commits{0};
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rt, &commits, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SpeculativeAction action(rt, static_cast<std::uint32_t>(t * kPerThread + i),
                                 rt.next_birth());
        action.acquire(rt.locks().get(LockId{7, static_cast<std::uint64_t>(t)}),
                       LockMode::kWrite);
        (void)action.commit();
        commits.fetch_add(1);
      }
    });
  }
  threads.clear();  // Join.
  EXPECT_EQ(commits.load(), kThreads * kPerThread);
}

TEST(StmStress, ContendedCounterRemainsConsistent) {
  BoostingRuntime rt;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::int64_t shared_value = 0;  // Guarded by the abstract lock (WRITE mode).
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        for (;;) {
          SpeculativeAction action(rt, 0, rt.next_birth());
          try {
            action.acquire(rt.locks().get(LockId{8, 8}), LockMode::kWrite);
            ++shared_value;
            action.log_inverse([&shared_value] { --shared_value; });
            (void)action.commit();
            break;
          } catch (const ConflictAbort&) {
          }
        }
      }
    });
  }
  threads.clear();
  EXPECT_EQ(shared_value, kThreads * kPerThread);
}

}  // namespace
}  // namespace concord::stm
