#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "contracts/kv_store.hpp"
#include "core/execution.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "stm/runtime.hpp"
#include "util/rng.hpp"
#include "vm/errors.hpp"
#include "vm/lazy_map.hpp"
#include "vm/world.hpp"

namespace concord::vm {
namespace {

GasMeter test_meter() { return GasMeter(gas::kDefaultTxGasLimit, 0.0); }

// ------------------------------------------------------------ LazyMap --

TEST(LazyMap, SerialModeBehavesEagerly) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  ExecContext ctx = ExecContext::serial(world, test_meter());
  map.put(ctx, 1, 10);
  EXPECT_EQ(map.get(ctx, 1), 10);
  EXPECT_EQ(map.raw_get(1), 10);  // Applied immediately — no speculation.
  EXPECT_TRUE(map.erase(ctx, 1));
  EXPECT_EQ(map.raw_get(1), std::nullopt);
}

TEST(LazyMap, SerialRevertRollsBack) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 100);
  ExecContext ctx = ExecContext::serial(world, test_meter());
  map.put(ctx, 1, 200);
  map.put(ctx, 2, 300);
  ctx.rollback_local();
  EXPECT_EQ(map.raw_get(1), 100);
  EXPECT_EQ(map.raw_get(2), std::nullopt);
}

TEST(LazyMap, SpeculativeWritesAreBufferedUntilCommit) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());

  map.put(ctx, 1, 10);
  EXPECT_EQ(map.raw_get(1), std::nullopt);  // Main storage untouched...
  EXPECT_EQ(map.get(ctx, 1), 10);           // ...but reads see own writes.
  EXPECT_EQ(map.pending_lineages(), 1u);

  (void)action.commit();
  EXPECT_EQ(map.raw_get(1), 10);  // Applied at commit.
  EXPECT_EQ(map.pending_lineages(), 0u);
}

TEST(LazyMap, AbortDiscardsBufferInsteadOfUndoing) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 100);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());

  map.put(ctx, 1, 999);
  map.put(ctx, 2, 999);
  action.abort();
  EXPECT_EQ(map.raw_get(1), 100);
  EXPECT_EQ(map.raw_get(2), std::nullopt);
  EXPECT_EQ(map.pending_lineages(), 0u);
}

TEST(LazyMap, RevertedCommitDiscardsBuffer) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());
  map.put(ctx, 7, 7);
  const auto profile = action.commit(/*reverted=*/true);
  EXPECT_TRUE(profile.reverted);
  EXPECT_EQ(map.raw_get(7), std::nullopt);
  EXPECT_EQ(map.pending_lineages(), 0u);
}

TEST(LazyMap, BufferedEraseAppliesAtCommit) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 100);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());

  EXPECT_TRUE(map.erase(ctx, 1));
  EXPECT_EQ(map.raw_get(1), 100);             // Still there physically...
  EXPECT_EQ(map.get(ctx, 1), std::nullopt);   // ...gone for this lineage.
  EXPECT_FALSE(map.erase(ctx, 1));            // Second erase sees the buffer.
  (void)action.commit();
  EXPECT_EQ(map.raw_get(1), std::nullopt);
}

TEST(LazyMap, TwoLineagesBufferIndependently) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction a(rt, 0, rt.next_birth());
  stm::SpeculativeAction b(rt, 1, rt.next_birth());
  ExecContext ctx_a = ExecContext::speculative(world, rt, a, test_meter());
  ExecContext ctx_b = ExecContext::speculative(world, rt, b, test_meter());

  map.put(ctx_a, 1, 10);  // Key 1: lineage a.
  map.put(ctx_b, 2, 20);  // Key 2: lineage b (disjoint locks: no blocking).
  EXPECT_EQ(map.raw_get(1), std::nullopt);  // Neither buffer is visible...
  EXPECT_EQ(map.raw_get(2), std::nullopt);  // ...in main storage yet.
  EXPECT_EQ(map.pending_lineages(), 2u);
  a.abort();
  // After a's abort its lock is free: b may now read key 1 and must NOT
  // see a's discarded buffer. (Reading *while* a held the write lock
  // would rightly block — lineages synchronize through abstract locks.)
  EXPECT_EQ(map.get(ctx_b, 1), std::nullopt);
  (void)b.commit();
  EXPECT_EQ(map.raw_get(1), std::nullopt);
  EXPECT_EQ(map.raw_get(2), 20);
}

TEST(LazyMap, NestedChildAbortRestoresParentBuffer) {
  // Parent buffers key 1 = 10; child overwrites it and buffers key 2; the
  // child aborts → parent's view of key 1 must survive, key 2 must not.
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction parent(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, parent, test_meter());
  ctx.push_msg(MsgContext{Address::from_u64(1), Address::from_u64(2), 0});

  map.put(ctx, 1, 10);
  const bool ok = ctx.nested_call(Address::from_u64(3), 0, [&](ExecContext& inner) {
    map.put(inner, 1, 999);
    map.put(inner, 2, 999);
    EXPECT_EQ(map.get(inner, 1), 999);
    throw RevertError("child fails");
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(map.get(ctx, 1), 10);            // Parent's buffered value restored.
  EXPECT_EQ(map.get(ctx, 2), std::nullopt);  // Child's fresh write gone.
  ctx.pop_msg();
  (void)parent.commit();
  EXPECT_EQ(map.raw_get(1), 10);
  EXPECT_EQ(map.raw_get(2), std::nullopt);
}

TEST(LazyMap, NestedChildCommitMergesIntoParent) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction parent(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, parent, test_meter());
  ctx.push_msg(MsgContext{Address::from_u64(1), Address::from_u64(2), 0});

  (void)ctx.nested_call(Address::from_u64(3), 0, [&](ExecContext& inner) {
    map.put(inner, 5, 50);
  });
  EXPECT_EQ(map.get(ctx, 5), 50);  // Parent sees the child's committed buffer.
  EXPECT_EQ(map.raw_get(5), std::nullopt);
  ctx.pop_msg();
  (void)parent.commit();
  EXPECT_EQ(map.raw_get(5), 50);
}

TEST(LazyMap, HashStateIgnoresPendingBuffers) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 10);
  StateHasher before;
  map.hash_state(before, "m");

  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());
  map.put(ctx, 2, 20);
  StateHasher during;
  map.hash_state(during, "m");
  EXPECT_EQ(before.finish(), during.finish());
  action.abort();
}

// -------------------------------------------------- KvStore + pipeline --

using contracts::KvStore;

const Address kEagerAddr = Address::from_u64(70, 0xCC);
const Address kLazyAddr = Address::from_u64(71, 0xCC);

std::unique_ptr<World> kv_world(KvStore::Backend backend, const Address& addr) {
  auto world = std::make_unique<World>();
  auto store = std::make_unique<KvStore>(addr, backend);
  store->raw_put(0, KvStore::kTombstone);  // One immutable key for reverts.
  world->contracts().add(std::move(store));
  return world;
}

std::vector<chain::Transaction> kv_block(const Address& addr, std::size_t n,
                                         unsigned hot_percent, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Address sender = Address::from_u64(1000 + i, 0x06);
    // Hot traffic hammers key 1; cold traffic spreads across the space.
    const std::uint64_t key = rng.chance_percent(hot_percent) ? 1 : 100 + rng.below(10'000);
    if (rng.chance_percent(25)) {
      txs.push_back(KvStore::make_get_tx(addr, sender, key));
    } else {
      txs.push_back(
          KvStore::make_put_tx(addr, sender, key, static_cast<std::int64_t>(rng.below(1000))));
    }
  }
  return txs;
}

chain::Block genesis_of(const World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

class LazyKvPipeline : public ::testing::TestWithParam<unsigned> {};

TEST_P(LazyKvPipeline, LazyMiningValidatesAndMatchesEagerSchedulesStructure) {
  const unsigned hot = GetParam();
  const auto txs_eager = kv_block(kEagerAddr, 80, hot, 7);
  const auto txs_lazy = kv_block(kLazyAddr, 80, hot, 7);

  auto eager_world = kv_world(KvStore::Backend::kEager, kEagerAddr);
  core::Miner eager_miner(*eager_world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto eager_block = eager_miner.mine(txs_eager, genesis_of(*eager_world));

  auto lazy_world = kv_world(KvStore::Backend::kLazy, kLazyAddr);
  core::Miner lazy_miner(*lazy_world, core::MinerConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto lazy_block = lazy_miner.mine(txs_lazy, genesis_of(*lazy_world));

  // Identical logical workload → identical outcome multiplicity (the
  // schedules themselves may differ: different discovery).
  EXPECT_EQ(eager_block.statuses.size(), lazy_block.statuses.size());

  // Each validates on its own fresh node.
  auto eager_replica = kv_world(KvStore::Backend::kEager, kEagerAddr);
  core::Validator ev(*eager_replica, core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
  EXPECT_TRUE(ev.validate_parallel(eager_block).ok);

  auto lazy_replica = kv_world(KvStore::Backend::kLazy, kLazyAddr);
  core::Validator lv(*lazy_replica, core::ValidatorConfig{.threads = 3, .nanos_per_gas = 0.0});
  const auto report = lv.validate_parallel(lazy_block);
  EXPECT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
}

INSTANTIATE_TEST_SUITE_P(HotKeyLevels, LazyKvPipeline, ::testing::Values(0u, 20u, 60u, 95u),
                         [](const auto& info) {
                           return "hot" + std::to_string(info.param) + "pct";
                         });

TEST(KvStore, TombstoneRejectsWrites) {
  auto world = kv_world(KvStore::Backend::kLazy, kLazyAddr);
  const auto tx = KvStore::make_put_tx(kLazyAddr, Address::from_u64(1), 0, 5);
  ExecContext ctx = ExecContext::serial(*world, test_meter());
  EXPECT_EQ(core::execute_transaction(*world, tx, ctx), TxStatus::kReverted);
  auto& store = world->contracts().as<KvStore>(kLazyAddr);
  EXPECT_EQ(store.raw_get(0), KvStore::kTombstone);
}

TEST(KvStore, EagerAndLazyConvergeToSameState) {
  // Same serialized order ⇒ same final contents, backend-independent.
  auto eager_world = kv_world(KvStore::Backend::kEager, kEagerAddr);
  auto lazy_world = kv_world(KvStore::Backend::kLazy, kLazyAddr);
  const auto txs_e = kv_block(kEagerAddr, 60, 30, 11);
  const auto txs_l = kv_block(kLazyAddr, 60, 30, 11);

  core::Miner me(*eager_world, core::MinerConfig{.threads = 1, .nanos_per_gas = 0.0});
  core::Miner ml(*lazy_world, core::MinerConfig{.threads = 1, .nanos_per_gas = 0.0});
  (void)me.mine(txs_e, genesis_of(*eager_world));
  (void)ml.mine(txs_l, genesis_of(*lazy_world));

  auto& es = eager_world->contracts().as<KvStore>(kEagerAddr);
  auto& ls = lazy_world->contracts().as<KvStore>(kLazyAddr);
  for (std::uint64_t key : {std::uint64_t{1}, std::uint64_t{0}}) {
    EXPECT_EQ(es.raw_get(key), ls.raw_get(key)) << "key " << key;
  }
}

// --------------------------------------------------- LazyMap::fork -------

/// The COW fork's explicit precondition: forks happen at block
/// boundaries, when no lineage has a live overlay — a buffered write
/// would make "the committed state" ambiguous, so forking a
/// non-quiescent map throws, and becomes legal again the moment the
/// overlay resolves (here: by abort).
TEST(LazyMapFork, RefusesLiveOverlaysUntilTheyResolve) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 10);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());
  map.put(ctx, 2, 20);

  LazyMap<std::uint64_t, std::int64_t> replica(1);
  EXPECT_THROW(replica.fork_state_from(map), std::logic_error);

  action.abort();
  EXPECT_EQ(map.pending_lineages(), 0u);
  EXPECT_NO_THROW(replica.fork_state_from(map));
  EXPECT_EQ(replica.raw_get(1), 10);
  EXPECT_EQ(replica.raw_get(2), std::nullopt);  // The abort discarded it.
}

TEST(LazyMapFork, LockSpaceMismatchThrows) {
  LazyMap<std::uint64_t, std::int64_t> a(1);
  LazyMap<std::uint64_t, std::int64_t> b(2);
  EXPECT_THROW(b.fork_state_from(a), std::logic_error);
}

/// Regression for the COW redesign: a fork taken at a quiescent block
/// boundary shares pages with the source, so overlays created in the
/// source *afterwards* — and even their commit, which applies buffered
/// writes into the source's pages — must never reach the fork.
TEST(LazyMapFork, BoundaryForkIsUnaffectedByOverlaysCreatedAfterwards) {
  World world;
  LazyMap<std::uint64_t, std::int64_t> map(1);
  map.raw_put(1, 10);
  map.raw_put(2, 20);

  LazyMap<std::uint64_t, std::int64_t> boundary(1);
  boundary.fork_state_from(map);  // Quiescent: legal, shares pages.

  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());
  map.put(ctx, 1, 999);
  EXPECT_TRUE(map.erase(ctx, 2));

  // Buffered only: invisible everywhere, including the fork.
  EXPECT_EQ(boundary.raw_get(1), 10);
  EXPECT_EQ(boundary.raw_get(2), 20);
  EXPECT_EQ(boundary.pending_lineages(), 0u);

  // Commit applies the overlay into the source's pages — which must
  // detach from the shared ones, leaving the boundary fork frozen.
  (void)action.commit();
  EXPECT_EQ(map.raw_get(1), 999);
  EXPECT_EQ(map.raw_get(2), std::nullopt);
  EXPECT_EQ(boundary.raw_get(1), 10);
  EXPECT_EQ(boundary.raw_get(2), 20);
}

}  // namespace
}  // namespace concord::vm
