// PageArena unit tests: size-class rounding, alignment, free-list
// recycling, slab exhaustion, oversize fallthrough, the allocator
// adaptor's null-handle baseline, and — under the TSan `concurrency`
// lane — three threads forking, materializing and detaching Worlds
// that share one arena (the cross-thread free path the per-class
// mutexes exist for).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "vm/arena.hpp"
#include "vm/world.hpp"

namespace concord::vm {
namespace {

TEST(ArenaSizeClasses, RoundsUpToPowersOfTwoWithinThePooledRange) {
  EXPECT_EQ(PageArena::class_bytes(1), PageArena::kMinBlockBytes);
  EXPECT_EQ(PageArena::class_bytes(63), 64u);
  EXPECT_EQ(PageArena::class_bytes(64), 64u);
  EXPECT_EQ(PageArena::class_bytes(65), 128u);
  EXPECT_EQ(PageArena::class_bytes(129), 256u);
  EXPECT_EQ(PageArena::class_bytes(4096), 4096u);
  EXPECT_EQ(PageArena::class_bytes(4097), 8192u);
  EXPECT_EQ(PageArena::class_bytes(PageArena::kMaxBlockBytes), PageArena::kMaxBlockBytes);
}

TEST(ArenaSizeClasses, OversizeRequestsPassThroughUnrounded) {
  const std::size_t over = PageArena::kMaxBlockBytes + 1;
  EXPECT_FALSE(PageArena::pooled(over));
  EXPECT_EQ(PageArena::class_bytes(over), over);
  EXPECT_TRUE(PageArena::pooled(PageArena::kMaxBlockBytes));
  EXPECT_TRUE(PageArena::pooled(1));
}

TEST(ArenaAllocate, EveryClassIsCacheLineAlignedAndWritable) {
  PageArena arena;
  for (std::size_t bytes = 1; bytes <= PageArena::kMaxBlockBytes; bytes *= 2) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    // Line alignment (not just max_align_t): blocks from adjacent carves
    // must never share a cache line across threads.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % PageArena::kMinBlockBytes, 0u)
        << "class " << bytes;
    std::memset(p, 0xAB, bytes);  // ASan/valgrind would catch a short block.
    arena.deallocate(p, bytes);
  }
}

TEST(ArenaAllocate, FreeListRecyclesTheExactBlockJustFreed) {
  PageArena arena;
  void* first = arena.allocate(200);  // Class 256.
  arena.deallocate(first, 200);
  void* second = arena.allocate(256);  // Same class, different request size.
  EXPECT_EQ(second, first);

  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.fresh_allocs, 1u);
  EXPECT_EQ(stats.recycle_hits, 1u);
  EXPECT_EQ(stats.live_blocks, 1u);
  EXPECT_EQ(stats.live_bytes, 256u);
  arena.deallocate(second, 256);
  EXPECT_EQ(arena.stats().live_blocks, 0u);
}

TEST(ArenaAllocate, ExhaustedSlabStartsANewChunkInsteadOfFailing) {
  PageArena arena;
  // 64 KiB blocks: a 1 MiB slab (minus its header) holds at most 15, so
  // 40 blocks must span at least three chunks.
  constexpr std::size_t kBlock = PageArena::kMaxBlockBytes;
  std::vector<void*> blocks;
  std::set<void*> distinct;
  for (int i = 0; i < 40; ++i) {
    void* p = arena.allocate(kBlock);
    ASSERT_NE(p, nullptr);
    std::memset(p, i, 64);  // Spot-write; full memset of 40x64KiB is slow under TSan.
    blocks.push_back(p);
    distinct.insert(p);
  }
  EXPECT_EQ(distinct.size(), blocks.size());

  const ArenaStats stats = arena.stats();
  EXPECT_GE(stats.chunks, 3u);
  EXPECT_EQ(stats.chunk_bytes, stats.chunks * PageArena::kChunkBytes);
  EXPECT_EQ(stats.live_blocks, 40u);
  EXPECT_EQ(stats.live_high_water, 40u);
  for (void* p : blocks) arena.deallocate(p, kBlock);
  EXPECT_EQ(arena.stats().live_blocks, 0u);
  EXPECT_EQ(arena.stats().live_high_water, 40u);  // High water survives frees.
}

TEST(ArenaAllocate, OversizeGoesToTheHeapAndIsCounted) {
  PageArena arena;
  const std::size_t bytes = PageArena::kMaxBlockBytes * 4;
  void* p = arena.allocate(bytes);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, bytes);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.oversize_allocs, 1u);
  EXPECT_EQ(stats.fresh_allocs, 0u);
  EXPECT_EQ(stats.chunks, 0u);  // No slab was started for it.
  arena.deallocate(p, bytes);
}

TEST(ArenaAllocator, NullHandleFallsBackToTheGlobalHeap) {
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>{}};
  v.assign(1000, 7);
  EXPECT_EQ(v[999], 7);
  EXPECT_EQ(ArenaAllocator<int>{}, ArenaAllocator<long>{});  // Both null.
}

TEST(ArenaAllocator, HandlesCompareByArenaIdentity) {
  ArenaHandle a = make_arena();
  ArenaHandle b = make_arena();
  EXPECT_EQ(ArenaAllocator<int>(a), ArenaAllocator<long>(a));
  EXPECT_FALSE(ArenaAllocator<int>(a) == ArenaAllocator<int>(b));
  EXPECT_FALSE(ArenaAllocator<int>(a) == ArenaAllocator<int>{});
}

TEST(ArenaMakeShared, SoleOwnerSemanticsAndNonOwningControlBlock) {
  ArenaHandle arena = make_arena();
  std::shared_ptr<int> sp = arena_make_shared<int>(arena, 42);
  // allocate_shared must preserve plain shared_ptr semantics — the COW
  // layer's sole_owner (use_count()==1) detach protocol rides on it.
  EXPECT_EQ(sp.use_count(), 1);
  EXPECT_EQ(*sp, 42);
  auto copy = sp;
  EXPECT_EQ(sp.use_count(), 2);
  copy.reset();
  EXPECT_EQ(sp.use_count(), 1);

  // The control block deliberately does NOT own the arena (that refcount
  // traffic is the thing the raw-pointer allocator removes); the only
  // owner here is our handle. Blocks must be released before it drops.
  std::weak_ptr<PageArena> watch = arena;
  sp.reset();
  arena.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(ArenaMakeShared, WorldLineageOwnsTheArenaItsPagesLiveIn) {
  // The lifetime contract behind the non-owning allocator: every object
  // rooting arena-backed pages (World, and each COW collection through
  // its arena_ member) holds an ArenaHandle, so pages can never outlive
  // the arena even when the creating handle is long gone.
  std::weak_ptr<PageArena> watch;
  {
    auto world = std::make_unique<World>(make_arena());
    watch = world->arena();
    for (std::uint64_t i = 0; i < 256; ++i) {
      world->balances().raw_set(Address::from_u64(i, 0x5A), 10);
    }
    WorldSnapshot snap(*world);
    world.reset();
    // The snapshot's frozen fork still owns the arena its pages live in.
    EXPECT_FALSE(watch.expired());
    EXPECT_EQ(snap.world().balances().raw_get(Address::from_u64(7, 0x5A)), 10);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(ArenaMakeShared, NullHandleUsesPlainMakeShared) {
  std::shared_ptr<int> sp = arena_make_shared<int>(ArenaHandle{}, 7);
  EXPECT_EQ(sp.use_count(), 1);
  EXPECT_EQ(*sp, 7);
}

/// The TSan-lane case: three threads hammer one arena through the full
/// World lifecycle — materialize a replica from a shared snapshot,
/// detach pages by writing, freeze their own snapshots, drop everything.
/// Pages freed by one thread are recycled by another; any missing
/// synchronization in the free lists or the sole_owner handoff shows up
/// under -fsanitize=thread.
TEST(ArenaConcurrency, ThreeThreadsForkMaterializeDetachOnOneArena) {
  World genesis;  // Default constructor: arena on.
  for (std::uint64_t i = 0; i < 512; ++i) {
    genesis.balances().raw_set(Address::from_u64(i, 0xAA), 1000);
  }
  const WorldSnapshot snap(genesis);
  const util::Hash256 genesis_root = snap.state_root();

  constexpr int kThreads = 3;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&snap, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::unique_ptr<World> replica = snap.materialize();
        // Touch a thread-distinct key range: detaches pages, allocates
        // from (and later frees back to) the shared arena.
        for (std::uint64_t i = 0; i < 64; ++i) {
          replica->balances().raw_set(
              Address::from_u64(1'000 + static_cast<std::uint64_t>(t) * 64 + i, 0xAA),
              static_cast<std::int64_t>(round + 1));
        }
        const WorldSnapshot boundary(*replica);
        std::unique_ptr<World> second = boundary.materialize();
        second->balances().raw_set(Address::from_u64(static_cast<std::uint64_t>(t), 0xBB),
                                   7);
        // replica, boundary and second all die here — frees race with
        // the other threads' allocations by design.
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // The genesis snapshot was never written through: its root must be
  // untouched by all that churn.
  EXPECT_EQ(snap.state_root(), genesis_root);
  EXPECT_GT(genesis.arena_stats().recycle_hits, 0u);
}

// ---------------------------------------- Stripe affinity + stealing ---

/// Runs `body` on a fresh thread pinned to `stripe` and joins — the
/// explicit bind is thread-local and sticky, so tests never bind the
/// gtest main thread.
template <typename Fn>
void on_bound_thread(unsigned stripe, Fn body) {
  std::thread th([stripe, body = std::move(body)] {
    PageArena::bind_thread_stripe(stripe);
    body();
  });
  th.join();
}

TEST(ArenaAffinity, BoundThreadsShareAStripeWithoutStealing) {
  PageArena arena;
  void* freed = nullptr;
  // Thread A, stripe 2: allocate a block and free it into stripe 2's list.
  on_bound_thread(2, [&] {
    freed = arena.allocate(128);
    arena.deallocate(freed, 128);
  });
  // Thread B, same stripe: the free block is on its OWN list — recycled
  // directly, no sibling probing. This is the per-shard affinity win.
  on_bound_thread(2, [&] {
    void* block = arena.allocate(128);
    EXPECT_EQ(block, freed);
    arena.deallocate(block, 128);
  });
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.recycle_hits, 1u);  // B recycled A's block (A's alloc was fresh).
  EXPECT_EQ(stats.steal_attempts, 0u);
  EXPECT_EQ(stats.steal_hits, 0u);
}

TEST(ArenaAffinity, CrossStripeFreeIsAdoptedByACountedSteal) {
  PageArena arena;
  // Stripe 0 ends up holding the only free block of the class…
  on_bound_thread(0, [&] {
    void* block = arena.allocate(128);
    arena.deallocate(block, 128);
  });
  // …and stripe 5's first allocation finds its own list and bump run
  // empty, probes the siblings, and adopts stripe 0's list — exactly one
  // counted steal instead of carving a fresh run.
  on_bound_thread(5, [&] {
    void* block = arena.allocate(128);
    arena.deallocate(block, 128);
  });
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.steal_attempts, 1u);
  EXPECT_EQ(stats.steal_hits, 1u);
  EXPECT_EQ(stats.recycle_hits, 1u);  // The stolen block satisfied the alloc.
}

TEST(ArenaAffinity, BindWrapsModuloStripeCount) {
  PageArena arena;
  void* freed = nullptr;
  on_bound_thread(3, [&] {
    freed = arena.allocate(64);
    arena.deallocate(freed, 64);
  });
  // kStripeCount + 3 wraps onto stripe 3: same list, direct recycle.
  on_bound_thread(PageArena::kStripeCount + 3, [&] {
    void* block = arena.allocate(64);
    EXPECT_EQ(block, freed);
    arena.deallocate(block, 64);
  });
  EXPECT_EQ(arena.stats().steal_attempts, 0u);
}

}  // namespace
}  // namespace concord::vm
