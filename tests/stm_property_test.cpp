// Property-style tests of the central §5 claim, at the STM layer (no
// contracts, no chain): every parallel speculative execution is
// equivalent to the serial execution, in the discovered order, of the
// same transactions from the same initial state.
//
// Transactions here are random programs over boosted storage — reads,
// writes, commutative adds and read-dependent writes (whose outcome is
// order-sensitive, so any serializability bug shows up as a state
// mismatch) — executed by a miniature miner loop.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/happens_before.hpp"
#include "stm/conflict.hpp"
#include "stm/runtime.hpp"
#include "util/rng.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_map.hpp"
#include "vm/exec_context.hpp"
#include "vm/world.hpp"

namespace concord {
namespace {

using stm::LockProfile;

constexpr std::uint64_t kKeySpace = 8;  // Small: plenty of contention.

/// One primitive storage operation of a random transaction.
struct Op {
  enum class Kind : std::uint8_t {
    kRead,          // map[key]
    kWrite,         // map[key] = value
    kAdd,           // counters[key] += value (commutative)
    kReadDepWrite,  // map[key2] = map[key] + value (order-sensitive!)
    kCounterRead,   // counters[key]
  };
  Kind kind = Kind::kRead;
  std::uint64_t key = 0;
  std::uint64_t key2 = 0;
  std::int64_t value = 0;
};

using TxProgram = std::vector<Op>;

/// Shared state under test: one boosted map + one counter map.
struct Storage {
  Storage() : map(1), counters(2) {}
  vm::BoostedMap<std::uint64_t, std::int64_t> map;
  vm::BoostedCounterMap<std::uint64_t> counters;

  /// Full raw snapshot for equality checks.
  [[nodiscard]] std::vector<std::int64_t> snapshot() const {
    std::vector<std::int64_t> out;
    for (std::uint64_t k = 0; k < kKeySpace; ++k) {
      out.push_back(map.raw_get(k).value_or(-1));
      out.push_back(counters.raw_get(k));
    }
    return out;
  }
};

void run_program(const TxProgram& program, Storage& storage, vm::ExecContext& ctx) {
  for (const Op& op : program) {
    switch (op.kind) {
      case Op::Kind::kRead:
        (void)storage.map.get(ctx, op.key);
        break;
      case Op::Kind::kWrite:
        storage.map.put(ctx, op.key, op.value);
        break;
      case Op::Kind::kAdd:
        storage.counters.add(ctx, op.key, op.value);
        break;
      case Op::Kind::kReadDepWrite: {
        // For-update on the read leg: this op writes key2, but reading
        // key with intent "influences a write" keeps the pattern
        // deadlock-lean the same way contract code does. The read itself
        // targets a *different* key than the write, so plain READ mode is
        // the honest footprint.
        const std::int64_t seen = storage.map.get(ctx, op.key).value_or(0);
        storage.map.put(ctx, op.key2, seen + op.value);
        break;
      }
      case Op::Kind::kCounterRead:
        (void)storage.counters.get(ctx, op.key);
        break;
    }
  }
}

TxProgram random_program(util::Rng& rng) {
  TxProgram program;
  const std::size_t ops = 1 + rng.below(5);
  for (std::size_t i = 0; i < ops; ++i) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng.below(5));
    op.key = rng.below(kKeySpace);
    op.key2 = rng.below(kKeySpace);
    op.value = static_cast<std::int64_t>(rng.below(100)) + 1;
    program.push_back(op);
  }
  return program;
}

/// Miniature Algorithm 1: runs all programs speculatively on `threads`
/// worker threads against `storage`, returning per-tx lock profiles.
std::vector<LockProfile> mine_programs(const std::vector<TxProgram>& programs, Storage& storage,
                                       unsigned threads) {
  stm::BoostingRuntime rt;
  vm::World world;  // ExecContext needs one; the programs never touch it.
  std::vector<LockProfile> profiles(programs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= programs.size()) return;
        const std::uint64_t birth = rt.next_birth();
        for (;;) {
          stm::SpeculativeAction action(rt, static_cast<std::uint32_t>(i), birth);
          vm::ExecContext ctx = vm::ExecContext::speculative(
              world, rt, action, vm::GasMeter(vm::gas::kDefaultTxGasLimit, 0.0));
          try {
            run_program(programs[i], storage, ctx);
            profiles[i] = action.commit();
            break;
          } catch (const stm::ConflictAbort&) {
            continue;  // Retry with the same birth stamp.
          } catch (...) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  workers.clear();  // Join.
  EXPECT_FALSE(failed.load());
  return profiles;
}

/// Serial oracle: executes the programs one at a time in `order`.
void run_serial(const std::vector<TxProgram>& programs, Storage& storage,
                const std::vector<std::uint32_t>& order) {
  vm::World world;
  for (const std::uint32_t i : order) {
    vm::ExecContext ctx =
        vm::ExecContext::serial(world, vm::GasMeter(vm::gas::kDefaultTxGasLimit, 0.0));
    run_program(programs[i], storage, ctx);
    ctx.commit_local();
  }
}

class StmSerializability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StmSerializability, ParallelEqualsSerialInDiscoveredOrder) {
  util::Rng rng(GetParam());
  const std::size_t tx_count = 40 + rng.below(60);
  std::vector<TxProgram> programs;
  programs.reserve(tx_count);
  for (std::size_t i = 0; i < tx_count; ++i) programs.push_back(random_program(rng));

  // Parallel speculative execution.
  Storage parallel_storage;
  const auto profiles = mine_programs(programs, parallel_storage, 4);

  // Discover the equivalent serial order.
  const auto hb = graph::derive_happens_before(profiles, tx_count);
  const auto order = hb.topological_order();
  ASSERT_TRUE(order.has_value()) << "2PL must yield an acyclic happens-before graph";

  // Serial oracle from the same (fresh) initial state.
  Storage serial_storage;
  run_serial(programs, serial_storage, *order);

  EXPECT_EQ(parallel_storage.snapshot(), serial_storage.snapshot())
      << "parallel execution diverged from its own discovered serial order";
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StmSerializability,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{21}),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(StmSerializability, HighContentionTwoKeys) {
  // Everything hammers two keys: maximal conflict, heavy blocking, likely
  // deadlock victims — the discovered order must still be an equivalent
  // serialization.
  util::Rng rng(777);
  std::vector<TxProgram> programs;
  for (std::size_t i = 0; i < 120; ++i) {
    TxProgram p;
    p.push_back(Op{Op::Kind::kReadDepWrite, rng.below(2), rng.below(2),
                   static_cast<std::int64_t>(rng.below(10)) + 1});
    programs.push_back(std::move(p));
  }
  Storage parallel_storage;
  const auto profiles = mine_programs(programs, parallel_storage, 6);
  const auto order = graph::derive_happens_before(profiles, programs.size()).topological_order();
  ASSERT_TRUE(order.has_value());
  Storage serial_storage;
  run_serial(programs, serial_storage, *order);
  EXPECT_EQ(parallel_storage.snapshot(), serial_storage.snapshot());
}

TEST(StmSerializability, PureAddsCommuteToSameTotals) {
  // Commutative adds only: zero edges expected, totals must match the sum
  // regardless of interleaving.
  std::vector<TxProgram> programs;
  std::int64_t expected_total = 0;
  util::Rng rng(31);
  for (std::size_t i = 0; i < 200; ++i) {
    const auto delta = static_cast<std::int64_t>(rng.below(50)) + 1;
    expected_total += delta;
    programs.push_back({Op{Op::Kind::kAdd, 3, 0, delta}});
  }
  Storage storage;
  const auto profiles = mine_programs(programs, storage, 8);
  EXPECT_EQ(storage.counters.raw_get(3), expected_total);
  EXPECT_EQ(graph::derive_happens_before(profiles, programs.size()).edge_count(), 0u);
}

TEST(StmSerializability, DeadlockProneOrderingsAllCommit) {
  // Pairs of writes in opposite key orders: a deadlock factory. Progress
  // (every tx commits) and serializability must both survive.
  std::vector<TxProgram> programs;
  for (std::size_t i = 0; i < 100; ++i) {
    TxProgram p;
    const std::uint64_t a = i % 2 == 0 ? 0 : 1;
    p.push_back(Op{Op::Kind::kWrite, a, 0, static_cast<std::int64_t>(i)});
    p.push_back(Op{Op::Kind::kWrite, 1 - a, 0, static_cast<std::int64_t>(i)});
    programs.push_back(std::move(p));
  }
  Storage parallel_storage;
  const auto profiles = mine_programs(programs, parallel_storage, 6);
  for (const auto& profile : profiles) {
    EXPECT_EQ(profile.entries.size(), 2u);  // Both locks in every profile.
  }
  const auto order = graph::derive_happens_before(profiles, programs.size()).topological_order();
  ASSERT_TRUE(order.has_value());
  Storage serial_storage;
  run_serial(programs, serial_storage, *order);
  EXPECT_EQ(parallel_storage.snapshot(), serial_storage.snapshot());
}

}  // namespace
}  // namespace concord
