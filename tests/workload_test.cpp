#include <gtest/gtest.h>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/simple_auction.hpp"
#include "contracts/token.hpp"
#include "workload/workload.hpp"

namespace concord::workload {
namespace {

// ------------------------------------------------------ Conflict math ---

TEST(ConflictCount, ZeroPercentIsZero) {
  EXPECT_EQ(conflicting_tx_count(200, 0), 0u);
}

TEST(ConflictCount, HundredPercentIsEverything) {
  EXPECT_EQ(conflicting_tx_count(200, 100), 200u);
}

TEST(ConflictCount, RoundsUpToPairs) {
  // 15% of 10 = 1.5 → 1 → rounded to 2 (a conflict needs a partner).
  EXPECT_EQ(conflicting_tx_count(10, 15), 2u);
  EXPECT_EQ(conflicting_tx_count(100, 15), 16u);  // 15 → 16.
  EXPECT_EQ(conflicting_tx_count(200, 15), 30u);
}

TEST(ConflictCount, NeverExceedsTransactionCount) {
  for (unsigned c : {0u, 15u, 50u, 99u, 100u}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{10}, std::size_t{401}}) {
      EXPECT_LE(conflicting_tx_count(n, c), n) << n << " txs at " << c << "%";
    }
  }
}

// ---------------------------------------------------------- Fixtures ----

TEST(Fixture, DeterministicForSameSpec) {
  const WorkloadSpec spec{BenchmarkKind::kMixed, 120, 40, 99};
  const Fixture a = make_fixture(spec);
  const Fixture b = make_fixture(spec);
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.world->state_root(), b.world->state_root());
}

TEST(Fixture, SeedChangesOrderNotSemantics) {
  WorkloadSpec spec{BenchmarkKind::kBallot, 100, 20, 1};
  const Fixture a = make_fixture(spec);
  spec.seed = 2;
  const Fixture b = make_fixture(spec);
  EXPECT_NE(a.transactions, b.transactions);          // Different shuffle.
  EXPECT_EQ(a.world->state_root(), b.world->state_root());  // Same genesis.
}

TEST(Fixture, RequestedSizeIsHonored) {
  for (const BenchmarkKind kind : kAllBenchmarks) {
    for (const std::size_t n : {std::size_t{10}, std::size_t{33}, std::size_t{200}}) {
      const Fixture fixture = make_fixture(WorkloadSpec{kind, n, 15, 42});
      EXPECT_EQ(fixture.transactions.size(), n)
          << to_string(kind) << " at " << n << " transactions";
    }
  }
}

TEST(Fixture, GenesisCommitsToInitialState) {
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kBallot, 50, 0, 42});
  const chain::Block genesis = fixture.genesis();
  EXPECT_EQ(genesis.header.number, 0u);
  EXPECT_EQ(genesis.header.state_root, fixture.world->state_root());
  EXPECT_TRUE(genesis.commitments_consistent());
}

TEST(BallotWorkload, DoubleVotersMatchConflictPercent) {
  const std::size_t n = 100;
  const unsigned conflict = 40;
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kBallot, n, conflict, 42});

  // Count transactions per sender: conflicting voters appear twice.
  std::map<vm::Address, int> per_sender;
  for (const auto& tx : fixture.transactions) ++per_sender[tx.sender];
  std::size_t doubled = 0;
  for (const auto& [sender, count] : per_sender) {
    EXPECT_LE(count, 2);
    doubled += count == 2 ? 2 : 0;
  }
  EXPECT_EQ(doubled, conflicting_tx_count(n, conflict));
}

TEST(BallotWorkload, AllVotersRegisteredWithWeightOne) {
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kBallot, 60, 30, 42});
  auto& ballot = fixture.world->contracts().as<contracts::Ballot>(fixture.ballot);
  for (const auto& tx : fixture.transactions) {
    EXPECT_EQ(ballot.raw_voter(tx.sender).weight, 1) << tx.sender.to_hex();
  }
}

TEST(AuctionWorkload, SplitsWithdrawersAndBidders) {
  const std::size_t n = 100;
  const unsigned conflict = 30;
  const Fixture fixture =
      make_fixture(WorkloadSpec{BenchmarkKind::kSimpleAuction, n, conflict, 42});
  std::size_t withdraws = 0;
  std::size_t bid_plus_ones = 0;
  for (const auto& tx : fixture.transactions) {
    if (tx.selector == contracts::SimpleAuction::kWithdraw) ++withdraws;
    if (tx.selector == contracts::SimpleAuction::kBidPlusOne) ++bid_plus_ones;
  }
  EXPECT_EQ(bid_plus_ones, conflicting_tx_count(n, conflict));
  EXPECT_EQ(withdraws + bid_plus_ones, n);

  // Every withdrawer has a seeded pending return to collect.
  auto& auction = fixture.world->contracts().as<contracts::SimpleAuction>(fixture.auction);
  for (const auto& tx : fixture.transactions) {
    if (tx.selector == contracts::SimpleAuction::kWithdraw) {
      EXPECT_GT(auction.raw_pending(tx.sender), 0);
    }
  }
}

TEST(AuctionWorkload, EscrowCoversLiabilities) {
  const Fixture fixture =
      make_fixture(WorkloadSpec{BenchmarkKind::kSimpleAuction, 80, 25, 42});
  auto& auction = fixture.world->contracts().as<contracts::SimpleAuction>(fixture.auction);
  vm::Amount liabilities = auction.raw_highest_bid();
  for (const auto& tx : fixture.transactions) liabilities += auction.raw_pending(tx.sender);
  EXPECT_GE(fixture.world->balances().raw_get(fixture.auction), liabilities);
}

TEST(EtherDocWorkload, TransfersTargetTheCreator) {
  const std::size_t n = 90;
  const unsigned conflict = 50;
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kEtherDoc, n, conflict, 42});
  auto& etherdoc = fixture.world->contracts().as<contracts::EtherDoc>(fixture.etherdoc);

  std::size_t transfers = 0;
  for (const auto& tx : fixture.transactions) {
    if (tx.selector == contracts::EtherDoc::kTransferOwnership) {
      ++transfers;
      util::ByteReader args(tx.args);
      const std::uint64_t hashcode = args.get_varint();
      EXPECT_TRUE(etherdoc.raw_exists(hashcode));
      EXPECT_EQ(etherdoc.raw_document(hashcode).owner, tx.sender);  // Sender owns it.
      vm::Address to;
      const auto raw = args.get_raw(20);
      std::copy(raw.begin(), raw.end(), to.bytes.begin());
      EXPECT_EQ(to, etherdoc.creator());
    }
  }
  EXPECT_EQ(transfers, conflicting_tx_count(n, conflict));
}

TEST(MixedWorkload, CombinesAllThreeContracts) {
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kMixed, 120, 30, 42});
  std::size_t ballot = 0;
  std::size_t auction = 0;
  std::size_t etherdoc = 0;
  for (const auto& tx : fixture.transactions) {
    if (tx.contract == fixture.ballot) ++ballot;
    if (tx.contract == fixture.auction) ++auction;
    if (tx.contract == fixture.etherdoc) ++etherdoc;
  }
  EXPECT_EQ(ballot + auction + etherdoc, 120u);
  // "Equal proportions", remainder going to the first benchmark.
  EXPECT_EQ(auction, 40u);
  EXPECT_EQ(etherdoc, 40u);
  EXPECT_EQ(ballot, 40u);
}

TEST(MixedWorkload, HandlesNonDivisibleSizes) {
  const Fixture fixture = make_fixture(WorkloadSpec{BenchmarkKind::kMixed, 100, 15, 42});
  EXPECT_EQ(fixture.transactions.size(), 100u);
}

TEST(Workload, ZeroTransactionsIsValid) {
  for (const BenchmarkKind kind : kAllBenchmarks) {
    const Fixture fixture = make_fixture(WorkloadSpec{kind, 0, 50, 42});
    EXPECT_TRUE(fixture.transactions.empty());
    EXPECT_FALSE(fixture.genesis().header.state_root.is_zero());
  }
}

TEST(Workload, NamesAreStable) {
  EXPECT_EQ(to_string(BenchmarkKind::kBallot), "Ballot");
  EXPECT_EQ(to_string(BenchmarkKind::kSimpleAuction), "SimpleAuction");
  EXPECT_EQ(to_string(BenchmarkKind::kEtherDoc), "EtherDoc");
  EXPECT_EQ(to_string(BenchmarkKind::kMixed), "Mixed");
}

// ------------------------------------------- Zipf large-state fixtures ---

TEST(ZipfFixture, DeterministicForSameSpec) {
  ZipfSpec spec;
  spec.accounts = 2'000;
  spec.transactions = 200;
  const Fixture a = make_zipf_fixture(spec);
  const Fixture b = make_zipf_fixture(spec);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.world->state_root(), b.world->state_root());
}

TEST(ZipfFixture, ArenaIsInvisibleToStateAndTransactions) {
  // The memory-layer acceptance property, in unit form: same spec with
  // the arena on and off must produce byte-identical genesis roots and
  // transaction streams for every scenario.
  for (const ZipfScenario scenario : kAllZipfScenarios) {
    ZipfSpec on;
    on.scenario = scenario;
    on.accounts = 3'000;
    on.transactions = 150;
    ZipfSpec off = on;
    off.use_arena = false;

    const Fixture with_arena = make_zipf_fixture(on);
    const Fixture without = make_zipf_fixture(off);
    EXPECT_NE(with_arena.world->arena(), nullptr);
    EXPECT_EQ(without.world->arena(), nullptr);
    EXPECT_EQ(with_arena.world->state_root(), without.world->state_root())
        << to_string(scenario);
    EXPECT_EQ(with_arena.transactions, without.transactions);
  }
}

TEST(PaperFixture, ArenaIsInvisibleToStateAndTransactions) {
  // Same property for the paper's four benchmark workloads.
  for (const BenchmarkKind kind : kAllBenchmarks) {
    WorkloadSpec on;
    on.kind = kind;
    on.transactions = 120;
    WorkloadSpec off = on;
    off.use_arena = false;

    const Fixture with_arena = make_fixture(on);
    const Fixture without = make_fixture(off);
    EXPECT_EQ(with_arena.world->state_root(), without.world->state_root())
        << to_string(kind);
    EXPECT_EQ(with_arena.transactions, without.transactions);
  }
}

TEST(ZipfFixture, GenesisSeedsTheRequestedAccountCount) {
  ZipfSpec spec;
  spec.scenario = ZipfScenario::kTokenTransfers;
  spec.accounts = 1'500;
  spec.transactions = 50;
  const Fixture fixture = make_zipf_fixture(spec);
  ASSERT_NE(fixture.world, nullptr);
  auto& token = fixture.world->contracts().as<contracts::Token>(fixture.token);
  EXPECT_EQ(token.holder_count(), 1'500u);
  EXPECT_EQ(fixture.transactions.size(), 50u);
}

TEST(ZipfFixture, ScenarioNamesAreStable) {
  EXPECT_EQ(to_string(ZipfScenario::kTokenTransfers), "TokenTransfers");
  EXPECT_EQ(to_string(ZipfScenario::kHotPool), "HotPool");
  EXPECT_EQ(to_string(ZipfScenario::kAirdrop), "Airdrop");
}

}  // namespace
}  // namespace concord::workload
