#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "node/mempool.hpp"

namespace concord::node {
namespace {

chain::Transaction make_tx(std::uint64_t producer, std::uint32_t seq,
                           std::uint64_t gas_limit = vm::gas::kDefaultTxGasLimit) {
  chain::Transaction tx;
  tx.contract = vm::Address::from_u64(1, 0xAA);
  tx.sender = vm::Address::from_u64(producer, 0x01);
  tx.selector = seq;
  tx.gas_limit = gas_limit;
  return tx;
}

std::vector<chain::Transaction> make_stream(std::size_t n) {
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) txs.push_back(make_tx(0, static_cast<std::uint32_t>(i)));
  return txs;
}

// ------------------------------------------------------ Batch policy ---

TEST(Mempool, CutsBatchesAtTargetTxCount) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  EXPECT_EQ(pool.submit_many(make_stream(10)), 10u);
  pool.close();

  auto first = pool.next_batch();
  auto second = pool.next_batch();
  auto remainder = pool.next_batch();
  ASSERT_TRUE(first && second && remainder);
  EXPECT_EQ(first->size(), 4u);
  EXPECT_EQ(second->size(), 4u);
  EXPECT_EQ(remainder->size(), 2u);  // Close drains the short tail.
  EXPECT_EQ(pool.next_batch(), std::nullopt);

  // FIFO: batches partition the stream in submission order.
  EXPECT_EQ((*first)[0].selector, 0u);
  EXPECT_EQ((*second)[0].selector, 4u);
  EXPECT_EQ((*remainder)[1].selector, 9u);
}

TEST(Mempool, CutsBatchesAtTargetGas) {
  Mempool pool(BatchPolicy{.target_txs = 100, .target_gas = 250});
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(pool.submit(make_tx(0, i, /*gas_limit=*/100)));
  }
  pool.close();

  // 100+100+100 ≥ 250 cuts after three transactions.
  auto first = pool.next_batch();
  auto second = pool.next_batch();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 3u);
  EXPECT_EQ(second->size(), 3u);
  EXPECT_EQ(pool.next_batch(), std::nullopt);
}

TEST(Mempool, RejectsDeadlockProneConfigs) {
  // A capacity that can't fit one full batch would block producers
  // against a batch count that can never be reached.
  EXPECT_THROW(Mempool(BatchPolicy{.target_txs = 10}, /*capacity=*/5), std::invalid_argument);
  EXPECT_THROW(Mempool(BatchPolicy{.target_txs = 0}), std::invalid_argument);
  EXPECT_NO_THROW(Mempool(BatchPolicy{.target_txs = 10}, /*capacity=*/10));
}

TEST(Mempool, SubmitAfterCloseIsRejected) {
  Mempool pool;
  pool.close();
  EXPECT_FALSE(pool.submit(make_tx(0, 0)));
  EXPECT_EQ(pool.next_batch(), std::nullopt);
  EXPECT_EQ(pool.stats().rejected, 1u);
}

TEST(Mempool, SubmitManyCountsDroppedTailAsRejected) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  pool.close();
  // The first submit is refused (and counted) by submit(); the remaining
  // four are dropped by submit_many and must be counted as rejected too.
  EXPECT_EQ(pool.submit_many(make_stream(5)), 0u);
  const MempoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.rejected, 5u);
}

TEST(Mempool, SubmitManyOnOpenPoolRejectsNothing) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  EXPECT_EQ(pool.submit_many(make_stream(5)), 5u);
  EXPECT_EQ(pool.stats().rejected, 0u);
}

TEST(Mempool, StatsCountTraffic) {
  Mempool pool(BatchPolicy{.target_txs = 5});
  EXPECT_EQ(pool.submit_many(make_stream(12)), 12u);
  pool.close();
  while (pool.next_batch()) {
  }
  const MempoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.high_water, 12u);
}

// -------------------------------------- Concurrency (TSan-targeted) ---

TEST(MempoolConcurrency, ManyProducersOneConsumerLosesNothing) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 500;
  // Small capacity + small batches force constant blocking on both CVs.
  Mempool pool(BatchPolicy{.target_txs = 16}, /*capacity=*/32);

  std::vector<std::jthread> producers;
  producers.reserve(kProducers);
  std::atomic<std::uint64_t> accepted{0};
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &accepted, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        if (pool.submit(make_tx(p, i))) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::jthread closer([&producers, &pool] {
    for (auto& producer : producers) producer.join();
    pool.close();
  });

  // Per producer, every sequence number exactly once and in order — the
  // queue must not reorder one producer's submissions.
  std::map<std::uint64_t, std::vector<std::uint32_t>> seen;
  std::uint64_t drained = 0;
  while (auto batch = pool.next_batch()) {
    for (const auto& tx : *batch) {
      seen[tx.sender.bytes[0]].push_back(tx.selector);
      ++drained;
    }
  }

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained, kProducers * kPerProducer);
  ASSERT_EQ(seen.size(), kProducers);
  for (const auto& [producer, selectors] : seen) {
    ASSERT_EQ(selectors.size(), kPerProducer);
    for (std::uint32_t i = 0; i < kPerProducer; ++i) EXPECT_EQ(selectors[i], i);
  }
  EXPECT_LE(pool.stats().high_water, 32u);
}

}  // namespace
}  // namespace concord::node
