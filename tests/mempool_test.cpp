#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "node/mempool.hpp"

namespace concord::node {
namespace {

chain::Transaction make_tx(std::uint64_t producer, std::uint32_t seq,
                           std::uint64_t gas_limit = vm::gas::kDefaultTxGasLimit) {
  chain::Transaction tx;
  tx.contract = vm::Address::from_u64(1, 0xAA);
  tx.sender = vm::Address::from_u64(producer, 0x01);
  tx.selector = seq;
  tx.gas_limit = gas_limit;
  return tx;
}

/// Like make_tx but spread across distinct contracts, so the shard
/// router has something to route (all of make_tx's traffic shares one
/// contract and therefore one shard).
chain::Transaction make_contract_tx(std::uint64_t contract, std::uint32_t seq) {
  chain::Transaction tx = make_tx(0, seq);
  tx.contract = vm::Address::from_u64(contract, 0xAA);
  return tx;
}

std::vector<chain::Transaction> make_stream(std::size_t n) {
  std::vector<chain::Transaction> txs;
  txs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) txs.push_back(make_tx(0, static_cast<std::uint32_t>(i)));
  return txs;
}

// ------------------------------------------------------ Batch policy ---

TEST(Mempool, CutsBatchesAtTargetTxCount) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  EXPECT_EQ(pool.submit_many(make_stream(10)), 10u);
  pool.close();

  auto first = pool.next_batch();
  auto second = pool.next_batch();
  auto remainder = pool.next_batch();
  ASSERT_TRUE(first && second && remainder);
  EXPECT_EQ(first->size(), 4u);
  EXPECT_EQ(second->size(), 4u);
  EXPECT_EQ(remainder->size(), 2u);  // Close drains the short tail.
  EXPECT_EQ(pool.next_batch(), std::nullopt);

  // FIFO: batches partition the stream in submission order.
  EXPECT_EQ((*first)[0].selector, 0u);
  EXPECT_EQ((*second)[0].selector, 4u);
  EXPECT_EQ((*remainder)[1].selector, 9u);
}

TEST(Mempool, CutsBatchesAtTargetGas) {
  Mempool pool(BatchPolicy{.target_txs = 100, .target_gas = 250});
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(pool.submit(make_tx(0, i, /*gas_limit=*/100)));
  }
  pool.close();

  // 100+100+100 ≥ 250 cuts after three transactions.
  auto first = pool.next_batch();
  auto second = pool.next_batch();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 3u);
  EXPECT_EQ(second->size(), 3u);
  EXPECT_EQ(pool.next_batch(), std::nullopt);
}

TEST(Mempool, RejectsDeadlockProneConfigs) {
  // A capacity that can't fit one full batch would block producers
  // against a batch count that can never be reached.
  EXPECT_THROW(Mempool(BatchPolicy{.target_txs = 10}, /*capacity=*/5), std::invalid_argument);
  EXPECT_THROW(Mempool(BatchPolicy{.target_txs = 0}), std::invalid_argument);
  EXPECT_NO_THROW(Mempool(BatchPolicy{.target_txs = 10}, /*capacity=*/10));
}

TEST(Mempool, SubmitAfterCloseIsRejected) {
  Mempool pool;
  pool.close();
  EXPECT_FALSE(pool.submit(make_tx(0, 0)));
  EXPECT_EQ(pool.next_batch(), std::nullopt);
  EXPECT_EQ(pool.stats().rejected, 1u);
}

TEST(Mempool, SubmitManyCountsDroppedTailAsRejected) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  pool.close();
  // The first submit is refused (and counted) by submit(); the remaining
  // four are dropped by submit_many and must be counted as rejected too.
  EXPECT_EQ(pool.submit_many(make_stream(5)), 0u);
  const MempoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.rejected, 5u);
}

TEST(Mempool, SubmitManyOnOpenPoolRejectsNothing) {
  Mempool pool(BatchPolicy{.target_txs = 4});
  EXPECT_EQ(pool.submit_many(make_stream(5)), 5u);
  EXPECT_EQ(pool.stats().rejected, 0u);
}

TEST(Mempool, StatsCountTraffic) {
  Mempool pool(BatchPolicy{.target_txs = 5});
  EXPECT_EQ(pool.submit_many(make_stream(12)), 12u);
  pool.close();
  while (pool.next_batch()) {
  }
  const MempoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.high_water, 12u);
}

// ------------------------------------------------- Sharded windows ---

TEST(MempoolSharded, WindowLanesMatchTheShardRouter) {
  constexpr std::uint32_t kShards = 4;
  Mempool pool(BatchPolicy{.target_txs = 16}, /*capacity=*/0, kShards);
  std::vector<chain::Transaction> stream;
  for (std::uint32_t i = 0; i < 16; ++i) stream.push_back(make_contract_tx(i, i));
  EXPECT_EQ(pool.submit_many(stream), 16u);
  pool.close();

  const auto window = pool.next_window();
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->transactions, 16u);
  ASSERT_EQ(window->lanes.size(), kShards);
  std::size_t across_lanes = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (const auto& tx : window->lanes[s]) {
      EXPECT_EQ(shard_of(tx, kShards), s);  // Every lane holds only its own traffic.
      ++across_lanes;
    }
  }
  EXPECT_EQ(across_lanes, 16u);
  EXPECT_EQ(pool.next_window(), std::nullopt);
}

TEST(MempoolSharded, WindowCutMatchesTheUnshardedBatchBoundaries) {
  // The cut is GLOBAL: a 4-shard window holds exactly the transactions a
  // 1-shard pool would have cut, just pre-partitioned.
  std::vector<chain::Transaction> stream;
  for (std::uint32_t i = 0; i < 10; ++i) stream.push_back(make_contract_tx(i % 5, i));

  Mempool flat(BatchPolicy{.target_txs = 4});
  Mempool sharded(BatchPolicy{.target_txs = 4}, /*capacity=*/0, /*shards=*/4);
  EXPECT_EQ(flat.submit_many(stream), 10u);
  EXPECT_EQ(sharded.submit_many(stream), 10u);
  flat.close();
  sharded.close();

  while (true) {
    const auto batch = flat.next_batch();
    const auto window = sharded.next_window();
    ASSERT_EQ(batch.has_value(), window.has_value());
    if (!batch) break;
    std::size_t window_total = 0;
    std::vector<bool> claimed(batch->size(), false);
    for (const auto& lane : window->lanes) {
      for (const auto& tx : lane) {
        ++window_total;
        bool found = false;
        for (std::size_t i = 0; i < batch->size(); ++i) {
          if (!claimed[i] && (*batch)[i] == tx) {
            claimed[i] = found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "window transaction missing from the flat batch";
      }
    }
    EXPECT_EQ(window_total, batch->size());
  }
}

TEST(MempoolSharded, RequeueFrontJumpsTheGlobalOrderEvenAfterClose) {
  Mempool pool(BatchPolicy{.target_txs = 4}, /*capacity=*/0, /*shards=*/2);
  std::vector<chain::Transaction> stream;
  for (std::uint32_t i = 0; i < 6; ++i) stream.push_back(make_contract_tx(i, i));
  EXPECT_EQ(pool.submit_many(stream), 6u);
  pool.close();

  // The merge's loser lap: re-queues land BEFORE everything queued, in
  // their given order, and the closed flag does not refuse them.
  const std::vector<chain::Transaction> losers = {make_contract_tx(7, 100),
                                                  make_contract_tx(8, 101)};
  pool.requeue_front(losers);

  const auto first = pool.next_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->size(), 4u);
  EXPECT_EQ((*first)[0], losers[0]);
  EXPECT_EQ((*first)[1], losers[1]);
  EXPECT_EQ((*first)[2], stream[0]);
  EXPECT_EQ((*first)[3], stream[1]);

  const auto second = pool.next_batch();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 4u);
  EXPECT_EQ(pool.next_batch(), std::nullopt);
  EXPECT_EQ(pool.stats().requeued, 2u);
}

TEST(MempoolSharded, ContentOrderCutsAreArrivalOrderIndependent) {
  std::vector<chain::Transaction> stream;
  for (std::uint32_t i = 0; i < 9; ++i) stream.push_back(make_contract_tx(i, i));
  std::vector<chain::Transaction> reversed(stream.rbegin(), stream.rend());

  Mempool forward(BatchPolicy{.target_txs = 4, .content_order = true});
  Mempool backward(BatchPolicy{.target_txs = 4, .content_order = true});
  EXPECT_EQ(forward.submit_many(stream), 9u);
  EXPECT_EQ(backward.submit_many(reversed), 9u);
  forward.close();
  backward.close();

  while (true) {
    const auto a = forward.next_batch();
    const auto b = backward.next_batch();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(*a, *b);  // Identical batches, element for element.
  }
}

TEST(MempoolSharded, ShardStatsTrackPerLaneTraffic) {
  constexpr std::uint32_t kShards = 2;
  Mempool pool(BatchPolicy{.target_txs = 8}, /*capacity=*/0, kShards);
  std::vector<chain::Transaction> stream;
  for (std::uint32_t i = 0; i < 8; ++i) stream.push_back(make_contract_tx(i, i));
  EXPECT_EQ(pool.submit_many(stream), 8u);

  std::vector<std::uint64_t> routed(kShards, 0);
  for (const auto& tx : stream) ++routed[shard_of(tx, kShards)];

  auto stats = pool.shard_stats();
  ASSERT_EQ(stats.size(), kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(stats[s].submitted, routed[s]);
    EXPECT_EQ(stats[s].high_water, routed[s]);
    EXPECT_EQ(stats[s].cut, 0u);
  }

  pool.requeue_front({make_contract_tx(0, 50)});
  pool.close();
  while (pool.next_window()) {
  }

  stats = pool.shard_stats();
  std::uint64_t cut_total = 0;
  std::uint64_t requeued_total = 0;
  for (const auto& lane : stats) {
    cut_total += lane.cut;
    requeued_total += lane.requeued;
  }
  EXPECT_EQ(cut_total, 9u);  // Everything — 8 submissions + 1 requeue — was cut.
  EXPECT_EQ(requeued_total, 1u);
}

// -------------------------------------- Concurrency (TSan-targeted) ---

TEST(MempoolConcurrency, ManyProducersOneConsumerLosesNothing) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 500;
  // Small capacity + small batches force constant blocking on both CVs.
  Mempool pool(BatchPolicy{.target_txs = 16}, /*capacity=*/32);

  std::vector<std::jthread> producers;
  producers.reserve(kProducers);
  std::atomic<std::uint64_t> accepted{0};
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &accepted, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        if (pool.submit(make_tx(p, i))) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::jthread closer([&producers, &pool] {
    for (auto& producer : producers) producer.join();
    pool.close();
  });

  // Per producer, every sequence number exactly once and in order — the
  // queue must not reorder one producer's submissions.
  std::map<std::uint64_t, std::vector<std::uint32_t>> seen;
  std::uint64_t drained = 0;
  while (auto batch = pool.next_batch()) {
    for (const auto& tx : *batch) {
      seen[tx.sender.bytes[0]].push_back(tx.selector);
      ++drained;
    }
  }

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained, kProducers * kPerProducer);
  ASSERT_EQ(seen.size(), kProducers);
  for (const auto& [producer, selectors] : seen) {
    ASSERT_EQ(selectors.size(), kPerProducer);
    for (std::uint32_t i = 0; i < kPerProducer; ++i) EXPECT_EQ(selectors[i], i);
  }
  EXPECT_LE(pool.stats().high_water, 32u);
}

}  // namespace
}  // namespace concord::node
