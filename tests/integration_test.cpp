#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/ballot.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "workload/workload.hpp"

namespace concord {
namespace {

using core::Miner;
using core::MinerConfig;
using core::Validator;
using core::ValidatorConfig;
using workload::BenchmarkKind;
using workload::WorkloadSpec;

MinerConfig fast_miner() {
  MinerConfig cfg;
  cfg.nanos_per_gas = 0.0;
  return cfg;
}

ValidatorConfig fast_validator() {
  ValidatorConfig cfg;
  cfg.nanos_per_gas = 0.0;
  return cfg;
}

// ----------------------------------------------------------------------
// Full pipeline: generate → mine in parallel → serialize over the "wire"
// → decode → append to a chain → validate in parallel on a fresh node.
// ----------------------------------------------------------------------

TEST(Integration, EndToEndMineShipValidate) {
  const WorkloadSpec spec{BenchmarkKind::kMixed, 120, 30, 7};

  // Miner node.
  auto miner_fixture = workload::make_fixture(spec);
  chain::Blockchain miner_chain(miner_fixture.world->state_root());
  Miner miner(*miner_fixture.world, fast_miner());
  const chain::Block mined = miner.mine(miner_fixture.transactions, miner_chain.tip());
  miner_chain.append(mined);
  EXPECT_EQ(miner_chain.height(), 1u);

  // Wire: encode, then decode on the validator side.
  util::ByteWriter wire;
  mined.encode(wire);
  util::ByteReader reader(wire.bytes());
  const chain::Block received = chain::Block::decode(reader);
  EXPECT_EQ(received, mined);

  // Validator node (fresh world from the same genesis spec).
  auto validator_fixture = workload::make_fixture(spec);
  chain::Blockchain validator_chain(validator_fixture.world->state_root());
  Validator validator(*validator_fixture.world, fast_validator());
  const auto report = validator.validate_parallel(received);
  ASSERT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
  validator_chain.append(received);
  EXPECT_TRUE(validator_chain.verify_links());
  EXPECT_EQ(validator_fixture.world->state_root(), mined.header.state_root);
}

TEST(Integration, MultiBlockChainMinedAndValidated) {
  // Three consecutive Ballot blocks: voters 0..49 in block 1, 50..99 in
  // block 2, then a delegate wave in block 3, all against one evolving
  // world — the validator node replays the whole chain.
  const vm::Address ballot_addr = vm::Address::from_u64(1, 0xCC);
  const vm::Address chair = vm::Address::from_u64(1, 0x04);

  const auto build_world = [&] {
    auto world = std::make_unique<vm::World>();
    auto ballot = std::make_unique<contracts::Ballot>(
        ballot_addr, chair, std::vector<std::string>{"a", "b"});
    for (std::uint64_t v = 0; v < 150; ++v) {
      ballot->raw_register_voter(vm::Address::from_u64(v, 0x01), 1);
    }
    world->contracts().add(std::move(ballot));
    return world;
  };

  const auto block_txs = [&](int which) {
    std::vector<chain::Transaction> txs;
    if (which == 1) {
      for (std::uint64_t v = 0; v < 50; ++v) {
        txs.push_back(contracts::Ballot::make_vote_tx(ballot_addr,
                                                      vm::Address::from_u64(v, 0x01), v % 2));
      }
    } else if (which == 2) {
      for (std::uint64_t v = 50; v < 100; ++v) {
        txs.push_back(contracts::Ballot::make_vote_tx(ballot_addr,
                                                      vm::Address::from_u64(v, 0x01), 1));
      }
    } else {
      for (std::uint64_t v = 100; v < 150; ++v) {
        txs.push_back(contracts::Ballot::make_delegate_tx(
            ballot_addr, vm::Address::from_u64(v, 0x01), vm::Address::from_u64(v - 100, 0x01)));
      }
    }
    return txs;
  };

  // Miner node mines three blocks.
  auto miner_world = build_world();
  chain::Blockchain miner_chain(miner_world->state_root());
  Miner miner(*miner_world, fast_miner());
  for (int b = 1; b <= 3; ++b) {
    miner_chain.append(miner.mine(block_txs(b), miner_chain.tip()));
  }
  EXPECT_EQ(miner_chain.height(), 3u);

  // Validator node replays all three in order.
  auto validator_world = build_world();
  chain::Blockchain validator_chain(validator_world->state_root());
  Validator validator(*validator_world, fast_validator());
  for (std::uint64_t b = 1; b <= 3; ++b) {
    const auto& block = miner_chain.at(b);
    const auto report = validator.validate_parallel(block);
    ASSERT_TRUE(report.ok) << "block " << b << ": " << core::to_string(report.reason) << " "
                           << report.detail;
    validator_chain.append(block);
  }
  EXPECT_EQ(validator_world->state_root(), miner_chain.tip().header.state_root);

  // Delegated votes landed: block 3 delegates its weight to voted voters,
  // so tallies reflect 100 direct votes + 50 delegated weights.
  auto& ballot = validator_world->contracts().as<contracts::Ballot>(ballot_addr);
  EXPECT_EQ(ballot.raw_vote_count(0) + ballot.raw_vote_count(1), 150);
}

TEST(Integration, ChainRejectsBlockValidatedAgainstWrongParentState) {
  const WorkloadSpec spec{BenchmarkKind::kBallot, 40, 10, 3};
  auto fixture = workload::make_fixture(spec);
  Miner miner(*fixture.world, fast_miner());
  const auto block = miner.mine(fixture.transactions, fixture.genesis());

  // A validator whose world is NOT at the parent state must fail the
  // state-root comparison (here: one extra pre-existing vote).
  auto wrong = workload::make_fixture(spec);
  auto& ballot = wrong.world->contracts().as<contracts::Ballot>(wrong.ballot);
  ballot.raw_register_voter(vm::Address::from_u64(999'999, 0x01), 5);
  Validator validator(*wrong.world, fast_validator());
  const auto report = validator.validate_parallel(block);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, core::RejectReason::kStateRootMismatch);
}

TEST(Integration, ScheduleMetricsReflectConflictLevel) {
  const auto metrics_for = [](unsigned conflict) {
    const WorkloadSpec spec{BenchmarkKind::kSimpleAuction, 100, conflict, 11};
    auto fixture = workload::make_fixture(spec);
    Miner miner(*fixture.world, fast_miner());
    const auto block = miner.mine(fixture.transactions, fixture.genesis());
    const auto graph = block.schedule.to_graph(block.transactions.size());
    return graph::compute_metrics(graph);
  };

  const auto low = metrics_for(0);
  const auto high = metrics_for(100);
  EXPECT_EQ(low.critical_path, 1u);           // Pure withdrawals: no edges.
  EXPECT_GT(high.critical_path, 50u);          // bidPlusOne chain.
  EXPECT_GT(low.parallelism, high.parallelism);
}

}  // namespace
}  // namespace concord
