// Direct unit tests of the wait-for-graph deadlock detector (elsewhere it
// is exercised only through full speculative executions).

#include <gtest/gtest.h>

#include "stm/deadlock.hpp"
#include "stm/runtime.hpp"
#include "stm/speculative_action.hpp"

namespace concord::stm {
namespace {

/// Registers throwaway root actions so the detector has doom targets.
class DetectorFixture : public ::testing::Test {
 protected:
  SpeculativeAction& make_action(std::uint64_t birth) {
    actions_.push_back(
        std::make_unique<SpeculativeAction>(rt_, static_cast<std::uint32_t>(birth), birth));
    return *actions_.back();
  }

  DeadlockDetector& detector() { return rt_.deadlocks(); }

  BoostingRuntime rt_;
  std::vector<std::unique_ptr<SpeculativeAction>> actions_;
};

TEST_F(DetectorFixture, NoCycleNoVictim) {
  auto& a = make_action(1);
  auto& b = make_action(2);
  EXPECT_FALSE(detector().will_wait(a.root_id(), {b.root_id()}));
  EXPECT_FALSE(a.doomed());
  EXPECT_FALSE(b.doomed());
  EXPECT_EQ(detector().victims(), 0u);
  detector().done_waiting(a.root_id());
}

TEST_F(DetectorFixture, TwoCycleDoomsYoungest) {
  auto& older = make_action(1);
  auto& younger = make_action(2);
  EXPECT_FALSE(detector().will_wait(older.root_id(), {younger.root_id()}));
  // Younger closing the cycle gets doomed itself: will_wait returns true.
  EXPECT_TRUE(detector().will_wait(younger.root_id(), {older.root_id()}));
  EXPECT_TRUE(younger.doomed());
  EXPECT_FALSE(older.doomed());
  EXPECT_EQ(detector().victims(), 1u);
}

TEST_F(DetectorFixture, TwoCycleDoomsYoungestEvenIfOlderCloses) {
  auto& older = make_action(1);
  auto& younger = make_action(2);
  EXPECT_FALSE(detector().will_wait(younger.root_id(), {older.root_id()}));
  // The *older* action closes the cycle: the younger is doomed remotely,
  // and will_wait tells the older it may keep waiting (returns false).
  EXPECT_FALSE(detector().will_wait(older.root_id(), {younger.root_id()}));
  EXPECT_TRUE(younger.doomed());
  EXPECT_FALSE(older.doomed());
}

TEST_F(DetectorFixture, ThreeCycleDoomsYoungest) {
  auto& a = make_action(1);
  auto& b = make_action(2);
  auto& c = make_action(3);
  EXPECT_FALSE(detector().will_wait(a.root_id(), {b.root_id()}));
  EXPECT_FALSE(detector().will_wait(b.root_id(), {c.root_id()}));
  EXPECT_TRUE(detector().will_wait(c.root_id(), {a.root_id()}));  // c is youngest.
  EXPECT_TRUE(c.doomed());
  EXPECT_FALSE(a.doomed());
  EXPECT_FALSE(b.doomed());
}

TEST_F(DetectorFixture, DoneWaitingClearsEdges) {
  auto& a = make_action(1);
  auto& b = make_action(2);
  EXPECT_FALSE(detector().will_wait(a.root_id(), {b.root_id()}));
  detector().done_waiting(a.root_id());
  // With a's edge gone, b → a closes nothing.
  EXPECT_FALSE(detector().will_wait(b.root_id(), {a.root_id()}));
  EXPECT_FALSE(a.doomed());
  EXPECT_FALSE(b.doomed());
}

TEST_F(DetectorFixture, WaitingOnMultipleHoldersFindsTheCycle) {
  auto& a = make_action(1);
  auto& b = make_action(2);
  auto& c = make_action(3);
  // a waits on {b, c}; only c waits back.
  EXPECT_FALSE(detector().will_wait(c.root_id(), {a.root_id()}));
  EXPECT_TRUE(detector().will_wait(a.root_id(), {b.root_id(), c.root_id()}) ||
              c.doomed());  // Victim is the younger of {a, c} — c.
  EXPECT_TRUE(c.doomed());
  EXPECT_FALSE(b.doomed());
}

TEST_F(DetectorFixture, UnregisteredVictimStillSignalledViaReturn) {
  auto& a = make_action(1);
  const std::uint64_t ghost = 99;  // Never registered (e.g. already torn down).
  EXPECT_FALSE(detector().will_wait(a.root_id(), {ghost}));
  // Ghost waits back: cycle {a, ghost}; the ghost is youngest, so it is
  // the victim. There is no registered action to doom, but the return
  // value still tells the waiter itself to abort — the registered party
  // is untouched either way.
  EXPECT_TRUE(detector().will_wait(ghost, {a.root_id()}));
  EXPECT_FALSE(a.doomed());
}

TEST_F(DetectorFixture, ResetClearsEverything) {
  auto& a = make_action(1);
  auto& b = make_action(2);
  EXPECT_FALSE(detector().will_wait(a.root_id(), {b.root_id()}));
  detector().reset();
  EXPECT_EQ(detector().victims(), 0u);
  // Post-reset, the old edge is gone: no cycle.
  detector().register_action(b.root_id(), &b);
  EXPECT_FALSE(detector().will_wait(b.root_id(), {a.root_id()}));
  EXPECT_FALSE(a.doomed());
}

TEST_F(DetectorFixture, RetryReusesBirthStampAndAges) {
  // A victim that retries keeps its stamp; a *fresh* (younger) opponent
  // must now lose the same duel — the aging that guarantees progress.
  auto& veteran = make_action(5);
  auto& rookie = make_action(9);
  EXPECT_FALSE(detector().will_wait(veteran.root_id(), {rookie.root_id()}));
  EXPECT_TRUE(detector().will_wait(rookie.root_id(), {veteran.root_id()}));
  EXPECT_TRUE(rookie.doomed());
  EXPECT_FALSE(veteran.doomed());
}

}  // namespace
}  // namespace concord::stm
