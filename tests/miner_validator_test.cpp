#include <gtest/gtest.h>

#include "core/miner.hpp"
#include "core/validator.hpp"
#include "graph/happens_before.hpp"
#include "workload/workload.hpp"

namespace concord::core {
namespace {

using workload::BenchmarkKind;
using workload::Fixture;
using workload::WorkloadSpec;
using workload::make_fixture;

/// Unit tests skip the calibrated gas burn; the speedup benches enable it.
MinerConfig fast_miner(unsigned threads = 3) {
  MinerConfig cfg;
  cfg.threads = threads;
  cfg.nanos_per_gas = 0.0;
  return cfg;
}

ValidatorConfig fast_validator(unsigned threads = 3) {
  ValidatorConfig cfg;
  cfg.threads = threads;
  cfg.nanos_per_gas = 0.0;
  return cfg;
}

WorkloadSpec spec_of(BenchmarkKind kind, std::size_t txs, unsigned conflict,
                     std::uint64_t seed = 42) {
  WorkloadSpec spec;
  spec.kind = kind;
  spec.transactions = txs;
  spec.conflict_percent = conflict;
  spec.seed = seed;
  return spec;
}

/// Mines `spec` in parallel and returns (block, fixture-after-mining).
std::pair<chain::Block, Fixture> mine_parallel(const WorkloadSpec& spec) {
  Fixture fixture = make_fixture(spec);
  Miner miner(*fixture.world, fast_miner());
  chain::Block block = miner.mine(fixture.transactions, fixture.genesis());
  return {std::move(block), std::move(fixture)};
}

// ----------------------------------------------------- Serial mining ---

TEST(MinerSerial, ProducesValidatableBlock) {
  Fixture fixture = make_fixture(spec_of(BenchmarkKind::kBallot, 50, 20));
  Miner miner(*fixture.world, fast_miner());
  const chain::Block block = miner.mine_serial(fixture.transactions, fixture.genesis());

  EXPECT_TRUE(block.commitments_consistent());
  EXPECT_EQ(block.schedule.profiles.size(), 50u);
  // Serial order of a serially-mined block is a topological order of its
  // own derived graph, and replays cleanly.
  Fixture replay = make_fixture(spec_of(BenchmarkKind::kBallot, 50, 20));
  Validator validator(*replay.world, fast_validator());
  const ValidationReport report = validator.validate_parallel(block);
  EXPECT_TRUE(report.ok) << to_string(report.reason) << ": " << report.detail;
}

TEST(MinerSerial, BaselineMatchesSerialMining) {
  Fixture a = make_fixture(spec_of(BenchmarkKind::kBallot, 60, 30));
  Fixture b = make_fixture(spec_of(BenchmarkKind::kBallot, 60, 30));
  Miner miner_a(*a.world, fast_miner());
  Miner miner_b(*b.world, fast_miner());
  const auto statuses = miner_a.execute_serial_baseline(a.transactions);
  const chain::Block block = miner_b.mine_serial(b.transactions, b.genesis());
  EXPECT_EQ(statuses, block.statuses);
  EXPECT_EQ(a.world->state_root(), block.header.state_root);
}

// --------------------------------------------------- Parallel mining ---

class ParallelMiningCorrectness
    : public ::testing::TestWithParam<std::tuple<BenchmarkKind, std::size_t, unsigned>> {};

/// THE serializability property (paper §5): the parallel miner's final
/// state must equal executing the discovered serial order S one
/// transaction at a time from the same initial state, with identical
/// per-transaction outcomes.
TEST_P(ParallelMiningCorrectness, EquivalentToDiscoveredSerialOrder) {
  const auto [kind, txs, conflict] = GetParam();
  const WorkloadSpec spec = spec_of(kind, txs, conflict);

  auto [block, mined_fixture] = mine_parallel(spec);
  ASSERT_EQ(block.transactions.size(), txs);

  // Re-execute serially in the discovered order S on a fresh fixture.
  Fixture serial_fixture = make_fixture(spec);
  Validator oracle(*serial_fixture.world, fast_validator());
  const ValidationReport report = oracle.validate_serial(block);
  EXPECT_TRUE(report.ok) << to_string(report.reason) << ": " << report.detail;
}

TEST_P(ParallelMiningCorrectness, ParallelValidatorAccepts) {
  const auto [kind, txs, conflict] = GetParam();
  const WorkloadSpec spec = spec_of(kind, txs, conflict);

  auto [block, mined_fixture] = mine_parallel(spec);
  Fixture replay_fixture = make_fixture(spec);
  Validator validator(*replay_fixture.world, fast_validator());
  const ValidationReport report = validator.validate_parallel(block);
  EXPECT_TRUE(report.ok) << to_string(report.reason) << ": " << report.detail;
  EXPECT_EQ(replay_fixture.world->state_root(), mined_fixture.world->state_root());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ParallelMiningCorrectness,
    ::testing::Combine(::testing::Values(BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction,
                                         BenchmarkKind::kEtherDoc, BenchmarkKind::kMixed),
                       ::testing::Values(std::size_t{10}, std::size_t{60}, std::size_t{150}),
                       ::testing::Values(0u, 15u, 50u, 100u)),
    [](const auto& info) {
      // No structured bindings here: the commas inside [k, t, c] would be
      // parsed as macro-argument separators by INSTANTIATE_TEST_SUITE_P.
      return std::string(workload::to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "txs_" +
             std::to_string(std::get<2>(info.param)) + "pct";
    });

TEST(MinerParallel, ManySeedsManySchedulesAllSerializable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const WorkloadSpec spec = spec_of(BenchmarkKind::kMixed, 90, 40, seed);
    auto [block, mined] = mine_parallel(spec);
    Fixture oracle_fixture = make_fixture(spec);
    Validator oracle(*oracle_fixture.world, fast_validator());
    const auto report = oracle.validate_serial(block);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << to_string(report.reason);
  }
}

TEST(MinerParallel, DerivedScheduleIsAcyclicAndOrdered) {
  auto [block, fixture] = mine_parallel(spec_of(BenchmarkKind::kBallot, 100, 50));
  const auto graph = block.schedule.to_graph(block.transactions.size());
  EXPECT_TRUE(graph.is_acyclic());
  EXPECT_TRUE(graph.is_topological_order(block.schedule.serial_order));
}

TEST(MinerParallel, ConflictingPairsAreOrderedInSchedule) {
  // At 100% conflict every Ballot voter votes twice; each pair must be
  // connected in the happens-before graph (same voter entry, W/W).
  auto [block, fixture] = mine_parallel(spec_of(BenchmarkKind::kBallot, 40, 100));
  const auto graph = block.schedule.to_graph(40);
  // Exactly one vote per pair succeeds, the other reverts.
  std::size_t reverted = 0;
  for (const auto s : block.statuses) reverted += s == vm::TxStatus::kReverted ? 1 : 0;
  EXPECT_EQ(reverted, 20u);
  EXPECT_GE(graph.edge_count(), 20u);
}

TEST(MinerParallel, NoConflictBlockHasNoEdgesAmongSuccesses) {
  auto [block, fixture] = mine_parallel(spec_of(BenchmarkKind::kEtherDoc, 80, 0));
  // Pure lookups on distinct documents: no edges at all.
  EXPECT_EQ(block.schedule.edges.size(), 0u);
  for (const auto s : block.statuses) EXPECT_EQ(s, vm::TxStatus::kSuccess);
}

TEST(MinerParallel, StatsAreCoherent) {
  Fixture fixture = make_fixture(spec_of(BenchmarkKind::kSimpleAuction, 100, 60));
  Miner miner(*fixture.world, fast_miner());
  (void)miner.mine(fixture.transactions, fixture.genesis());
  const MinerStats& stats = miner.last_stats();
  EXPECT_EQ(stats.transactions, 100u);
  EXPECT_GE(stats.attempts, 100u);
  EXPECT_EQ(stats.attempts - 100u, stats.conflict_aborts);
  EXPECT_GT(stats.schedule_bytes, 0u);
}

TEST(MinerParallel, SingleThreadMatchesMultiThreadStateRoot) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kBallot, 80, 15);
  Fixture one = make_fixture(spec);
  Miner miner_one(*one.world, fast_miner(1));
  const auto block_one = miner_one.mine(one.transactions, one.genesis());

  Fixture many = make_fixture(spec);
  Miner miner_many(*many.world, fast_miner(6));
  const auto block_many = miner_many.mine(many.transactions, many.genesis());

  // Schedules may differ (different discovery), but both must be valid
  // and Ballot's final state is order-independent here: same voters, same
  // proposal tallies.
  EXPECT_EQ(block_one.header.state_root, block_many.header.state_root);
}

// ----------------------------------------------------- Validation ------

class TamperRejection : public ::testing::Test {
 protected:
  TamperRejection() {
    const WorkloadSpec spec = spec_of(BenchmarkKind::kMixed, 60, 30);
    auto [block, fixture] = mine_parallel(spec);
    block_ = std::move(block);
    spec_ = spec;
  }

  /// Re-seals header commitments after mutating the body, so the tampering
  /// is only detectable semantically (the harder case).
  void reseal() {
    block_.header.tx_root = block_.compute_tx_root();
    block_.header.status_root = block_.compute_status_root();
    block_.header.schedule_hash = block_.schedule.hash();
  }

  ValidationReport validate() {
    Fixture fixture = make_fixture(spec_);
    Validator validator(*fixture.world, fast_validator());
    return validator.validate_parallel(block_);
  }

  chain::Block block_;
  WorkloadSpec spec_;
};

TEST_F(TamperRejection, HonestBlockAccepted) {
  const auto report = validate();
  EXPECT_TRUE(report.ok) << to_string(report.reason) << ": " << report.detail;
}

TEST_F(TamperRejection, UnsealedTamperingHitsCommitments) {
  block_.statuses[0] = block_.statuses[0] == vm::TxStatus::kSuccess ? vm::TxStatus::kReverted
                                                                    : vm::TxStatus::kSuccess;
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kBadCommitments);
}

TEST_F(TamperRejection, WrongStateRootRejected) {
  block_.header.state_root = util::sha256("forged state");
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kStateRootMismatch);
}

TEST_F(TamperRejection, DroppedEdgesRejected) {
  // Remove the ordering constraints while keeping the profiles: the
  // "schedule has a data race" case — must be caught structurally.
  if (block_.schedule.edges.empty()) GTEST_SKIP() << "no conflicts in this block";
  block_.schedule.edges.clear();
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kMissingConstraint);
}

TEST_F(TamperRejection, ForgedProfileRejected) {
  // Claim tx 0 touches nothing: the replay trace will disagree.
  block_.schedule.profiles[0].entries.clear();
  // Rebuild edges/serial order so the structural checks pass and we reach
  // the replay stage.
  const auto derived =
      graph::derive_happens_before(block_.schedule.profiles, block_.transactions.size());
  block_.schedule.edges = derived.edges();
  block_.schedule.serial_order = *derived.topological_order();
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kProfileMismatch);
}

TEST_F(TamperRejection, CyclicScheduleRejected) {
  block_.schedule.edges.emplace_back(0, 1);
  block_.schedule.edges.emplace_back(1, 0);
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  // The forged back-edge isn't profile-derived... it is extra, which is
  // allowed, but the cycle must be caught.
  EXPECT_EQ(report.reason, RejectReason::kCyclicSchedule);
}

TEST_F(TamperRejection, BadSerialOrderRejected) {
  if (block_.schedule.edges.empty()) GTEST_SKIP() << "no edges, any order valid";
  const auto [u, v] = block_.schedule.edges.front();
  auto& order = block_.schedule.serial_order;
  const auto pos_u = std::find(order.begin(), order.end(), u);
  const auto pos_v = std::find(order.begin(), order.end(), v);
  std::iter_swap(pos_u, pos_v);  // Now v precedes u despite edge u→v.
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kBadSerialOrder);
}

TEST_F(TamperRejection, MalformedProfileIndexRejected) {
  block_.schedule.profiles[0].tx = 59;  // Duplicate of the last tx index.
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kMalformedSchedule);
}

TEST_F(TamperRejection, EdgeOutOfRangeRejected) {
  block_.schedule.edges.emplace_back(0, 10'000);
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.reason, RejectReason::kMalformedSchedule);
}

TEST_F(TamperRejection, ForgedStatusVectorRejected) {
  // Flip one status and reseal: structural checks pass, replay disagrees.
  auto& s = block_.statuses[0];
  s = s == vm::TxStatus::kSuccess ? vm::TxStatus::kReverted : vm::TxStatus::kSuccess;
  reseal();
  const auto report = validate();
  EXPECT_FALSE(report.ok);
  // Either the per-profile reverted flag disagrees with the replayed
  // outcome (profile mismatch) or the status vector comparison fires.
  EXPECT_TRUE(report.reason == RejectReason::kStatusMismatch ||
              report.reason == RejectReason::kProfileMismatch)
      << to_string(report.reason);
}

// ------------------------------------------------ Validator variants ---

TEST(Validator, DeterministicAcrossThreadCounts) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kMixed, 120, 50);
  auto [block, mined] = mine_parallel(spec);
  for (const unsigned threads : {1u, 2u, 3u, 6u}) {
    Fixture fixture = make_fixture(spec);
    Validator validator(*fixture.world, fast_validator(threads));
    const auto report = validator.validate_parallel(block);
    EXPECT_TRUE(report.ok) << threads << " threads: " << to_string(report.reason) << " "
                           << report.detail;
    EXPECT_EQ(fixture.world->state_root(), block.header.state_root);
  }
}

TEST(Validator, RepeatedValidationIsStable) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kSimpleAuction, 100, 40);
  auto [block, mined] = mine_parallel(spec);
  Fixture fixture = make_fixture(spec);
  Validator validator(*fixture.world, fast_validator());
  EXPECT_TRUE(validator.validate_parallel(block).ok);
  // Second validation from a *fresh* world must agree.
  Fixture fixture2 = make_fixture(spec);
  Validator validator2(*fixture2.world, fast_validator());
  EXPECT_TRUE(validator2.validate_parallel(block).ok);
  EXPECT_EQ(fixture.world->state_root(), fixture2.world->state_root());
}

TEST(Validator, SerialAndParallelValidatorsAgree) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kEtherDoc, 90, 70);
  auto [block, mined] = mine_parallel(spec);
  Fixture f1 = make_fixture(spec);
  Fixture f2 = make_fixture(spec);
  Validator serial(*f1.world, fast_validator());
  Validator parallel(*f2.world, fast_validator());
  EXPECT_TRUE(serial.validate_serial(block).ok);
  EXPECT_TRUE(parallel.validate_parallel(block).ok);
  EXPECT_EQ(f1.world->state_root(), f2.world->state_root());
}

TEST(Validator, EmptyBlockValidates) {
  Fixture fixture = make_fixture(spec_of(BenchmarkKind::kBallot, 0, 0));
  Miner miner(*fixture.world, fast_miner());
  const auto block = miner.mine({}, fixture.genesis());
  Fixture replay = make_fixture(spec_of(BenchmarkKind::kBallot, 0, 0));
  Validator validator(*replay.world, fast_validator());
  EXPECT_TRUE(validator.validate_parallel(block).ok);
}

// ------------------------------------- Resumable-from-snapshot seam ---

/// The re-org recovery entry point: a validator whose replica went
/// stale (here: already advanced past the block's pre-state) rejects
/// the replay — and accepts it again after resume_from() re-points it
/// at a fresh replica materialized from the boundary snapshot.
TEST(Validator, ResumeFromSnapshotRevalidatesAfterADirtyWorld) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kMixed, 80, 30);
  Fixture fixture = make_fixture(spec);
  const vm::WorldSnapshot boundary(*fixture.world);  // Pre-block state.
  Miner miner(*fixture.world, fast_miner());
  const chain::Block block = miner.mine_serial(fixture.transactions, fixture.genesis());

  // First replay consumes the replica; replaying the same block again on
  // the now-dirty world must fail the root cross-check.
  auto replica = boundary.materialize();
  Validator validator(*replica, fast_validator());
  ASSERT_TRUE(validator.validate_parallel(block).ok);
  const ValidationReport stale = validator.validate_parallel(block);
  ASSERT_FALSE(stale.ok);

  // Recovery: re-materialize from the boundary snapshot and resume.
  auto fresh = boundary.materialize();
  validator.resume_from(*fresh);
  const ValidationReport resumed = validator.validate_parallel(block);
  EXPECT_TRUE(resumed.ok) << to_string(resumed.reason) << ": " << resumed.detail;
  EXPECT_EQ(fresh->state_root(), block.header.state_root);
}

/// Miner half of the same seam: after resume_from() the miner re-mines
/// the identical batch from the identical pre-state — byte-identical
/// blocks, as the post-recovery pipeline requires.
TEST(MinerSerial, ResumeFromSnapshotReminesIdenticalBlock) {
  const WorkloadSpec spec = spec_of(BenchmarkKind::kBallot, 60, 25);
  Fixture fixture = make_fixture(spec);
  const vm::WorldSnapshot boundary(*fixture.world);
  const chain::Block parent = fixture.genesis();  // Captured pre-mining.
  Miner miner(*fixture.world, fast_miner());
  const chain::Block first = miner.mine_serial(fixture.transactions, parent);

  auto rewound = boundary.materialize();
  miner.resume_from(*rewound);
  const chain::Block again = miner.mine_serial(fixture.transactions, parent);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first.hash(), again.hash());
}

}  // namespace
}  // namespace concord::core
