#include <gtest/gtest.h>

#include "stm/conflict.hpp"
#include "stm/runtime.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_map.hpp"
#include "vm/boosted_scalar.hpp"
#include "vm/errors.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/trace.hpp"
#include "vm/world.hpp"

namespace concord::vm {
namespace {

/// Gas meter that never burns CPU (pure accounting) — unit tests don't
/// need the calibrated workload.
GasMeter test_meter(std::uint64_t limit = gas::kDefaultTxGasLimit) {
  return GasMeter(limit, /*nanos_per_gas=*/0.0);
}

struct Env {
  World world;
  ExecContext serial_ctx() { return ExecContext::serial(world, test_meter()); }
};

// ------------------------------------------------------------- Types ---

TEST(Address, FromU64AndComparisons) {
  const Address a = Address::from_u64(1);
  const Address b = Address::from_u64(2);
  const Address a2 = Address::from_u64(1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_TRUE(kZeroAddress.is_zero());
  EXPECT_FALSE(a.is_zero());
}

TEST(Address, SaltDistinguishes) {
  EXPECT_NE(Address::from_u64(1, 0x01), Address::from_u64(1, 0x02));
}

TEST(Address, StableHashIsDeterministic) {
  EXPECT_EQ(Address::from_u64(77).stable_hash(), Address::from_u64(77).stable_hash());
  EXPECT_NE(Address::from_u64(77).stable_hash(), Address::from_u64(78).stable_hash());
}

TEST(Address, HexRendering) {
  EXPECT_EQ(kZeroAddress.to_hex(), std::string(40, '0'));
}

// --------------------------------------------------------------- Gas ---

TEST(Gas, ChargesAccumulate) {
  GasMeter meter = test_meter(1000);
  meter.charge(300);
  meter.charge(200);
  EXPECT_EQ(meter.used(), 500u);
  EXPECT_EQ(meter.remaining(), 500u);
}

TEST(Gas, ThrowsWhenExhausted) {
  GasMeter meter = test_meter(100);
  EXPECT_THROW(meter.charge(101), OutOfGas);
  EXPECT_EQ(meter.remaining(), 0u);  // Failed charge still consumed.
}

TEST(Gas, ExactLimitIsFine) {
  GasMeter meter = test_meter(100);
  meter.charge(100);
  EXPECT_EQ(meter.remaining(), 0u);
}

// -------------------------------------------------------- BoostedMap ---

TEST(BoostedMap, SerialPutGetErase) {
  Env env;
  BoostedMap<std::uint64_t, std::string> map(1);
  auto ctx = env.serial_ctx();
  EXPECT_EQ(map.get(ctx, 1), std::nullopt);
  map.put(ctx, 1, "one");
  EXPECT_EQ(map.get(ctx, 1), "one");
  EXPECT_TRUE(map.contains(ctx, 1));
  EXPECT_TRUE(map.erase(ctx, 1));
  EXPECT_FALSE(map.contains(ctx, 1));
  EXPECT_FALSE(map.erase(ctx, 1));
}

TEST(BoostedMap, GetOrDefault) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  auto ctx = env.serial_ctx();
  EXPECT_EQ(map.get_or(ctx, 5, -1), -1);
  map.put(ctx, 5, 99);
  EXPECT_EQ(map.get_or(ctx, 5, -1), 99);
}

TEST(BoostedMap, RevertRestoresPriorValues) {
  Env env;
  BoostedMap<std::uint64_t, std::string> map(1);
  map.raw_put(1, "original");
  auto ctx = env.serial_ctx();
  map.put(ctx, 1, "changed");
  map.put(ctx, 2, "fresh");
  map.erase(ctx, 1);
  ctx.rollback_local();
  EXPECT_EQ(map.raw_get(1), "original");
  EXPECT_EQ(map.raw_get(2), std::nullopt);
}

TEST(BoostedMap, UpdateInsertsFallbackThenMutates) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  auto ctx = env.serial_ctx();
  map.update(ctx, 7, 100, [](std::int64_t& v) { v += 1; });
  EXPECT_EQ(map.raw_get(7), 101);
  map.update(ctx, 7, 100, [](std::int64_t& v) { v += 1; });
  EXPECT_EQ(map.raw_get(7), 102);
  ctx.rollback_local();
  EXPECT_EQ(map.raw_get(7), std::nullopt);
}

TEST(BoostedMap, ChargesGasPerOp) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  auto ctx = env.serial_ctx();
  const std::uint64_t before = ctx.gas().used();
  (void)map.get(ctx, 1);
  EXPECT_EQ(ctx.gas().used(), before + gas::kSload);
  map.put(ctx, 1, 2);
  EXPECT_EQ(ctx.gas().used(), before + gas::kSload + gas::kSstore);
}

TEST(BoostedMap, SpeculativeOpsAcquireLocks) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(env.world, rt, action, test_meter());
  map.put(ctx, 42, 7);
  EXPECT_EQ(action.held_lock_count(), 1u);
  EXPECT_EQ(action.undo_size(), 1u);
  action.abort();
  EXPECT_EQ(map.raw_get(42), std::nullopt);  // Abort undid the put.
}

TEST(BoostedMap, ReplayOpsRecordTrace) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  TraceRecorder trace;
  ExecContext ctx = ExecContext::replay(env.world, trace, test_meter());
  map.put(ctx, 42, 7);
  (void)map.get(ctx, 43);
  EXPECT_EQ(trace.size(), 2u);
  // canonical() sorts by (space, hashed key); find each op by its lock id.
  for (const auto& [lock, mode] : trace.canonical()) {
    if (lock.key == lock_key_of(std::uint64_t{42})) {
      EXPECT_EQ(mode, stm::LockMode::kWrite);
    } else {
      EXPECT_EQ(lock.key, lock_key_of(std::uint64_t{43}));
      EXPECT_EQ(mode, stm::LockMode::kRead);
    }
  }
}

TEST(BoostedMap, HashStateIndependentOfInsertionOrder) {
  BoostedMap<std::uint64_t, std::int64_t> a(1);
  BoostedMap<std::uint64_t, std::int64_t> b(1);
  a.raw_put(1, 10);
  a.raw_put(2, 20);
  b.raw_put(2, 20);
  b.raw_put(1, 10);
  StateHasher ha;
  StateHasher hb;
  a.hash_state(ha, "m");
  b.hash_state(hb, "m");
  EXPECT_EQ(ha.finish(), hb.finish());
}

TEST(BoostedMap, HashStateSensitiveToContent) {
  BoostedMap<std::uint64_t, std::int64_t> a(1);
  BoostedMap<std::uint64_t, std::int64_t> b(1);
  a.raw_put(1, 10);
  b.raw_put(1, 11);
  StateHasher ha;
  StateHasher hb;
  a.hash_state(ha, "m");
  b.hash_state(hb, "m");
  EXPECT_NE(ha.finish(), hb.finish());
}

// ------------------------------------------------- BoostedCounterMap ---

TEST(CounterMap, AbsentIsZero) {
  Env env;
  BoostedCounterMap<std::uint64_t> counters(2);
  auto ctx = env.serial_ctx();
  EXPECT_EQ(counters.get(ctx, 1), 0);
}

TEST(CounterMap, AddAccumulates) {
  Env env;
  BoostedCounterMap<std::uint64_t> counters(2);
  auto ctx = env.serial_ctx();
  counters.add(ctx, 1, 5);
  counters.add(ctx, 1, 7);
  EXPECT_EQ(counters.get(ctx, 1), 12);
}

TEST(CounterMap, ZeroEntriesAreErased) {
  Env env;
  BoostedCounterMap<std::uint64_t> counters(2);
  auto ctx = env.serial_ctx();
  counters.add(ctx, 1, 5);
  counters.add(ctx, 1, -5);
  EXPECT_EQ(counters.size(), 0u);  // Normalized: no zero entries.
  counters.set(ctx, 2, 0);
  EXPECT_EQ(counters.size(), 0u);
}

TEST(CounterMap, ZeroNormalizationKeepsHashCanonical) {
  BoostedCounterMap<std::uint64_t> a(2);
  BoostedCounterMap<std::uint64_t> b(2);
  {
    World w;
    auto ctx = ExecContext::serial(w, test_meter());
    a.add(ctx, 1, 5);
    a.add(ctx, 1, -5);  // Returns to zero → entry vanishes.
  }
  StateHasher ha;
  StateHasher hb;
  a.hash_state(ha, "c");
  b.hash_state(hb, "c");
  EXPECT_EQ(ha.finish(), hb.finish());
}

TEST(CounterMap, AddInverseIsNegativeAdd) {
  Env env;
  BoostedCounterMap<std::uint64_t> counters(2);
  counters.raw_set(1, 100);
  auto ctx = env.serial_ctx();
  counters.add(ctx, 1, 11);
  ctx.rollback_local();
  EXPECT_EQ(counters.raw_get(1), 100);
}

TEST(CounterMap, SetInverseRestoresOldValue) {
  Env env;
  BoostedCounterMap<std::uint64_t> counters(2);
  counters.raw_set(1, 100);
  auto ctx = env.serial_ctx();
  counters.set(ctx, 1, 7);
  counters.set(ctx, 3, 9);
  ctx.rollback_local();
  EXPECT_EQ(counters.raw_get(1), 100);
  EXPECT_EQ(counters.raw_get(3), 0);
  EXPECT_EQ(counters.size(), 1u);
}

TEST(CounterMap, ConcurrentAddsCommute) {
  // Two speculative actions add to the same key concurrently (INC mode
  // shares the lock); one aborts; the survivor's effect must be intact.
  World world;
  BoostedCounterMap<std::uint64_t> counters(2);
  stm::BoostingRuntime rt;

  stm::SpeculativeAction a(rt, 0, rt.next_birth());
  stm::SpeculativeAction b(rt, 1, rt.next_birth());
  ExecContext ctx_a = ExecContext::speculative(world, rt, a, test_meter());
  ExecContext ctx_b = ExecContext::speculative(world, rt, b, test_meter());

  counters.add(ctx_a, 1, 5);
  counters.add(ctx_b, 1, 3);  // Shares the INC lock with a.
  EXPECT_EQ(counters.raw_get(1), 8);
  a.abort();  // Inverse add(-5) must not clobber b's +3.
  EXPECT_EQ(counters.raw_get(1), 3);
  (void)b.commit();
  EXPECT_EQ(counters.raw_get(1), 3);
}

TEST(CounterMap, RawTotal) {
  BoostedCounterMap<std::uint64_t> counters(2);
  counters.raw_set(1, 5);
  counters.raw_set(2, -3);
  EXPECT_EQ(counters.raw_total(), 2);
}

// ----------------------------------------------------- BoostedScalar ---

TEST(Scalar, GetSet) {
  Env env;
  BoostedScalar<std::int64_t> scalar(3, 42);
  auto ctx = env.serial_ctx();
  EXPECT_EQ(scalar.get(ctx), 42);
  scalar.set(ctx, 7);
  EXPECT_EQ(scalar.get(ctx), 7);
}

TEST(Scalar, RevertRestores) {
  Env env;
  BoostedScalar<std::int64_t> scalar(3, 42);
  auto ctx = env.serial_ctx();
  scalar.set(ctx, 1);
  scalar.add(ctx, 10);
  ctx.rollback_local();
  EXPECT_EQ(scalar.raw_get(), 42);
}

TEST(Scalar, AddressScalar) {
  Env env;
  BoostedScalar<Address> scalar(3, kZeroAddress);
  auto ctx = env.serial_ctx();
  scalar.set(ctx, Address::from_u64(9));
  EXPECT_EQ(scalar.get(ctx), Address::from_u64(9));
}

TEST(Scalar, SpeculativeConflictOnSameScalar) {
  World world;
  BoostedScalar<std::int64_t> scalar(3, 0);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction a(rt, 0, rt.next_birth());
  ExecContext ctx_a = ExecContext::speculative(world, rt, a, test_meter());
  scalar.set(ctx_a, 1);
  // A second action can't write the same scalar until `a` finishes; we
  // verify the holder bookkeeping rather than blocking the test thread.
  EXPECT_EQ(a.held_lock_count(), 1u);
  (void)a.commit();
}

// ------------------------------------------------------------ World ----

TEST(World, TransferMovesBalance) {
  Env env;
  env.world.balances().raw_set(Address::from_u64(1), 100);
  auto ctx = env.serial_ctx();
  env.world.transfer(ctx, Address::from_u64(1), Address::from_u64(2), 30);
  EXPECT_EQ(env.world.balances().raw_get(Address::from_u64(1)), 70);
  EXPECT_EQ(env.world.balances().raw_get(Address::from_u64(2)), 30);
}

TEST(World, StateRootChangesWithState) {
  World w;
  const auto root0 = w.state_root();
  w.balances().raw_set(Address::from_u64(1), 5);
  const auto root1 = w.state_root();
  EXPECT_NE(root0, root1);
  w.balances().raw_set(Address::from_u64(1), 0);  // Back to nothing.
  EXPECT_EQ(w.state_root(), root0);
}

// ----------------------------------------------------- TraceRecorder ---

TEST(Trace, FoldsToStrongestMode) {
  TraceRecorder trace;
  const stm::LockId id{1, 1};
  trace.record(id, stm::LockMode::kRead);
  trace.record(id, stm::LockMode::kWrite);
  trace.record(id, stm::LockMode::kRead);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.canonical()[0].second, stm::LockMode::kWrite);
}

TEST(Trace, MatchesProfile) {
  TraceRecorder trace;
  trace.record({1, 1}, stm::LockMode::kWrite);
  trace.record({1, 2}, stm::LockMode::kRead);

  stm::LockProfile profile;
  profile.entries = {{{1, 1}, stm::LockMode::kWrite, 1}, {{1, 2}, stm::LockMode::kRead, 1}};
  EXPECT_TRUE(trace.matches(profile));

  stm::LockProfile wrong_mode = profile;
  wrong_mode.entries[1].mode = stm::LockMode::kWrite;
  EXPECT_FALSE(trace.matches(wrong_mode));

  stm::LockProfile missing = profile;
  missing.entries.pop_back();
  EXPECT_FALSE(trace.matches(missing));

  stm::LockProfile extra = profile;
  extra.entries.push_back({{2, 2}, stm::LockMode::kRead, 1});
  EXPECT_FALSE(trace.matches(extra));
}

// ----------------------------------------------------- Nested calls ----

TEST(NestedCall, SerialRevertRollsBackCalleeOnly) {
  Env env;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  auto ctx = env.serial_ctx();
  ctx.push_msg(MsgContext{Address::from_u64(1), Address::from_u64(2), 0});
  map.put(ctx, 1, 100);
  const bool ok = ctx.nested_call(Address::from_u64(3), 0, [&](ExecContext& inner) {
    map.put(inner, 2, 200);
    throw RevertError("child fails");
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(map.raw_get(1), 100);          // Caller effect intact.
  EXPECT_EQ(map.raw_get(2), std::nullopt);  // Callee effect undone.
  ctx.pop_msg();
}

TEST(NestedCall, MsgSenderBecomesCallingContract) {
  Env env;
  auto ctx = env.serial_ctx();
  const Address eoa = Address::from_u64(1);
  const Address contract_a = Address::from_u64(2);
  const Address contract_b = Address::from_u64(3);
  ctx.push_msg(MsgContext{eoa, contract_a, 0});
  EXPECT_EQ(ctx.msg().sender, eoa);
  (void)ctx.nested_call(contract_b, 5, [&](ExecContext& inner) {
    EXPECT_EQ(inner.msg().sender, contract_a);
    EXPECT_EQ(inner.msg().receiver, contract_b);
    EXPECT_EQ(inner.msg().value, 5);
  });
  EXPECT_EQ(ctx.msg().sender, eoa);  // Frame popped.
  ctx.pop_msg();
}

TEST(NestedCall, SpeculativeChildAbortKeepsParent) {
  World world;
  BoostedMap<std::uint64_t, std::int64_t> map(1);
  stm::BoostingRuntime rt;
  stm::SpeculativeAction action(rt, 0, rt.next_birth());
  ExecContext ctx = ExecContext::speculative(world, rt, action, test_meter());
  ctx.push_msg(MsgContext{Address::from_u64(1), Address::from_u64(2), 0});

  map.put(ctx, 1, 100);
  const bool ok = ctx.nested_call(Address::from_u64(3), 0, [&](ExecContext& inner) {
    map.put(inner, 2, 200);
    throw RevertError("child fails");
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(map.raw_get(1), 100);
  EXPECT_EQ(map.raw_get(2), std::nullopt);

  ctx.pop_msg();
  (void)action.commit();
  EXPECT_EQ(map.raw_get(1), 100);
}

}  // namespace
}  // namespace concord::vm
