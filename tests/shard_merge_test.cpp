#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "chain/shard_merge.hpp"
#include "chain/transaction.hpp"
#include "node/mempool.hpp"
#include "stm/lock_table.hpp"
#include "vm/types.hpp"

namespace concord::chain {
namespace {

using stm::LockId;
using stm::LockMode;
using stm::LockProfile;
using stm::LockProfileEntry;

Transaction make_tx(std::uint64_t id) {
  Transaction tx;
  tx.contract = vm::Address::from_u64(id, 0xC0);
  tx.sender = vm::Address::from_u64(id, 0x5E);
  tx.selector = static_cast<vm::Selector>(id);
  tx.gas_limit = 1'000;
  return tx;
}

LockProfile make_profile(std::uint32_t tx,
                         std::vector<LockProfileEntry> entries) {
  LockProfile p;
  p.tx = tx;
  p.entries = std::move(entries);
  return p;
}

LockProfileEntry entry(std::uint64_t space, std::uint64_t key, LockMode mode,
                       std::uint64_t counter) {
  return LockProfileEntry{LockId{space, key}, mode, counter};
}

/// One lane of n transactions over the given profiles (statuses all
/// success; profiles must already be indexed 0..n-1 in a topological
/// order — the merge precondition).
ShardLane make_lane(std::uint32_t shard, std::uint64_t tx_id_base,
                    std::vector<LockProfile> profiles) {
  ShardLane lane;
  lane.shard = shard;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    lane.transactions.push_back(make_tx(tx_id_base + i));
    lane.statuses.push_back(vm::TxStatus::kSuccess);
  }
  lane.profiles = std::move(profiles);
  return lane;
}

// ------------------------------------------------------ Merge layer ---

TEST(ShardMerge, SingleLaneIsTheIdentity) {
  std::vector<LockProfile> profiles;
  profiles.push_back(make_profile(0, {entry(1, 1, LockMode::kWrite, 1)}));
  profiles.push_back(make_profile(1, {entry(1, 1, LockMode::kWrite, 2)}));
  profiles.push_back(make_profile(2, {entry(2, 2, LockMode::kRead, 1)}));
  const auto lanes = std::vector<ShardLane>{make_lane(0, 100, std::move(profiles))};

  const ShardMergeResult merged = merge_shards(lanes);

  ASSERT_EQ(merged.transactions.size(), 3u);
  EXPECT_EQ(merged.transactions, lanes[0].transactions);
  EXPECT_EQ(merged.statuses, lanes[0].statuses);
  EXPECT_EQ(merged.profiles, lanes[0].profiles);  // Counters already serial.
  EXPECT_TRUE(merged.requeued.empty());
  EXPECT_EQ(merged.cross_shard_conflicts, 0u);
  ASSERT_EQ(merged.lane_counts, (std::vector<std::uint32_t>{3}));
  for (std::uint32_t m = 0; m < 3; ++m) {
    EXPECT_EQ(merged.origins[m].lane, 0u);
    EXPECT_EQ(merged.origins[m].local, m);
  }
}

TEST(ShardMerge, LowerLaneWinsCrossShardConflicts) {
  // Both lanes write the same lock: lane 0's transaction commits, lane
  // 1's is arbitrated out and re-queued.
  std::vector<ShardLane> lanes;
  lanes.push_back(make_lane(0, 100, {make_profile(0, {entry(7, 7, LockMode::kWrite, 1)})}));
  lanes.push_back(make_lane(1, 200, {make_profile(0, {entry(7, 7, LockMode::kWrite, 1)})}));

  const ShardMergeResult merged = merge_shards(lanes);

  ASSERT_EQ(merged.transactions.size(), 1u);
  EXPECT_EQ(merged.transactions[0], lanes[0].transactions[0]);
  EXPECT_EQ(merged.cross_shard_conflicts, 1u);
  ASSERT_EQ(merged.requeued.size(), 1u);
  EXPECT_EQ(merged.requeued[0], lanes[1].transactions[0]);
  EXPECT_EQ(merged.lane_counts, (std::vector<std::uint32_t>{1, 0}));
}

TEST(ShardMerge, CommutingModesCrossShardsFreely) {
  // INCREMENT/INCREMENT and READ/READ commute across shards — no losers.
  std::vector<ShardLane> lanes;
  lanes.push_back(make_lane(0, 100, {make_profile(0, {entry(7, 7, LockMode::kIncrement, 1),
                                                      entry(8, 8, LockMode::kRead, 1)})}));
  lanes.push_back(make_lane(1, 200, {make_profile(0, {entry(7, 7, LockMode::kIncrement, 1),
                                                      entry(8, 8, LockMode::kRead, 1)})}));

  const ShardMergeResult merged = merge_shards(lanes);

  EXPECT_EQ(merged.transactions.size(), 2u);
  EXPECT_TRUE(merged.requeued.empty());
  EXPECT_EQ(merged.cross_shard_conflicts, 0u);
  EXPECT_EQ(merged.lane_counts, (std::vector<std::uint32_t>{1, 1}));
}

TEST(ShardMerge, LossCascadesAlongTheLaneHappensBefore) {
  // Lane 1: tx0 -> tx1 through lock C (write/write). tx0 loses to lane 0
  // on lock A; tx1 touches nothing lane 0 touched but depends on tx0, so
  // it must cascade out with it (counted as a cascade, not a direct
  // cross-shard conflict).
  std::vector<ShardLane> lanes;
  lanes.push_back(make_lane(0, 100, {make_profile(0, {entry(1, 1, LockMode::kWrite, 1)})}));
  std::vector<LockProfile> lane1;
  lane1.push_back(make_profile(0, {entry(1, 1, LockMode::kWrite, 1),
                                   entry(3, 3, LockMode::kWrite, 1)}));
  lane1.push_back(make_profile(1, {entry(3, 3, LockMode::kWrite, 2)}));
  lanes.push_back(make_lane(1, 200, std::move(lane1)));

  const ShardMergeResult merged = merge_shards(lanes);

  ASSERT_EQ(merged.transactions.size(), 1u);
  EXPECT_EQ(merged.cross_shard_conflicts, 1u);  // Only tx0 conflicted directly.
  ASSERT_EQ(merged.requeued.size(), 2u);        // tx0 plus its dependent, in lane order.
  EXPECT_EQ(merged.requeued[0], lanes[1].transactions[0]);
  EXPECT_EQ(merged.requeued[1], lanes[1].transactions[1]);
  EXPECT_EQ(merged.lane_counts, (std::vector<std::uint32_t>{1, 0}));
}

TEST(ShardMerge, RenumberingMatchesSerialSynthesis) {
  // Winners' counters must come out 1, 2, 3… per lock in merged order —
  // exactly what serial mining of the merged order would synthesize —
  // and profiles must be re-indexed to merged positions.
  std::vector<ShardLane> lanes;
  lanes.push_back(make_lane(0, 100, {make_profile(0, {entry(7, 7, LockMode::kIncrement, 4)})}));
  lanes.push_back(make_lane(1, 200, {make_profile(0, {entry(7, 7, LockMode::kIncrement, 9),
                                                      entry(8, 8, LockMode::kWrite, 2)})}));
  lanes.push_back(make_lane(2, 300, {make_profile(0, {entry(7, 7, LockMode::kIncrement, 1)})}));

  const ShardMergeResult merged = merge_shards(lanes);

  ASSERT_EQ(merged.transactions.size(), 3u);
  for (std::uint32_t m = 0; m < 3; ++m) EXPECT_EQ(merged.profiles[m].tx, m);
  EXPECT_EQ(merged.profiles[0].entries[0].counter, 1u);  // Lock (7,7) holder #1.
  EXPECT_EQ(merged.profiles[1].entries[0].counter, 2u);  // Holder #2.
  EXPECT_EQ(merged.profiles[1].entries[1].counter, 1u);  // Lock (8,8) holder #1.
  EXPECT_EQ(merged.profiles[2].entries[0].counter, 3u);  // Holder #3.
}

TEST(ShardMerge, EmptyLanesKeepTheirLaneCountSlot) {
  std::vector<ShardLane> lanes(3);
  lanes[0].shard = 0;
  lanes[1] = make_lane(1, 200, {make_profile(0, {entry(1, 1, LockMode::kWrite, 1)})});
  lanes[2].shard = 2;

  const ShardMergeResult merged = merge_shards(lanes);

  EXPECT_EQ(merged.lane_counts, (std::vector<std::uint32_t>{0, 1, 0}));
  ASSERT_EQ(merged.transactions.size(), 1u);
  EXPECT_EQ(merged.origins[0].lane, 1u);  // Lane index survives empty lanes.
}

TEST(ShardMerge, MismatchedLaneSizesThrow) {
  ShardLane lane = make_lane(0, 100, {make_profile(0, {entry(1, 1, LockMode::kWrite, 1)})});
  lane.statuses.clear();
  EXPECT_THROW((void)merge_shards({lane}), std::invalid_argument);
}

// ---------------------------------------------------- Shard routing ---

TEST(ShardRouter, PartitionIsPureAndCoversEveryShard) {
  // Content-only: the same root id always lands in the same partition.
  for (const std::uint64_t root : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (const std::uint32_t shards : {1u, 2u, 4u, 7u}) {
      const std::uint32_t first = stm::lock_partition_of(root, shards);
      EXPECT_EQ(first, stm::lock_partition_of(root, shards));
      EXPECT_LT(first, shards);
    }
    EXPECT_EQ(stm::lock_partition_of(root, 1), 0u);  // Degenerate partition.
  }
  // mix64 spreads sequential roots: with plenty of contracts every shard
  // of a small fan-out sees traffic.
  for (const std::uint32_t shards : {2u, 4u}) {
    std::vector<std::size_t> hits(shards, 0);
    for (std::uint64_t root = 0; root < 256; ++root) {
      ++hits[stm::lock_partition_of(root, shards)];
    }
    for (const std::size_t h : hits) EXPECT_GT(h, 0u);
  }
}

TEST(ShardRouter, TransactionRoutingIsArrivalOrderIndependent) {
  // shard_of is a pure function of the transaction's contract — the same
  // multiset routes identically no matter how it is permuted.
  std::vector<Transaction> txs;
  for (std::uint64_t id = 0; id < 64; ++id) txs.push_back(make_tx(id));

  std::vector<std::uint32_t> assignment;
  for (const auto& tx : txs) assignment.push_back(node::shard_of(tx, 4));

  std::mt19937 rng(7);
  for (int round = 0; round < 3; ++round) {
    auto shuffled = txs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      // Find the original index by content; routing must agree.
      const auto it = std::find(txs.begin(), txs.end(), shuffled[i]);
      ASSERT_NE(it, txs.end());
      EXPECT_EQ(node::shard_of(shuffled[i], 4),
                assignment[static_cast<std::size_t>(it - txs.begin())]);
    }
  }
}

}  // namespace
}  // namespace concord::chain
