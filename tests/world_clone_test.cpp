#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/kv_store.hpp"
#include "contracts/payment_splitter.hpp"
#include "contracts/simple_auction.hpp"
#include "contracts/token.hpp"
#include "core/miner.hpp"
#include "vm/world.hpp"
#include "workload/workload.hpp"

namespace concord::vm {
namespace {

Address addr(std::uint64_t n, std::uint8_t salt) { return Address::from_u64(n, salt); }

const Address kBallotAddr = addr(1, 0xCC);
const Address kAuctionAddr = addr(2, 0xCC);
const Address kEtherDocAddr = addr(3, 0xCC);
const Address kTokenAddr = addr(4, 0xCC);
const Address kSplitterAddr = addr(5, 0xCC);
const Address kEagerKvAddr = addr(6, 0xCC);
const Address kLazyKvAddr = addr(7, 0xCC);

/// One world holding every contract the repository ships — both KvStore
/// backends included — with non-trivial state in every boosted field
/// kind (map, counter map, scalar, lazy map) plus native balances.
std::unique_ptr<World> make_six_contract_world() {
  auto world = std::make_unique<World>();

  auto ballot = std::make_unique<contracts::Ballot>(
      kBallotAddr, addr(1, 0x04), std::vector<std::string>{"alpha", "beta"});
  ballot->raw_register_voter(addr(7, 0x01), 3);
  world->contracts().add(std::move(ballot));

  auto auction = std::make_unique<contracts::SimpleAuction>(kAuctionAddr, addr(2, 0x04));
  auction->raw_set_highest(addr(8, 0x02), 500);
  auction->raw_add_pending(addr(9, 0x02), 120);
  world->contracts().add(std::move(auction));

  auto etherdoc = std::make_unique<contracts::EtherDoc>(kEtherDocAddr, addr(3, 0x04));
  etherdoc->raw_add_document(42, addr(10, 0x03));
  world->contracts().add(std::move(etherdoc));

  auto token = std::make_unique<contracts::Token>(kTokenAddr, "CNC", addr(4, 0x04));
  token->raw_mint(addr(11, 0x05), 1'000);
  world->contracts().add(std::move(token));

  world->contracts().add(std::make_unique<contracts::PaymentSplitter>(
      kSplitterAddr, kTokenAddr, std::vector<Address>{addr(11, 0x05), addr(12, 0x05)}));

  auto eager = std::make_unique<contracts::KvStore>(kEagerKvAddr,
                                                    contracts::KvStore::Backend::kEager);
  eager->raw_put(1, 11);
  world->contracts().add(std::move(eager));

  auto lazy_kv = std::make_unique<contracts::KvStore>(kLazyKvAddr,
                                                      contracts::KvStore::Backend::kLazy);
  lazy_kv->raw_put(2, 22);
  world->contracts().add(std::move(lazy_kv));

  world->balances().raw_set(addr(20, 0x06), 9'000);
  return world;
}

// -------------------------------------------------------- World::clone ---

TEST(WorldClone, RoundTripsStateRootForAllSixContracts) {
  const auto world = make_six_contract_world();
  const auto copy = world->clone();
  EXPECT_EQ(copy->state_root(), world->state_root());
  EXPECT_EQ(copy->contracts().size(), world->contracts().size());
  // The clone resolves the same typed contracts at the same addresses.
  EXPECT_EQ(copy->contracts().as<contracts::Token>(kTokenAddr).raw_balance(addr(11, 0x05)),
            1'000);
  EXPECT_EQ(copy->contracts().as<contracts::KvStore>(kLazyKvAddr).raw_get(2), 22);
}

TEST(WorldClone, CloneIsIndependentInBothDirections) {
  const auto world = make_six_contract_world();
  const auto original_root = world->state_root();
  const auto copy = world->clone();

  // Mutating the clone leaves the original frozen…
  copy->contracts().as<contracts::Token>(kTokenAddr).raw_mint(addr(13, 0x05), 5);
  EXPECT_NE(copy->state_root(), original_root);
  EXPECT_EQ(world->state_root(), original_root);

  // …and mutating the original leaves the clone untouched.
  const auto copy_root = copy->state_root();
  world->balances().raw_set(addr(21, 0x06), 1);
  EXPECT_EQ(copy->state_root(), copy_root);
}

class WorldCloneWorkloads : public ::testing::TestWithParam<workload::BenchmarkKind> {};

TEST_P(WorldCloneWorkloads, RoundTripsGenesisStateRoot) {
  workload::WorkloadSpec spec;
  spec.kind = GetParam();
  spec.transactions = 60;
  spec.conflict_percent = 20;
  const auto fixture = workload::make_fixture(spec);
  EXPECT_EQ(fixture.world->clone()->state_root(), fixture.world->state_root());
}

/// Clones are taken at block boundaries in the node, so the root must
/// round-trip from post-block state too — not just pristine genesis.
TEST_P(WorldCloneWorkloads, RoundTripsPostBlockStateRoot) {
  workload::WorkloadSpec spec;
  spec.kind = GetParam();
  spec.transactions = 40;
  spec.conflict_percent = 25;
  const auto fixture = workload::make_fixture(spec);
  core::MinerConfig config;
  config.nanos_per_gas = 0.0;
  core::Miner miner(*fixture.world, config);
  const chain::Block block = miner.mine_serial(fixture.transactions, fixture.genesis());

  const auto copy = fixture.world->clone();
  EXPECT_EQ(copy->state_root(), fixture.world->state_root());
  EXPECT_EQ(copy->state_root(), block.header.state_root);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorldCloneWorkloads,
                         ::testing::ValuesIn(workload::kAllBenchmarks),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

// ------------------------------------------------------- WorldSnapshot ---

TEST(WorldSnapshotHandle, StaysFrozenWhileTheSourceMutates) {
  auto world = make_six_contract_world();
  const WorldSnapshot snapshot(*world);
  const auto frozen_root = snapshot.state_root();
  EXPECT_EQ(frozen_root, world->state_root());

  world->balances().raw_set(addr(20, 0x06), 1);
  EXPECT_NE(world->state_root(), frozen_root);
  EXPECT_EQ(snapshot.state_root(), frozen_root);
  EXPECT_EQ(snapshot.world().state_root(), frozen_root);
}

TEST(WorldSnapshotHandle, MaterializeMintsIndependentReplicas) {
  const auto world = make_six_contract_world();
  const WorldSnapshot snapshot(*world);
  const WorldSnapshot handle = snapshot;  // Copies share the frozen state.
  EXPECT_EQ(handle.state_root(), snapshot.state_root());

  const auto replica = handle.materialize();
  EXPECT_EQ(replica->state_root(), snapshot.state_root());
  replica->balances().raw_set(addr(22, 0x06), 7);
  EXPECT_NE(replica->state_root(), snapshot.state_root());
  EXPECT_EQ(snapshot.world().state_root(), handle.state_root());
}

TEST(WorldSnapshotHandle, EmptyHandleIsInvalidWithZeroRoot) {
  const WorldSnapshot empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_TRUE(empty.state_root().is_zero());

  const auto world = make_six_contract_world();
  const WorldSnapshot frozen(*world);
  EXPECT_TRUE(frozen.valid());
  EXPECT_FALSE(frozen.state_root().is_zero());
}

TEST(WorldSnapshotHandle, UseCountTracksSharedHandles) {
  const auto world = make_six_contract_world();
  WorldSnapshot snapshot(*world);
  EXPECT_EQ(snapshot.use_count(), 1);
  {
    const WorldSnapshot shared = snapshot;  // The ring-entry case.
    EXPECT_EQ(snapshot.use_count(), 2);
    EXPECT_EQ(shared.use_count(), 2);
    // Materializing clones the state; it does not pin another handle.
    const auto replica = shared.materialize();
    EXPECT_EQ(snapshot.use_count(), 2);
  }
  EXPECT_EQ(snapshot.use_count(), 1);

  // A moved-from handle releases its share and reads as empty.
  const WorldSnapshot taken = std::move(snapshot);
  EXPECT_EQ(taken.use_count(), 1);
  EXPECT_TRUE(taken.valid());
}

}  // namespace
}  // namespace concord::vm
