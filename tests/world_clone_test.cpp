#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/kv_store.hpp"
#include "contracts/payment_splitter.hpp"
#include "contracts/simple_auction.hpp"
#include "contracts/token.hpp"
#include "core/miner.hpp"
#include "vm/boosted_array.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/world.hpp"
#include "workload/workload.hpp"

namespace concord::vm {
namespace {

Address addr(std::uint64_t n, std::uint8_t salt) { return Address::from_u64(n, salt); }

const Address kBallotAddr = addr(1, 0xCC);
const Address kAuctionAddr = addr(2, 0xCC);
const Address kEtherDocAddr = addr(3, 0xCC);
const Address kTokenAddr = addr(4, 0xCC);
const Address kSplitterAddr = addr(5, 0xCC);
const Address kEagerKvAddr = addr(6, 0xCC);
const Address kLazyKvAddr = addr(7, 0xCC);

/// One world holding every contract the repository ships — both KvStore
/// backends included — with non-trivial state in every boosted field
/// kind (map, counter map, scalar, lazy map) plus native balances.
std::unique_ptr<World> make_six_contract_world() {
  auto world = std::make_unique<World>();

  auto ballot = std::make_unique<contracts::Ballot>(
      kBallotAddr, addr(1, 0x04), std::vector<std::string>{"alpha", "beta"});
  ballot->raw_register_voter(addr(7, 0x01), 3);
  world->contracts().add(std::move(ballot));

  auto auction = std::make_unique<contracts::SimpleAuction>(kAuctionAddr, addr(2, 0x04));
  auction->raw_set_highest(addr(8, 0x02), 500);
  auction->raw_add_pending(addr(9, 0x02), 120);
  world->contracts().add(std::move(auction));

  auto etherdoc = std::make_unique<contracts::EtherDoc>(kEtherDocAddr, addr(3, 0x04));
  etherdoc->raw_add_document(42, addr(10, 0x03));
  world->contracts().add(std::move(etherdoc));

  auto token = std::make_unique<contracts::Token>(kTokenAddr, "CNC", addr(4, 0x04));
  token->raw_mint(addr(11, 0x05), 1'000);
  world->contracts().add(std::move(token));

  world->contracts().add(std::make_unique<contracts::PaymentSplitter>(
      kSplitterAddr, kTokenAddr, std::vector<Address>{addr(11, 0x05), addr(12, 0x05)}));

  auto eager = std::make_unique<contracts::KvStore>(kEagerKvAddr,
                                                    contracts::KvStore::Backend::kEager);
  eager->raw_put(1, 11);
  world->contracts().add(std::move(eager));

  auto lazy_kv = std::make_unique<contracts::KvStore>(kLazyKvAddr,
                                                      contracts::KvStore::Backend::kLazy);
  lazy_kv->raw_put(2, 22);
  world->contracts().add(std::move(lazy_kv));

  world->balances().raw_set(addr(20, 0x06), 9'000);
  return world;
}

// --------------------------------------------------------- World::fork ---

TEST(WorldFork, RoundTripsStateRootForAllSixContracts) {
  const auto world = make_six_contract_world();
  const auto replica = world->fork();
  EXPECT_EQ(replica->state_root(), world->state_root());
  EXPECT_EQ(replica->contracts().size(), world->contracts().size());
  // The fork resolves the same typed contracts at the same addresses.
  EXPECT_EQ(replica->contracts().as<contracts::Token>(kTokenAddr).raw_balance(addr(11, 0x05)),
            1'000);
  EXPECT_EQ(replica->contracts().as<contracts::KvStore>(kLazyKvAddr).raw_get(2), 22);
}

TEST(WorldFork, ForkIsIndependentInBothDirections) {
  const auto world = make_six_contract_world();
  const auto original_root = world->state_root();
  const auto replica = world->fork();

  // Mutating the fork leaves the original frozen (detach-on-write)…
  replica->contracts().as<contracts::Token>(kTokenAddr).raw_mint(addr(13, 0x05), 5);
  EXPECT_NE(replica->state_root(), original_root);
  EXPECT_EQ(world->state_root(), original_root);

  // …and mutating the original leaves the fork untouched.
  const auto replica_root = replica->state_root();
  world->balances().raw_set(addr(21, 0x06), 1);
  EXPECT_EQ(replica->state_root(), replica_root);
}

TEST(WorldFork, SurvivesItsParentWorld) {
  auto world = make_six_contract_world();
  const auto original_root = world->state_root();
  auto replica = world->fork();
  world.reset();  // Shared pages must outlive the lineage that made them.
  EXPECT_EQ(replica->state_root(), original_root);
  EXPECT_EQ(replica->contracts().as<contracts::KvStore>(kEagerKvAddr).raw_get(1), 11);
}

class WorldForkWorkloads : public ::testing::TestWithParam<workload::BenchmarkKind> {};

TEST_P(WorldForkWorkloads, RoundTripsGenesisStateRoot) {
  workload::WorkloadSpec spec;
  spec.kind = GetParam();
  spec.transactions = 60;
  spec.conflict_percent = 20;
  const auto fixture = workload::make_fixture(spec);
  EXPECT_EQ(fixture.world->fork()->state_root(), fixture.world->state_root());
}

/// Forks are taken at block boundaries in the node, so the root must
/// round-trip from post-block state too — not just pristine genesis.
TEST_P(WorldForkWorkloads, RoundTripsPostBlockStateRoot) {
  workload::WorkloadSpec spec;
  spec.kind = GetParam();
  spec.transactions = 40;
  spec.conflict_percent = 25;
  const auto fixture = workload::make_fixture(spec);
  core::MinerConfig config;
  config.nanos_per_gas = 0.0;
  core::Miner miner(*fixture.world, config);
  const chain::Block block = miner.mine_serial(fixture.transactions, fixture.genesis());

  const auto replica = fixture.world->fork();
  EXPECT_EQ(replica->state_root(), fixture.world->state_root());
  EXPECT_EQ(replica->state_root(), block.header.state_root);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorldForkWorkloads,
                         ::testing::ValuesIn(workload::kAllBenchmarks),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

// ----------------------------------------------- COW aliasing fuzz -------

/// One raw mutation against the six-contract world, replayable: the fuzz
/// compares every forked lineage against a reference world rebuilt from
/// genesis + its mutation log, so any page aliasing between lineages (a
/// write leaking through a shared page, a detach losing entries) shows
/// up as a root mismatch.
struct Mutation {
  std::uint64_t op = 0;
  std::uint64_t a = 0;
  std::int64_t b = 0;
};

void apply_mutation(World& world, const Mutation& m) {
  switch (m.op % 8) {
    case 0:
      world.contracts().as<contracts::Token>(kTokenAddr).raw_mint(addr(m.a % 37, 0x05),
                                                                  1 + (m.b % 999));
      break;
    case 1:
      world.balances().raw_set(addr(m.a % 37, 0x06), m.b % 100'000);
      break;
    case 2:
      world.contracts().as<contracts::KvStore>(kEagerKvAddr).raw_put(m.a % 53, m.b);
      break;
    case 3:
      world.contracts().as<contracts::KvStore>(kLazyKvAddr).raw_put(m.a % 53, m.b);
      break;
    case 4:
      world.contracts().as<contracts::SimpleAuction>(kAuctionAddr)
          .raw_add_pending(addr(m.a % 37, 0x02), 1 + (m.b % 500));
      break;
    case 5:
      world.contracts().as<contracts::SimpleAuction>(kAuctionAddr)
          .raw_set_highest(addr(m.a % 37, 0x02), m.b % 10'000);
      break;
    case 6:
      world.contracts().as<contracts::EtherDoc>(kEtherDocAddr)
          .raw_add_document(m.a % 29, addr(static_cast<std::uint64_t>(m.b) % 37, 0x03));
      break;
    default:
      world.contracts().as<contracts::Ballot>(kBallotAddr)
          .raw_register_voter(addr(m.a % 37, 0x01), 1 + (m.b % 5));
      break;
  }
}

/// A forked lineage plus the full mutation history that produced it.
struct Lineage {
  std::unique_ptr<World> world;
  std::vector<Mutation> log;
};

util::Hash256 replay_reference_root(const std::vector<Mutation>& log) {
  const auto reference = make_six_contract_world();
  for (const Mutation& m : log) apply_mutation(*reference, m);
  return reference->state_root();
}

TEST(WorldForkFuzz, InterleavedForkMutateMatchesEagerReplayReference) {
  constexpr int kSteps = 48;
  constexpr std::size_t kMaxLineages = 5;

  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng;
  };

  std::vector<Lineage> pool;
  pool.push_back(Lineage{make_six_contract_world(), {}});

  for (int step = 0; step < kSteps; ++step) {
    const std::uint64_t r = next();
    if ((r >> 40) % 3 == 0) {
      // Fork a lineage. When the pool is full, retire the oldest lineage
      // first — forks must survive the worlds they came from.
      if (pool.size() == kMaxLineages) pool.erase(pool.begin());
      const std::size_t parent = (r >> 4) % pool.size();
      pool.push_back(Lineage{pool[parent].world->fork(), pool[parent].log});
    } else {
      const std::size_t pick = (r >> 4) % pool.size();
      Mutation m{next(), next(), static_cast<std::int64_t>(next() % 1'000'000)};
      apply_mutation(*pool[pick].world, m);
      pool[pick].log.push_back(m);
    }

    // Every lineage must equal an eagerly-rebuilt reference at every
    // step: no write may leak into (or be lost from) a sibling.
    for (std::size_t i = 0; i < pool.size(); ++i) {
      ASSERT_EQ(pool[i].world->state_root(), replay_reference_root(pool[i].log))
          << "lineage " << i << " diverged from its replay reference after step " << step;
    }
  }
}

// ----------------------------------------------- BoostedArray fork -------

util::Hash256 array_hash(const BoostedArray<std::int64_t>& array) {
  StateHasher hasher;
  array.hash_state(hasher, "array");
  return hasher.finish();
}

/// No shipped contract holds a BoostedArray, so the chunk-level COW gets
/// its aliasing coverage here: fork across chunk boundaries, then write,
/// push and pop on both sides.
TEST(BoostedArrayFork, DetachesOnlyTheTouchedChunkInEitherDirection) {
  World world;
  BoostedArray<std::int64_t> original(7);
  // Two full chunks plus a partial one.
  for (std::int64_t i = 0; i < 150; ++i) original.raw_push_back(i);

  BoostedArray<std::int64_t> replica(7);
  replica.fork_state_from(original);
  EXPECT_EQ(array_hash(replica), array_hash(original));

  GasMeter meter(gas::kDefaultTxGasLimit, 0.0);
  ExecContext ctx = ExecContext::serial(world, meter);

  replica.set(ctx, 3, -1);    // Chunk 0 of the replica detaches…
  replica.set(ctx, 140, -2);  // …and chunk 2.
  EXPECT_EQ(original.raw_get(3), 3);  // The original still reads the frozen chunks.
  EXPECT_EQ(original.raw_get(140), 140);
  EXPECT_EQ(replica.raw_get(3), -1);
  EXPECT_EQ(replica.raw_get(70), 70);  // Untouched chunk 1 is still shared.

  original.set(ctx, 70, -3);  // Writes on the original don't reach the fork.
  EXPECT_EQ(replica.raw_get(70), 70);
  EXPECT_EQ(original.raw_get(70), -3);

  (void)replica.push_back(ctx, 999);
  original.pop_back(ctx);
  EXPECT_EQ(replica.size(), 151u);
  EXPECT_EQ(original.size(), 149u);
  EXPECT_EQ(replica.raw_get(150), 999);
  EXPECT_EQ(replica.raw_get(149), 149);  // The popped element survives in the fork.
}

TEST(BoostedArrayFork, LockSpaceMismatchThrows) {
  BoostedArray<std::int64_t> a(7);
  BoostedArray<std::int64_t> b(8);
  EXPECT_THROW(b.fork_state_from(a), std::logic_error);
}

// ------------------------------------------------------- WorldSnapshot ---

TEST(WorldSnapshotHandle, StaysFrozenWhileTheSourceMutates) {
  auto world = make_six_contract_world();
  const WorldSnapshot snapshot(*world);
  const auto frozen_root = snapshot.state_root();
  EXPECT_EQ(frozen_root, world->state_root());

  world->balances().raw_set(addr(20, 0x06), 1);
  EXPECT_NE(world->state_root(), frozen_root);
  EXPECT_EQ(snapshot.state_root(), frozen_root);
  EXPECT_EQ(snapshot.world().state_root(), frozen_root);
}

TEST(WorldSnapshotHandle, MaterializeMintsIndependentReplicas) {
  const auto world = make_six_contract_world();
  const WorldSnapshot snapshot(*world);
  const WorldSnapshot handle = snapshot;  // Copies share the frozen state.
  EXPECT_EQ(handle.state_root(), snapshot.state_root());

  const auto replica = handle.materialize();
  EXPECT_EQ(replica->state_root(), snapshot.state_root());
  replica->balances().raw_set(addr(22, 0x06), 7);
  EXPECT_NE(replica->state_root(), snapshot.state_root());
  EXPECT_EQ(snapshot.world().state_root(), handle.state_root());
}

TEST(WorldSnapshotHandle, SeededRootSkipsTheHashAndMatches) {
  const auto world = make_six_contract_world();
  const auto known_root = world->state_root();
  // The node's fast path: the boundary's root was just computed (and
  // verified) by the block that ended there, so the snapshot takes it on
  // trust instead of rehashing O(state).
  const WorldSnapshot snapshot(*world, known_root);
  EXPECT_EQ(snapshot.state_root(), known_root);
  EXPECT_EQ(snapshot.world().state_root(), known_root);
  EXPECT_EQ(snapshot.materialize()->state_root(), known_root);
}

TEST(WorldSnapshotHandle, EmptyHandleIsInvalidWithZeroRoot) {
  const WorldSnapshot empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_TRUE(empty.state_root().is_zero());

  const auto world = make_six_contract_world();
  const WorldSnapshot frozen(*world);
  EXPECT_TRUE(frozen.valid());
  EXPECT_FALSE(frozen.state_root().is_zero());
}

TEST(WorldSnapshotHandle, UseCountTracksSharedHandles) {
  const auto world = make_six_contract_world();
  WorldSnapshot snapshot(*world);
  EXPECT_EQ(snapshot.use_count(), 1);
  {
    const WorldSnapshot shared = snapshot;  // The ring-entry case.
    EXPECT_EQ(snapshot.use_count(), 2);
    EXPECT_EQ(shared.use_count(), 2);
    // Materializing forks the state; it does not pin another handle.
    const auto replica = shared.materialize();
    EXPECT_EQ(snapshot.use_count(), 2);
  }
  EXPECT_EQ(snapshot.use_count(), 1);

  // A moved-from handle releases its share and reads as empty.
  const WorldSnapshot taken = std::move(snapshot);
  EXPECT_EQ(taken.use_count(), 1);
  EXPECT_TRUE(taken.valid());
}

// --------------------------------------------- concurrent COW sharing ----

/// The TSan target for the COW redesign: materialize() on handles sharing
/// one frozen world is now pointer-sharing (refcount bumps on shared
/// pages), not a memcpy of private state — and it runs concurrently with
/// a writer detaching pages from that same frozen state. Any in-place
/// mutation of a shared page, or a non-atomic handoff in the ensure-
/// unique path, is a data race this test exposes under -fsanitize=thread.
TEST(WorldForkConcurrency, SharedFrozenPagesServeConcurrentMaterializeAndWrites) {
  auto world = make_six_contract_world();
  // Enough balance entries for a multi-page directory, so readers and
  // the writer actually overlap on shared pages.
  for (std::uint64_t i = 0; i < 512; ++i) {
    world->balances().raw_set(addr(1'000 + i, 0x06), static_cast<Amount>(i + 1));
  }
  const WorldSnapshot boundary(*world);
  const util::Hash256 frozen_root = boundary.state_root();

  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> validators;
    for (int t = 0; t < 3; ++t) {
      validators.emplace_back([&boundary, &frozen_root, &mismatches, t] {
        for (int round = 0; round < 4; ++round) {
          auto replica = boundary.materialize();
          if (replica->state_root() != frozen_root) mismatches.fetch_add(1);
          // Replica writes detach pages shared with the frozen world.
          for (std::uint64_t i = 0; i < 64; ++i) {
            replica->balances().raw_set(
                addr(2'000 + static_cast<std::uint64_t>(t) * 100 + i, 0x06), 7);
          }
          if (replica->state_root() == frozen_root) mismatches.fetch_add(1);
        }
      });
    }
    // Meanwhile the "miner" keeps advancing the original world, peeling
    // its own pages off the same frozen state.
    for (std::uint64_t i = 0; i < 256; ++i) {
      world->balances().raw_set(addr(1'000 + (i % 512), 0x06), static_cast<Amount>(i));
      world->contracts().as<contracts::KvStore>(kEagerKvAddr).raw_put(i % 64, 1);
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(boundary.state_root(), frozen_root);
}

}  // namespace
}  // namespace concord::vm
