// The MVCC read path, bottom to top: read-only query execution against
// frozen snapshots (mutation rejection, gas caps, call-shaped queries),
// WorldSnapshot invalid-handle hygiene, the SnapshotRing retention
// window (publish/lookup/eviction/rewind/pin-outlives-eviction), and
// the Node's client-facing query API — including readers hammering
// query_latest/pin_at while the pipelined node mines (the TSan-lane
// case) and pinned reads staying byte-consistent across a re-org.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"

#include "contracts/kv_store.hpp"
#include "core/query.hpp"
#include "node/node.hpp"
#include "node/snapshot_ring.hpp"
#include "vm/errors.hpp"
#include "vm/gas.hpp"
#include "vm/world.hpp"
#include "workload/workload.hpp"

namespace concord::node {
namespace {

using core::QueryConfig;
using core::QueryStatus;
using core::run_query;
using core::run_query_call;
using workload::BenchmarkKind;
using workload::StreamSpec;
using workload::make_stream_fixture;

const vm::Address kAlice = vm::Address::from_u64(1, 0xA1);
const vm::Address kBob = vm::Address::from_u64(2, 0xA1);
const vm::Address kKvAddr = vm::Address::from_u64(77, 0xC0);

/// A small world with seeded balances and a KvStore holding {7: 42}.
std::unique_ptr<vm::World> make_query_world() {
  auto world = std::make_unique<vm::World>();
  world->balances().raw_set(kAlice, 1'000);
  world->balances().raw_set(kBob, 250);
  auto& kv = static_cast<contracts::KvStore&>(world->contracts().add(
      std::make_unique<contracts::KvStore>(kKvAddr, contracts::KvStore::Backend::kEager)));
  kv.raw_put(7, 42);
  return world;
}

// ------------------------------------------ run_query (fn-shaped) ---

TEST(ReadOnlyQuery, BalanceReadSucceedsAndMeters) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  std::int64_t observed = 0;
  const auto outcome = run_query(snapshot, QueryConfig{},
                                 [&](const vm::World& w, vm::ExecContext& ctx) {
                                   observed = w.balances().get(ctx, kAlice);
                                 });
  EXPECT_EQ(outcome.status, QueryStatus::kOk);
  EXPECT_EQ(observed, 1'000);
  // Base dispatch + one storage read, metered even though nothing burns.
  EXPECT_GE(outcome.gas_used, vm::gas::kTxBase + vm::gas::kSload);
}

TEST(ReadOnlyQuery, MutationIsRejectedBeforeAnyWrite) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);
  const util::Hash256 root_before = snapshot.state_root();

  const auto outcome = run_query(snapshot, QueryConfig{},
                                 [&](const vm::World&, vm::ExecContext& ctx) {
                                   // A rogue "view" that tries to move money.
                                   ctx.world().transfer(ctx, kAlice, kBob, 5);
                                 });
  EXPECT_EQ(outcome.status, QueryStatus::kMutationRejected);
  EXPECT_EQ(snapshot.state_root(), root_before);

  // The frozen world really is untouched — not rolled back, untouched.
  std::int64_t alice = -1;
  (void)run_query(snapshot, QueryConfig{}, [&](const vm::World& w, vm::ExecContext& ctx) {
    alice = w.balances().get(ctx, kAlice);
  });
  EXPECT_EQ(alice, 1'000);
}

TEST(ReadOnlyQuery, GasCapMapsToOutOfGas) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  QueryConfig tiny;
  tiny.gas_cap = vm::gas::kTxBase - 1;  // Even dispatch doesn't fit.
  const auto outcome =
      run_query(snapshot, tiny, [](const vm::World&, vm::ExecContext&) { FAIL(); });
  EXPECT_EQ(outcome.status, QueryStatus::kOutOfGas);
}

TEST(ReadOnlyQuery, ContractRevertMapsToReverted) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  const auto outcome = run_query(snapshot, QueryConfig{},
                                 [](const vm::World&, vm::ExecContext&) {
                                   throw vm::RevertError("view precondition failed");
                                 });
  EXPECT_EQ(outcome.status, QueryStatus::kReverted);
}

TEST(ReadOnlyQuery, InvalidSnapshotHandleThrows) {
  EXPECT_THROW((void)run_query(vm::WorldSnapshot{}, QueryConfig{},
                               [](const vm::World&, vm::ExecContext&) {}),
               std::logic_error);
}

// ---------------------------------------- run_query_call (tx-shaped) ---

TEST(ReadOnlyQueryCall, ReadSelectorExecutesOk) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  const auto outcome = run_query_call(
      snapshot, QueryConfig{}, contracts::KvStore::make_get_tx(kKvAddr, kAlice, 7));
  EXPECT_EQ(outcome.status, QueryStatus::kOk);
  EXPECT_GT(outcome.gas_used, vm::gas::kTxBase);
}

TEST(ReadOnlyQueryCall, MutatingSelectorIsRejected) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);
  const util::Hash256 root_before = snapshot.state_root();

  const auto outcome = run_query_call(
      snapshot, QueryConfig{}, contracts::KvStore::make_put_tx(kKvAddr, kAlice, 7, 99));
  EXPECT_EQ(outcome.status, QueryStatus::kMutationRejected);
  EXPECT_EQ(snapshot.state_root(), root_before);
}

TEST(ReadOnlyQueryCall, MissingContractReverts) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  const auto outcome = run_query_call(
      snapshot, QueryConfig{},
      contracts::KvStore::make_get_tx(vm::Address::from_u64(404, 0xDD), kAlice, 7));
  EXPECT_EQ(outcome.status, QueryStatus::kReverted);
  EXPECT_EQ(outcome.gas_used, 0u);
}

TEST(ReadOnlyQueryCall, TransactionGasLimitTightensTheCap) {
  auto world = make_query_world();
  const vm::WorldSnapshot snapshot(*world);

  chain::Transaction tx = contracts::KvStore::make_get_tx(kKvAddr, kAlice, 7);
  tx.gas_limit = vm::gas::kTxBase - 1;  // Below even the node's generous cap.
  const auto outcome = run_query_call(snapshot, QueryConfig{}, tx);
  EXPECT_EQ(outcome.status, QueryStatus::kOutOfGas);
}

// ------------------------------------------- WorldSnapshot hygiene ---

TEST(WorldSnapshotHygiene, EmptyHandleThrowsInsteadOfDereferencingNull) {
  const vm::WorldSnapshot empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_TRUE(empty.state_root().is_zero());  // Root stays a soft query.
  try {
    (void)empty.world();
    FAIL() << "world() on an empty handle must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("WorldSnapshot::world()"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("invalid handle"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)empty.materialize(), std::logic_error);
}

TEST(WorldSnapshotHygiene, MovedFromHandleThrowsAndMoveTargetWorks) {
  auto world = make_query_world();
  vm::WorldSnapshot source(*world);
  const util::Hash256 root = source.state_root();

  const vm::WorldSnapshot target = std::move(source);
  EXPECT_TRUE(target.valid());
  EXPECT_EQ(target.state_root(), root);
  EXPECT_NO_THROW((void)target.world());

  // NOLINTNEXTLINE(bugprone-use-after-move): the moved-from contract is the point.
  EXPECT_FALSE(source.valid());
  EXPECT_THROW((void)source.world(), std::logic_error);
  EXPECT_THROW((void)source.materialize(), std::logic_error);
}

// ------------------------------------------------- SnapshotRing ---

/// Distinct snapshots per boundary so number→root pairing is checkable.
vm::WorldSnapshot snapshot_with_balance(vm::World& world, std::int64_t marker) {
  world.balances().raw_set(kBob, marker);
  return vm::WorldSnapshot(world);
}

TEST(SnapshotRingTest, PublishLookupAndLatest) {
  vm::World world;
  SnapshotRing ring(4);
  EXPECT_EQ(ring.head_number(), std::nullopt);
  EXPECT_EQ(ring.latest(), nullptr);
  EXPECT_EQ(ring.at(0), nullptr);

  for (std::uint64_t n = 0; n <= 2; ++n) {
    ring.publish(n, snapshot_with_balance(world, static_cast<std::int64_t>(n)));
  }
  ASSERT_NE(ring.at(1), nullptr);
  EXPECT_EQ(ring.at(1)->number, 1u);
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->number, 2u);
  EXPECT_EQ(ring.head_number(), 2u);
  EXPECT_EQ(ring.at(5), nullptr);  // Beyond head.
  EXPECT_EQ(ring.published(), 3u);
}

TEST(SnapshotRingTest, WindowEvictsBoundariesBeyondRetain) {
  vm::World world;
  SnapshotRing ring(2);
  for (std::uint64_t n = 0; n <= 4; ++n) {
    ring.publish(n, snapshot_with_balance(world, static_cast<std::int64_t>(n)));
  }
  EXPECT_EQ(ring.at(0), nullptr);
  EXPECT_EQ(ring.at(2), nullptr);  // 2 + retain(2) <= head(4): evicted.
  ASSERT_NE(ring.at(3), nullptr);
  ASSERT_NE(ring.at(4), nullptr);
  EXPECT_EQ(ring.retained_high_water(), 2u);
  EXPECT_EQ(ring.published(), 5u);
}

TEST(SnapshotRingTest, RewindDropsTheAbandonedSuffix) {
  vm::World world;
  SnapshotRing ring(4);
  for (std::uint64_t n = 0; n <= 3; ++n) {
    ring.publish(n, snapshot_with_balance(world, static_cast<std::int64_t>(n)));
  }
  ring.rewind_to(1);
  EXPECT_EQ(ring.head_number(), 1u);
  EXPECT_EQ(ring.at(2), nullptr);
  EXPECT_EQ(ring.at(3), nullptr);
  ASSERT_NE(ring.at(1), nullptr);
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->number, 1u);

  // Publishing resumes from the surviving tip, reusing the cleared slots.
  ring.publish(2, snapshot_with_balance(world, 22));
  ASSERT_NE(ring.at(2), nullptr);
  EXPECT_EQ(ring.latest()->number, 2u);
}

TEST(SnapshotRingTest, HeldPinOutlivesRingEviction) {
  vm::World world;
  SnapshotRing ring(2);
  ring.publish(0, snapshot_with_balance(world, 100));
  const std::shared_ptr<const PublishedBoundary> pin = ring.at(0);
  ASSERT_NE(pin, nullptr);
  const util::Hash256 pinned_root = pin->snapshot.state_root();

  for (std::uint64_t n = 1; n <= 3; ++n) {
    ring.publish(n, snapshot_with_balance(world, static_cast<std::int64_t>(n)));
  }
  EXPECT_EQ(ring.at(0), nullptr);  // Evicted from the ring…
  EXPECT_EQ(pin->number, 0u);      // …but the held pin still serves.
  EXPECT_EQ(pin->snapshot.state_root(), pinned_root);
}

// ------------------------------------------------ Node read path ---

StreamSpec stream_spec(std::size_t blocks, std::size_t txs_per_block) {
  StreamSpec spec;
  spec.kind = BenchmarkKind::kMixed;
  spec.blocks = blocks;
  spec.txs_per_block = txs_per_block;
  spec.conflict_percent = 20;
  return spec;
}

NodeConfig fast_node(const StreamSpec& spec) {
  NodeConfig config;
  config.miner.nanos_per_gas = 0.0;
  config.validator.nanos_per_gas = 0.0;
  config.batch.target_txs = spec.txs_per_block;
  return config;
}

void drive(Node& node, std::vector<chain::Transaction> stream) {
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
}

TEST(NodeReadPath, ServesGenesisBeforeTheFirstBlock) {
  NodeConfig config;
  config.batch.target_txs = 10;
  Node node(make_query_world(), config);

  const Node::Pin pin = node.pin_latest();
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->number, 0u);

  std::int64_t alice = 0;
  const auto outcome = node.query_latest([&](const vm::World& w, vm::ExecContext& ctx) {
    alice = w.balances().get(ctx, kAlice);
  });
  EXPECT_EQ(outcome.status, QueryStatus::kOk);
  EXPECT_EQ(alice, 1'000);
}

TEST(NodeReadPath, QueryCallServesReadsAndRejectsWrites) {
  NodeConfig config;
  config.batch.target_txs = 10;
  Node node(make_query_world(), config);

  EXPECT_EQ(node.query_call(contracts::KvStore::make_get_tx(kKvAddr, kAlice, 7)).status,
            QueryStatus::kOk);
  EXPECT_EQ(node.query_call(contracts::KvStore::make_put_tx(kKvAddr, kAlice, 7, 9)).status,
            QueryStatus::kMutationRejected);
}

TEST(NodeReadPath, PinnedHistoricalRootsAreByteIdenticalToTheChain) {
  const StreamSpec spec = stream_spec(/*blocks=*/6, /*txs_per_block=*/20);
  NodeConfig config = fast_node(spec);
  config.retain_snapshots = 8;  // Window wider than the run: nothing evicts.
  auto fixture = make_stream_fixture(spec);
  Node node(std::move(fixture.world), config);
  drive(node, std::move(fixture.transactions));
  ASSERT_TRUE(node.ok());

  const std::uint64_t tip = node.chain().tip().header.number;
  ASSERT_NE(node.snapshots().head_number(), std::nullopt);
  EXPECT_EQ(*node.snapshots().head_number(), tip);

  const std::uint64_t oldest = tip >= 7 ? tip - 7 : 0;
  for (std::uint64_t n = oldest; n <= tip; ++n) {
    const Node::Pin pin = node.pin_at(n);
    ASSERT_NE(pin, nullptr) << "block " << n;
    // The acceptance criterion: the pinned boundary's root is the root
    // the chain recorded at that block — byte for byte, and for free
    // (seeded from the verified header, never recomputed).
    EXPECT_EQ(pin->snapshot.state_root(), node.chain().at(n).header.state_root)
        << "block " << n;
  }
  EXPECT_EQ(node.stats().snapshots_retained_high_water,
            std::min<std::size_t>(config.retain_snapshots, tip + 1));
}

TEST(NodeReadPath, RetentionWindowEvictsWithAnExplicitError) {
  const StreamSpec spec = stream_spec(/*blocks=*/6, /*txs_per_block=*/20);
  NodeConfig config = fast_node(spec);
  config.retain_snapshots = 2;
  auto fixture = make_stream_fixture(spec);
  Node node(std::move(fixture.world), config);

  // A pin request beyond the head is also an explicit SnapshotEvicted —
  // counted, so the post-run stats see at least one expired pin.
  EXPECT_THROW((void)node.pin_at(99), SnapshotEvicted);

  drive(node, std::move(fixture.transactions));
  ASSERT_TRUE(node.ok());
  ASSERT_GE(node.chain().tip().header.number, 3u);

  try {
    (void)node.pin_at(0);
    FAIL() << "genesis must have left a retain=2 window";
  } catch (const SnapshotEvicted& e) {
    EXPECT_NE(std::string(e.what()).find("retention window"), std::string::npos) << e.what();
  }
  EXPECT_EQ(node.stats().pins_expired, 1u);  // The pre-run miss (post-run ones aren't folded).
  EXPECT_EQ(node.stats().snapshots_retained_high_water, 2u);
}

TEST(NodeReadPath, DisabledReadPathFailsFastAndMinesClean) {
  const StreamSpec spec = stream_spec(/*blocks=*/3, /*txs_per_block=*/20);
  NodeConfig config = fast_node(spec);
  config.retain_snapshots = 0;
  auto fixture = make_stream_fixture(spec);
  Node node(std::move(fixture.world), config);

  EXPECT_FALSE(node.read_path_enabled());
  EXPECT_THROW((void)node.pin_latest(), std::logic_error);
  EXPECT_THROW((void)node.query_latest([](const vm::World&, vm::ExecContext&) {}),
               std::logic_error);

  drive(node, std::move(fixture.transactions));
  EXPECT_TRUE(node.ok());
  EXPECT_GE(node.stats().blocks, 1u);
  EXPECT_EQ(node.stats().queries_served, 0u);
  EXPECT_EQ(node.stats().snapshots_retained_high_water, 0u);
}

/// The TSan-lane case: reader threads hammer query_latest and pin
/// "head − 2" while the pipelined node mines and appends. Every root
/// recorded through a pin must match what the settled chain says for
/// that block — concurrent reads are either consistent or explicitly
/// evicted, never torn.
TEST(NodeReadPath, ConcurrentReadersDuringPipelinedMining) {
  const StreamSpec spec = stream_spec(/*blocks=*/6, /*txs_per_block=*/20);
  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.pipeline_depth = 2;
  auto fixture = make_stream_fixture(spec);
  Node node(std::move(fixture.world), config);
  auto stream = std::move(fixture.transactions);

  std::atomic<bool> stop{false};
  std::vector<std::pair<std::uint64_t, util::Hash256>> pinned;
  std::mutex pinned_mu;
  std::vector<std::jthread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<std::pair<std::uint64_t, util::Hash256>> local;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto outcome =
            node.query_latest([](const vm::World& w, vm::ExecContext& ctx) {
              (void)w.balances().get(ctx, kAlice);
            });
        EXPECT_EQ(outcome.status, QueryStatus::kOk);
        if (const auto head = node.snapshots().head_number();
            head.has_value() && *head >= 2) {
          try {
            const Node::Pin pin = node.pin_at(*head - 2);
            local.emplace_back(pin->number, pin->snapshot.state_root());
          } catch (const SnapshotEvicted&) {
            // Raced the window — explicit, acceptable.
          }
        }
        std::this_thread::yield();
      }
      std::scoped_lock lk(pinned_mu);
      pinned.insert(pinned.end(), local.begin(), local.end());
    });
  }

  drive(node, std::move(stream));
  stop.store(true, std::memory_order_relaxed);
  readers.clear();  // Joins.

  ASSERT_TRUE(node.ok());
  EXPECT_GT(node.stats().queries_served, 0u);
  EXPECT_GT(node.stats().query_gas_used, 0u);
  for (const auto& [number, root] : pinned) {
    EXPECT_EQ(root, node.chain().at(number).header.state_root) << "block " << number;
  }
}

/// Re-org safety: only ACCEPTED boundaries are ever published, so roots
/// recorded through pins held across a rejection + recovery still match
/// the final chain — the doomed block and its suffix never reached the
/// ring. (Serial mining keeps the re-mined stream deterministic.)
TEST(NodeReadPath, PinsStayConsistentAcrossAReorg) {
  const StreamSpec spec = stream_spec(/*blocks=*/6, /*txs_per_block=*/20);
  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.pipeline_depth = 2;
  config.mining = MiningMode::kSerial;
  config.post_mine_hook = [fired = std::make_shared<bool>(false)](chain::Block& block) {
    if (!*fired && block.header.number == 2) {
      *fired = true;
      block.header.state_root.bytes[0] ^= 0xff;
    }
  };
  auto fixture = make_stream_fixture(spec);
  Node node(std::move(fixture.world), config);
  auto stream = std::move(fixture.transactions);

  std::atomic<bool> stop{false};
  std::vector<std::pair<std::uint64_t, util::Hash256>> pinned;
  std::mutex pinned_mu;
  std::jthread reader([&] {
    std::vector<std::pair<std::uint64_t, util::Hash256>> local;
    while (!stop.load(std::memory_order_relaxed)) {
      if (const auto head = node.snapshots().head_number(); head.has_value()) {
        try {
          const Node::Pin pin = node.pin_at(*head);
          local.emplace_back(pin->number, pin->snapshot.state_root());
        } catch (const SnapshotEvicted&) {
        }
      }
      std::this_thread::yield();
    }
    std::scoped_lock lk(pinned_mu);
    pinned.insert(pinned.end(), local.begin(), local.end());
  });

  drive(node, std::move(stream));
  stop.store(true, std::memory_order_relaxed);
  reader = std::jthread{};  // Join.

  // The rejection was recovered, not fatal; the run completed.
  EXPECT_FALSE(node.ok());
  EXPECT_GE(node.stats().recoveries, 1u);
  ASSERT_GE(node.chain().height(), 1u);

  // Ring head settled on the surviving tip…
  ASSERT_NE(node.snapshots().head_number(), std::nullopt);
  EXPECT_EQ(*node.snapshots().head_number(), node.chain().tip().header.number);
  // …and nothing a reader ever pinned disagrees with the final chain.
  for (const auto& [number, root] : pinned) {
    ASSERT_LE(number, node.chain().tip().header.number);
    EXPECT_EQ(root, node.chain().at(number).header.state_root) << "block " << number;
  }
}

}  // namespace
}  // namespace concord::node
