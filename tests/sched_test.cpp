#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/fork_join.hpp"
#include "sched/thread_pool.hpp"
#include "sched/work_stealing_deque.hpp"

namespace concord::sched {
namespace {

// --------------------------------------------------------- ThreadPool --

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(3);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 12; ++i) {
    pool.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 100; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

// ------------------------------------------------- WorkStealingDeque ---

TEST(Deque, LifoForOwner) {
  WorkStealingDeque dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  EXPECT_EQ(dq.pop(), 3u);
  EXPECT_EQ(dq.pop(), 2u);
  EXPECT_EQ(dq.pop(), 1u);
  EXPECT_EQ(dq.pop(), std::nullopt);
}

TEST(Deque, FifoForThief) {
  WorkStealingDeque dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  EXPECT_EQ(dq.steal(), 1u);
  EXPECT_EQ(dq.steal(), 2u);
  EXPECT_EQ(dq.pop(), 3u);
  EXPECT_EQ(dq.steal(), std::nullopt);
}

TEST(Deque, GrowthPreservesContents) {
  WorkStealingDeque dq(4);
  for (std::uint32_t i = 0; i < 1000; ++i) dq.push(i);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(dq.steal(), i);
}

TEST(Deque, OwnerAndThievesNoDuplicatesNoLosses) {
  constexpr std::uint32_t kItems = 100'000;
  constexpr int kThieves = 3;
  WorkStealingDeque dq;
  std::vector<std::atomic<int>> seen(kItems);

  std::atomic<bool> done{false};
  std::vector<std::jthread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = dq.steal()) seen[*v].fetch_add(1);
      }
      while (auto v = dq.steal()) seen[*v].fetch_add(1);
    });
  }

  for (std::uint32_t i = 0; i < kItems; ++i) {
    dq.push(i);
    if (i % 3 == 0) {
      if (auto v = dq.pop()) seen[*v].fetch_add(1);
    }
  }
  while (auto v = dq.pop()) seen[*v].fetch_add(1);
  done.store(true, std::memory_order_release);
  thieves.clear();  // Join; thieves drain the rest.

  for (std::uint32_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// --------------------------------------------------------- ForkJoin ----

std::vector<std::vector<std::uint32_t>> invert(
    const std::vector<std::vector<std::uint32_t>>& preds, std::size_t n) {
  std::vector<std::vector<std::uint32_t>> succs(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const std::uint32_t u : preds[v]) succs[u].push_back(v);
  }
  return succs;
}

TEST(ForkJoin, ExecutesEveryTaskOnce) {
  ForkJoinPool pool(3);
  constexpr std::size_t n = 500;
  std::vector<std::vector<std::uint32_t>> preds(n);
  std::vector<std::atomic<int>> runs(n);
  pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t i) { runs[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ForkJoin, RespectsChainOrder) {
  ForkJoinPool pool(3);
  constexpr std::size_t n = 100;
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (std::uint32_t i = 1; i < n; ++i) preds[i] = {i - 1};
  std::vector<std::uint32_t> order;
  std::mutex mu;
  pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t i) {
    std::scoped_lock lk(mu);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
}

TEST(ForkJoin, RespectsDiamondDependencies) {
  ForkJoinPool pool(4);
  // 0 → {1..8} → 9.
  constexpr std::size_t n = 10;
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (std::uint32_t i = 1; i < 9; ++i) preds[i] = {0};
  for (std::uint32_t i = 1; i < 9; ++i) preds[9].push_back(i);
  std::atomic<int> started_mid{0};
  std::atomic<bool> root_done{false};
  std::atomic<bool> sink_saw_all{false};
  pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t i) {
    if (i == 0) {
      root_done.store(true);
    } else if (i == 9) {
      sink_saw_all.store(started_mid.load() == 8);
    } else {
      EXPECT_TRUE(root_done.load());
      started_mid.fetch_add(1);
    }
  });
  EXPECT_TRUE(sink_saw_all.load());
}

TEST(ForkJoin, ParallelismActuallyHappens) {
  ForkJoinPool pool(3);
  constexpr std::size_t n = 30;
  std::vector<std::vector<std::uint32_t>> preds(n);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t) {
    const int now = running.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    running.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ForkJoin, ReusableAcrossRuns) {
  ForkJoinPool pool(2);
  for (int round = 0; round < 20; ++round) {
    constexpr std::size_t n = 50;
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::uint32_t i = 1; i < n; ++i) preds[i] = {static_cast<std::uint32_t>(i / 2)};
    std::atomic<int> count{0};
    pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), static_cast<int>(n));
  }
}

TEST(ForkJoin, EmptyDagReturnsImmediately) {
  ForkJoinPool pool(2);
  pool.run_dag(0, {}, {}, [](std::uint32_t) { FAIL(); });
  SUCCEED();
}

TEST(ForkJoin, RootlessGraphThrows) {
  ForkJoinPool pool(2);
  std::vector<std::vector<std::uint32_t>> preds = {{1}, {0}};  // 2-cycle.
  EXPECT_THROW(pool.run_dag(2, preds, invert(preds, 2), [](std::uint32_t) {}),
               std::invalid_argument);
}

TEST(ForkJoin, ShutdownStress) {
  // Guards the destructor ordering fix: workers must be joined in the
  // destructor body before mu_/epoch_cv_/parked_cv_ are destroyed.
  // Construct, (sometimes) run a small DAG, and destroy in a tight loop so
  // the TSan lane catches any worker still touching a sync primitive while
  // the pool dies. Odd iterations destroy immediately after construction —
  // the tightest window, with workers still starting up.
  constexpr int kIterations = 120;
  constexpr std::size_t n = 8;
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (std::uint32_t i = 1; i < n; ++i) preds[i] = {i - 1};
  const auto succs = invert(preds, n);
  for (int iter = 0; iter < kIterations; ++iter) {
    ForkJoinPool pool(4);
    if (iter % 2 == 0) {
      std::atomic<int> count{0};
      pool.run_dag(n, preds, succs, [&](std::uint32_t) { count.fetch_add(1); });
      EXPECT_EQ(count.load(), static_cast<int>(n));
    }
  }
}

TEST(ForkJoin, SingleWorkerStillCompletesDag) {
  ForkJoinPool pool(1);
  constexpr std::size_t n = 64;
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (std::uint32_t i = 2; i < n; ++i) preds[i] = {i - 1, i - 2};
  preds[1] = {0};
  std::atomic<int> count{0};
  pool.run_dag(n, preds, invert(preds, n), [&](std::uint32_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), static_cast<int>(n));
}

}  // namespace
}  // namespace concord::sched
