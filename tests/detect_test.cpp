// ConcordSan end-to-end: mutant contracts that under-declare their
// abstract locks must be flagged (and nothing else may be). The mutants
// are driven through the ExecContext::inject_declare_fault seam — the
// production collections cannot under-declare by construction, so the
// fault is injected at the declaration choke point instead, giving
// exactly the two bug shapes a hand-written storage type could exhibit:
// a missing declaration (kDrop) and a too-weak one (kWeakenToRead).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "contracts/token.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "detect/detect.hpp"
#include "node/node.hpp"
#include "util/bytes.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"
#include "vm/world.hpp"
#include "workload/workload.hpp"

namespace concord {
namespace {

vm::Address read_address(util::ByteReader& r) {
  vm::Address a;
  const auto raw = r.get_raw(a.bytes.size());
  std::copy(raw.begin(), raw.end(), a.bytes.begin());
  return a;
}

/// A Token variant whose storage discipline is deliberately broken: when
/// the transaction sender is `victim`, the next lock declaration is
/// corrupted per `fault` before the balance access it should cover.
class MutantToken final : public vm::Contract {
 public:
  static constexpr vm::Selector kTransfer = 1;
  static constexpr vm::Selector kSetBalance = 2;

  MutantToken(vm::Address address, vm::DeclareFault fault, vm::Address victim)
      : Contract(address, "MutantToken"),
        fault_(fault),
        victim_(victim),
        balances_(field_space("balances")) {}

  void execute(const vm::Call& call, vm::ExecContext& ctx) override {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kTransfer: {
        const vm::Address to = read_address(args);
        const auto amount = static_cast<vm::Amount>(args.get_varint());
        const vm::Address from = ctx.msg().sender;
        // The seeded bug: the overdraft read's WRITE declaration is the
        // one that goes missing — "writing a balance without its key
        // lock" (the later set re-declares, so only the read is bare).
        arm(ctx);
        const vm::Amount available = balances_.get_for_update(ctx, from);
        if (available < amount) throw vm::RevertError("insufficient balance");
        balances_.set(ctx, from, available - amount);
        balances_.add(ctx, to, amount);
        return;
      }
      case kSetBalance: {
        const vm::Address who = read_address(args);
        const auto value = static_cast<std::int64_t>(args.get_varint());
        arm(ctx);
        balances_.set(ctx, who, value);
        return;
      }
      default:
        throw vm::BadCall("MutantToken: unknown selector");
    }
  }

  void hash_state(vm::StateHasher& hasher) const override {
    balances_.hash_state(hasher, "balances");
  }

  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override {
    auto copy = std::make_unique<MutantToken>(address(), fault_, victim_);
    copy->balances_.fork_state_from(balances_);
    return copy;
  }

  void raw_set_balance(const vm::Address& who, std::int64_t v) { balances_.raw_set(who, v); }

  [[nodiscard]] static chain::Transaction make_transfer_tx(const vm::Address& contract,
                                                           const vm::Address& sender,
                                                           const vm::Address& to,
                                                           vm::Amount amount) {
    return chain::TxBuilder(contract, sender, kTransfer)
        .arg_address(to)
        .arg_u64(static_cast<std::uint64_t>(amount))
        .build();
  }

  [[nodiscard]] static chain::Transaction make_set_balance_tx(const vm::Address& contract,
                                                              const vm::Address& sender,
                                                              const vm::Address& who,
                                                              std::int64_t value) {
    return chain::TxBuilder(contract, sender, kSetBalance)
        .arg_address(who)
        .arg_u64(static_cast<std::uint64_t>(value))
        .build();
  }

 private:
  void arm(vm::ExecContext& ctx) const {
    if (ctx.msg().sender == victim_) ctx.inject_declare_fault(fault_);
  }

  vm::DeclareFault fault_;
  vm::Address victim_;
  vm::BoostedCounterMap<vm::Address> balances_;
};

struct MutantFixture {
  std::unique_ptr<vm::World> world;
  vm::Address contract;
};

MutantFixture make_mutant_fixture(vm::DeclareFault fault, const vm::Address& victim) {
  MutantFixture fx;
  fx.world = std::make_unique<vm::World>();
  fx.contract = vm::Address::from_u64(0xbad, 1);
  auto& token = static_cast<MutantToken&>(
      fx.world->contracts().add(std::make_unique<MutantToken>(fx.contract, fault, victim)));
  for (std::uint64_t i = 1; i <= 8; ++i) {
    token.raw_set_balance(vm::Address::from_u64(i), 1'000);
  }
  return fx;
}

core::MinerConfig detect_miner(unsigned threads = 3) {
  core::MinerConfig cfg;
  cfg.threads = threads;
  cfg.nanos_per_gas = 0.0;
  cfg.detect = true;
  return cfg;
}

chain::Block genesis_of(const vm::World& world) {
  chain::Block genesis;
  genesis.header.state_root = world.state_root();
  return genesis;
}

// ------------------------------------------------ Stock workloads clean ---

class StockWorkloadsClean : public ::testing::TestWithParam<workload::BenchmarkKind> {};

// All six stock contracts (the four workloads cover Ballot, SimpleAuction,
// EtherDoc, and — through Mixed — Token, PaymentSplitter and KvStore)
// declare exactly what they touch: ConcordSan must stay silent under both
// mining modes, on conflict-free and conflict-heavy blocks alike.
TEST_P(StockWorkloadsClean, NoViolationsEitherMiningMode) {
  for (const unsigned conflict : {0u, 40u, 100u}) {
    workload::WorkloadSpec spec;
    spec.kind = GetParam();
    spec.transactions = 60;
    spec.conflict_percent = conflict;

    workload::Fixture fixture = workload::make_fixture(spec);
    core::Miner miner(*fixture.world, detect_miner());
    (void)miner.mine(fixture.transactions, fixture.genesis());
    EXPECT_TRUE(miner.last_detect_report().clean())
        << "speculative, conflict=" << conflict << ": "
        << miner.last_detect_report().to_json();
    EXPECT_EQ(miner.last_stats().detect_violations, 0u);
    EXPECT_GT(miner.last_detect_report().accesses, 0u);

    workload::Fixture serial_fixture = workload::make_fixture(spec);
    core::Miner serial_miner(*serial_fixture.world, detect_miner());
    (void)serial_miner.mine_serial(serial_fixture.transactions, serial_fixture.genesis());
    EXPECT_TRUE(serial_miner.last_detect_report().clean())
        << "serial, conflict=" << conflict << ": "
        << serial_miner.last_detect_report().to_json();
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, StockWorkloadsClean,
                         ::testing::ValuesIn(workload::kAllBenchmarks),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

// ---------------------------------------------------- Seeded mutants ---

TEST(Lockset, DropFaultFlaggedExactlyOnce) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine_serial(txs, genesis);

  const detect::DetectReport& report = miner.last_detect_report();
  ASSERT_EQ(report.lockset.size(), 1u) << report.to_json();
  EXPECT_TRUE(report.soundness.empty());
  const detect::Violation& v = report.lockset[0];
  EXPECT_EQ(v.tx, 0u);
  EXPECT_FALSE(v.declared);
  EXPECT_EQ(v.access, stm::LockMode::kWrite);
  EXPECT_STREQ(v.op, "counter.set");
  EXPECT_EQ(v.selector, MutantToken::kSetBalance);
  EXPECT_EQ(miner.last_stats().detect_violations, 1u);
}

TEST(Lockset, WeakenFaultReportsHeldMode) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kWeakenToRead, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine_serial(txs, genesis);

  const detect::DetectReport& report = miner.last_detect_report();
  ASSERT_EQ(report.lockset.size(), 1u) << report.to_json();
  const detect::Violation& v = report.lockset[0];
  EXPECT_TRUE(v.declared);
  EXPECT_EQ(v.held, stm::LockMode::kRead);
  EXPECT_EQ(v.access, stm::LockMode::kWrite);
}

TEST(Lockset, TransferReadWithoutLockFlagged) {
  // The canonical seed from the issue: a Token variant touching a balance
  // without the key lock its access class requires. Only the overdraft
  // read's declaration is dropped; the subsequent set re-declares WRITE,
  // so exactly one access goes uncovered.
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_transfer_tx(fx.contract, victim, vm::Address::from_u64(2), 10)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine_serial(txs, genesis);

  const detect::DetectReport& report = miner.last_detect_report();
  ASSERT_EQ(report.lockset.size(), 1u) << report.to_json();
  EXPECT_STREQ(report.lockset[0].op, "counter.get_for_update");
  EXPECT_FALSE(report.lockset[0].declared);
}

TEST(Lockset, NonVictimSendersStayClean) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_transfer_tx(fx.contract, vm::Address::from_u64(2),
                                    vm::Address::from_u64(3), 10),
      MutantToken::make_set_balance_tx(fx.contract, vm::Address::from_u64(4),
                                       vm::Address::from_u64(4), 55)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine_serial(txs, genesis);
  EXPECT_TRUE(miner.last_detect_report().clean())
      << miner.last_detect_report().to_json();
}

TEST(Lockset, SpeculativeMiningFlagsMutantToo) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine(txs, genesis);

  ASSERT_EQ(miner.last_detect_report().lockset.size(), 1u)
      << miner.last_detect_report().to_json();
  EXPECT_FALSE(miner.last_detect_report().lockset[0].declared);
}

TEST(Lockset, DetectOffRecordsNothing) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::MinerConfig cfg = detect_miner();
  cfg.detect = false;
  core::Miner miner(*fx.world, cfg);
  (void)miner.mine_serial(txs, genesis);

  EXPECT_TRUE(miner.last_detect_report().clean());
  EXPECT_EQ(miner.last_detect_report().accesses, 0u);
  EXPECT_EQ(miner.last_stats().detect_violations, 0u);
}

// ------------------------------------------------- Soundness oracle ---

TEST(SoundnessOracle, UndeclaredConflictBreaksTheoremOne) {
  // tx0's write on key A never declares its lock, so the derived graph
  // has no edge between tx0 and tx1 (an honest write to the same A) —
  // the published schedule claims they commute. The oracle must call
  // that out: Theorem 1's "locks rule" precondition does not hold.
  const vm::Address victim = vm::Address::from_u64(1);
  const vm::Address shared_key = vm::Address::from_u64(7);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, shared_key, 5),
      MutantToken::make_set_balance_tx(fx.contract, vm::Address::from_u64(2), shared_key, 9)};
  core::Miner miner(*fx.world, detect_miner());
  const chain::Block block = miner.mine_serial(txs, genesis);
  ASSERT_TRUE(block.schedule.edges.empty());  // The seeded hole.

  const detect::DetectReport& report = miner.last_detect_report();
  ASSERT_EQ(report.soundness.size(), 1u) << report.to_json();
  const detect::SoundnessViolation& v = report.soundness[0];
  EXPECT_EQ(v.tx_a, 0u);
  EXPECT_EQ(v.tx_b, 1u);
  EXPECT_EQ(v.mode_a, stm::LockMode::kWrite);
  EXPECT_EQ(v.mode_b, stm::LockMode::kWrite);
  // The missing declaration itself is also a lockset violation.
  EXPECT_EQ(report.lockset.size(), 1u);
  EXPECT_EQ(miner.last_stats().detect_violations, 2u);
}

TEST(SoundnessOracle, CommutingUnorderedPairIsNotFlagged) {
  // Two honest transfers crediting the same receiver: both add
  // (INCREMENT) to the shared key, increments commute, so the pair may
  // legitimately stay unordered — the oracle must not cry wolf.
  const vm::Address nobody = vm::Address::from_u64(99);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, nobody);
  const chain::Block genesis = genesis_of(*fx.world);

  const vm::Address receiver = vm::Address::from_u64(7);
  std::vector<chain::Transaction> txs = {
      MutantToken::make_transfer_tx(fx.contract, vm::Address::from_u64(1), receiver, 5),
      MutantToken::make_transfer_tx(fx.contract, vm::Address::from_u64(2), receiver, 9)};
  core::Miner miner(*fx.world, detect_miner());
  const chain::Block block = miner.mine_serial(txs, genesis);

  EXPECT_TRUE(miner.last_detect_report().clean())
      << miner.last_detect_report().to_json();
  // Sanity: the pair really is unordered (credits share only the
  // INCREMENT-mode lock).
  EXPECT_TRUE(block.schedule.edges.empty());
}

// ----------------------------------------------- Node-level plumbing ---

TEST(NodeDetect, PipelinedStreamsCleanAtDepths124) {
  for (const std::size_t depth : {1u, 2u, 4u}) {
    workload::StreamSpec spec;
    spec.kind = workload::BenchmarkKind::kMixed;
    spec.blocks = 20;
    spec.txs_per_block = 25;
    spec.conflict_percent = 20;

    workload::Fixture fixture = workload::make_stream_fixture(spec);
    node::NodeConfig config;
    config.miner = detect_miner();
    config.validator.nanos_per_gas = 0.0;
    config.batch.target_txs = spec.txs_per_block;
    config.pipelined = true;
    config.pipeline_depth = depth;

    node::Node node(std::move(fixture.world), config);
    std::jthread producer([&node, txs = std::move(fixture.transactions)]() mutable {
      (void)node.mempool().submit_many(std::move(txs));
      node.mempool().close();
    });
    node.run();

    EXPECT_TRUE(node.ok());
    EXPECT_EQ(node.stats().blocks, spec.blocks) << "depth " << depth;
    EXPECT_EQ(node.stats().detect_violations, 0u) << "depth " << depth;
    EXPECT_FALSE(node.first_detect_report().has_value());
  }
}

// The sharded-production acceptance criterion: merged blocks — stitched
// from per-shard sub-blocks, losers arbitrated out — replay under
// ConcordSan exactly like single-miner blocks do. 20-block pipelined
// streams at shard fan-outs 2 and 4 must come out violation-free.
TEST(NodeDetect, ShardedPipelinedStreamsClean) {
  for (const std::uint32_t shards : {2u, 4u}) {
    workload::StreamSpec spec;
    spec.kind = workload::BenchmarkKind::kMixed;
    spec.blocks = 20;
    spec.txs_per_block = 25;
    spec.conflict_percent = 20;

    workload::Fixture fixture = workload::make_stream_fixture(spec);
    node::NodeConfig config;
    config.miner = detect_miner();
    config.validator.nanos_per_gas = 0.0;
    config.batch.target_txs = spec.txs_per_block;
    config.pipelined = true;
    config.mine_shards = shards;

    node::Node node(std::move(fixture.world), config);
    std::jthread producer([&node, txs = std::move(fixture.transactions)]() mutable {
      (void)node.mempool().submit_many(std::move(txs));
      node.mempool().close();
    });
    node.run();

    EXPECT_TRUE(node.ok()) << "shards " << shards;
    // Requeue laps can stretch the chain past the nominal block count,
    // but every transaction must land and every block must be clean.
    EXPECT_EQ(node.stats().transactions, spec.total_transactions()) << "shards " << shards;
    EXPECT_EQ(node.stats().detect_violations, 0u) << "shards " << shards;
    EXPECT_FALSE(node.first_detect_report().has_value());
  }
}

TEST(NodeDetect, FirstDirtyReportSurfaces) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);

  node::NodeConfig config;
  config.miner = detect_miner();
  config.validator.nanos_per_gas = 0.0;
  config.batch.target_txs = 1;
  config.pipelined = false;
  config.mining = node::MiningMode::kSerial;

  node::Node node(std::move(fx.world), config);
  (void)node.mempool().submit_many(
      {MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7),
       MutantToken::make_set_balance_tx(fx.contract, vm::Address::from_u64(3),
                                        vm::Address::from_u64(3), 9)});
  node.mempool().close();
  node.run();

  EXPECT_EQ(node.stats().detect_violations, 1u);
  ASSERT_TRUE(node.first_detect_report().has_value());
  EXPECT_EQ(node.first_detect_report()->lockset.size(), 1u);
}

// -------------------------------------------------------- Reporting ---

TEST(DetectReport, JsonCarriesViolations) {
  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kWeakenToRead, victim);
  const chain::Block genesis = genesis_of(*fx.world);

  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::Miner miner(*fx.world, detect_miner());
  (void)miner.mine_serial(txs, genesis);

  const std::string json = miner.last_detect_report().to_json();
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\": \"counter.set\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"held\": \"read\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"soundness_violations\": []"), std::string::npos) << json;
}

TEST(DetectReport, ArtifactWrittenWhenDirConfigured) {
  detect::DetectReport report;
  report.block_number = 3;
  report.transactions = 2;

  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(::setenv("CONCORD_DETECT_REPORT_DIR", dir.c_str(), 1), 0);
  const std::string path = detect::write_report_artifact(report, "detect_block3");
  ::unsetenv("CONCORD_DETECT_REPORT_DIR");

  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"block\": 3"), std::string::npos);
}

TEST(DetectReport, MinerAutoExportsDirtyBlocks) {
  // The miner itself writes the artifact for a non-clean block when the
  // report dir is configured — CI's detect lane relies on this to upload
  // the violation report on failure.
  const std::string dir = ::testing::TempDir() + "/concordsan_miner";
  ASSERT_EQ(::setenv("CONCORD_DETECT_REPORT_DIR", dir.c_str(), 1), 0);

  const vm::Address victim = vm::Address::from_u64(1);
  MutantFixture fx = make_mutant_fixture(vm::DeclareFault::kDrop, victim);
  std::vector<chain::Transaction> txs = {
      MutantToken::make_set_balance_tx(fx.contract, victim, vm::Address::from_u64(2), 7)};
  core::Miner miner(*fx.world, detect_miner());
  const chain::Block block = miner.mine_serial(txs, genesis_of(*fx.world));
  ::unsetenv("CONCORD_DETECT_REPORT_DIR");

  std::ifstream in(dir + "/detect_block" + std::to_string(block.header.number) + ".json");
  ASSERT_TRUE(in.is_open());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"clean\": false"), std::string::npos);
}

TEST(DetectReport, ArtifactSkippedWithoutDir) {
  ::unsetenv("CONCORD_DETECT_REPORT_DIR");
  detect::DetectReport report;
  EXPECT_TRUE(detect::write_report_artifact(report, "nope").empty());
}

TEST(AccessRecorder, ClearedOnSpeculativeRetry) {
  // Direct unit check of the retry contract: execute_speculative clears
  // the log at each attempt start, so after a conflict-free run the log
  // holds exactly the final attempt's events.
  stm::AccessRecorder rec;
  rec.declare(stm::LockId{1, 2}, stm::LockMode::kWrite);
  rec.access(stm::LockId{1, 2}, stm::LockMode::kWrite, "map.put");
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.access_count(), 1u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

}  // namespace
}  // namespace concord
