#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "node/node.hpp"
#include "workload/workload.hpp"

namespace concord::node {
namespace {

using workload::BenchmarkKind;
using workload::StreamSpec;
using workload::make_stream_fixture;

StreamSpec stream_spec(BenchmarkKind kind, std::size_t blocks, std::size_t txs_per_block,
                       unsigned conflict) {
  StreamSpec spec;
  spec.kind = kind;
  spec.blocks = blocks;
  spec.txs_per_block = txs_per_block;
  spec.conflict_percent = conflict;
  return spec;
}

/// Unit tests skip the calibrated gas burn.
NodeConfig fast_node(const StreamSpec& spec) {
  NodeConfig config;
  config.miner.nanos_per_gas = 0.0;
  config.validator.nanos_per_gas = 0.0;
  config.batch.target_txs = spec.txs_per_block;
  return config;
}

/// A node plus the transaction stream born from the SAME fixture build:
/// one genesis world (the node clones the validator replica itself), one
/// stream — nothing is rebuilt and re-matched by hand.
struct NodeUnderTest {
  std::unique_ptr<Node> node;
  std::vector<chain::Transaction> stream;
};

NodeUnderTest make_node(const StreamSpec& spec, NodeConfig config) {
  auto fixture = make_stream_fixture(spec);
  auto stream = std::move(fixture.transactions);
  return {std::make_unique<Node>(std::move(fixture.world), config), std::move(stream)};
}

/// Runs `node` over the stream with a concurrent producer; expects clean
/// completion.
void drive(Node& node, std::vector<chain::Transaction> stream) {
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
}

/// The unpipelined reference the acceptance criterion names: cut the
/// stream into policy-sized batches, serial-mine each, validate, append —
/// one block fully finished before the next begins.
chain::Blockchain sequential_reference(const StreamSpec& spec) {
  auto mine_side = make_stream_fixture(spec);
  auto validate_world = mine_side.world->clone();  // One genesis, two views.
  core::MinerConfig miner_config;
  miner_config.nanos_per_gas = 0.0;
  core::ValidatorConfig validator_config;
  validator_config.nanos_per_gas = 0.0;
  core::Miner miner(*mine_side.world, miner_config);
  core::Validator validator(*validate_world, validator_config);

  chain::Blockchain chain(mine_side.world->state_root());
  const auto& stream = mine_side.transactions;
  for (std::size_t start = 0; start < stream.size(); start += spec.txs_per_block) {
    const std::size_t end = std::min(start + spec.txs_per_block, stream.size());
    const std::vector<chain::Transaction> batch(stream.begin() + static_cast<std::ptrdiff_t>(start),
                                                stream.begin() + static_cast<std::ptrdiff_t>(end));
    chain::Block block = miner.mine_serial(batch, chain.tip());
    const core::ValidationReport report = validator.validate_parallel(block);
    EXPECT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
    chain.append(std::move(block));
  }
  return chain;
}

// ------------------------------------------- Pipeline determinism ---

class PipelineDeterminism : public ::testing::TestWithParam<BenchmarkKind> {};

/// The acceptance criterion: a pipelined node in deterministic (serial)
/// mining mode over ≥20 blocks produces a chain byte-identical — block
/// hashes, state roots, statuses, schedules — to the sequential
/// mine→validate→append loop over the same mempool stream.
TEST_P(PipelineDeterminism, PipelinedChainIsByteIdenticalToSequentialLoop) {
  const StreamSpec spec = stream_spec(GetParam(), /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/20);

  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.mining = MiningMode::kSerial;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  const chain::Blockchain& pipelined = node->chain();
  const chain::Blockchain reference = sequential_reference(spec);

  ASSERT_EQ(pipelined.height(), spec.blocks);
  ASSERT_EQ(pipelined.height(), reference.height());
  for (std::uint64_t n = 0; n <= reference.height(); ++n) {
    EXPECT_EQ(pipelined.at(n), reference.at(n)) << "block " << n << " diverged";
    EXPECT_EQ(pipelined.at(n).hash(), reference.at(n).hash());
  }
  EXPECT_TRUE(pipelined.verify_links());
}

/// Pipelining is a scheduling change, not a semantic one: the same node
/// config with pipelined=false must also reproduce the reference chain.
TEST_P(PipelineDeterminism, SequentialNodeMatchesPipelinedNode) {
  const StreamSpec spec = stream_spec(GetParam(), /*blocks=*/8, /*txs_per_block=*/20,
                                      /*conflict=*/30);

  NodeConfig pipelined_config = fast_node(spec);
  pipelined_config.pipelined = true;
  pipelined_config.mining = MiningMode::kSerial;
  auto [pipelined, pipelined_stream] = make_node(spec, pipelined_config);
  drive(*pipelined, std::move(pipelined_stream));

  NodeConfig sequential_config = fast_node(spec);
  sequential_config.pipelined = false;
  sequential_config.mining = MiningMode::kSerial;
  auto [sequential, sequential_stream] = make_node(spec, sequential_config);
  drive(*sequential, std::move(sequential_stream));

  ASSERT_TRUE(pipelined->ok());
  ASSERT_TRUE(sequential->ok());
  ASSERT_EQ(pipelined->chain().height(), sequential->chain().height());
  for (std::uint64_t n = 0; n <= pipelined->chain().height(); ++n) {
    EXPECT_EQ(pipelined->chain().at(n), sequential->chain().at(n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineDeterminism,
                         ::testing::Values(BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction,
                                           BenchmarkKind::kEtherDoc, BenchmarkKind::kMixed),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

// --------------------------------------------- Speculative pipeline ---

/// With speculative mining the schedule depends on thread timing, so the
/// chain is not byte-reproducible — but every block must still validate
/// and the stream must be fully processed.
TEST(NodePipeline, SpeculativeStreamFullyValidated) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/25);
  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.mining = MiningMode::kSpeculative;
  config.mempool_capacity = 2 * spec.txs_per_block;  // Exercise backpressure too.
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok()) << core::to_string(node->failure().reason);
  EXPECT_EQ(node->chain().height(), spec.blocks);
  EXPECT_TRUE(node->chain().verify_links());

  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.blocks, spec.blocks);
  EXPECT_EQ(stats.transactions, spec.total_transactions());
  EXPECT_GE(stats.attempts, stats.transactions);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.mine_ms, 0.0);
  EXPECT_GT(stats.validate_ms, 0.0);
  EXPECT_GT(stats.lock_table_high_water, 0u);
}

// ----------------------------------------------- Shutdown semantics ---

TEST(NodePipeline, ShortFinalBatchDrainsOnClose) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, /*blocks=*/3, /*txs_per_block=*/20,
                                      /*conflict=*/0);
  NodeConfig config = fast_node(spec);
  auto [node, stream] = make_node(spec, config);

  // 47 transactions at target 20: blocks of 20, 20, then 7 on close.
  stream.resize(47);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  ASSERT_EQ(node->chain().height(), 3u);
  EXPECT_EQ(node->chain().at(1).transactions.size(), 20u);
  EXPECT_EQ(node->chain().at(2).transactions.size(), 20u);
  EXPECT_EQ(node->chain().at(3).transactions.size(), 7u);
}

TEST(NodePipeline, MaxBlocksStopsTheStream) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kEtherDoc, /*blocks=*/10,
                                      /*txs_per_block=*/15, /*conflict=*/10);
  NodeConfig config = fast_node(spec);
  config.max_blocks = 4;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  EXPECT_EQ(node->chain().height(), 4u);
  // run() closes the mempool so producers can't hang on a stopped node.
  EXPECT_TRUE(node->mempool().closed());
}

TEST(NodePipeline, RunTwiceThrows) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, 1, 5, 0);
  auto node = make_node(spec, fast_node(spec)).node;
  node->mempool().close();
  node->run();
  EXPECT_THROW(node->run(), std::logic_error);
}

// ------------------------------------------------ Construction guards ---

TEST(NodeConstruction, RejectsNullWorld) {
  EXPECT_THROW(Node(nullptr, NodeConfig{}), std::invalid_argument);
}

TEST(NodeConstruction, RejectsLockSemanticsDisagreement) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, 2, 10, 0);
  NodeConfig config;
  config.miner.exclusive_locks_only = true;
  EXPECT_THROW(Node(make_stream_fixture(spec).world, config), std::invalid_argument);
  // The guard must fire even before a world could be cloned.
  EXPECT_THROW(Node(nullptr, config), std::invalid_argument);
}

// ------------------------------------------------- Genesis snapshot ---

/// The snapshot seam: frozen at construction, root-identical to the
/// chain's genesis, and still frozen after the miner's world has moved
/// twenty blocks past it.
TEST(NodeGenesisSnapshot, StaysFrozenWhileTheChainAdvances) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/4, /*txs_per_block=*/20,
                                      /*conflict=*/15);
  auto fixture = make_stream_fixture(spec);
  const auto genesis_root = fixture.world->state_root();

  auto node = std::make_unique<Node>(std::move(fixture.world), fast_node(spec));
  EXPECT_EQ(node->genesis_snapshot().state_root(), genesis_root);
  EXPECT_EQ(node->chain().at(0).header.state_root, genesis_root);

  drive(*node, std::move(fixture.transactions));
  ASSERT_TRUE(node->ok());
  ASSERT_EQ(node->chain().height(), spec.blocks);

  // The chain moved; the snapshot did not — and it can still mint fresh
  // replicas of genesis (the depth-k re-org recovery path).
  EXPECT_NE(node->chain().tip().header.state_root, genesis_root);
  EXPECT_EQ(node->genesis_snapshot().state_root(), genesis_root);
  EXPECT_EQ(node->genesis_snapshot().world().state_root(), genesis_root);
  EXPECT_EQ(node->genesis_snapshot().materialize()->state_root(), genesis_root);
}

}  // namespace
}  // namespace concord::node
