#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "node/node.hpp"
#include "workload/workload.hpp"

namespace concord::node {
namespace {

using workload::BenchmarkKind;
using workload::StreamSpec;
using workload::make_stream_fixture;

StreamSpec stream_spec(BenchmarkKind kind, std::size_t blocks, std::size_t txs_per_block,
                       unsigned conflict) {
  StreamSpec spec;
  spec.kind = kind;
  spec.blocks = blocks;
  spec.txs_per_block = txs_per_block;
  spec.conflict_percent = conflict;
  return spec;
}

/// The whole suite runs at ring depth 1 unless the harness says
/// otherwise: the CMake registration re-runs it with
/// CONCORD_PIPELINE_DEPTH ∈ {2, 4} so the k=1 regression lane and the
/// ring lanes both stay green (tests that pin their own depth ignore
/// this).
std::size_t env_pipeline_depth() {
  if (const char* env = std::getenv("CONCORD_PIPELINE_DEPTH")) {
    if (const unsigned long depth = std::strtoul(env, nullptr, 10); depth >= 1) return depth;
  }
  return 1;
}

/// Unit tests skip the calibrated gas burn.
NodeConfig fast_node(const StreamSpec& spec) {
  NodeConfig config;
  config.miner.nanos_per_gas = 0.0;
  config.validator.nanos_per_gas = 0.0;
  config.batch.target_txs = spec.txs_per_block;
  config.pipeline_depth = env_pipeline_depth();
  return config;
}

/// A node plus the transaction stream born from the SAME fixture build:
/// one genesis world (the node forks the validator replica itself), one
/// stream — nothing is rebuilt and re-matched by hand.
struct NodeUnderTest {
  std::unique_ptr<Node> node;
  std::vector<chain::Transaction> stream;
};

NodeUnderTest make_node(const StreamSpec& spec, NodeConfig config) {
  auto fixture = make_stream_fixture(spec);
  auto stream = std::move(fixture.transactions);
  return {std::make_unique<Node>(std::move(fixture.world), config), std::move(stream)};
}

/// Runs `node` over the stream with a concurrent producer; expects clean
/// completion.
void drive(Node& node, std::vector<chain::Transaction> stream) {
  std::jthread producer([&node, &stream] {
    (void)node.mempool().submit_many(std::move(stream));
    node.mempool().close();
  });
  node.run();
}

/// The unpipelined reference the acceptance criterion names: cut the
/// stream into policy-sized batches, serial-mine each, validate, append —
/// one block fully finished before the next begins.
chain::Blockchain sequential_reference(const StreamSpec& spec) {
  auto mine_side = make_stream_fixture(spec);
  auto validate_world = mine_side.world->fork();  // One genesis, two views (COW).
  core::MinerConfig miner_config;
  miner_config.nanos_per_gas = 0.0;
  core::ValidatorConfig validator_config;
  validator_config.nanos_per_gas = 0.0;
  core::Miner miner(*mine_side.world, miner_config);
  core::Validator validator(*validate_world, validator_config);

  chain::Blockchain chain(mine_side.world->state_root());
  const auto& stream = mine_side.transactions;
  for (std::size_t start = 0; start < stream.size(); start += spec.txs_per_block) {
    const std::size_t end = std::min(start + spec.txs_per_block, stream.size());
    const std::vector<chain::Transaction> batch(stream.begin() + static_cast<std::ptrdiff_t>(start),
                                                stream.begin() + static_cast<std::ptrdiff_t>(end));
    chain::Block block = miner.mine_serial(batch, chain.tip());
    const core::ValidationReport report = validator.validate_parallel(block);
    EXPECT_TRUE(report.ok) << core::to_string(report.reason) << ": " << report.detail;
    chain.append(std::move(block));
  }
  return chain;
}

// ------------------------------------------- Pipeline determinism ---

class PipelineDeterminism : public ::testing::TestWithParam<BenchmarkKind> {};

/// The acceptance criterion: a pipelined node in deterministic (serial)
/// mining mode over ≥20 blocks produces a chain byte-identical — block
/// hashes, state roots, statuses, schedules — to the sequential
/// mine→validate→append loop over the same mempool stream.
TEST_P(PipelineDeterminism, PipelinedChainIsByteIdenticalToSequentialLoop) {
  const StreamSpec spec = stream_spec(GetParam(), /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/20);

  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.mining = MiningMode::kSerial;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  const chain::Blockchain& pipelined = node->chain();
  const chain::Blockchain reference = sequential_reference(spec);

  ASSERT_EQ(pipelined.height(), spec.blocks);
  ASSERT_EQ(pipelined.height(), reference.height());
  for (std::uint64_t n = 0; n <= reference.height(); ++n) {
    EXPECT_EQ(pipelined.at(n), reference.at(n)) << "block " << n << " diverged";
    EXPECT_EQ(pipelined.at(n).hash(), reference.at(n).hash());
  }
  EXPECT_TRUE(pipelined.verify_links());
}

/// Pipelining is a scheduling change, not a semantic one: the same node
/// config with pipelined=false must also reproduce the reference chain.
TEST_P(PipelineDeterminism, SequentialNodeMatchesPipelinedNode) {
  const StreamSpec spec = stream_spec(GetParam(), /*blocks=*/8, /*txs_per_block=*/20,
                                      /*conflict=*/30);

  NodeConfig pipelined_config = fast_node(spec);
  pipelined_config.pipelined = true;
  pipelined_config.mining = MiningMode::kSerial;
  auto [pipelined, pipelined_stream] = make_node(spec, pipelined_config);
  drive(*pipelined, std::move(pipelined_stream));

  NodeConfig sequential_config = fast_node(spec);
  sequential_config.pipelined = false;
  sequential_config.mining = MiningMode::kSerial;
  auto [sequential, sequential_stream] = make_node(spec, sequential_config);
  drive(*sequential, std::move(sequential_stream));

  ASSERT_TRUE(pipelined->ok());
  ASSERT_TRUE(sequential->ok());
  ASSERT_EQ(pipelined->chain().height(), sequential->chain().height());
  for (std::uint64_t n = 0; n <= pipelined->chain().height(); ++n) {
    EXPECT_EQ(pipelined->chain().at(n), sequential->chain().at(n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineDeterminism,
                         ::testing::Values(BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction,
                                           BenchmarkKind::kEtherDoc, BenchmarkKind::kMixed),
                         [](const auto& info) {
                           return std::string(workload::to_string(info.param));
                         });

// --------------------------------------------- Depth-k determinism ---

/// Ring depth is a scheduling knob, not a semantic one: the acceptance
/// criterion requires the serial-mode pipelined chain byte-identical to
/// the sequential reference at depths 1, 2 and 4 (explicitly, whatever
/// CONCORD_PIPELINE_DEPTH says).
class PipelineDepthDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineDepthDeterminism, RingDepthDoesNotChangeTheChain) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/20);
  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.mining = MiningMode::kSerial;
  config.pipeline_depth = GetParam();
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  const chain::Blockchain reference = sequential_reference(spec);
  ASSERT_EQ(node->chain().height(), reference.height());
  for (std::uint64_t n = 0; n <= reference.height(); ++n) {
    EXPECT_EQ(node->chain().at(n), reference.at(n)) << "block " << n << " diverged";
  }
  const NodeStats& stats = node->stats();
  EXPECT_LE(stats.ring_high_water, GetParam());
  EXPECT_EQ(stats.rejected_blocks, 0u);
  EXPECT_EQ(stats.dropped_transactions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepthDeterminism, ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "depth" + std::to_string(info.param);
                         });

// --------------------------------------------- Speculative pipeline ---

/// With speculative mining the schedule depends on thread timing, so the
/// chain is not byte-reproducible — but every block must still validate
/// and the stream must be fully processed.
TEST(NodePipeline, SpeculativeStreamFullyValidated) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/25);
  NodeConfig config = fast_node(spec);
  config.pipelined = true;
  config.mining = MiningMode::kSpeculative;
  config.mempool_capacity = 2 * spec.txs_per_block;  // Exercise backpressure too.
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok()) << core::to_string(node->failure().reason);
  EXPECT_EQ(node->chain().height(), spec.blocks);
  EXPECT_TRUE(node->chain().verify_links());

  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.blocks, spec.blocks);
  EXPECT_EQ(stats.transactions, spec.total_transactions());
  EXPECT_GE(stats.attempts, stats.transactions);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.mine_ms, 0.0);
  EXPECT_GT(stats.validate_ms, 0.0);
  EXPECT_GT(stats.lock_table_high_water, 0u);
}

// ----------------------------------------------- Shutdown semantics ---

TEST(NodePipeline, ShortFinalBatchDrainsOnClose) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, /*blocks=*/3, /*txs_per_block=*/20,
                                      /*conflict=*/0);
  NodeConfig config = fast_node(spec);
  auto [node, stream] = make_node(spec, config);

  // 47 transactions at target 20: blocks of 20, 20, then 7 on close.
  stream.resize(47);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  ASSERT_EQ(node->chain().height(), 3u);
  EXPECT_EQ(node->chain().at(1).transactions.size(), 20u);
  EXPECT_EQ(node->chain().at(2).transactions.size(), 20u);
  EXPECT_EQ(node->chain().at(3).transactions.size(), 7u);
}

TEST(NodePipeline, MaxBlocksStopsTheStream) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kEtherDoc, /*blocks=*/10,
                                      /*txs_per_block=*/15, /*conflict=*/10);
  NodeConfig config = fast_node(spec);
  config.max_blocks = 4;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_TRUE(node->ok());
  EXPECT_EQ(node->chain().height(), 4u);
  // run() closes the mempool so producers can't hang on a stopped node.
  EXPECT_TRUE(node->mempool().closed());
}

TEST(NodePipeline, RunTwiceThrows) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, 1, 5, 0);
  auto node = make_node(spec, fast_node(spec)).node;
  node->mempool().close();
  node->run();
  EXPECT_THROW(node->run(), std::logic_error);
}

// ------------------------------------------------- Re-org recovery ---

/// Validator slow enough (calibrated gas burn at 200 ns/gas ≈ tens of
/// ms per block; workload transactions carry four-to-five-figure gas)
/// that the zero-burn miner always runs the full ring ahead before the
/// first verdict lands — which pins exactly which blocks are in flight
/// when the rejection happens, making the recovery tests deterministic.
constexpr double kSlowValidatorNanosPerGas = 200.0;

/// A serial-mining pipelined node whose post-mine hook corrupts the
/// published state root of the FIRST block mined as number
/// `faulty_number` — the post-root-corrupting fault of the acceptance
/// criterion. One-shot, so a block re-mined with the same number after
/// recovery validates cleanly.
NodeConfig faulty_node(const StreamSpec& spec, std::size_t depth, std::uint64_t faulty_number) {
  NodeConfig config;
  config.miner.nanos_per_gas = 0.0;
  config.validator.nanos_per_gas = kSlowValidatorNanosPerGas;
  config.batch.target_txs = spec.txs_per_block;
  config.pipelined = true;
  config.mining = MiningMode::kSerial;
  config.pipeline_depth = depth;
  config.post_mine_hook = [faulty_number, fired = std::make_shared<bool>(false)](
                              chain::Block& block) {
    if (!*fired && block.header.number == faulty_number) {
      *fired = true;
      block.header.state_root.bytes[0] ^= 0xff;
    }
  };
  return config;
}

/// Rejection at depth k with the whole remaining stream already
/// speculated: blocks 3..6 sit in the ring when block 2's verdict comes
/// back. The node must abort the suffix and the committed chain must be
/// the sequential reference truncated at the rejection point — not a
/// torn-down node, not a chain containing any doomed block.
TEST(NodeRecovery, SuffixAbortTruncatesChainAtTheRejectionPoint) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/6, /*txs_per_block=*/20,
                                      /*conflict=*/20);
  // Depth ≥ remaining blocks: 3..6 all fit in flight behind block 2.
  NodeConfig config = faulty_node(spec, /*depth=*/6, /*faulty_number=*/2);
  // This test used to pin "all of 3..6 are in flight when 2's verdict
  // lands" with a slow calibrated validator burn — a timing bet that
  // TSan's scheduler occasionally lost (the verdict raced the ring
  // fill, flaking aborted_blocks). Replace the bet with a barrier: the
  // validator holds block 2 until the miner has drained the stream, so
  // the suffix is in the ring by construction, at full speed, under any
  // scheduler.
  config.validator.nanos_per_gas = 0.0;
  auto gate = std::make_shared<std::atomic<Node*>>(nullptr);
  config.pre_validate_hook = [gate](const chain::Block& block) {
    if (block.header.number != 2) return;
    const Node* running = nullptr;
    while ((running = gate->load(std::memory_order_acquire)) == nullptr ||
           !running->mining_done()) {
      std::this_thread::yield();
    }
  };
  auto [node, stream] = make_node(spec, config);
  gate->store(node.get(), std::memory_order_release);
  drive(*node, std::move(stream));

  // The rejection is reported — but it did not tear the node down; the
  // run completed and the chain below the fault is intact.
  ASSERT_FALSE(node->ok());
  EXPECT_EQ(node->failure().reason, core::RejectReason::kStateRootMismatch);

  const chain::Blockchain reference = sequential_reference(spec);
  ASSERT_EQ(node->chain().height(), 1u);
  for (std::uint64_t n = 0; n <= 1; ++n) {
    EXPECT_EQ(node->chain().at(n), reference.at(n)) << "block " << n << " diverged";
  }
  EXPECT_TRUE(node->chain().verify_links());

  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.rejected_blocks, 1u);
  EXPECT_EQ(stats.aborted_blocks, 4u);  // Blocks 3..6, drained from the ring.
  // The re-org completed (validator re-materialized) even though the
  // miner — its stream already drained — never resumed mining.
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.blocks, 1u);
  EXPECT_EQ(stats.transactions, 20u);
  // Accounting closes: every consumed transaction either committed or
  // was dropped by the re-org.
  EXPECT_EQ(stats.dropped_transactions, 100u);
  EXPECT_EQ(stats.transactions + stats.dropped_transactions, spec.total_transactions());
  EXPECT_GE(stats.ring_high_water, 4u);
}

/// The liveness half: after the re-org the node re-materializes the
/// miner from the last accepted boundary snapshot and KEEPS MINING —
/// the post-recovery block must land on top of block 1 and be
/// byte-identical to serially mining its batch there.
TEST(NodeRecovery, MiningResumesFromTheAcceptedBoundaryAfterRecovery) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/6, /*txs_per_block=*/20,
                                      /*conflict=*/20);
  // Depth 2, fault at block 2: while the slow validator chews block 2,
  // the miner fills the ring with 3,4 and parks pushing 5. The re-org
  // drains 3,4, fails the push of 5, and batch 6 — still in the mempool
  // — is mined post-recovery as the new block 2.
  auto [node, stream] = make_node(spec, faulty_node(spec, /*depth=*/2, /*faulty_number=*/2));
  drive(*node, std::move(stream));

  ASSERT_FALSE(node->ok());
  EXPECT_EQ(node->failure().reason, core::RejectReason::kStateRootMismatch);
  ASSERT_EQ(node->chain().height(), 2u);
  EXPECT_TRUE(node->chain().verify_links());

  // Expected chain: batch 1, then batch 6 mined on the post-1 state —
  // the same fixture mined serially with the dropped window left out.
  auto ref = make_stream_fixture(spec);
  core::MinerConfig miner_config;
  miner_config.nanos_per_gas = 0.0;
  core::Miner ref_miner(*ref.world, miner_config);
  chain::Blockchain expected(ref.world->state_root());
  const auto batch = [&ref](std::size_t index) {
    const auto first = ref.transactions.begin() + static_cast<std::ptrdiff_t>(index * 20);
    return std::vector<chain::Transaction>(first, first + 20);
  };
  expected.append(ref_miner.mine_serial(batch(0), expected.tip()));
  expected.append(ref_miner.mine_serial(batch(5), expected.tip()));
  for (std::uint64_t n = 0; n <= 2; ++n) {
    EXPECT_EQ(node->chain().at(n), expected.at(n)) << "block " << n << " diverged";
  }

  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.rejected_blocks, 1u);
  EXPECT_EQ(stats.aborted_blocks, 3u);  // 3,4 drained + 5 dropped at the failed push.
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.blocks, 2u);
  EXPECT_EQ(stats.transactions, 40u);
  EXPECT_EQ(stats.dropped_transactions, 80u);  // Batches 2,3,4,5.
  EXPECT_EQ(stats.transactions + stats.dropped_transactions, spec.total_transactions());
  EXPECT_GT(stats.recovery_ms, 0.0);
  EXPECT_GT(stats.snapshot_ms, 0.0);
}

/// Sequential mode recovers too (no ring, no suffix — just the rejected
/// block unwinding), and with one thread the whole scenario is
/// timing-independent: batch 3 is dropped, everything else commits.
TEST(NodeRecovery, SequentialModeDropsOnlyTheRejectedBatch) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/6, /*txs_per_block=*/20,
                                      /*conflict=*/20);
  NodeConfig config = faulty_node(spec, /*depth=*/1, /*faulty_number=*/3);
  config.pipelined = false;
  config.validator.nanos_per_gas = 0.0;  // No timing pin needed.
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_FALSE(node->ok());
  ASSERT_EQ(node->chain().height(), 5u);
  EXPECT_TRUE(node->chain().verify_links());

  // Expected: batches 1,2,4,5,6 mined in order with batch 3 left out.
  auto ref = make_stream_fixture(spec);
  core::MinerConfig miner_config;
  miner_config.nanos_per_gas = 0.0;
  core::Miner ref_miner(*ref.world, miner_config);
  chain::Blockchain expected(ref.world->state_root());
  const auto batch = [&ref](std::size_t index) {
    const auto first = ref.transactions.begin() + static_cast<std::ptrdiff_t>(index * 20);
    return std::vector<chain::Transaction>(first, first + 20);
  };
  for (const std::size_t index : {0u, 1u, 3u, 4u, 5u}) {
    expected.append(ref_miner.mine_serial(batch(index), expected.tip()));
  }
  for (std::uint64_t n = 0; n <= expected.height(); ++n) {
    EXPECT_EQ(node->chain().at(n), expected.at(n)) << "block " << n << " diverged";
  }

  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.rejected_blocks, 1u);
  EXPECT_EQ(stats.aborted_blocks, 0u);  // No speculative suffix exists.
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.dropped_transactions, 20u);
  EXPECT_EQ(stats.transactions, 100u);
}

/// A fault in the FIRST block recovers to the genesis boundary — the
/// one snapshot that was never taken per-block but frozen at
/// construction.
TEST(NodeRecovery, RecoveryFromTheGenesisBoundary) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, /*blocks=*/3, /*txs_per_block=*/15,
                                      /*conflict=*/0);
  NodeConfig config = faulty_node(spec, /*depth=*/1, /*faulty_number=*/1);
  config.pipelined = false;
  config.validator.nanos_per_gas = 0.0;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_FALSE(node->ok());
  ASSERT_EQ(node->chain().height(), 2u);
  EXPECT_EQ(node->chain().at(0).header.state_root, node->genesis_snapshot().state_root());
  EXPECT_TRUE(node->chain().verify_links());
  EXPECT_EQ(node->stats().recoveries, 1u);
  EXPECT_EQ(node->stats().dropped_transactions, 15u);
}

/// The legacy contract behind NodeConfig::halt_on_rejection: the first
/// rejection stops the node — no recovery, no abort accounting, and
/// (by construction) no per-block snapshot overhead.
TEST(NodeRecovery, HaltOnRejectionStopsTheNodeLikeBefore) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/6, /*txs_per_block=*/20,
                                      /*conflict=*/20);
  NodeConfig config = faulty_node(spec, /*depth=*/4, /*faulty_number=*/2);
  config.halt_on_rejection = true;
  auto [node, stream] = make_node(spec, config);
  drive(*node, std::move(stream));

  ASSERT_FALSE(node->ok());
  EXPECT_EQ(node->failure().reason, core::RejectReason::kStateRootMismatch);
  EXPECT_EQ(node->chain().height(), 1u);
  EXPECT_TRUE(node->mempool().closed());
  const NodeStats& stats = node->stats();
  EXPECT_EQ(stats.rejected_blocks, 1u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_EQ(stats.aborted_blocks, 0u);
  EXPECT_EQ(stats.snapshot_ms, 0.0);
}

// ------------------------------------------------ Construction guards ---

TEST(NodeConstruction, RejectsNullWorld) {
  EXPECT_THROW(Node(nullptr, NodeConfig{}), std::invalid_argument);
}

TEST(NodeConstruction, RejectsZeroPipelineDepth) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, 2, 10, 0);
  NodeConfig config;
  config.pipeline_depth = 0;
  EXPECT_THROW(Node(make_stream_fixture(spec).world, config), std::invalid_argument);
}

TEST(NodeConstruction, RejectsLockSemanticsDisagreement) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kBallot, 2, 10, 0);
  NodeConfig config;
  config.miner.exclusive_locks_only = true;
  EXPECT_THROW(Node(make_stream_fixture(spec).world, config), std::invalid_argument);
  // The guard must fire even before a world could be cloned.
  EXPECT_THROW(Node(nullptr, config), std::invalid_argument);
}

// ------------------------------------------------- Genesis snapshot ---

/// The snapshot seam: frozen at construction, root-identical to the
/// chain's genesis, and still frozen after the miner's world has moved
/// twenty blocks past it.
TEST(NodeGenesisSnapshot, StaysFrozenWhileTheChainAdvances) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/4, /*txs_per_block=*/20,
                                      /*conflict=*/15);
  auto fixture = make_stream_fixture(spec);
  const auto genesis_root = fixture.world->state_root();

  auto node = std::make_unique<Node>(std::move(fixture.world), fast_node(spec));
  EXPECT_EQ(node->genesis_snapshot().state_root(), genesis_root);
  EXPECT_EQ(node->chain().at(0).header.state_root, genesis_root);

  drive(*node, std::move(fixture.transactions));
  ASSERT_TRUE(node->ok());
  ASSERT_EQ(node->chain().height(), spec.blocks);

  // The chain moved; the snapshot did not — and it can still mint fresh
  // replicas of genesis (the depth-k re-org recovery path).
  EXPECT_NE(node->chain().tip().header.state_root, genesis_root);
  EXPECT_EQ(node->genesis_snapshot().state_root(), genesis_root);
  EXPECT_EQ(node->genesis_snapshot().world().state_root(), genesis_root);
  EXPECT_EQ(node->genesis_snapshot().materialize()->state_root(), genesis_root);
}

// ---------------------------------------------- Sharded production ---

/// Shard-count lanes for the router/merge acceptance criteria: shard
/// fan-outs 1, 2 and 4 over the same pipelined serial-mode stream.
class ShardedProduction : public ::testing::TestWithParam<std::uint32_t> {};

/// Router purity, end to end: with the content-ordered cut the chain a
/// sharded node produces is a function of the transaction MULTISET —
/// shuffling arrival order changes nothing, because shard_of reads only
/// transaction content and the window cut reads only pool content. The
/// whole stream is submitted and the pool closed before the node runs
/// so the cut sees identical pool content in every permutation.
TEST_P(ShardedProduction, ShuffledArrivalProducesAnIdenticalChain) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/20);

  const auto run_with_order = [&](unsigned seed) {
    NodeConfig config = fast_node(spec);
    config.pipelined = true;
    config.mining = MiningMode::kSerial;
    config.mine_shards = GetParam();
    config.batch.content_order = true;
    auto [node, stream] = make_node(spec, config);
    if (seed != 0) {
      std::mt19937 rng(seed);
      std::shuffle(stream.begin(), stream.end(), rng);
    }
    (void)node->mempool().submit_many(std::move(stream));
    node->mempool().close();
    node->run();
    return std::move(node);
  };

  const auto base = run_with_order(0);
  ASSERT_TRUE(base->ok()) << core::to_string(base->failure().reason);
  EXPECT_EQ(base->stats().transactions, spec.total_transactions());
  EXPECT_TRUE(base->chain().verify_links());

  for (const unsigned seed : {1u, 2u}) {
    const auto shuffled = run_with_order(seed);
    ASSERT_TRUE(shuffled->ok()) << core::to_string(shuffled->failure().reason);
    ASSERT_EQ(shuffled->chain().height(), base->chain().height());
    for (std::uint64_t n = 0; n <= base->chain().height(); ++n) {
      EXPECT_EQ(shuffled->chain().at(n), base->chain().at(n)) << "block " << n << " diverged";
      EXPECT_EQ(shuffled->chain().at(n).hash(), base->chain().at(n).hash());
    }
  }
}

/// Byte-reproducibility under the concurrent producer: two identical
/// pipelined runs produce identical chains even though lane mining is
/// multi-threaded — the merge layer, not thread timing, fixes the block.
/// At one shard this collapses to the pre-shard single-miner path and
/// must reproduce the sequential reference byte for byte.
TEST_P(ShardedProduction, RepeatedRunsAreByteReproducible) {
  const StreamSpec spec = stream_spec(BenchmarkKind::kMixed, /*blocks=*/20, /*txs_per_block=*/25,
                                      /*conflict=*/20);

  const auto run_once = [&] {
    NodeConfig config = fast_node(spec);
    config.pipelined = true;
    config.mining = MiningMode::kSerial;
    config.mine_shards = GetParam();
    auto [node, stream] = make_node(spec, config);
    drive(*node, std::move(stream));
    return std::move(node);
  };

  const auto first = run_once();
  const auto second = run_once();
  for (const auto* node : {first.get(), second.get()}) {
    ASSERT_TRUE(node->ok()) << core::to_string(node->failure().reason);
    // Cross-shard losers lap through the mempool, so the height may
    // exceed the nominal block count — but every transaction commits.
    EXPECT_EQ(node->stats().transactions, spec.total_transactions());
    EXPECT_TRUE(node->chain().verify_links());
    EXPECT_GE(node->stats().requeued_transactions, node->stats().cross_shard_conflicts);
  }

  ASSERT_EQ(first->chain().height(), second->chain().height());
  for (std::uint64_t n = 0; n <= first->chain().height(); ++n) {
    EXPECT_EQ(first->chain().at(n), second->chain().at(n)) << "block " << n << " diverged";
    EXPECT_EQ(first->chain().at(n).hash(), second->chain().at(n).hash());
  }

  if (GetParam() == 1) {
    // Single-shard must be byte-identical to the pre-refactor path.
    const chain::Blockchain reference = sequential_reference(spec);
    ASSERT_EQ(first->chain().height(), reference.height());
    for (std::uint64_t n = 0; n <= reference.height(); ++n) {
      EXPECT_EQ(first->chain().at(n), reference.at(n)) << "block " << n << " diverged";
    }
    EXPECT_EQ(first->stats().requeued_transactions, 0u);
    EXPECT_EQ(first->stats().cross_shard_conflicts, 0u);
  } else {
    // Sharded blocks publish their lane structure; it must tile every
    // block exactly (the validator checks this too).
    bool saw_multi_lane = false;
    for (std::uint64_t n = 1; n <= first->chain().height(); ++n) {
      const auto& schedule = first->chain().at(n).schedule;
      ASSERT_EQ(schedule.shard_lanes.size(), GetParam()) << "block " << n;
      std::size_t lane_total = 0;
      for (const std::uint32_t count : schedule.shard_lanes) lane_total += count;
      EXPECT_EQ(lane_total, first->chain().at(n).transactions.size()) << "block " << n;
      std::size_t populated = 0;
      for (const std::uint32_t count : schedule.shard_lanes) populated += count > 0 ? 1 : 0;
      saw_multi_lane = saw_multi_lane || populated > 1;
    }
    // The mixed workload spreads contracts across shards: at least one
    // block must genuinely merge more than one lane.
    EXPECT_TRUE(saw_multi_lane);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedProduction, ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace concord::node
