#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "chain/blockchain.hpp"
#include "chain/schedule.hpp"
#include "chain/transaction.hpp"

namespace concord::chain {
namespace {

Transaction sample_tx(std::uint64_t n) {
  return TxBuilder(vm::Address::from_u64(100 + n), vm::Address::from_u64(n), 3)
      .arg_u64(n * 7)
      .value(static_cast<vm::Amount>(n))
      .gas_limit(50'000 + n)
      .build();
}

BlockSchedule sample_schedule() {
  BlockSchedule s;
  stm::LockProfile p0;
  p0.tx = 0;
  p0.entries = {{{1, 2}, stm::LockMode::kWrite, 1}, {{3, 4}, stm::LockMode::kRead, 1}};
  stm::LockProfile p1;
  p1.tx = 1;
  p1.reverted = true;
  p1.entries = {{{1, 2}, stm::LockMode::kWrite, 2}};
  s.profiles = {p0, p1};
  s.edges = {{0, 1}};
  s.serial_order = {0, 1};
  return s;
}

// -------------------------------------------------------- Transaction --

TEST(Transaction, EncodeDecodeRoundTrip) {
  const Transaction tx = sample_tx(5);
  util::ByteWriter w;
  tx.encode(w);
  util::ByteReader r(w.bytes());
  const Transaction back = Transaction::decode(r);
  EXPECT_EQ(tx, back);
  EXPECT_TRUE(r.exhausted());
}

TEST(Transaction, HashIsStableAndSensitive) {
  EXPECT_EQ(sample_tx(1).hash(), sample_tx(1).hash());
  EXPECT_NE(sample_tx(1).hash(), sample_tx(2).hash());
}

TEST(Transaction, BuilderProducesDecodableArgs) {
  const Transaction tx = TxBuilder(vm::Address::from_u64(1), vm::Address::from_u64(2), 9)
                             .arg_u64(1234)
                             .arg_address(vm::Address::from_u64(3))
                             .arg_string("hi")
                             .build();
  util::ByteReader args(tx.args);
  EXPECT_EQ(args.get_varint(), 1234u);
  const auto addr = args.get_raw(20);
  EXPECT_TRUE(std::equal(addr.begin(), addr.end(), vm::Address::from_u64(3).bytes.begin()));
  EXPECT_EQ(args.get_string(), "hi");
}

TEST(Transaction, ToCallAndMsg) {
  const Transaction tx = sample_tx(3);
  EXPECT_EQ(tx.to_call().selector, 3u);
  EXPECT_EQ(tx.to_msg().sender, vm::Address::from_u64(3));
  EXPECT_EQ(tx.to_msg().receiver, vm::Address::from_u64(103));
  EXPECT_EQ(tx.to_msg().value, 3);
}

// ----------------------------------------------------------- Schedule --

TEST(Schedule, EncodeDecodeRoundTrip) {
  const BlockSchedule s = sample_schedule();
  util::ByteWriter w;
  s.encode(w);
  util::ByteReader r(w.bytes());
  const BlockSchedule back = BlockSchedule::decode(r);
  EXPECT_EQ(s, back);
  EXPECT_TRUE(r.exhausted());
}

TEST(Schedule, HashDetectsTampering) {
  const BlockSchedule s = sample_schedule();
  BlockSchedule tampered = s;
  tampered.edges.clear();
  EXPECT_NE(s.hash(), tampered.hash());
}

TEST(Schedule, ToGraphMaterializesEdges) {
  const BlockSchedule s = sample_schedule();
  const auto g = s.to_graph(2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Schedule, DecodeRejectsBadMode) {
  BlockSchedule s = sample_schedule();
  util::ByteWriter w;
  s.encode(w);
  auto bytes = w.bytes();
  // Profile entry mode byte: find and corrupt it. Encoding layout: count,
  // then tx varint, reverted byte, entry count, then 8+8 lock bytes, mode.
  bytes[1 + 1 + 1 + 1 + 16] = 9;
  util::ByteReader r(bytes);
  EXPECT_THROW((void)BlockSchedule::decode(r), util::DecodeError);
}

TEST(Schedule, EncodedSizeMatchesEncoding) {
  const BlockSchedule s = sample_schedule();
  util::ByteWriter w;
  s.encode(w);
  EXPECT_EQ(s.encoded_size(), w.size());
}

// -------------------------------------------------------------- Block --

Block sample_block(const Block& parent) {
  Block b;
  b.transactions = {sample_tx(1), sample_tx(2)};
  b.statuses = {vm::TxStatus::kSuccess, vm::TxStatus::kReverted};
  b.schedule = sample_schedule();
  b.header.number = parent.header.number + 1;
  b.header.parent_hash = parent.hash();
  b.header.state_root = util::sha256("some state");
  b.header.tx_root = b.compute_tx_root();
  b.header.status_root = b.compute_status_root();
  b.header.schedule_hash = b.schedule.hash();
  return b;
}

TEST(Block, EncodeDecodeRoundTrip) {
  Blockchain chain(util::sha256("genesis"));
  const Block b = sample_block(chain.tip());
  util::ByteWriter w;
  b.encode(w);
  util::ByteReader r(w.bytes());
  const Block back = Block::decode(r);
  EXPECT_EQ(b, back);
  EXPECT_EQ(b.hash(), back.hash());
}

TEST(Block, CommitmentsDetectTamperedTx) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  EXPECT_TRUE(b.commitments_consistent());
  b.transactions[0].value += 1;
  EXPECT_FALSE(b.commitments_consistent());
}

TEST(Block, CommitmentsDetectTamperedStatus) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  b.statuses[1] = vm::TxStatus::kSuccess;
  EXPECT_FALSE(b.commitments_consistent());
}

TEST(Block, CommitmentsDetectTamperedSchedule) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  b.schedule.serial_order = {1, 0};
  EXPECT_FALSE(b.commitments_consistent());
}

// --------------------------------------------------------- Blockchain --

TEST(Blockchain, GenesisAtHeightZero) {
  Blockchain chain(util::sha256("genesis"));
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.tip().header.number, 0u);
  EXPECT_EQ(chain.tip().header.state_root, util::sha256("genesis"));
}

TEST(Blockchain, AppendExtendsChain) {
  Blockchain chain(util::sha256("genesis"));
  chain.append(sample_block(chain.tip()));
  chain.append(sample_block(chain.tip()));
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_TRUE(chain.verify_links());
}

TEST(Blockchain, RejectsWrongNumber) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  b.header.number = 7;
  EXPECT_THROW(chain.append(std::move(b)), ChainError);
}

TEST(Blockchain, RejectsWrongParentHash) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  b.header.parent_hash = util::sha256("not the parent");
  EXPECT_THROW(chain.append(std::move(b)), ChainError);
}

TEST(Blockchain, RejectsInconsistentCommitments) {
  Blockchain chain(util::sha256("genesis"));
  Block b = sample_block(chain.tip());
  b.statuses.pop_back();
  EXPECT_THROW(chain.append(std::move(b)), ChainError);
}

TEST(Blockchain, HashLinksDetectRewrittenHistory) {
  Blockchain chain(util::sha256("genesis"));
  chain.append(sample_block(chain.tip()));
  EXPECT_TRUE(chain.verify_links());
  // A "tampered" copy: rebuilding block 1 with different content breaks
  // the link that block 2 would carry; here we just confirm the verifier
  // notices a broken parent pointer simulated via a fresh chain compare.
  Blockchain other(util::sha256("different genesis"));
  EXPECT_NE(chain.tip().header.parent_hash, other.tip().hash());
}

}  // namespace
}  // namespace concord::chain
