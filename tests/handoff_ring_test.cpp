#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chain/block.hpp"
#include "node/handoff_ring.hpp"

namespace concord::node {
namespace {

/// A ring entry whose block carries `txs` dummy transactions under
/// number `n` — enough structure for the drain accounting and ordering
/// checks without a mined world behind it.
InFlightBlock entry(std::uint64_t n, std::size_t txs = 0) {
  InFlightBlock e;
  e.block.header.number = n;
  e.block.transactions.resize(txs);
  return e;
}

// ------------------------------------------------------ Basic transport ---

TEST(HandoffRing, ZeroDepthThrows) {
  EXPECT_THROW(HandoffRing(0), std::invalid_argument);
}

TEST(HandoffRing, FifoUpToDepthWithoutBlocking) {
  HandoffRing ring(3);
  EXPECT_EQ(ring.depth(), 3u);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(ring.push(entry(n)), HandoffRing::PushOutcome::kDelivered);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.stats().high_water, 3u);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    auto popped = ring.pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->block.header.number, n);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(HandoffRing, CloseDrainsThenSignalsShutdown) {
  HandoffRing ring(2);
  ASSERT_EQ(ring.push(entry(1)), HandoffRing::PushOutcome::kDelivered);
  ring.close();
  EXPECT_TRUE(ring.closed());
  // The queued entry still reaches the consumer…
  auto popped = ring.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->block.header.number, 1u);
  // …then pop() turns into the shutdown signal, and pushes bounce.
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_EQ(ring.push(entry(2)), HandoffRing::PushOutcome::kClosed);
}

// ------------------------------------------------------ Abort protocol ---

TEST(HandoffRing, AbortDrainsSuffixAndHandsBackTheRecoveryPoint) {
  HandoffRing ring(4);
  // Consumer holds (a popped) block 2; 3 and 4 are the doomed suffix.
  ASSERT_EQ(ring.push(entry(3, 5)), HandoffRing::PushOutcome::kDelivered);
  ASSERT_EQ(ring.push(entry(4, 7)), HandoffRing::PushOutcome::kDelivered);

  RecoveryPoint point;
  point.parent.header.number = 1;
  const HandoffRing::DrainResult drained = ring.abort_and_drain(std::move(point));
  EXPECT_EQ(drained.blocks, 2u);
  EXPECT_EQ(drained.transactions, 12u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.abort_requested());

  // Producer side: pushes fail (not deliver) until the handshake…
  EXPECT_EQ(ring.push(entry(5)), HandoffRing::PushOutcome::kAborted);
  // …which returns the point and reopens the ring.
  const RecoveryPoint resumed = ring.acknowledge_abort();
  EXPECT_EQ(resumed.parent.header.number, 1u);
  EXPECT_FALSE(ring.abort_requested());
  EXPECT_EQ(ring.push(entry(2)), HandoffRing::PushOutcome::kDelivered);

  const HandoffRingStats stats = ring.stats();
  EXPECT_EQ(stats.aborts, 1u);
  EXPECT_EQ(stats.drained_blocks, 2u);
  EXPECT_EQ(stats.drained_transactions, 12u);
}

TEST(HandoffRing, AbortProtocolMisuseThrows) {
  HandoffRing ring(2);
  EXPECT_THROW((void)ring.acknowledge_abort(), std::logic_error);
  (void)ring.abort_and_drain(RecoveryPoint{});
  EXPECT_THROW((void)ring.abort_and_drain(RecoveryPoint{}), std::logic_error);
}

// -------------------------------------------------- Blocking handshake ---

/// A producer blocked on a full ring must be released by the consumer's
/// abort — the re-org path when validation is the bottleneck.
TEST(HandoffRing, AbortReleasesAProducerBlockedOnAFullRing) {
  HandoffRing ring(1);
  ASSERT_EQ(ring.push(entry(2)), HandoffRing::PushOutcome::kDelivered);

  std::atomic<bool> blocked_push_returned{false};
  HandoffRing::PushOutcome outcome = HandoffRing::PushOutcome::kDelivered;
  std::jthread producer([&] {
    outcome = ring.push(entry(3));  // Ring full: parks until the abort.
    blocked_push_returned.store(true);
  });

  // Give the producer a moment to park (the outcome is the same either
  // way — a pre-park abort fails the push on entry), then re-org.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const HandoffRing::DrainResult drained = ring.abort_and_drain(RecoveryPoint{});
  producer.join();
  ASSERT_TRUE(blocked_push_returned.load());
  EXPECT_EQ(outcome, HandoffRing::PushOutcome::kAborted);
  EXPECT_EQ(drained.blocks, 1u);  // Entry 2 was queued; entry 3 never entered.
  (void)ring.acknowledge_abort();
}

TEST(HandoffRing, CloseReleasesABlockedProducer) {
  HandoffRing ring(1);
  ASSERT_EQ(ring.push(entry(1)), HandoffRing::PushOutcome::kDelivered);
  HandoffRing::PushOutcome outcome = HandoffRing::PushOutcome::kDelivered;
  std::jthread producer([&] { outcome = ring.push(entry(2)); });
  ring.close();
  producer.join();
  EXPECT_EQ(outcome, HandoffRing::PushOutcome::kClosed);
}

/// SPSC smoke under real concurrency: one producer streaming entries,
/// one consumer popping them — everything arrives exactly once, in
/// order, no matter how the threads interleave at depth 2.
TEST(HandoffRing, ConcurrentStreamKeepsOrder) {
  constexpr std::uint64_t kEntries = 500;
  HandoffRing ring(2);
  std::vector<std::uint64_t> seen;
  std::jthread consumer([&] {
    while (auto popped = ring.pop()) seen.push_back(popped->block.header.number);
  });
  for (std::uint64_t n = 0; n < kEntries; ++n) {
    ASSERT_EQ(ring.push(entry(n)), HandoffRing::PushOutcome::kDelivered);
  }
  ring.close();
  consumer.join();
  ASSERT_EQ(seen.size(), kEntries);
  for (std::uint64_t n = 0; n < kEntries; ++n) EXPECT_EQ(seen[n], n);
  EXPECT_LE(ring.stats().high_water, 2u);
  EXPECT_EQ(ring.stats().delivered, kEntries);
}

}  // namespace
}  // namespace concord::node
