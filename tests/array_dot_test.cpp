#include <gtest/gtest.h>

#include "graph/dot_export.hpp"
#include "stm/runtime.hpp"
#include "vm/boosted_array.hpp"
#include "vm/errors.hpp"
#include "vm/exec_context.hpp"
#include "vm/world.hpp"

namespace concord {
namespace {

vm::GasMeter test_meter() { return vm::GasMeter(vm::gas::kDefaultTxGasLimit, 0.0); }

// ------------------------------------------------------- BoostedArray --

class ArrayTest : public ::testing::Test {
 protected:
  vm::World world_;
  vm::BoostedArray<std::int64_t> array_{7};

  vm::ExecContext ctx() { return vm::ExecContext::serial(world_, test_meter()); }
};

TEST_F(ArrayTest, PushGetSet) {
  auto c = ctx();
  EXPECT_EQ(array_.push_back(c, 10), 0u);
  EXPECT_EQ(array_.push_back(c, 20), 1u);
  EXPECT_EQ(array_.length(c), 2u);
  EXPECT_EQ(array_.get(c, 0), 10);
  array_.set(c, 1, 25);
  EXPECT_EQ(array_.get(c, 1), 25);
}

TEST_F(ArrayTest, OutOfRangeReverts) {
  auto c = ctx();
  array_.raw_push_back(1);
  EXPECT_THROW((void)array_.get(c, 1), vm::RevertError);
  EXPECT_THROW(array_.set(c, 7, 0), vm::RevertError);
  EXPECT_THROW(array_.add(c, 9, 1), vm::RevertError);
}

TEST_F(ArrayTest, PopBackAndEmptyPopReverts) {
  auto c = ctx();
  array_.raw_push_back(5);
  array_.pop_back(c);
  EXPECT_EQ(array_.size(), 0u);
  EXPECT_THROW(array_.pop_back(c), vm::RevertError);
}

TEST_F(ArrayTest, RevertRestoresEverything) {
  array_.raw_push_back(1);
  array_.raw_push_back(2);
  auto c = ctx();
  array_.set(c, 0, 100);
  array_.add(c, 1, 50);
  (void)array_.push_back(c, 3);
  array_.pop_back(c);   // Removes the 3.
  array_.pop_back(c);   // Removes the modified 2.
  c.rollback_local();
  EXPECT_EQ(array_.size(), 2u);
  EXPECT_EQ(array_.raw_get(0), 1);
  EXPECT_EQ(array_.raw_get(1), 2);
}

TEST_F(ArrayTest, AddIsIncrementMode) {
  array_.raw_push_back(0);
  // Two speculative lineages add to the same index concurrently.
  stm::BoostingRuntime rt;
  stm::SpeculativeAction a(rt, 0, rt.next_birth());
  stm::SpeculativeAction b(rt, 1, rt.next_birth());
  vm::ExecContext ctx_a = vm::ExecContext::speculative(world_, rt, a, test_meter());
  vm::ExecContext ctx_b = vm::ExecContext::speculative(world_, rt, b, test_meter());
  array_.add(ctx_a, 0, 5);
  array_.add(ctx_b, 0, 3);  // Would deadlock if add were WRITE mode.
  a.abort();
  (void)b.commit();
  EXPECT_EQ(array_.raw_get(0), 3);
}

TEST_F(ArrayTest, PushBlocksLengthReaders) {
  // push_back WRITE-locks the length: a concurrent lineage's length()
  // read must conflict (here we just verify the lock bookkeeping).
  stm::BoostingRuntime rt;
  stm::SpeculativeAction pusher(rt, 0, rt.next_birth());
  vm::ExecContext ctx_p = vm::ExecContext::speculative(world_, rt, pusher, test_meter());
  (void)array_.push_back(ctx_p, 1);
  EXPECT_EQ(pusher.held_lock_count(), 2u);  // Length lock + element lock.
  (void)pusher.commit();
}

TEST_F(ArrayTest, HashStateReflectsOrder) {
  vm::BoostedArray<std::int64_t> a(7);
  vm::BoostedArray<std::int64_t> b(7);
  a.raw_push_back(1);
  a.raw_push_back(2);
  b.raw_push_back(2);
  b.raw_push_back(1);
  vm::StateHasher ha;
  vm::StateHasher hb;
  a.hash_state(ha, "arr");
  b.hash_state(hb, "arr");
  EXPECT_NE(ha.finish(), hb.finish());  // Arrays are ordered.
}

// --------------------------------------------------------- DOT export --

TEST(DotExport, ContainsNodesAndEdges) {
  graph::HappensBeforeGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::string dot = graph::to_dot(g);
  EXPECT_NE(dot.find("digraph schedule"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2"), std::string::npos);
  EXPECT_EQ(dot.find("t0 -> t2"), std::string::npos);
}

TEST(DotExport, RanksByDepth) {
  graph::HappensBeforeGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::string dot = graph::to_dot(g);
  // Wave 0 holds both roots.
  EXPECT_NE(dot.find("{ rank=same; t0; t1; }"), std::string::npos);
}

TEST(DotExport, EmptyGraph) {
  graph::HappensBeforeGraph g(0);
  const std::string dot = graph::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace concord
