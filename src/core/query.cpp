#include "core/query.hpp"

#include <algorithm>
#include <stdexcept>

#include "vm/errors.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/runner.hpp"

namespace concord::core {

namespace {

/// Keeps the synthetic msg frame balanced across every exit path of a
/// fn-shaped query (mirrors the runner's MsgFrame, which is internal to
/// run_call).
class QueryFrame {
 public:
  QueryFrame(vm::ExecContext& ctx, const vm::MsgContext& msg) : ctx_(ctx) { ctx_.push_msg(msg); }
  ~QueryFrame() { ctx_.pop_msg(); }
  QueryFrame(const QueryFrame&) = delete;
  QueryFrame& operator=(const QueryFrame&) = delete;

 private:
  vm::ExecContext& ctx_;
};

const vm::World& frozen_world(const vm::WorldSnapshot& snapshot) {
  if (!snapshot.valid()) {
    // A handle bug, not a query outcome: the caller is asking "as of"
    // nothing. Node::query_at turns missing boundaries into
    // SnapshotEvicted long before this.
    throw std::logic_error("run_query on an invalid WorldSnapshot handle");
  }
  return snapshot.world();
}

}  // namespace

QueryOutcome run_query(const vm::WorldSnapshot& snapshot, const QueryConfig& config,
                       const QueryFn& fn) {
  const vm::World& world = frozen_world(snapshot);
  vm::ExecContext ctx = vm::ExecContext::read_only(
      world, vm::GasMeter(config.gas_cap, config.nanos_per_gas));

  QueryOutcome outcome;
  try {
    // Queries get an anonymous outermost frame so contract code reading
    // msg() behaves identically on and off the read path.
    const QueryFrame frame(ctx, vm::MsgContext{});
    ctx.gas().charge(vm::gas::kTxBase);
    fn(world, ctx);
    outcome.status = QueryStatus::kOk;
  } catch (const vm::OutOfGas&) {
    outcome.status = QueryStatus::kOutOfGas;
  } catch (const vm::ReadOnlyViolation&) {
    outcome.status = QueryStatus::kMutationRejected;
  } catch (const vm::RevertError&) {
    outcome.status = QueryStatus::kReverted;
  }
  outcome.gas_used = ctx.gas().used();
  return outcome;
}

QueryOutcome run_query_call(const vm::WorldSnapshot& snapshot, const QueryConfig& config,
                            const chain::Transaction& tx) {
  const vm::World& world = frozen_world(snapshot);
  vm::Contract* contract = world.contracts().find(tx.contract);
  if (contract == nullptr) {
    // Same shape a mined transaction's BadCall would take: the call
    // cannot execute, nothing happened.
    return QueryOutcome{QueryStatus::kReverted, 0};
  }

  const std::uint64_t cap = std::min(tx.gas_limit, config.gas_cap);
  vm::ExecContext ctx =
      vm::ExecContext::read_only(world, vm::GasMeter(cap, config.nanos_per_gas));

  QueryOutcome outcome;
  try {
    switch (vm::run_call(*contract, tx.to_call(), tx.to_msg(), ctx)) {
      case vm::TxStatus::kSuccess:
        outcome.status = QueryStatus::kOk;
        break;
      case vm::TxStatus::kReverted:
        outcome.status = QueryStatus::kReverted;
        break;
      case vm::TxStatus::kOutOfGas:
        outcome.status = QueryStatus::kOutOfGas;
        break;
    }
  } catch (const vm::ReadOnlyViolation&) {
    // run_call only maps OutOfGas/RevertError; the read-only rejection
    // unwinds through it (its MsgFrame keeps the stack balanced).
    outcome.status = QueryStatus::kMutationRejected;
  }
  outcome.gas_used = ctx.gas().used();
  return outcome;
}

}  // namespace concord::core
