#include "core/validator.hpp"

#include <atomic>
#include <mutex>
#include <vector>

#include "graph/happens_before.hpp"
#include "vm/trace.hpp"

namespace concord::core {

std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "accepted";
    case RejectReason::kBadCommitments: return "header commitments do not match body";
    case RejectReason::kMalformedSchedule: return "malformed schedule";
    case RejectReason::kMissingConstraint: return "schedule misses a happens-before constraint";
    case RejectReason::kCyclicSchedule: return "published schedule graph is cyclic";
    case RejectReason::kBadSerialOrder: return "published serial order is not a topological sort";
    case RejectReason::kProfileMismatch: return "replay trace differs from published lock profile";
    case RejectReason::kStatusMismatch: return "replayed statuses differ from block";
    case RejectReason::kStateRootMismatch: return "replayed state root differs from header";
  }
  return "?";
}

Validator::Validator(vm::World& world, ValidatorConfig config)
    : config_(config), engine_(world, config.engine()), pool_(config.threads) {}

bool Validator::structural_checks(const chain::Block& block, ValidationReport& report) const {
  const auto fail = [&report](RejectReason reason, std::string detail) {
    report.ok = false;
    report.reason = reason;
    report.detail = std::move(detail);
    return false;
  };

  if (!block.commitments_consistent()) {
    return fail(RejectReason::kBadCommitments, "tx/status/schedule roots");
  }

  const std::size_t n = block.transactions.size();
  const auto& schedule = block.schedule;
  if (schedule.profiles.size() != n) {
    return fail(RejectReason::kMalformedSchedule, "profile count != transaction count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (schedule.profiles[i].tx != i) {
      return fail(RejectReason::kMalformedSchedule, "profiles not indexed by transaction");
    }
  }
  for (const auto& [u, v] : schedule.edges) {
    if (u >= n || v >= n || u == v) {
      return fail(RejectReason::kMalformedSchedule, "edge endpoint out of range");
    }
  }
  // Shard-merged blocks record their lane structure; it must tile the
  // block exactly (empty means single-miner — nothing to check). The
  // lanes never change HOW the block replays, but recovery and re-org
  // tooling trust them to recover the per-shard sub-blocks.
  if (!schedule.shard_lanes.empty()) {
    std::size_t lane_total = 0;
    for (const std::uint32_t count : schedule.shard_lanes) lane_total += count;
    if (lane_total != n) {
      return fail(RejectReason::kMalformedSchedule, "shard lane counts do not tile the block");
    }
  }

  // "Naturally, the validator must be able to check that the proposed
  // schedule really is serializable": the published graph must imply
  // every ordering the profiles' use counters demand, otherwise two
  // conflicting transactions could replay concurrently (a data race).
  const graph::HappensBeforeGraph published = schedule.to_graph(n);
  const graph::HappensBeforeGraph derived = graph::derive_happens_before(schedule.profiles, n);
  if (!published.implies(derived)) {
    return fail(RejectReason::kMissingConstraint, "profile-derived edge not covered");
  }
  if (!published.is_acyclic()) {
    return fail(RejectReason::kCyclicSchedule, "cycle in published edges");
  }
  if (!published.is_topological_order(schedule.serial_order)) {
    return fail(RejectReason::kBadSerialOrder, "serial order inconsistent with graph");
  }
  return true;
}

ValidationReport Validator::validate_parallel(const chain::Block& block) {
  ValidationReport report;
  if (!structural_checks(block, report)) return report;

  const std::size_t n = block.transactions.size();
  const graph::HappensBeforeGraph published = block.schedule.to_graph(n);

  std::vector<std::vector<std::uint32_t>> preds(n);
  std::vector<std::vector<std::uint32_t>> succs(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    preds[i] = published.predecessors(i);
    succs[i] = published.successors(i);
  }

  std::vector<vm::TxStatus> statuses(n, vm::TxStatus::kSuccess);
  std::atomic<bool> profile_mismatch{false};
  std::atomic<bool> task_failed{false};

  // Algorithm 2: each transaction's task joins its happens-before
  // predecessors (dependency counting in the pool) and then re-executes
  // the transaction, recording thread-locally the locks it would have
  // acquired.
  pool_.run_dag(n, preds, succs, [&](std::uint32_t i) {
    try {
      vm::TraceRecorder trace;
      statuses[i] = engine_.execute_traced(block.transactions[i], trace);
      const stm::LockProfile& expected = block.schedule.profiles[i];
      const bool reverted = statuses[i] != vm::TxStatus::kSuccess;
      if (!trace.matches(expected) || expected.reverted != reverted) {
        profile_mismatch.store(true, std::memory_order_relaxed);
      }
    } catch (...) {
      task_failed.store(true, std::memory_order_relaxed);
    }
  });
  report.replayed = n;
  report.steals = pool_.steal_count();

  if (task_failed.load()) {
    report.reason = RejectReason::kProfileMismatch;
    report.detail = "replay task raised an unexpected error";
    return report;
  }
  // "At the end of the execution, the validator's VM compares the traces
  // it generated with the lock profiles provided by the miner. If they
  // differ, the block is rejected."
  if (profile_mismatch.load()) {
    report.reason = RejectReason::kProfileMismatch;
    report.detail = "lock trace/profile divergence";
    return report;
  }
  if (statuses != block.statuses) {
    report.reason = RejectReason::kStatusMismatch;
    report.detail = "transaction outcome divergence";
    return report;
  }
  if (engine_.world().state_root() != block.header.state_root) {
    report.reason = RejectReason::kStateRootMismatch;
    report.detail = "final state divergence";
    return report;
  }
  report.ok = true;
  return report;
}

ValidationReport Validator::validate_serial(const chain::Block& block) {
  ValidationReport report;
  if (!structural_checks(block, report)) return report;

  const std::size_t n = block.transactions.size();
  std::vector<vm::TxStatus> statuses(n, vm::TxStatus::kSuccess);
  // Serial re-execution follows the published equivalent serial order S,
  // exactly as pre-paper validators re-run the block's transactions "in
  // block-order".
  for (const std::uint32_t i : block.schedule.serial_order) {
    statuses[i] = engine_.execute_serial(block.transactions[i]);
  }
  report.replayed = n;

  if (statuses != block.statuses) {
    report.reason = RejectReason::kStatusMismatch;
    report.detail = "transaction outcome divergence (serial)";
    return report;
  }
  if (engine_.world().state_root() != block.header.state_root) {
    report.reason = RejectReason::kStateRootMismatch;
    report.detail = "final state divergence (serial)";
    return report;
  }
  report.ok = true;
  return report;
}

}  // namespace concord::core
