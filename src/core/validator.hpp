#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "chain/block.hpp"
#include "core/execution_engine.hpp"
#include "sched/fork_join.hpp"
#include "vm/gas.hpp"
#include "vm/world.hpp"

namespace concord::core {

/// Why a block was rejected. Ordered roughly by how early in validation
/// the check runs.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kBadCommitments,      ///< Header does not commit to the body it carries.
  kMalformedSchedule,   ///< Profile indices / edge endpoints out of range.
  kMissingConstraint,   ///< Published graph doesn't imply a profile-derived edge
                        ///< (the "schedule has a data race" case of §5).
  kCyclicSchedule,      ///< Published graph is not a DAG.
  kBadSerialOrder,      ///< Published S is not a topological sort of H.
  kProfileMismatch,     ///< Replay trace differs from a published profile.
  kStatusMismatch,      ///< Replayed tx outcomes differ from the block's.
  kStateRootMismatch,   ///< Replayed final state differs from the header.
};

[[nodiscard]] std::string_view to_string(RejectReason reason) noexcept;

/// Outcome of validating one block.
struct ValidationReport {
  bool ok = false;
  RejectReason reason = RejectReason::kNone;
  std::string detail;            ///< Human-readable specifics (first failure).
  std::uint64_t replayed = 0;    ///< Transactions re-executed.
  std::uint64_t steals = 0;      ///< Work-stealing steals during replay.
};

/// Validator tuning knobs.
struct ValidatorConfig {
  unsigned threads = 3;  ///< Matches the paper's evaluation setup.
  double nanos_per_gas = vm::GasMeter::kDefaultNanosPerGas;
  /// Must match the mining-side MinerConfig::exclusive_locks_only.
  bool exclusive_locks_only = false;

  /// The execution-side subset, shared verbatim with the Miner so both
  /// stages run on the same ExecutionEngine semantics.
  [[nodiscard]] ExecutionConfig engine() const noexcept {
    return ExecutionConfig{nanos_per_gas, exclusive_locks_only};
  }
};

/// The paper's validator (§4 / Algorithm 2).
///
/// validate_parallel() turns the published happens-before graph into a
/// deterministic fork-join program on a work-stealing pool: each
/// transaction replays (no abstract locks, no conflict detection, no
/// rollback machinery) once all of its graph predecessors finish, while a
/// thread-local TraceRecorder captures the locks it *would* have taken.
/// The block is accepted only if (1) the published graph implies every
/// constraint derivable from the published profiles, (2) it is acyclic
/// and the published serial order is one of its topological sorts,
/// (3) every replay trace matches its published profile, (4) the replayed
/// status vector matches, and (5) the final state root matches.
///
/// validate_serial() is the pre-paper behaviour: re-execute in the serial
/// order and compare outcomes — the correctness oracle for tests and the
/// baseline for benches.
///
/// Both methods mutate the world to the post-block state when they reach
/// the re-execution stage; the caller provides a world positioned at the
/// parent state (and owns rebuilding it if validation fails mid-way).
class Validator {
 public:
  explicit Validator(vm::World& world, ValidatorConfig config = {});

  [[nodiscard]] ValidationReport validate_parallel(const chain::Block& block);

  [[nodiscard]] ValidationReport validate_serial(const chain::Block& block);

  /// Resumable-from-snapshot entry point: re-points the validator at
  /// `world`. A failed validation leaves the replica dirty (replay
  /// mutates it up to the point of divergence — or all the way, when
  /// only the published root was wrong), so re-org recovery materializes
  /// a fresh world from the rejected block's pre-state snapshot and
  /// resumes here. Must not be called while validating.
  void resume_from(vm::World& world) noexcept { engine_.rebind(world); }

  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }

 private:
  /// Checks everything that does not require re-execution. Returns true
  /// when `report` is still clean.
  bool structural_checks(const chain::Block& block, ValidationReport& report) const;

  ValidatorConfig config_;
  ExecutionEngine engine_;
  sched::ForkJoinPool pool_;
};

}  // namespace concord::core
