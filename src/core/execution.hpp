#pragma once

#include "chain/transaction.hpp"
#include "vm/exec_context.hpp"
#include "vm/runner.hpp"
#include "vm/world.hpp"

namespace concord::core {

/// Executes one on-chain transaction against `world` inside `ctx`,
/// resolving the target contract. A transaction addressed to a
/// non-existent contract is a deterministic revert that performs no
/// storage operations (so it replays identically everywhere).
///
/// In speculative mode, finishing the attempt (commit / publish profile /
/// release locks) remains the caller's responsibility; see vm::run_call.
[[nodiscard]] inline vm::TxStatus execute_transaction(vm::World& world,
                                                      const chain::Transaction& tx,
                                                      vm::ExecContext& ctx) {
  vm::Contract* contract = world.contracts().find(tx.contract);
  if (contract == nullptr) return vm::TxStatus::kReverted;
  return vm::run_call(*contract, tx.to_call(), tx.to_msg(), ctx);
}

}  // namespace concord::core
