#include "core/execution_engine.hpp"

#include <stdexcept>

#include "core/execution.hpp"
#include "stm/conflict.hpp"
#include "stm/speculative_action.hpp"
#include "vm/exec_context.hpp"

namespace concord::core {

vm::TxStatus ExecutionEngine::execute_serial(const chain::Transaction& tx) {
  vm::ExecContext ctx = vm::ExecContext::serial(*world_, meter_for(tx));
  ctx.set_exclusive_locks_only(config_.exclusive_locks_only);
  return execute_transaction(*world_, tx, ctx);
}

vm::TxStatus ExecutionEngine::execute_traced(const chain::Transaction& tx,
                                             vm::TraceRecorder& trace,
                                             stm::AccessRecorder* access_log) {
  vm::ExecContext ctx = vm::ExecContext::replay(*world_, trace, meter_for(tx));
  ctx.set_exclusive_locks_only(config_.exclusive_locks_only);
  ctx.set_access_recorder(access_log);
  return execute_transaction(*world_, tx, ctx);
}

SpeculativeOutcome ExecutionEngine::execute_speculative(stm::BoostingRuntime& runtime,
                                                        std::uint32_t tx_index,
                                                        const chain::Transaction& tx,
                                                        std::size_t max_attempts,
                                                        stm::AccessRecorder* access_log) {
  SpeculativeOutcome outcome;
  const std::uint64_t birth = runtime.next_birth();
  for (std::size_t attempt = 1;; ++attempt) {
    ++outcome.attempts;
    // Aborted attempts leave behind events describing executions that
    // were undone; only the final attempt's stream reaches analysis.
    if (access_log != nullptr) access_log->clear();
    stm::SpeculativeAction action(runtime, tx_index, birth);
    vm::ExecContext ctx = vm::ExecContext::speculative(*world_, runtime, action, meter_for(tx));
    ctx.set_exclusive_locks_only(config_.exclusive_locks_only);
    ctx.set_access_recorder(access_log);
    try {
      outcome.status = execute_transaction(*world_, tx, ctx);
      outcome.profile = action.commit(/*reverted=*/outcome.status != vm::TxStatus::kSuccess);
      return outcome;
    } catch (const stm::ConflictAbort&) {
      // The action's destructor already undid its effects and released its
      // locks; re-execute with the same birth stamp (see doc comment).
      ++outcome.aborts;
      if (attempt >= max_attempts) {
        throw std::runtime_error("speculative retry budget exhausted (livelock?)");
      }
    }
  }
}

}  // namespace concord::core
