#pragma once

#include <cstddef>
#include <cstdint>

#include "chain/transaction.hpp"
#include "stm/access_log.hpp"
#include "stm/lock_profile.hpp"
#include "stm/runtime.hpp"
#include "vm/gas.hpp"
#include "vm/runner.hpp"
#include "vm/trace.hpp"
#include "vm/world.hpp"

namespace concord::core {

/// Execution knobs shared by everything that runs transactions — the
/// miner, the validator and the node pipeline all derive their engine
/// from the same two values, which is what guarantees a block mined on
/// one side replays identically on the other.
struct ExecutionConfig {
  /// Wall-clock weight of gas (see vm::GasMeter); benches override this
  /// to scale per-transaction work.
  double nanos_per_gas = vm::GasMeter::kDefaultNanosPerGas;
  /// Ablation: strictly-exclusive abstract locks (no READ/INCREMENT
  /// sharing). Mining and validation must agree on this flag, since it
  /// changes published profiles. See bench_ablation_modes.
  bool exclusive_locks_only = false;
};

/// Outcome of running one transaction speculatively to completion,
/// including the retries its conflict aborts cost.
struct SpeculativeOutcome {
  stm::LockProfile profile;
  vm::TxStatus status = vm::TxStatus::kSuccess;
  std::uint64_t attempts = 0;  ///< Total attempts, including the final one.
  std::uint64_t aborts = 0;    ///< Attempts that rolled back and retried.
};

/// The execute side shared by Miner and Validator: world access, gas
/// metering, ExecContext construction and per-mode status collection live
/// here exactly once. The miner layers speculation bookkeeping (thread
/// pool, happens-before assembly) on top; the validator layers the
/// compare side (trace/profile equivalence, root checks); the node
/// pipeline builds both stages from one config.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(vm::World& world, ExecutionConfig config = {}) noexcept
      : world_(&world), config_(config) {}

  [[nodiscard]] vm::World& world() const noexcept { return *world_; }
  [[nodiscard]] const ExecutionConfig& config() const noexcept { return config_; }

  /// Re-points the engine at a different world, config unchanged — the
  /// re-org recovery path: after a rejected block invalidates a stage's
  /// state, the node materializes a fresh world from the last accepted
  /// boundary snapshot (a COW fork sharing the frozen pages — O(contracts),
  /// so rebinding after a re-org is cheap at any state size) and the
  /// stage resumes on it. Must not be called while a transaction is
  /// executing.
  void rebind(vm::World& world) noexcept { world_ = &world; }

  /// Plain serial execution: storage ops go straight to data, no capture.
  /// The paper's §7 baseline and the serial validator's replay mode.
  vm::TxStatus execute_serial(const chain::Transaction& tx);

  /// Deterministic replay: no locks, no conflict detection, but `trace`
  /// records the abstract locks the transaction *would* have acquired
  /// (paper §4). Used by the parallel validator and the serial miner.
  /// `access_log`, when non-null, receives the transaction's ConcordSan
  /// declare/access event stream.
  vm::TxStatus execute_traced(const chain::Transaction& tx, vm::TraceRecorder& trace,
                              stm::AccessRecorder* access_log = nullptr);

  /// Speculative execution with the paper's retry loop (§3): acquire
  /// abstract locks through `runtime`, and on ConflictAbort re-execute
  /// with the same birth stamp so repeated victims age into deadlock
  /// immunity. Throws when `max_attempts` is exhausted (livelock guard).
  /// Safe to call concurrently from pool threads — all mutable state is
  /// per-call. `access_log`, when non-null, receives the ConcordSan event
  /// stream; it is cleared at every retry so only the final (committing)
  /// attempt's events survive into analysis.
  SpeculativeOutcome execute_speculative(stm::BoostingRuntime& runtime, std::uint32_t tx_index,
                                         const chain::Transaction& tx, std::size_t max_attempts,
                                         stm::AccessRecorder* access_log = nullptr);

 private:
  [[nodiscard]] vm::GasMeter meter_for(const chain::Transaction& tx) const noexcept {
    return vm::GasMeter(tx.gas_limit, config_.nanos_per_gas);
  }

  vm::World* world_;
  ExecutionConfig config_;
};

}  // namespace concord::core
