#include "core/miner.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "graph/happens_before.hpp"
#include "vm/trace.hpp"

namespace concord::core {

Miner::Miner(vm::World& world, MinerConfig config)
    : config_(config), engine_(world, config.engine()), pool_(config.threads) {
  if (config_.lock_table_reserve > 0) runtime_.locks().reserve(config_.lock_table_reserve);
}

void Miner::bind_arena_stripe() {
  if (affinity_width_ == 0) return;
  // One bind per (thread, miner): pool workers live as long as the miner,
  // so after the first task this is a single thread_local compare. Lane
  // orchestration threads are fresh per block and re-bind each time —
  // the cursor keeps rotating them through the miner's stripe slice.
  static thread_local const Miner* bound_for = nullptr;
  static thread_local unsigned bound_value = 0;
  if (bound_for != this) {
    bound_for = this;
    bound_value =
        affinity_base_ + affinity_cursor_.fetch_add(1, std::memory_order_relaxed) % affinity_width_;
  }
  vm::PageArena::bind_thread_stripe(bound_value);
}

void Miner::run_speculative(const std::vector<chain::Transaction>& txs,
                            std::vector<stm::LockProfile>& profiles,
                            std::vector<vm::TxStatus>& statuses,
                            std::vector<stm::AccessRecorder>& logs) {
  const auto n = static_cast<std::uint32_t>(txs.size());
  bind_arena_stripe();  // The orchestrating thread assembles/seals here too.
  runtime_.reset();  // "When a miner starts a block, it sets these counters to zero."
  stats_ = MinerStats{};
  stats_.transactions = n;
  {
    std::scoped_lock lk(error_mu_);
    worker_error_.clear();
  }

  profiles.assign(n, stm::LockProfile{});
  statuses.assign(n, vm::TxStatus::kSuccess);
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> aborts{0};

  // ConcordSan logs, one per transaction. Pool workers write only their
  // own slot, so the preallocated vector needs no synchronization.
  logs.clear();
  logs.resize(config_.detect ? n : 0);

  for (std::uint32_t i = 0; i < n; ++i) {
    pool_.submit([this, i, &txs, &profiles, &statuses, &attempts, &aborts, &logs] {
      // Pool tasks must not throw: capture harness failures for rethrow.
      try {
        bind_arena_stripe();
        SpeculativeOutcome outcome =
            engine_.execute_speculative(runtime_, i, txs[i], config_.max_attempts,
                                        logs.empty() ? nullptr : &logs[i]);
        profiles[i] = std::move(outcome.profile);
        statuses[i] = outcome.status;
        attempts.fetch_add(outcome.attempts, std::memory_order_relaxed);
        aborts.fetch_add(outcome.aborts, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        std::scoped_lock lk(error_mu_);
        if (worker_error_.empty()) worker_error_ = e.what();
      }
    });
  }
  pool_.wait_idle();

  {
    std::scoped_lock lk(error_mu_);
    if (!worker_error_.empty()) throw std::runtime_error("miner worker failed: " + worker_error_);
  }

  stats_.attempts = attempts.load(std::memory_order_relaxed);
  stats_.conflict_aborts = aborts.load(std::memory_order_relaxed);
  stats_.deadlock_victims = runtime_.deadlocks().victims();
  stats_.lock_table_size = runtime_.locks().size();
  stats_.lock_table_high_water = runtime_.locks().high_water();
  stats_.lock_table_bucket_count = runtime_.locks().bucket_count();
  stats_.lock_table_memory_bytes = runtime_.locks().approx_memory_bytes();
  stats_.lock_table_memory_high_water = runtime_.locks().memory_high_water();
}

void Miner::run_serial(const std::vector<chain::Transaction>& txs,
                       std::vector<stm::LockProfile>& profiles,
                       std::vector<vm::TxStatus>& statuses,
                       std::vector<stm::AccessRecorder>& logs) {
  const auto n = static_cast<std::uint32_t>(txs.size());
  bind_arena_stripe();
  stats_ = MinerStats{};
  stats_.transactions = n;
  stats_.attempts = n;

  profiles.assign(n, stm::LockProfile{});
  statuses.assign(n, vm::TxStatus::kSuccess);
  logs.clear();
  logs.resize(config_.detect ? n : 0);
  // Synthetic use counters: serial execution *is* a lock-acquisition
  // order, so number each lock's holders 1, 2, 3… in block order.
  std::unordered_map<stm::LockId, std::uint64_t, stm::LockIdHash> counters;

  for (std::uint32_t i = 0; i < n; ++i) {
    vm::TraceRecorder trace;
    statuses[i] = engine_.execute_traced(txs[i], trace, logs.empty() ? nullptr : &logs[i]);

    stm::LockProfile& profile = profiles[i];
    profile.tx = i;
    profile.reverted = statuses[i] != vm::TxStatus::kSuccess;
    for (const auto& [lock, mode] : trace.canonical()) {
      profile.entries.push_back(stm::LockProfileEntry{lock, mode, ++counters[lock]});
    }
  }
}

chain::Block Miner::mine(const std::vector<chain::Transaction>& txs, const chain::Block& parent) {
  std::vector<stm::LockProfile> profiles;
  std::vector<vm::TxStatus> statuses;
  std::vector<stm::AccessRecorder> logs;
  run_speculative(txs, profiles, statuses, logs);
  chain::Block block = assemble(txs, std::move(statuses), std::move(profiles), parent);
  run_detect(block, logs);
  return block;
}

chain::Block Miner::mine_serial(const std::vector<chain::Transaction>& txs,
                                const chain::Block& parent) {
  std::vector<stm::LockProfile> profiles;
  std::vector<vm::TxStatus> statuses;
  std::vector<stm::AccessRecorder> logs;
  run_serial(txs, profiles, statuses, logs);
  chain::Block block = assemble(txs, std::move(statuses), std::move(profiles), parent);
  run_detect(block, logs);
  return block;
}

Miner::LaneResult Miner::mine_lane(const std::vector<chain::Transaction>& txs) {
  std::vector<stm::LockProfile> profiles;
  std::vector<vm::TxStatus> statuses;
  std::vector<stm::AccessRecorder> logs;
  run_speculative(txs, profiles, statuses, logs);

  // Re-sort the lane into its derived schedule's serial order, so the
  // published lane order is a topological order of the lane's own graph
  // (chain::merge_shards's stated precondition). Counters are left
  // untouched — the per-lock holder sequence is a property of the
  // execution, not of the labeling — and profile.tx is remapped to the
  // new position, which relabels the derived graph without changing it.
  const std::size_t n = txs.size();
  const graph::HappensBeforeGraph hb = graph::derive_happens_before(profiles, n);
  auto order = hb.topological_order();
  if (!order) throw std::logic_error("derived happens-before graph is cyclic");

  LaneResult result;
  result.lane.transactions.reserve(n);
  result.lane.statuses.reserve(n);
  result.lane.profiles.reserve(n);
  if (!logs.empty()) result.logs.reserve(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t i = (*order)[pos];
    result.lane.transactions.push_back(txs[i]);
    result.lane.statuses.push_back(statuses[i]);
    stm::LockProfile profile = std::move(profiles[i]);
    profile.tx = static_cast<std::uint32_t>(pos);
    result.lane.profiles.push_back(std::move(profile));
    if (!logs.empty()) result.logs.push_back(std::move(logs[i]));
  }
  return result;
}

Miner::LaneResult Miner::mine_lane_serial(const std::vector<chain::Transaction>& txs) {
  LaneResult result;
  std::vector<stm::LockProfile> profiles;
  std::vector<vm::TxStatus> statuses;
  run_serial(txs, profiles, statuses, result.logs);
  result.lane.transactions = txs;
  result.lane.statuses = std::move(statuses);
  result.lane.profiles = std::move(profiles);
  return result;
}

chain::Block Miner::seal_merged(chain::ShardMergeResult merged,
                                std::vector<stm::AccessRecorder> lane0_logs,
                                const chain::Block& parent) {
  const std::size_t n = merged.transactions.size();
  std::vector<stm::AccessRecorder> logs(config_.detect ? n : 0);

  // Merged order is lane-concatenated, so this loop replays lane 1's
  // winners, then lane 2's, … serially on the primary world — lane 0's
  // effects are already here from its own lane execution.
  for (std::size_t m = 0; m < n; ++m) {
    const chain::ShardOrigin origin = merged.origins[m];
    if (origin.lane == 0) {
      if (!logs.empty() && origin.local < lane0_logs.size()) {
        logs[m] = std::move(lane0_logs[origin.local]);
      }
      continue;
    }
    vm::TraceRecorder trace;
    const vm::TxStatus status = engine_.execute_traced(merged.transactions[m], trace,
                                                       logs.empty() ? nullptr : &logs[m]);
    if (status != merged.statuses[m] || !trace.matches(merged.profiles[m])) {
      // Arbitration promises replay equivalence; divergence means the
      // conflict relation (or the merge) is broken, not the workload.
      throw std::logic_error("shard-merge replay diverged from its lane execution");
    }
  }

  // Note: stats_ is NOT reset here — it still holds this miner's lane-0
  // execution counters; assemble() adds the block-level fields on top.
  chain::Block block = assemble(merged.transactions, std::move(merged.statuses),
                                std::move(merged.profiles), parent,
                                std::move(merged.lane_counts));
  run_detect(block, logs);
  return block;
}

void Miner::run_detect(const chain::Block& block, std::span<const stm::AccessRecorder> logs) {
  detect_report_ = detect::DetectReport{};
  if (!config_.detect) return;
  detect_report_ = detect::analyze_block(block, logs);
  stats_.detect_violations = detect_report_.total_violations();
  if (!detect_report_.clean()) {
    // CI's detect lane sets CONCORD_DETECT_REPORT_DIR and uploads
    // whatever lands there as the failure artifact; a no-op otherwise.
    (void)detect::write_report_artifact(
        detect_report_,
        "detect_block" + std::to_string(block.header.number));
  }
}

void Miner::resume_from(vm::World& world) {
  engine_.rebind(world);
  runtime_.reset();
}

std::vector<vm::TxStatus> Miner::execute_serial_baseline(
    const std::vector<chain::Transaction>& txs) {
  std::vector<vm::TxStatus> statuses;
  statuses.reserve(txs.size());
  for (const auto& tx : txs) {
    statuses.push_back(engine_.execute_serial(tx));
  }
  return statuses;
}

chain::Block Miner::assemble(const std::vector<chain::Transaction>& txs,
                             std::vector<vm::TxStatus> statuses,
                             std::vector<stm::LockProfile> profiles, const chain::Block& parent,
                             std::vector<std::uint32_t> shard_lanes) {
  const std::size_t n = txs.size();
  const graph::HappensBeforeGraph hb = graph::derive_happens_before(profiles, n);
  auto order = hb.topological_order();
  if (!order) {
    // Strict two-phase locking makes commit order consistent across
    // locks; a cycle here means an STM invariant broke.
    throw std::logic_error("derived happens-before graph is cyclic");
  }

  chain::Block block;
  block.transactions = txs;
  block.statuses = std::move(statuses);
  block.schedule.profiles = std::move(profiles);
  block.schedule.edges = hb.edges();
  block.schedule.serial_order = std::move(*order);
  block.schedule.shard_lanes = std::move(shard_lanes);

  block.header.number = parent.header.number + 1;
  block.header.parent_hash = parent.hash();
  {
    const auto begin = std::chrono::steady_clock::now();
    block.header.state_root = engine_.world().state_root();
    stats_.state_root_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin)
            .count();
  }
  block.header.tx_root = block.compute_tx_root();
  block.header.status_root = block.compute_status_root();
  block.header.schedule_hash = block.schedule.hash();

  stats_.schedule_bytes = block.schedule.encoded_size();
  stats_.arena = engine_.world().arena_stats();
  return block;
}

}  // namespace concord::core
