#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "chain/transaction.hpp"
#include "vm/world.hpp"

namespace concord::core {

/// Tuning for the MVCC read path (Node's query_* endpoints and anything
/// else serving frozen snapshots). One config serves every query a node
/// answers, so the cap is the node operator's DoS bound, not the
/// client's gas offer.
struct QueryConfig {
  /// Hard per-query gas budget. Call-shaped queries additionally respect
  /// the transaction's own gas_limit (the effective cap is the minimum).
  std::uint64_t gas_cap = 2'000'000;
  /// Wall-clock weight of query gas (see vm::GasMeter). 0 — the default —
  /// meters without burning: queries are bounded by the cap but cost
  /// only what their reads cost, which is the point of serving them off
  /// frozen COW snapshots. Benches raise this to model interpreters.
  double nanos_per_gas = 0.0;
};

/// Deterministic outcome class of one query.
enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kReverted,  ///< Contract raised a revert (or the target doesn't exist).
  kOutOfGas,  ///< The per-query gas cap ran out.
  /// The query tried to mutate state (a mutating selector through the
  /// read path, or a view path that writes). Hard-rejected before any
  /// physical write — the snapshot is untouched.
  kMutationRejected,
};

[[nodiscard]] constexpr std::string_view to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kReverted: return "reverted";
    case QueryStatus::kOutOfGas: return "out-of-gas";
    case QueryStatus::kMutationRejected: return "mutation-rejected";
  }
  return "?";
}

struct QueryOutcome {
  QueryStatus status = QueryStatus::kOk;
  std::uint64_t gas_used = 0;
};

/// A caller-shaped read: gets the frozen world and a read-only
/// ExecContext, reads values out through captures. Throwing RevertError
/// maps to kReverted; mutating anything maps to kMutationRejected.
using QueryFn = std::function<void(const vm::World&, vm::ExecContext&)>;

/// Runs `fn` read-only against the frozen world behind `snapshot` under
/// `config`'s gas cap. The context rejects every state mutation and lock
/// declaration before data is touched (vm::ExecMode::kReadOnly), so any
/// number of queries may run concurrently against one snapshot — and
/// concurrently with the miner, which only ever writes its own detached
/// COW pages. Throws std::logic_error when the snapshot handle is
/// invalid; everything a *query* can do wrong comes back as a status.
QueryOutcome run_query(const vm::WorldSnapshot& snapshot, const QueryConfig& config,
                       const QueryFn& fn);

/// Call-shaped flavor: executes `tx`'s call on its target contract in
/// the frozen world — "balance of X as of block N" as a Token::balanceOf
/// call instead of a hand-rolled read. The transaction is never part of
/// any block; its gas_limit only tightens the cap.
QueryOutcome run_query_call(const vm::WorldSnapshot& snapshot, const QueryConfig& config,
                            const chain::Transaction& tx);

}  // namespace concord::core
