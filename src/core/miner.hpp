#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "chain/block.hpp"
#include "chain/shard_merge.hpp"
#include "chain/transaction.hpp"
#include "core/execution_engine.hpp"
#include "detect/detect.hpp"
#include "sched/thread_pool.hpp"
#include "stm/runtime.hpp"
#include "vm/gas.hpp"
#include "vm/world.hpp"

namespace concord::core {

/// Miner tuning knobs.
struct MinerConfig {
  /// Speculative worker threads. The paper uses 3 ("a fixed pool of three
  /// threads, leaving one core available for garbage collection and other
  /// system processes").
  unsigned threads = 3;
  /// Wall-clock weight of gas (see vm::GasMeter); benches override this to
  /// scale per-transaction work.
  double nanos_per_gas = vm::GasMeter::kDefaultNanosPerGas;
  /// Safety valve: attempts per transaction before declaring livelock.
  /// Deadlock-victim aging makes hitting this a bug, not a workload
  /// property.
  std::size_t max_attempts = 1'000;
  /// Workload hint: expected distinct abstract-lock ids, pre-bucketing
  /// the lock table at construction (LockTable::reserve). 0 = no hint.
  /// The Zipfian large-state benches seed this from the account count.
  std::size_t lock_table_reserve = 0;
  /// Ablation: strictly-exclusive abstract locks (no READ/INCREMENT
  /// sharing). Blocks mined this way must be validated with the same
  /// setting. See bench_ablation_modes.
  bool exclusive_locks_only = false;
  /// ConcordSan: record per-transaction access logs during mining and run
  /// the lockset checker plus the schedule-soundness oracle on every
  /// mined block (see detect/detect.hpp). Off by default — the release
  /// hot path then pays one untaken null test per storage op. Building
  /// with -DCONCORD_DETECT=ON flips the default, giving a tree whose
  /// every test and bench runs instrumented.
#ifdef CONCORD_DETECT
  bool detect = true;
#else
  bool detect = false;
#endif

  /// The execution-side subset, shared verbatim with the Validator so
  /// both stages run on the same ExecutionEngine semantics.
  [[nodiscard]] ExecutionConfig engine() const noexcept {
    return ExecutionConfig{nanos_per_gas, exclusive_locks_only};
  }
};

/// Counters describing one mining run.
struct MinerStats {
  std::uint64_t transactions = 0;
  std::uint64_t attempts = 0;          ///< Total speculative attempts (≥ transactions).
  std::uint64_t conflict_aborts = 0;   ///< Attempts that rolled back and retried.
  std::uint64_t deadlock_victims = 0;  ///< Aborts initiated by the deadlock detector.
  std::size_t schedule_bytes = 0;      ///< Serialized size of the published schedule.
  /// Lock-table working set at end of this block's mining. The recycling
  /// LockTable::reset() retains nodes across blocks, so this is the
  /// cumulative retained set, not just the locks this block touched.
  std::size_t lock_table_size = 0;
  std::size_t lock_table_high_water = 0;  ///< Max table size over the miner's lifetime.
  std::size_t lock_table_bucket_count = 0;     ///< Hash buckets across stripes.
  std::size_t lock_table_memory_bytes = 0;     ///< LockTable::approx_memory_bytes now.
  std::size_t lock_table_memory_high_water = 0;  ///< Max of the above at boundaries.
  /// Arena counters of the mined world's lineage (all zero when the
  /// world runs the heap baseline). Snapshot at block assembly.
  vm::ArenaStats arena;
  /// Time computing the block's state root during assembly. O(state),
  /// not O(block): at million-account scale it dominates mine() wall
  /// time, so benches that study the execution/state layer subtract it.
  double state_root_ms = 0.0;
  /// ConcordSan violations found in this block (lockset + soundness);
  /// always 0 when MinerConfig::detect is off. Details live in
  /// Miner::last_detect_report().
  std::uint64_t detect_violations = 0;
};

/// The paper's miner. mine() implements Algorithm 1: execute the block's
/// transactions as speculative actions on a thread pool, record lock
/// profiles, derive the happens-before graph, topologically sort it into
/// the equivalent serial order, and publish everything in the block.
///
/// mine_serial() is the serial miner: it executes transactions one at a
/// time in block order (no locks, no speculation) and publishes the
/// trivially-correct sequential schedule — the paper's §4 aside about a
/// miner that publishes "a correct sequential schedule equivalent to, but
/// slower than its actual parallel schedule" made honest.
///
/// execute_serial_baseline() is the undecorated serial execution used as
/// the speedup baseline in §7 (no schedule capture at all).
class Miner {
 public:
  explicit Miner(vm::World& world, MinerConfig config = {});

  /// Speculative parallel mining (Algorithm 1). Mutates the world to the
  /// post-block state and returns the block extending `parent`.
  [[nodiscard]] chain::Block mine(const std::vector<chain::Transaction>& txs,
                                  const chain::Block& parent);

  /// Serial mining with schedule capture (one thread, no speculation).
  [[nodiscard]] chain::Block mine_serial(const std::vector<chain::Transaction>& txs,
                                         const chain::Block& parent);

  /// One shard's contribution to a merged block: the lane body in its
  /// schedule's serial order (so the lane order IS a topological order of
  /// the lane's own happens-before graph, the precondition
  /// chain::merge_shards states), plus the ConcordSan access logs when
  /// detect is on. The caller stamps `lane.shard`.
  struct LaneResult {
    chain::ShardLane lane;
    std::vector<stm::AccessRecorder> logs;  ///< Aligned with lane order; empty unless detect.
  };

  /// Speculative lane mining: Algorithm 1 without block assembly. Runs
  /// `txs` through the speculative pool on this miner's world (a fork of
  /// the block boundary for shard lanes ≥ 1), then re-sorts the outcome
  /// into the derived schedule's serial order. No state root, no header
  /// — per-lane O(state) work is exactly what the merge layer avoids.
  [[nodiscard]] LaneResult mine_lane(const std::vector<chain::Transaction>& txs);

  /// Serial flavor of mine_lane() (lane order = input order).
  [[nodiscard]] LaneResult mine_lane_serial(const std::vector<chain::Transaction>& txs);

  /// Turns a shard-merge result into the one sealed block, on the miner
  /// that owns the PRIMARY world (lane 0's). Lane-0 winners already
  /// executed here; every other lane's winners are replayed serially in
  /// merged order, and each replay must reproduce the lane execution's
  /// status and lock footprint — arbitration guarantees it (any lower-
  /// lane winner that could change what a higher-lane winner observes
  /// conflicts with it, making it a loser), so divergence is an
  /// invariant violation (throws std::logic_error). `lane0_logs` are the
  /// primary lane's ConcordSan logs (moved into the merged log vector);
  /// replayed lanes are re-logged during replay. The assembled schedule
  /// carries the merged lane_counts as BlockSchedule::shard_lanes.
  [[nodiscard]] chain::Block seal_merged(chain::ShardMergeResult merged,
                                         std::vector<stm::AccessRecorder> lane0_logs,
                                         const chain::Block& parent);

  /// Plain serial execution; returns per-tx statuses. The §7 baseline.
  std::vector<vm::TxStatus> execute_serial_baseline(
      const std::vector<chain::Transaction>& txs);

  /// Resumable-from-snapshot entry point: re-points the miner at `world`
  /// (freshly materialized from the last accepted boundary snapshot
  /// after a rejected block invalidated the speculative suffix) and
  /// clears the boosting runtime — the retained lock working set and
  /// deadlock state describe executions that no longer exist. Must not
  /// be called while mining. The miner's stats (high-water marks
  /// included) survive the resume.
  void resume_from(vm::World& world);

  /// Binds this miner's executing threads (the speculative pool workers
  /// and whatever thread drives the serial/lane path) to a slice of the
  /// world arena's stripes: thread t → stripe (base + t mod width), mod
  /// PageArena::kStripeCount. The node keys this by shard id so
  /// concurrent lane miners recycle pages within their own stripe slice
  /// instead of meeting on shared free lists (surfaced as
  /// ArenaStats::steal_attempts/steal_hits). width 0 — the default —
  /// keeps the process-wide round-robin. Call before mining, not during.
  void set_arena_affinity(unsigned base, unsigned width) noexcept {
    affinity_base_ = base;
    affinity_width_ = width;
  }

  [[nodiscard]] const MinerStats& last_stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }

  /// ConcordSan findings for the last mined block. Empty (clean) when
  /// MinerConfig::detect is off or no block has been mined yet.
  [[nodiscard]] const detect::DetectReport& last_detect_report() const noexcept {
    return detect_report_;
  }

 private:
  /// Shared body of mine()/mine_lane(): speculative pool execution over
  /// `txs`, filling profiles/statuses/logs (logs sized only when detect
  /// is on) and the execution-side stats counters.
  void run_speculative(const std::vector<chain::Transaction>& txs,
                       std::vector<stm::LockProfile>& profiles,
                       std::vector<vm::TxStatus>& statuses,
                       std::vector<stm::AccessRecorder>& logs);

  /// Shared body of mine_serial()/mine_lane_serial(): traced in-order
  /// execution with synthetic use counters.
  void run_serial(const std::vector<chain::Transaction>& txs,
                  std::vector<stm::LockProfile>& profiles,
                  std::vector<vm::TxStatus>& statuses,
                  std::vector<stm::AccessRecorder>& logs);

  /// Builds the block: derives the happens-before graph from `profiles`,
  /// topologically sorts it, snapshots the state root. `shard_lanes` is
  /// the merged-block lane structure (empty for single-miner blocks).
  [[nodiscard]] chain::Block assemble(const std::vector<chain::Transaction>& txs,
                                      std::vector<vm::TxStatus> statuses,
                                      std::vector<stm::LockProfile> profiles,
                                      const chain::Block& parent,
                                      std::vector<std::uint32_t> shard_lanes = {});

  /// Runs ConcordSan over a just-assembled block when detect is on:
  /// populates detect_report_ and stats_.detect_violations.
  void run_detect(const chain::Block& block, std::span<const stm::AccessRecorder> logs);

  /// Applies the arena-affinity plan to the calling thread (no-op when
  /// width is 0 or the thread is already bound for this miner). Cheap
  /// enough to call at every task start: one thread_local compare.
  void bind_arena_stripe();

  MinerConfig config_;
  ExecutionEngine engine_;
  stm::BoostingRuntime runtime_;
  sched::ThreadPool pool_;
  MinerStats stats_;
  detect::DetectReport detect_report_;

  // Arena-affinity plan (see set_arena_affinity): threads binding for
  // this miner take stripes base, base+1, … base+width-1 round-robin.
  unsigned affinity_base_ = 0;
  unsigned affinity_width_ = 0;  ///< 0 = no affinity (global round-robin).
  std::atomic<unsigned> affinity_cursor_{0};

  // Worker-error capture (pool tasks must not throw).
  std::mutex error_mu_;
  std::string worker_error_;
};

}  // namespace concord::core
