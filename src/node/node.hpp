#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "chain/blockchain.hpp"
#include "core/miner.hpp"
#include "core/validator.hpp"
#include "node/mempool.hpp"
#include "vm/world.hpp"

namespace concord::node {

/// How the node's mining stage executes a batch.
enum class MiningMode : std::uint8_t {
  /// Algorithm 1: speculative parallel mining. Fast, but which of two
  /// conflicting transactions commits first depends on thread timing, so
  /// the resulting chain is valid-but-not-reproducible.
  kSpeculative,
  /// Serial mining with schedule capture. Slower, but the chain is a pure
  /// function of the transaction stream — the determinism tests run the
  /// pipeline in this mode and require byte-identical output.
  kSerial,
};

/// Everything the node needs to bring up both stages. The miner and
/// validator configs carry the shared ExecutionConfig; they must agree on
/// exclusive_locks_only (enforced at construction).
struct NodeConfig {
  core::MinerConfig miner;
  core::ValidatorConfig validator;
  BatchPolicy batch;
  std::size_t mempool_capacity = 0;  ///< 0 = unbounded (no producer backpressure).
  bool pipelined = true;             ///< false = mine→validate→append strictly in turn.
  MiningMode mining = MiningMode::kSpeculative;
  std::size_t max_blocks = 0;        ///< 0 = run until the mempool closes and drains.
};

/// Per-stage counters for one run() — the sustained-traffic numbers the
/// one-shot benches cannot produce.
struct NodeStats {
  std::uint64_t blocks = 0;        ///< Blocks mined, validated and appended.
  std::uint64_t transactions = 0;  ///< Transactions across those blocks.
  double wall_ms = 0.0;            ///< run() duration.
  double mine_ms = 0.0;            ///< Total time inside the mining stage.
  double validate_ms = 0.0;        ///< Total time inside the validation stage.
  /// Mining stage blocked on an empty mempool (ingress starvation).
  double mempool_wait_ms = 0.0;
  /// Mining stage blocked handing a block to a still-busy validator — the
  /// pipeline's stall time when validation is the bottleneck.
  double handoff_wait_ms = 0.0;
  /// Validation stage blocked waiting for a mined block — the pipeline's
  /// stall time when mining is the bottleneck.
  double validator_stall_ms = 0.0;

  // Aggregated over every mined block.
  std::uint64_t attempts = 0;
  std::uint64_t conflict_aborts = 0;
  std::uint64_t deadlock_victims = 0;
  std::size_t schedule_bytes = 0;
  std::size_t lock_table_high_water = 0;

  [[nodiscard]] double blocks_per_sec() const noexcept {
    return wall_ms > 0 ? static_cast<double>(blocks) * 1e3 / wall_ms : 0.0;
  }
  /// Sustained throughput: every transaction both mined *and* validated,
  /// over wall time — the honest end-to-end number.
  [[nodiscard]] double tx_per_sec() const noexcept {
    return wall_ms > 0 ? static_cast<double>(transactions) * 1e3 / wall_ms : 0.0;
  }
};

/// A continuously-running node: mempool → speculative miner → overlapped
/// validator, appending to its own chain.
///
/// The node owns ONE genesis world. At construction it freezes a
/// WorldSnapshot of it and derives the validator's private replica from
/// that snapshot — both stages share a single state by construction, so
/// there is no dual-genesis drift to guard against and nothing for
/// callers to keep in sync. The miner's world then advances as it mines:
/// after block N it already holds the post-N state, which *is* the
/// snapshot block N+1 executes against. The validator replays each block
/// against its replica at post-(N−1) state and cross-checks the
/// published state root. With `pipelined`, validation of block N
/// overlaps mining of block N+1 through a depth-1 handoff slot (the
/// two-stage pipeline; the slot bounds speculation so a bad block can't
/// let the miner run arbitrarily far ahead of validation).
///
/// Usage: construct with the genesis world, feed mempool() from any
/// number of producer threads, call run() (blocking), close() the
/// mempool to shut down cleanly. A rejected block stops the node and is
/// reported through ok()/failure().
class Node {
 public:
  /// Takes ownership of the genesis world; the validator's replica is
  /// cloned from it internally. Throws std::invalid_argument when
  /// `world` is null or the miner/validator configs disagree on lock
  /// semantics.
  Node(std::unique_ptr<vm::World> world, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] Mempool& mempool() noexcept { return mempool_; }

  /// The immutable genesis snapshot both stages were derived from — the
  /// seam a depth-k validation ring (re-deriving a validator world after
  /// a re-org) or mid-block read serving will hang off.
  [[nodiscard]] const vm::WorldSnapshot& genesis_snapshot() const noexcept { return genesis_; }

  /// Processes the stream until the mempool closes and drains, max_blocks
  /// is reached, or a block is rejected. Call once; blocking. The mempool
  /// is closed by the time run() returns, so producers never hang.
  void run();

  [[nodiscard]] const chain::Blockchain& chain() const noexcept { return chain_; }

  /// Valid after run() returns.
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

  /// False when run() stopped because validation rejected a block.
  [[nodiscard]] bool ok() const noexcept { return !failure_.has_value(); }
  [[nodiscard]] const core::ValidationReport& failure() const { return failure_.value(); }

 private:
  void run_pipelined();
  void run_sequential();

  /// Mines one batch in the configured mode, folding MinerStats into the
  /// node aggregates. Returns the block extending `parent`.
  [[nodiscard]] chain::Block mine_batch(const std::vector<chain::Transaction>& batch,
                                        const chain::Block& parent);

  /// Validates and appends; on rejection records failure_ and returns
  /// false. `validate_ms` accumulates stage time.
  bool validate_and_append(chain::Block block, double& validate_ms);

  NodeConfig config_;
  std::unique_ptr<vm::World> miner_world_;
  vm::WorldSnapshot genesis_;  ///< Frozen before the miner's world moves.
  std::unique_ptr<vm::World> validator_world_;  ///< genesis_.materialize().
  Mempool mempool_;
  core::Miner miner_;
  core::Validator validator_;
  chain::Blockchain chain_;
  NodeStats stats_;
  std::optional<core::ValidationReport> failure_;
  bool ran_ = false;
};

}  // namespace concord::node
