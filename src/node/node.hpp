#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/miner.hpp"
#include "core/query.hpp"
#include "core/validator.hpp"
#include "detect/detect.hpp"
#include "node/handoff_ring.hpp"
#include "node/mempool.hpp"
#include "node/snapshot_ring.hpp"
#include "vm/world.hpp"

namespace concord::net {
class Peer;  // node.hpp stays light; run_follower's definition includes net/peer.hpp.
}

namespace concord::node {

/// How the node's mining stage executes a batch.
enum class MiningMode : std::uint8_t {
  /// Algorithm 1: speculative parallel mining. Fast, but which of two
  /// conflicting transactions commits first depends on thread timing, so
  /// the resulting chain is valid-but-not-reproducible.
  kSpeculative,
  /// Serial mining with schedule capture. Slower, but the chain is a pure
  /// function of the transaction stream — the determinism tests run the
  /// pipeline in this mode and require byte-identical output.
  kSerial,
};

/// Everything the node needs to bring up both stages. The miner and
/// validator configs carry the shared ExecutionConfig; they must agree on
/// exclusive_locks_only (enforced at construction).
struct NodeConfig {
  core::MinerConfig miner;
  core::ValidatorConfig validator;
  BatchPolicy batch;
  std::size_t mempool_capacity = 0;  ///< 0 = unbounded (no producer backpressure).
  bool pipelined = true;             ///< false = mine→validate→append strictly in turn.
  MiningMode mining = MiningMode::kSpeculative;
  std::size_t max_blocks = 0;        ///< 0 = run until the mempool closes and drains.

  /// Parallel shard miners per block. 1 (the default) is the exact
  /// pre-shard single-miner path — same batches, same blocks, byte for
  /// byte. N > 1 stripes the mempool by the deterministic shard router,
  /// mines each shard's lane concurrently (each lane miner executes on
  /// its own COW fork of the block boundary) and stitches the lanes into
  /// one block through chain::merge_shards — cross-shard conflict losers
  /// are re-queued at the mempool front and counted in NodeStats. Must
  /// be ≥ 1 (enforced at construction).
  std::uint32_t mine_shards = 1;

  /// Capacity of the miner→validator handoff ring: how many mined blocks
  /// may be in flight (handed off but not yet validated) at once, i.e.
  /// how far mining may speculate past validation. 1 = the original
  /// depth-1 slot. Must be ≥ 1 (enforced at construction). Only
  /// meaningful when `pipelined`.
  std::size_t pipeline_depth = 1;

  /// Legacy fatal-rejection contract: stop the node at the first
  /// rejected block instead of recovering. Also skips the per-block
  /// boundary snapshots recovery needs, so a halt-on-rejection node has
  /// zero snapshot overhead per block. With the default (false), a
  /// rejection aborts the speculative suffix, re-materializes both
  /// stages from the last accepted boundary snapshot, and the node keeps
  /// processing the stream (see Node class comment).
  bool halt_on_rejection = false;

  /// Test/chaos seam: invoked on each mined block (miner thread) before
  /// it enters the handoff ring. May mutate the block — e.g. corrupt its
  /// state root — to exercise the rejection/re-org recovery path. Not
  /// part of the consensus surface.
  std::function<void(chain::Block&)> post_mine_hook;

  /// Test seam symmetric to post_mine_hook, on the other stage: invoked
  /// on the validator thread for each block popped off the handoff ring,
  /// before it is validated. Lets tests pin the pipeline's interleaving
  /// (e.g. hold validation of block N until Node::mining_done(), so the
  /// ring fill at a rejection is deterministic instead of a race between
  /// the stages). Not part of the consensus surface.
  std::function<void(const chain::Block&)> pre_validate_hook;

  /// Replication egress: invoked with each block the moment it is
  /// accepted — validated, appended, and (when the read path is on)
  /// published to the snapshot ring. Runs on whichever thread appends
  /// (the validator stage when pipelined), AFTER the block is fully
  /// visible to local readers, so a remote follower can never observe a
  /// block before the leader's own read path does. A blocking hook (a
  /// leader whose followers' inbound rings are full) backpressures the
  /// validation stage — the replication analogue of mempool
  /// backpressure. Install net::Leader::announcer() here.
  std::function<void(const chain::Block&)> on_block_accepted;

  /// MVCC read path: how many ACCEPTED block boundaries stay published
  /// for "as of block N" queries (the SnapshotRing window — see
  /// Node::query_at). 0 disables read serving entirely: no ring, no
  /// per-boundary publish fork, zero overhead on the write path. The
  /// published boundaries are distinct from the recovery snapshots the
  /// pipeline takes (those freeze *pre*-validation state on the miner
  /// thread; these freeze verified state at the append point).
  std::size_t retain_snapshots = 8;

  /// Gas policy applied to every query this node serves.
  core::QueryConfig query;
};

/// Per-stage counters for one run() — the sustained-traffic numbers the
/// one-shot benches cannot produce.
struct NodeStats {
  std::uint64_t blocks = 0;        ///< Blocks mined, validated and appended.
  std::uint64_t transactions = 0;  ///< Transactions across those blocks.
  double wall_ms = 0.0;            ///< run() duration.
  double mine_ms = 0.0;            ///< Total time inside the mining stage.
  double validate_ms = 0.0;        ///< Total time inside the validation stage.
  /// Mining stage blocked on an empty mempool (ingress starvation).
  double mempool_wait_ms = 0.0;
  /// Mining stage blocked on a full handoff ring — the pipeline's stall
  /// time when validation is the bottleneck.
  double handoff_wait_ms = 0.0;
  /// Validation stage blocked waiting for a mined block — the pipeline's
  /// stall time when mining is the bottleneck.
  double validator_stall_ms = 0.0;

  // Re-org recovery (the depth-k ring's abort path; all zero on a clean
  // run or when NodeConfig::halt_on_rejection stopped the node instead).
  std::uint64_t rejected_blocks = 0;  ///< Blocks the validator refused.
  /// Speculative suffix blocks discarded by re-orgs: entries drained
  /// from the ring plus blocks the miner dropped at a failed handoff.
  std::uint64_t aborted_blocks = 0;
  /// Transactions inside rejected + aborted blocks. These left the
  /// mempool but never reached the chain: `transactions` + this is the
  /// full consumed stream.
  std::uint64_t dropped_transactions = 0;
  /// Re-orgs recovered: rejections unwound by snapshot
  /// re-materialization (the miner's half of the handshake completes
  /// lazily and may be skipped entirely when the stream ends first, so
  /// this counts per re-org, not per stage).
  std::uint64_t recoveries = 0;
  double recovery_ms = 0.0;      ///< Time re-materializing worlds after rejections.
  /// Time spent freezing per-block boundary snapshots — the steady-state
  /// price of recoverability. Since the COW state layer landed this is an
  /// O(contracts) page-sharing fork (no state hash either: the root is
  /// lazy, and where one is already verified — sequential mode, genesis —
  /// it seeds the cache), so it should stay flat as state grows; the real
  /// cost surfaces as detach-on-write inside mine_ms, proportional to
  /// each block's dirty set.
  double snapshot_ms = 0.0;
  /// Max mined-but-unvalidated blocks in flight at once (≤ pipeline_depth).
  std::size_t ring_high_water = 0;

  // Sharded production (all zero when mine_shards == 1).
  /// Merge-arbitration losers: lane transactions that conflicted with a
  /// lower shard's winners and were cut from their block.
  std::uint64_t cross_shard_conflicts = 0;
  /// Loser transactions re-queued at the mempool front for the next
  /// block (direct losers plus their same-lane dependents).
  std::uint64_t requeued_transactions = 0;

  // Aggregated over every mined block.
  std::uint64_t attempts = 0;
  std::uint64_t conflict_aborts = 0;
  std::uint64_t deadlock_victims = 0;
  std::size_t schedule_bytes = 0;
  std::size_t lock_table_high_water = 0;
  std::size_t lock_table_memory_high_water = 0;  ///< Approx bytes (see LockTable).
  /// Arena counters of the miner lineage after the last mined block —
  /// cumulative for the whole run, since every fork shares the world's
  /// arena. All zero when the world runs the heap baseline.
  vm::ArenaStats arena;
  /// ConcordSan violations summed over every mined block (0 unless
  /// MinerConfig::detect). The first non-clean block's full report is in
  /// Node::first_detect_report().
  std::uint64_t detect_violations = 0;

  // MVCC read path (all zero when NodeConfig::retain_snapshots == 0).
  // Snapshotted when run() returns; queries served after that keep
  // counting in the node but are not re-folded here.
  std::uint64_t queries_served = 0;   ///< Queries answered (any status).
  std::uint64_t query_gas_used = 0;   ///< Gas metered across those queries.
  /// pin_at()/pin_latest() requests that could not be served (beyond
  /// head, evicted by the window, or re-orged away) — each threw
  /// SnapshotEvicted rather than returning torn state.
  std::uint64_t pins_expired = 0;
  /// Most boundaries simultaneously resident in the ring (≤ retain).
  std::size_t snapshots_retained_high_water = 0;

  // Follower mode (all zero unless run_follower() drove this node).
  std::uint64_t net_sessions = 0;        ///< run_follower() sessions completed.
  std::uint64_t net_announces = 0;       ///< BlockAnnounce messages received.
  std::uint64_t net_acks_sent = 0;       ///< Blocks acknowledged to the leader.
  std::uint64_t net_nacks_sent = 0;      ///< Rejections reported to the leader.
  std::uint64_t net_requests_sent = 0;   ///< Retransmissions / catch-up pulls asked for.
  std::uint64_t net_wire_errors = 0;     ///< Sessions that died on undecodable bytes.

  [[nodiscard]] double blocks_per_sec() const noexcept {
    return wall_ms > 0 ? static_cast<double>(blocks) * 1e3 / wall_ms : 0.0;
  }
  /// Sustained throughput: every transaction both mined *and* validated,
  /// over wall time — the honest end-to-end number.
  [[nodiscard]] double tx_per_sec() const noexcept {
    return wall_ms > 0 ? static_cast<double>(transactions) * 1e3 / wall_ms : 0.0;
  }
};

/// A continuously-running node: mempool → speculative miner → overlapped
/// validator, appending to its own chain.
///
/// The node owns ONE genesis world. At construction it freezes a
/// WorldSnapshot of it and derives the validator's private replica from
/// that snapshot — both stages share a single state by construction, so
/// there is no dual-genesis drift to guard against and nothing for
/// callers to keep in sync. The miner's world then advances as it mines:
/// after block N it already holds the post-N state, which *is* the
/// snapshot block N+1 executes against. The validator replays each block
/// against its replica at post-(N−1) state and cross-checks the
/// published state root.
///
/// With `pipelined`, the stages are decoupled by a HandoffRing of
/// `pipeline_depth` in-flight blocks: the miner keeps mining N+1..N+k on
/// top of its own unvalidated output while the validator works through
/// the ring in order (depth 1 is the original two-stage handoff slot —
/// the ring bounds how far a bad block can let the miner run ahead).
/// Each in-flight block carries a snapshot of its pre-state boundary.
/// When the validator rejects block N, the node *recovers* instead of
/// dying: the speculative suffix N+1..N+k is aborted out of the ring,
/// both stages re-materialize their worlds from block N's pre-state
/// snapshot (the last accepted boundary), mining resumes on top of the
/// last accepted block, and the rejection is reported through
/// ok()/failure() and the NodeStats abort counters. Set
/// `halt_on_rejection` for the legacy stop-the-node contract.
///
/// Usage: construct with the genesis world, feed mempool() from any
/// number of producer threads, call run() (blocking), close() the
/// mempool to shut down cleanly.
class Node {
 public:
  /// Takes ownership of the genesis world; the validator's replica is
  /// forked from it internally. Throws std::invalid_argument when
  /// `world` is null, the miner/validator configs disagree on lock
  /// semantics, or pipeline_depth is 0.
  Node(std::unique_ptr<vm::World> world, NodeConfig config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] Mempool& mempool() noexcept { return mempool_; }

  /// The immutable genesis snapshot both stages were derived from — also
  /// the first block's pre-state boundary in the handoff ring.
  [[nodiscard]] const vm::WorldSnapshot& genesis_snapshot() const noexcept { return genesis_; }

  /// Processes the stream until the mempool closes and drains, max_blocks
  /// is reached, or — with halt_on_rejection — a block is rejected. Call
  /// once; blocking. The mempool is closed by the time run() returns, so
  /// producers never hang.
  void run();

  /// Follower mode: drives ONE replication session over `peer`, the
  /// other side of the trust boundary from run(). Instead of mining, the
  /// node consumes fully serialized BlockAnnounce frames from a leader,
  /// validates each against its published schedule exactly as the local
  /// pipeline would (same Validator, same replica), appends on success
  /// (publishing the boundary to the snapshot ring — query_at serves
  /// reads from a follower) and Acks; on rejection it Nacks with the
  /// reject reason, runs the standard re-org recovery back to the last
  /// accepted boundary, and asks for a retransmission — a Byzantine
  /// leader cannot make the follower diverge, only stall.
  ///
  /// Returns when the session ends (remote closed, wire failure, or
  /// max_blocks reached). Callable repeatedly — one call per session —
  /// so a follower outlives reconnects; stats accumulate across
  /// sessions. Mutually exclusive with run() for the node's lifetime.
  void run_follower(net::Peer& peer);

  [[nodiscard]] const chain::Blockchain& chain() const noexcept { return chain_; }

  /// Valid after run() returns.
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

  /// False when validation rejected at least one block. With recovery
  /// (the default) the run still completed — the chain holds every block
  /// accepted before and after the re-orgs, and stats() counts what was
  /// dropped; with halt_on_rejection the node stopped at the rejection.
  [[nodiscard]] bool ok() const noexcept { return !failure_.has_value(); }

  /// The FIRST rejection's report (valid when !ok()).
  [[nodiscard]] const core::ValidationReport& failure() const { return failure_.value(); }

  /// The first non-clean ConcordSan report of the run, when
  /// MinerConfig::detect was on and a block had violations.
  [[nodiscard]] const std::optional<detect::DetectReport>& first_detect_report() const noexcept {
    return first_detect_report_;
  }

  /// True once the mining stage has pushed its last block (or failed) —
  /// from then on the handoff ring only drains. The validator-side
  /// ordering signal pre_validate_hook tests synchronize on.
  [[nodiscard]] bool mining_done() const noexcept {
    return mining_done_.load(std::memory_order_acquire);
  }

  // ── MVCC read path ────────────────────────────────────────────────
  // Thread-safe against the running pipeline: any number of reader
  // threads may pin and query while run() mines and appends. All query
  // entry points throw std::logic_error when the read path is disabled
  // (retain_snapshots == 0).

  /// A pinned boundary: holding it keeps the frozen state alive past
  /// ring eviction, so a long scan at block N stays byte-stable no
  /// matter how far the chain advances. Drop the pointer to unpin.
  using Pin = std::shared_ptr<const PublishedBoundary>;

  [[nodiscard]] bool read_path_enabled() const noexcept {
    return config_.retain_snapshots > 0;
  }

  /// The retention ring itself (tests/benches; queries normally go
  /// through pin_*/query_*).
  [[nodiscard]] const SnapshotRing& snapshots() const noexcept { return snapshots_; }

  /// Pins the newest accepted boundary. At least genesis is always
  /// published, so after construction this only throws SnapshotEvicted
  /// under persistent re-org churn (bounded-retry miss).
  [[nodiscard]] Pin pin_latest() const;

  /// Pins the boundary of accepted block `block`. Throws SnapshotEvicted
  /// — with a reason distinguishing beyond-head / evicted-by-window /
  /// re-orged-away — when it cannot be served; never returns torn state.
  [[nodiscard]] Pin pin_at(std::uint64_t block) const;

  /// Read-your-writes session pin: blocks until some boundary numbered
  /// >= `block` is published, then pins the newest. A client that wrote
  /// in block N calls pin_no_older_than(N) and is guaranteed to read
  /// state that includes its write — on a follower, this is exactly
  /// "wait for replication to catch up to my write". Throws
  /// SnapshotEvicted when the deadline passes first (the leader stalled,
  /// the session died, or N is simply beyond what this node will see).
  [[nodiscard]] Pin pin_no_older_than(std::uint64_t block,
                                      std::chrono::milliseconds timeout) const;

  /// Runs a read-only query against a held pin (see core::run_query).
  core::QueryOutcome query_pinned(const Pin& pin, const core::QueryFn& fn) const;

  /// query_pinned(pin_latest(), fn): one-shot read at the newest boundary.
  core::QueryOutcome query_latest(const core::QueryFn& fn) const;

  /// query_pinned(pin_at(block), fn): one-shot "as of block N" read.
  core::QueryOutcome query_at(std::uint64_t block, const core::QueryFn& fn) const;

  /// Call-shaped query at the newest boundary (core::run_query_call):
  /// `tx` executes read-only against the frozen state, never enters any
  /// block.
  core::QueryOutcome query_call(const chain::Transaction& tx) const;

 private:
  void run_pipelined();
  void run_sequential();

  /// Mines one batch in the configured mode, folding MinerStats into the
  /// node aggregates and applying post_mine_hook. Returns the block
  /// extending `parent`.
  [[nodiscard]] chain::Block mine_batch(const std::vector<chain::Transaction>& batch,
                                        const chain::Block& parent);

  /// Sharded flavor of mine_batch (mine_shards > 1): mines each lane of
  /// the window concurrently — lane 0 on this thread against the primary
  /// world, lanes ≥ 1 on their own threads against per-block COW forks —
  /// merges the lanes (chain::merge_shards), re-queues the losers and
  /// seals the merged block on the primary miner.
  [[nodiscard]] chain::Block mine_window(const Mempool::Window& window,
                                         const chain::Block& parent);

  /// Folds one lane miner's execution counters into the node aggregates
  /// (the block-level fields — schedule bytes, arena, detect — come from
  /// the primary miner's seal).
  void fold_lane_stats(const core::MinerStats& mined);

  /// Validates and appends; on rejection records the first failure_ and
  /// returns false (leaving the validator world dirty — the caller owns
  /// recovery). `validate_ms` accumulates stage time.
  bool validate_and_append(chain::Block block, double& validate_ms);

  /// True when this run takes per-block boundary snapshots (the price of
  /// being able to recover from a rejection).
  [[nodiscard]] bool recovery_enabled() const noexcept { return !config_.halt_on_rejection; }

  /// Throws std::logic_error when retain_snapshots == 0.
  void require_read_path() const;

  /// Copies the read-path atomics into stats_ (run() epilogue, both the
  /// normal and failure exits).
  void fold_read_stats();

  NodeConfig config_;
  std::unique_ptr<vm::World> miner_world_;
  vm::WorldSnapshot genesis_;  ///< Frozen before the miner's world moves.
  std::unique_ptr<vm::World> validator_world_;  ///< genesis_.materialize().
  Mempool mempool_;
  core::Miner miner_;  ///< The primary (lane 0) miner over miner_world_.
  core::Validator validator_;
  chain::Blockchain chain_;
  /// Lane miners for shards 1..mine_shards-1 (empty when mine_shards ==
  /// 1) and the per-block boundary forks they execute on. The worlds are
  /// replaced each block; they must outlive the block (each lane miner's
  /// engine holds a reference until its next resume_from).
  std::vector<std::unique_ptr<core::Miner>> shard_miners_;
  std::vector<std::unique_ptr<vm::World>> shard_worlds_;
  /// The MVCC retention window (sized 1 but never published into when
  /// the read path is disabled). Written only by whichever thread runs
  /// validate_and_append; read by any number of query threads.
  SnapshotRing snapshots_;
  // Read-path counters, bumped from reader threads (hence atomic and
  // mutable — queries are logically const).
  mutable std::atomic<std::uint64_t> queries_served_{0};
  mutable std::atomic<std::uint64_t> query_gas_used_{0};
  mutable std::atomic<std::uint64_t> pins_expired_{0};
  NodeStats stats_;
  std::optional<core::ValidationReport> failure_;
  /// The MOST RECENT rejection (failure_ keeps only the first; the
  /// follower Nacks every rejection with its own reason).
  std::optional<core::ValidationReport> last_rejection_;
  /// Follower recovery anchor: the last ACCEPTED boundary, refreshed
  /// after each appended block and persistent across sessions.
  std::optional<vm::WorldSnapshot> follower_boundary_;
  std::optional<detect::DetectReport> first_detect_report_;
  std::atomic<bool> mining_done_{false};
  bool ran_ = false;
  bool following_ = false;  ///< run_follower() owns this node (excludes run()).
  bool in_session_ = false; ///< A run_follower() call is currently active.
};

}  // namespace concord::node
