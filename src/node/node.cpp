#include "node/node.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace concord::node {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::unique_ptr<vm::World> require_world(std::unique_ptr<vm::World> world) {
  if (world == nullptr) throw std::invalid_argument("node: world must not be null");
  return world;
}

/// Validated before any member is built: an invalid config must fail
/// fast, not after two world deep-clones and two stage thread pools.
NodeConfig require_config(NodeConfig config) {
  if (config.miner.exclusive_locks_only != config.validator.exclusive_locks_only) {
    throw std::invalid_argument("node: miner/validator disagree on exclusive_locks_only");
  }
  return config;
}

}  // namespace

// Both stages are clones of one snapshot, so their genesis roots agree
// by construction — the old dual-world drift guard has nothing left to
// check.
Node::Node(std::unique_ptr<vm::World> world, NodeConfig config)
    : config_(require_config(config)),
      miner_world_(require_world(std::move(world))),
      genesis_(*miner_world_),
      validator_world_(genesis_.materialize()),
      mempool_(config.batch, config.mempool_capacity),
      miner_(*miner_world_, config.miner),
      validator_(*validator_world_, config.validator),
      chain_(genesis_.state_root()) {}

void Node::run() {
  if (ran_) throw std::logic_error("Node::run() may only be called once");
  ran_ = true;
  const auto start = Clock::now();
  try {
    if (config_.pipelined) {
      run_pipelined();
    } else {
      run_sequential();
    }
  } catch (...) {
    // Failure diagnostics still carry timing: a run that died after two
    // hours should not report wall_ms == 0.
    stats_.wall_ms = ms_since(start);
    // Producers must never hang on a node that has stopped consuming —
    // not even when a stage failed hard (e.g. the miner's livelock guard).
    mempool_.close();
    throw;
  }
  mempool_.close();
  stats_.wall_ms = ms_since(start);
}

void Node::run_sequential() {
  chain::Block parent = chain_.tip();
  double mine_ms = 0.0;
  double validate_ms = 0.0;
  double mempool_wait = 0.0;
  std::uint64_t mined = 0;

  while (config_.max_blocks == 0 || mined < config_.max_blocks) {
    const auto t_wait = Clock::now();
    auto batch = mempool_.next_batch();
    mempool_wait += ms_since(t_wait);
    if (!batch) break;

    const auto t_mine = Clock::now();
    chain::Block block = mine_batch(*batch, parent);
    mine_ms += ms_since(t_mine);
    ++mined;
    parent = block;
    if (!validate_and_append(std::move(block), validate_ms)) break;
  }

  stats_.mine_ms = mine_ms;
  stats_.validate_ms = validate_ms;
  stats_.mempool_wait_ms = mempool_wait;
}

void Node::run_pipelined() {
  // Depth-1 handoff slot between the stages. While the validator replays
  // block N out of the slot, the miner is already mining block N+1 from
  // the next mempool batch against its post-N world.
  std::mutex slot_mu;
  std::condition_variable slot_filled;
  std::condition_variable slot_emptied;
  std::optional<chain::Block> slot;
  bool mining_done = false;
  std::atomic<bool> validation_stopped{false};
  std::exception_ptr validator_error;
  double validate_ms = 0.0;
  double validator_stall = 0.0;

  std::jthread validator_thread([&] {
    try {
      while (true) {
        const auto t_wait = Clock::now();
        std::unique_lock lk(slot_mu);
        slot_filled.wait(lk, [&] { return slot.has_value() || mining_done; });
        validator_stall += ms_since(t_wait);
        if (!slot.has_value()) break;  // Mining finished and the slot drained.
        chain::Block block = std::move(*slot);
        slot.reset();
        lk.unlock();
        slot_emptied.notify_one();
        if (!validate_and_append(std::move(block), validate_ms)) break;
      }
    } catch (...) {
      validator_error = std::current_exception();
    }
    // Covers rejection, drain and error alike: release a miner blocked on
    // the slot or inside next_batch, and producers blocked on capacity.
    validation_stopped.store(true, std::memory_order_relaxed);
    { std::scoped_lock lk(slot_mu); }
    slot_emptied.notify_all();
    mempool_.close();
  });

  chain::Block parent = chain_.tip();
  double mine_ms = 0.0;
  double mempool_wait = 0.0;
  double handoff_wait = 0.0;
  std::uint64_t mined = 0;
  std::exception_ptr miner_error;

  try {
    while (!validation_stopped.load(std::memory_order_relaxed) &&
           (config_.max_blocks == 0 || mined < config_.max_blocks)) {
      const auto t_wait = Clock::now();
      auto batch = mempool_.next_batch();
      mempool_wait += ms_since(t_wait);
      if (!batch) break;

      const auto t_mine = Clock::now();
      chain::Block block = mine_batch(*batch, parent);
      mine_ms += ms_since(t_mine);
      ++mined;
      parent = block;

      const auto t_handoff = Clock::now();
      {
        std::unique_lock lk(slot_mu);
        slot_emptied.wait(lk, [&] {
          return !slot.has_value() || validation_stopped.load(std::memory_order_relaxed);
        });
        if (validation_stopped.load(std::memory_order_relaxed)) break;
        slot = std::move(block);
      }
      handoff_wait += ms_since(t_handoff);
      slot_filled.notify_one();
    }
  } catch (...) {
    // A mining-stage failure (e.g. the livelock guard) must still wind
    // the validator down — never leave it waiting on a slot_filled
    // signal that will not come.
    miner_error = std::current_exception();
  }

  {
    std::scoped_lock lk(slot_mu);
    mining_done = true;
  }
  slot_filled.notify_one();
  validator_thread.join();
  if (miner_error) std::rethrow_exception(miner_error);
  if (validator_error) std::rethrow_exception(validator_error);

  stats_.mine_ms = mine_ms;
  stats_.validate_ms = validate_ms;
  stats_.mempool_wait_ms = mempool_wait;
  stats_.handoff_wait_ms = handoff_wait;
  stats_.validator_stall_ms = validator_stall;
}

chain::Block Node::mine_batch(const std::vector<chain::Transaction>& batch,
                              const chain::Block& parent) {
  chain::Block block = config_.mining == MiningMode::kSerial ? miner_.mine_serial(batch, parent)
                                                             : miner_.mine(batch, parent);
  const core::MinerStats& mined = miner_.last_stats();
  stats_.attempts += mined.attempts;
  stats_.conflict_aborts += mined.conflict_aborts;
  stats_.deadlock_victims += mined.deadlock_victims;
  stats_.schedule_bytes += mined.schedule_bytes;
  stats_.lock_table_high_water =
      std::max(stats_.lock_table_high_water, mined.lock_table_high_water);
  return block;
}

bool Node::validate_and_append(chain::Block block, double& validate_ms) {
  const auto t_validate = Clock::now();
  core::ValidationReport report = validator_.validate_parallel(block);
  validate_ms += ms_since(t_validate);
  if (!report.ok) {
    failure_ = std::move(report);
    return false;
  }
  stats_.blocks += 1;
  stats_.transactions += block.transactions.size();
  chain_.append(std::move(block));
  return true;
}

}  // namespace concord::node
