#include "node/node.hpp"

#include <algorithm>
#include <variant>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "net/peer.hpp"

namespace concord::node {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::unique_ptr<vm::World> require_world(std::unique_ptr<vm::World> world) {
  if (world == nullptr) throw std::invalid_argument("node: world must not be null");
  return world;
}

/// Validated before any member is built: an invalid config must fail
/// fast, not after two world forks and two stage thread pools.
NodeConfig require_config(NodeConfig config) {
  if (config.miner.exclusive_locks_only != config.validator.exclusive_locks_only) {
    throw std::invalid_argument("node: miner/validator disagree on exclusive_locks_only");
  }
  if (config.pipeline_depth == 0) {
    throw std::invalid_argument("node: pipeline_depth must be >= 1");
  }
  if (config.mine_shards == 0) {
    throw std::invalid_argument("node: mine_shards must be >= 1");
  }
  return config;
}

}  // namespace

// Both stages are COW forks of one snapshot, so their genesis roots
// agree by construction — the old dual-world drift guard has nothing
// left to check.
Node::Node(std::unique_ptr<vm::World> world, NodeConfig config)
    : config_(require_config(std::move(config))),
      miner_world_(require_world(std::move(world))),
      genesis_(*miner_world_),
      validator_world_(genesis_.materialize()),
      mempool_(config_.batch, config_.mempool_capacity, config_.mine_shards),
      miner_(*miner_world_, config_.miner),
      validator_(*validator_world_, config_.validator),
      chain_(genesis_.state_root()),
      snapshots_(std::max<std::size_t>(config_.retain_snapshots, 1)) {
  // Lane miners for shards 1..N-1; lane 0 is the primary miner_. Each is
  // born on a throwaway genesis fork and re-pointed at a fresh fork of
  // the block boundary every block it mines.
  for (std::uint32_t s = 1; s < config_.mine_shards; ++s) {
    shard_worlds_.push_back(genesis_.materialize());
    shard_miners_.push_back(std::make_unique<core::Miner>(*shard_worlds_.back(), config_.miner));
  }

  // Per-shard arena affinity: concurrent lane miners each recycle pages
  // within their own slice of the arena's stripes instead of meeting on
  // shared free lists. Single-miner nodes keep the default round-robin —
  // the pre-shard path stays byte-for-byte untouched.
  if (config_.mine_shards > 1) {
    const unsigned width =
        std::max(1u, vm::PageArena::kStripeCount / config_.mine_shards);
    miner_.set_arena_affinity(0, width);
    for (std::uint32_t s = 1; s < config_.mine_shards; ++s) {
      shard_miners_[s - 1]->set_arena_affinity((s * width) % vm::PageArena::kStripeCount,
                                               width);
    }
  }

  // The read path serves genesis ("as of block 0") from the moment the
  // node exists; its root is already computed (the chain header above).
  if (read_path_enabled()) snapshots_.publish(0, genesis_);
}

void Node::run() {
  if (ran_) throw std::logic_error("Node::run() may only be called once");
  if (following_) throw std::logic_error("Node::run(): this node is a follower");
  ran_ = true;
  const auto start = Clock::now();
  try {
    if (config_.pipelined) {
      run_pipelined();
    } else {
      run_sequential();
    }
  } catch (...) {
    // Failure diagnostics still carry timing: a run that died after two
    // hours should not report wall_ms == 0.
    stats_.wall_ms = ms_since(start);
    fold_read_stats();
    // Producers must never hang on a node that has stopped consuming —
    // not even when a stage failed hard (e.g. the miner's livelock guard).
    mempool_.close();
    throw;
  }
  mempool_.close();
  stats_.wall_ms = ms_since(start);
  fold_read_stats();
}

void Node::fold_read_stats() {
  stats_.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats_.query_gas_used = query_gas_used_.load(std::memory_order_relaxed);
  stats_.pins_expired = pins_expired_.load(std::memory_order_relaxed);
  // Writer-thread fields, safe here: both stages have joined by now.
  stats_.snapshots_retained_high_water = snapshots_.retained_high_water();
}

void Node::run_sequential() {
  chain::Block parent = chain_.tip();
  // The pre-state boundary of the block about to be mined — genesis for
  // the first block, then refreshed after each accepted block. With
  // halt_on_rejection there is nothing to unwind to, so no snapshots.
  vm::WorldSnapshot boundary = recovery_enabled() ? genesis_ : vm::WorldSnapshot{};
  double mine_ms = 0.0;
  double validate_ms = 0.0;
  double mempool_wait = 0.0;
  double snapshot_ms = 0.0;
  std::uint64_t mined = 0;

  const bool sharded = config_.mine_shards > 1;
  while (config_.max_blocks == 0 || mined < config_.max_blocks) {
    const auto t_wait = Clock::now();
    std::optional<std::vector<chain::Transaction>> batch;
    std::optional<Mempool::Window> window;
    if (sharded) {
      window = mempool_.next_window();
    } else {
      batch = mempool_.next_batch();
    }
    mempool_wait += ms_since(t_wait);
    if (sharded ? !window.has_value() : !batch.has_value()) break;

    const auto t_mine = Clock::now();
    chain::Block block = sharded ? mine_window(*window, parent) : mine_batch(*batch, parent);
    mine_ms += ms_since(t_mine);
    ++mined;
    const std::size_t block_txs = block.transactions.size();
    parent = block;

    if (validate_and_append(std::move(block), validate_ms)) {
      if (recovery_enabled()) {
        // An O(contracts) COW fork; the accepted block's verified root
        // seeds the snapshot so no O(state) hash runs either.
        const auto t_snapshot = Clock::now();
        boundary = vm::WorldSnapshot(*miner_world_, parent.header.state_root);
        snapshot_ms += ms_since(t_snapshot);
      }
      continue;
    }
    if (!recovery_enabled()) break;

    // Re-org, sequential flavor: no speculative suffix exists, only the
    // rejected block itself unwinds. Both stages re-materialize from the
    // boundary the block was mined on (the last accepted state) and the
    // stream continues; the rejected batch is dropped.
    const auto t_recover = Clock::now();
    stats_.dropped_transactions += block_txs;
    validator_world_ = boundary.materialize();
    validator_.resume_from(*validator_world_);
    miner_world_ = boundary.materialize();
    miner_.resume_from(*miner_world_);
    parent = chain_.tip();
    // See the pipelined flavor: published boundaries are all accepted,
    // so this is invariant enforcement, not cleanup.
    if (read_path_enabled()) snapshots_.rewind_to(parent.header.number);
    ++stats_.recoveries;
    stats_.recovery_ms += ms_since(t_recover);
  }

  mining_done_.store(true, std::memory_order_release);
  stats_.mine_ms = mine_ms;
  stats_.validate_ms = validate_ms;
  stats_.mempool_wait_ms = mempool_wait;
  stats_.snapshot_ms = snapshot_ms;
}

void Node::run_pipelined() {
  // The depth-k ring between the stages. While the validator replays the
  // oldest in-flight block, the miner keeps mining up to pipeline_depth
  // blocks ahead against its own unvalidated output.
  HandoffRing ring(config_.pipeline_depth);
  std::atomic<bool> validation_stopped{false};
  std::exception_ptr validator_error;

  // Validator-stage locals, merged into stats_ after the join (the miner
  // thread owns other NodeStats fields while both are live).
  double validate_ms = 0.0;
  double validator_stall = 0.0;
  double v_recovery_ms = 0.0;
  std::uint64_t v_recoveries = 0;
  std::uint64_t v_aborted_blocks = 0;
  std::uint64_t v_dropped_txs = 0;

  std::jthread validator_thread([&] {
    try {
      while (true) {
        const auto t_wait = Clock::now();
        std::optional<InFlightBlock> entry = ring.pop();
        validator_stall += ms_since(t_wait);
        if (!entry) break;  // Mining finished and the ring drained.
        if (config_.pre_validate_hook) config_.pre_validate_hook(entry->block);
        const std::size_t block_txs = entry->block.transactions.size();
        if (validate_and_append(std::move(entry->block), validate_ms)) continue;

        // Rejected. Without a pre-state boundary (halt mode) it is fatal.
        if (!recovery_enabled() || !entry->pre_state.valid()) break;

        // Stamp the re-org coordinates onto the recorded report: the
        // post-root the in-flight block claimed and the boundary the
        // node recovered to (the rejected block itself was consumed by
        // the validator above, so the denormalized ring copy is what
        // still knows the claim).
        if (failure_.has_value() && stats_.rejected_blocks == 1) {
          failure_->detail += " [in-flight block claimed post-root " +
                              entry->expected_post_root.to_hex().substr(0, 16) +
                              "…, re-orged to boundary " +
                              entry->pre_state.state_root().to_hex().substr(0, 16) + "…]";
        }

        // Re-org: every queued entry was mined on top of the rejected
        // block — drain them, publish the recovery point, and rebuild
        // this stage's replica from the last accepted boundary. The
        // miner re-materializes its own world concurrently once it
        // observes the abort (cloning the shared frozen snapshot only
        // reads it). Reading chain_.tip() here is safe: nothing appends
        // until the handshake completes and a post-recovery block
        // validates.
        const auto t_recover = Clock::now();
        v_dropped_txs += block_txs;
        const HandoffRing::DrainResult drained =
            ring.abort_and_drain(RecoveryPoint{entry->pre_state, chain_.tip()});
        v_aborted_blocks += drained.blocks;
        v_dropped_txs += drained.transactions;
        validator_world_ = entry->pre_state.materialize();
        validator_.resume_from(*validator_world_);
        // Invariant enforcement more than necessity: only ACCEPTED
        // boundaries are ever published, so the ring's head cannot
        // exceed the surviving tip — but a rewind here keeps the read
        // path honest by construction even if that ever changes.
        if (read_path_enabled()) snapshots_.rewind_to(chain_.tip().header.number);
        ++v_recoveries;  // One re-org completed (the miner's half is lazy).
        v_recovery_ms += ms_since(t_recover);
      }
    } catch (...) {
      validator_error = std::current_exception();
    }
    // Covers halt-rejection, drain and error alike: release a miner
    // blocked on the ring or inside next_batch, and producers blocked on
    // mempool capacity.
    validation_stopped.store(true, std::memory_order_relaxed);
    ring.close();
    mempool_.close();
  });

  chain::Block parent = chain_.tip();
  vm::WorldSnapshot boundary = recovery_enabled() ? genesis_ : vm::WorldSnapshot{};
  double mine_ms = 0.0;
  double mempool_wait = 0.0;
  double handoff_wait = 0.0;
  double snapshot_ms = 0.0;
  double m_recovery_ms = 0.0;
  std::uint64_t mined = 0;
  std::uint64_t m_aborted_blocks = 0;
  std::uint64_t m_dropped_txs = 0;
  std::exception_ptr miner_error;

  // The producer half of the abort handshake: collect the recovery
  // point, rebuild the mining world from the last accepted boundary and
  // resume on top of the last accepted block. The boundary snapshot is
  // shared with the recovery point — the resumed world *is* that state,
  // so no fresh snapshot is needed until the next block is accepted.
  const auto recover = [&] {
    const auto t_recover = Clock::now();
    RecoveryPoint point = ring.acknowledge_abort();
    miner_world_ = point.world.materialize();
    miner_.resume_from(*miner_world_);
    parent = std::move(point.parent);
    boundary = std::move(point.world);
    m_recovery_ms += ms_since(t_recover);
  };

  const bool sharded = config_.mine_shards > 1;
  try {
    while (!validation_stopped.load(std::memory_order_relaxed) &&
           (config_.max_blocks == 0 || mined < config_.max_blocks)) {
      const auto t_wait = Clock::now();
      std::optional<std::vector<chain::Transaction>> batch;
      std::optional<Mempool::Window> window;
      if (sharded) {
        window = mempool_.next_window();
      } else {
        batch = mempool_.next_batch();
      }
      mempool_wait += ms_since(t_wait);
      if (sharded ? !window.has_value() : !batch.has_value()) break;

      // A rejection may have landed while this stage waited for traffic;
      // recover before mining the fresh batch on a doomed parent.
      if (ring.abort_requested()) recover();

      const auto t_mine = Clock::now();
      chain::Block block = sharded ? mine_window(*window, parent) : mine_batch(*batch, parent);
      mine_ms += ms_since(t_mine);
      ++mined;
      const std::size_t block_txs = block.transactions.size();
      parent = block;

      const auto t_handoff = Clock::now();
      const HandoffRing::PushOutcome outcome =
          ring.push(InFlightBlock{std::move(block), boundary, parent.header.state_root});
      handoff_wait += ms_since(t_handoff);
      if (outcome == HandoffRing::PushOutcome::kAborted) {
        // The block extends a rejected chain: part of the doomed suffix.
        ++m_aborted_blocks;
        m_dropped_txs += block_txs;
        recover();
        continue;
      }
      if (outcome == HandoffRing::PushOutcome::kClosed) break;

      if (recovery_enabled()) {
        // Freeze the post-block state: the pre-state boundary of the
        // next block. An O(contracts) COW fork — the miner detaches the
        // pages it dirties as it keeps mining. The root stays lazy and
        // is NOT seeded from the mined block's claimed root: that claim
        // is unvalidated here (a corrupt one would poison the cache for
        // any future consumer, e.g. mid-block read serving), and in
        // steady state nobody reads a boundary root anyway — only
        // exceptional paths do, and they hash the frozen world honestly
        // on first demand.
        const auto t_snapshot = Clock::now();
        boundary = vm::WorldSnapshot(*miner_world_);
        snapshot_ms += ms_since(t_snapshot);
      }
    }
  } catch (...) {
    // A mining-stage failure (e.g. the livelock guard) must still wind
    // the validator down — never leave it waiting on a ring fill that
    // will not come.
    miner_error = std::current_exception();
  }

  mining_done_.store(true, std::memory_order_release);
  ring.close();
  validator_thread.join();
  if (miner_error) std::rethrow_exception(miner_error);
  if (validator_error) std::rethrow_exception(validator_error);

  stats_.mine_ms = mine_ms;
  stats_.validate_ms = validate_ms;
  stats_.mempool_wait_ms = mempool_wait;
  stats_.handoff_wait_ms = handoff_wait;
  stats_.validator_stall_ms = validator_stall;
  stats_.snapshot_ms = snapshot_ms;
  stats_.aborted_blocks = v_aborted_blocks + m_aborted_blocks;
  stats_.dropped_transactions = v_dropped_txs + m_dropped_txs;
  stats_.recoveries = v_recoveries;
  stats_.recovery_ms = v_recovery_ms + m_recovery_ms;
  stats_.ring_high_water = ring.stats().high_water;
}

void Node::run_follower(net::Peer& peer) {
  if (ran_) throw std::logic_error("Node::run_follower(): this node already ran as a leader");
  if (in_session_) throw std::logic_error("Node::run_follower(): a session is already active");
  following_ = true;
  in_session_ = true;
  const auto start = Clock::now();
  // The recovery anchor survives across sessions: a reconnecting
  // follower resumes from its last accepted boundary, not from genesis.
  if (!follower_boundary_.has_value()) follower_boundary_ = genesis_;

  double validate_ms = 0.0;
  std::uint64_t leader_head = chain_.height();

  const auto send_nack = [&](std::uint64_t number, net::NackReason reason, std::string detail) {
    if (peer.send(net::Message{net::Nack{number, reason, std::move(detail)}})) {
      ++stats_.net_nacks_sent;
    }
  };
  // Catch-up pull: whenever the leader is known to be ahead of us, ask
  // for exactly the next block we need. Drives both reconnect catch-up
  // and post-Nack retransmission.
  const auto request_next = [&] {
    if (leader_head <= chain_.height()) return;
    if (config_.max_blocks != 0 && stats_.blocks >= config_.max_blocks) return;
    if (peer.send(net::Message{net::BlockRequest{chain_.height() + 1}})) {
      ++stats_.net_requests_sent;
    }
  };

  ++stats_.net_sessions;
  (void)peer.send(
      net::Message{net::Hello{net::kProtocolVersion, genesis_.state_root(), chain_.height()}});

  while (config_.max_blocks == 0 || stats_.blocks < config_.max_blocks) {
    std::optional<net::Message> message = peer.recv();
    if (!message.has_value()) break;  // Session over (clean close or wire failure).

    if (const auto* hello = std::get_if<net::Hello>(&*message)) {
      if (hello->protocol != net::kProtocolVersion ||
          hello->genesis_root != genesis_.state_root()) {
        send_nack(0, net::NackReason::kWrongChain,
                  hello->protocol != net::kProtocolVersion ? "protocol version mismatch"
                                                           : "genesis root mismatch");
        peer.close();
        break;
      }
      leader_head = std::max(leader_head, hello->head);
      request_next();
      continue;
    }

    if (auto* announce = std::get_if<net::BlockAnnounce>(&*message)) {
      ++stats_.net_announces;
      const std::uint64_t number = announce->block.header.number;
      leader_head = std::max(leader_head, number);
      const std::uint64_t expected = chain_.height() + 1;

      if (number < expected) {
        // A retransmission of a block we already hold: re-Ack with OUR
        // root at that height so the leader can detect divergence.
        if (peer.send(net::Message{
                net::Ack{number, chain_.at(number).header.state_root}})) {
          ++stats_.net_acks_sent;
        }
        continue;
      }
      if (number > expected) {
        // A gap: blocks only append in order, so name the one we need.
        send_nack(number, net::NackReason::kOutOfOrder,
                  "expected block " + std::to_string(expected));
        request_next();
        continue;
      }
      if (announce->block.header.parent_hash != chain_.tip().hash()) {
        // Right height, wrong parent: the leader is extending a chain we
        // do not have. No state was touched — Nack without recovery.
        send_nack(number, net::NackReason::kValidationFailed, "parent hash mismatch");
        request_next();
        continue;
      }

      // The real trust boundary: validate the announced block against
      // its published schedule exactly as the local pipeline would.
      bool accepted = false;
      std::string reject_detail;
      try {
        accepted = validate_and_append(std::move(announce->block), validate_ms);
        if (!accepted && last_rejection_.has_value()) {
          reject_detail = std::string(core::to_string(last_rejection_->reason)) + ": " +
                          last_rejection_->detail;
        }
      } catch (const chain::ChainError& e) {
        // Structural append failure after replay: treat as a rejection
        // (the replica is dirty — the recovery below re-materializes it).
        accepted = false;
        reject_detail = std::string("structural: ") + e.what();
      }

      if (accepted) {
        const chain::Block& tip = chain_.tip();
        // Refresh the recovery anchor to the new accepted boundary (the
        // verified root seeds the snapshot, as on the mining path).
        const auto t_snapshot = Clock::now();
        follower_boundary_ = vm::WorldSnapshot(*validator_world_, tip.header.state_root);
        stats_.snapshot_ms += ms_since(t_snapshot);
        if (peer.send(net::Message{net::Ack{number, tip.header.state_root}})) {
          ++stats_.net_acks_sent;
        }
        request_next();
        continue;
      }

      // Rejected: this is PR 4 recovery serving as fork-choice. Unwind
      // the replica to the last accepted boundary, tell the leader why,
      // and ask for an honest retransmission of the same height.
      const auto t_recover = Clock::now();
      validator_world_ = follower_boundary_->materialize();
      validator_.resume_from(*validator_world_);
      if (read_path_enabled()) snapshots_.rewind_to(chain_.tip().header.number);
      ++stats_.recoveries;
      stats_.recovery_ms += ms_since(t_recover);
      send_nack(number, net::NackReason::kValidationFailed, std::move(reject_detail));
      request_next();
      continue;
    }

    // Ack / Nack / BlockRequest addressed to a follower: not part of the
    // follower's protocol surface; ignored.
  }

  if (peer.failed()) ++stats_.net_wire_errors;
  stats_.validate_ms += validate_ms;
  stats_.wall_ms += ms_since(start);
  fold_read_stats();
  in_session_ = false;
}

void Node::fold_lane_stats(const core::MinerStats& mined) {
  stats_.attempts += mined.attempts;
  stats_.conflict_aborts += mined.conflict_aborts;
  stats_.deadlock_victims += mined.deadlock_victims;
  stats_.lock_table_high_water =
      std::max(stats_.lock_table_high_water, mined.lock_table_high_water);
  stats_.lock_table_memory_high_water =
      std::max(stats_.lock_table_memory_high_water, mined.lock_table_memory_high_water);
}

chain::Block Node::mine_batch(const std::vector<chain::Transaction>& batch,
                              const chain::Block& parent) {
  chain::Block block = config_.mining == MiningMode::kSerial ? miner_.mine_serial(batch, parent)
                                                             : miner_.mine(batch, parent);
  const core::MinerStats& mined = miner_.last_stats();
  fold_lane_stats(mined);
  stats_.schedule_bytes += mined.schedule_bytes;
  stats_.arena = mined.arena;
  stats_.detect_violations += mined.detect_violations;
  if (mined.detect_violations > 0 && !first_detect_report_.has_value()) {
    first_detect_report_ = miner_.last_detect_report();
  }
  if (config_.post_mine_hook) config_.post_mine_hook(block);
  return block;
}

chain::Block Node::mine_window(const Mempool::Window& window, const chain::Block& parent) {
  const std::uint32_t shards = config_.mine_shards;

  // Fork each busy lane's world off the primary BEFORE lane 0 mutates
  // it: every lane executes against the same block boundary.
  for (std::uint32_t s = 1; s < shards; ++s) {
    if (window.lanes[s].empty()) continue;
    shard_worlds_[s - 1] = miner_world_->fork();
    shard_miners_[s - 1]->resume_from(*shard_worlds_[s - 1]);
  }

  std::vector<core::Miner::LaneResult> lanes(shards);
  std::vector<std::exception_ptr> lane_errors(shards);
  {
    std::vector<std::jthread> workers;
    workers.reserve(shards - 1);
    for (std::uint32_t s = 1; s < shards; ++s) {
      if (window.lanes[s].empty()) continue;  // Nothing routed here this block.
      workers.emplace_back([this, s, &window, &lanes, &lane_errors] {
        try {
          core::Miner& lane_miner = *shard_miners_[s - 1];
          lanes[s] = config_.mining == MiningMode::kSerial
                         ? lane_miner.mine_lane_serial(window.lanes[s])
                         : lane_miner.mine_lane(window.lanes[s]);
        } catch (...) {
          lane_errors[s] = std::current_exception();
        }
      });
    }
    try {
      lanes[0] = config_.mining == MiningMode::kSerial ? miner_.mine_lane_serial(window.lanes[0])
                                                       : miner_.mine_lane(window.lanes[0]);
    } catch (...) {
      lane_errors[0] = std::current_exception();
    }
  }  // Joins the lane workers.
  for (const auto& error : lane_errors) {
    if (error) std::rethrow_exception(error);
  }
  for (std::uint32_t s = 1; s < shards; ++s) {
    if (!window.lanes[s].empty()) fold_lane_stats(shard_miners_[s - 1]->last_stats());
  }

  // Merge: lane index == shard id (empty lanes stay in so lane_counts
  // and ShardOrigin::lane read as shard ids end-to-end).
  std::vector<chain::ShardLane> merge_input;
  merge_input.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    lanes[s].lane.shard = s;
    merge_input.push_back(std::move(lanes[s].lane));
  }
  chain::ShardMergeResult merged = chain::merge_shards(merge_input);
  stats_.cross_shard_conflicts += merged.cross_shard_conflicts;
  if (!merged.requeued.empty()) {
    // Losers take another lap at the front of the global order, so they
    // land in the very next block (where, with the conflicting winner now
    // committed, the lowest occupied lane's total win guarantees they can
    // not lose forever).
    stats_.requeued_transactions += merged.requeued.size();
    mempool_.requeue_front(merged.requeued);
  }

  chain::Block block = miner_.seal_merged(std::move(merged), std::move(lanes[0].logs), parent);
  const core::MinerStats& sealed = miner_.last_stats();
  fold_lane_stats(sealed);
  stats_.schedule_bytes += sealed.schedule_bytes;
  stats_.arena = sealed.arena;
  stats_.detect_violations += sealed.detect_violations;
  if (sealed.detect_violations > 0 && !first_detect_report_.has_value()) {
    first_detect_report_ = miner_.last_detect_report();
  }
  if (config_.post_mine_hook) config_.post_mine_hook(block);
  return block;
}

bool Node::validate_and_append(chain::Block block, double& validate_ms) {
  const auto t_validate = Clock::now();
  core::ValidationReport report = validator_.validate_parallel(block);
  validate_ms += ms_since(t_validate);
  if (!report.ok) {
    ++stats_.rejected_blocks;
    last_rejection_ = report;  // Every rejection, for the follower's Nack.
    if (!failure_.has_value()) failure_ = std::move(report);
    return false;
  }
  stats_.blocks += 1;
  stats_.transactions += block.transactions.size();
  const std::uint64_t number = block.header.number;
  const util::Hash256 root = block.header.state_root;
  chain_.append(std::move(block));
  if (read_path_enabled()) {
    // Publish the accepted boundary to readers. validate_parallel left
    // validator_world_ at exactly the post-block state and cross-checked
    // `root` against it, so the snapshot is verified state and seeding
    // the root cache is sound (readers never pay the O(state) hash). The
    // fork is O(contracts), on the appending thread — the same thread
    // for every publish and rewind, which is the ring's single-writer
    // contract.
    snapshots_.publish(number, vm::WorldSnapshot(*validator_world_, root));
  }
  // Replication egress LAST: a remote follower never hears about a block
  // before the leader's own readers can pin it.
  if (config_.on_block_accepted) config_.on_block_accepted(chain_.tip());
  return true;
}

void Node::require_read_path() const {
  if (!read_path_enabled()) {
    throw std::logic_error("node read path disabled (retain_snapshots == 0)");
  }
}

Node::Pin Node::pin_latest() const {
  require_read_path();
  Pin pin = snapshots_.latest();
  if (pin == nullptr) {
    pins_expired_.fetch_add(1, std::memory_order_relaxed);
    throw SnapshotEvicted("latest boundary unavailable (persistent re-org churn)");
  }
  return pin;
}

Node::Pin Node::pin_at(std::uint64_t block) const {
  require_read_path();
  Pin pin = snapshots_.at(block);
  if (pin != nullptr) return pin;
  pins_expired_.fetch_add(1, std::memory_order_relaxed);
  // Explain WHY the pin failed — the distinction matters to clients
  // (retry later vs. gone forever vs. never existed on this chain).
  std::string reason = "snapshot evicted: block " + std::to_string(block);
  const std::optional<std::uint64_t> head = snapshots_.head_number();
  if (!head.has_value()) {
    reason += " (nothing published yet)";
  } else if (block > *head) {
    reason += " is beyond the newest accepted boundary " + std::to_string(*head);
  } else {
    reason += " left the retention window (head " + std::to_string(*head) + ", retain " +
              std::to_string(snapshots_.retain()) + ") or was re-orged away";
  }
  throw SnapshotEvicted(reason);
}

Node::Pin Node::pin_no_older_than(std::uint64_t block, std::chrono::milliseconds timeout) const {
  require_read_path();
  const auto deadline = Clock::now() + timeout;
  // wait_for_head returning true only means block N WAS published; a
  // re-org between the wake-up and the pin can drop the head again, so
  // re-check what was actually pinned and go back to waiting if it is
  // too old. The loop is bounded by the deadline.
  while (snapshots_.wait_for_head(block, deadline)) {
    Pin pin = snapshots_.latest();
    if (pin != nullptr && pin->number >= block) return pin;
    if (Clock::now() >= deadline) break;
  }
  pins_expired_.fetch_add(1, std::memory_order_relaxed);
  throw SnapshotEvicted("read-your-writes pin: block " + std::to_string(block) +
                        " not published within " + std::to_string(timeout.count()) + "ms");
}

core::QueryOutcome Node::query_pinned(const Pin& pin, const core::QueryFn& fn) const {
  require_read_path();
  if (pin == nullptr) throw std::logic_error("query_pinned on a null pin");
  const core::QueryOutcome outcome = core::run_query(pin->snapshot, config_.query, fn);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  query_gas_used_.fetch_add(outcome.gas_used, std::memory_order_relaxed);
  return outcome;
}

core::QueryOutcome Node::query_latest(const core::QueryFn& fn) const {
  return query_pinned(pin_latest(), fn);
}

core::QueryOutcome Node::query_at(std::uint64_t block, const core::QueryFn& fn) const {
  return query_pinned(pin_at(block), fn);
}

core::QueryOutcome Node::query_call(const chain::Transaction& tx) const {
  const Pin pin = pin_latest();
  const core::QueryOutcome outcome = core::run_query_call(pin->snapshot, config_.query, tx);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  query_gas_used_.fetch_add(outcome.gas_used, std::memory_order_relaxed);
  return outcome;
}

}  // namespace concord::node
