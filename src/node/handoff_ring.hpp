#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "chain/block.hpp"
#include "util/sha256.hpp"
#include "vm/world.hpp"

namespace concord::node {

/// One mined-but-unvalidated block in flight between the pipeline
/// stages, together with everything needed to unwind it: the immutable
/// world state the block was mined FROM (its parent boundary) and the
/// post-state root it claims to produce. When the validator rejects the
/// block, the pre-state snapshot is the recovery point both stages
/// re-materialize from; when it accepts, the snapshot handle is simply
/// dropped. `pre_state` may be an empty handle when the pipeline runs
/// with recovery disabled (NodeConfig::halt_on_rejection) — rejection is
/// then fatal and nothing needs unwinding.
struct InFlightBlock {
  chain::Block block;
  vm::WorldSnapshot pre_state;       ///< World at the block's parent boundary.
  util::Hash256 expected_post_root;  ///< block.header.state_root, denormalized
                                     ///< so the re-org diagnostics can name the
                                     ///< rejected claim after the block itself
                                     ///< was moved into (and consumed by) the
                                     ///< validator.
};

/// Where a re-org lands: the last *accepted* boundary. The consumer
/// fills this in when it rejects a block; the producer collects it when
/// it acknowledges the abort, re-materializes its world from `world` and
/// resumes mining on top of `parent`.
struct RecoveryPoint {
  vm::WorldSnapshot world;  ///< State at the last accepted block boundary.
  chain::Block parent;      ///< The last accepted block (the new mining parent).
};

/// Lifetime counters for one ring (all fields monotone).
struct HandoffRingStats {
  std::size_t high_water = 0;             ///< Max entries in flight at once.
  std::uint64_t delivered = 0;            ///< Entries accepted into the ring.
  std::uint64_t aborts = 0;               ///< Re-orgs (abort_and_drain calls).
  std::uint64_t drained_blocks = 0;       ///< Speculative suffix entries discarded.
  std::uint64_t drained_transactions = 0; ///< Transactions inside those entries.
};

/// Bounded SPSC ring of in-flight blocks between the miner (producer)
/// and the validator (consumer). The depth is how far mining may run
/// ahead of validation — depth 1 degenerates to the original handoff
/// slot. Mutex + condition variables rather than a lock-free ring:
/// traffic is one block at a time, and the abort handshake below wants
/// the linearization a single mutex gives for free.
///
/// Abort protocol (single outstanding abort by construction):
///  1. The consumer rejects entry N and calls abort_and_drain(point):
///     every queued entry is discarded (all were mined on top of N), the
///     recovery point is published, the abort flag raised, and a
///     producer blocked in push() is woken.
///  2. The producer observes the flag — either as a failed push
///     (kAborted: the pushed entry was part of the doomed suffix and is
///     NOT delivered) or via abort_requested() before mining its next
///     batch — and calls acknowledge_abort(), which hands back the
///     recovery point and reopens the ring.
///  3. The consumer meanwhile waits in pop() for the first
///     post-recovery block. It cannot reject a block it has not seen,
///     so a second abort cannot be raised before the first is
///     acknowledged; one flag suffices.
class HandoffRing {
 public:
  enum class PushOutcome : std::uint8_t {
    kDelivered,  ///< Entry queued for the consumer.
    kAborted,    ///< Re-org pending: entry discarded; acknowledge_abort().
    kClosed,     ///< Ring closed; entry discarded, stop producing.
  };

  struct DrainResult {
    std::size_t blocks = 0;
    std::size_t transactions = 0;
  };

  explicit HandoffRing(std::size_t depth) : depth_(depth) {
    if (depth == 0) throw std::invalid_argument("handoff ring: depth must be >= 1");
  }

  HandoffRing(const HandoffRing&) = delete;
  HandoffRing& operator=(const HandoffRing&) = delete;

  /// Producer. Blocks while the ring is full; this wait is the
  /// pipeline's stall time when validation is the bottleneck.
  [[nodiscard]] PushOutcome push(InFlightBlock entry) {
    std::unique_lock lk(mu_);
    space_.wait(lk, [&] { return ring_.size() < depth_ || abort_pending_ || closed_; });
    if (abort_pending_) return PushOutcome::kAborted;
    if (closed_) return PushOutcome::kClosed;
    ring_.push_back(std::move(entry));
    stats_.high_water = std::max(stats_.high_water, ring_.size());
    ++stats_.delivered;
    lk.unlock();
    filled_.notify_one();
    return PushOutcome::kDelivered;
  }

  /// Consumer. Blocks until an entry is available — the pipeline's stall
  /// time when mining is the bottleneck — or the ring is closed and
  /// drained (nullopt, the shutdown signal). While an abort is pending
  /// the ring is empty and stays empty, so this also waits out the
  /// recovery handshake and returns the first post-recovery block.
  [[nodiscard]] std::optional<InFlightBlock> pop() {
    std::unique_lock lk(mu_);
    filled_.wait(lk, [&] { return !ring_.empty() || closed_; });
    if (ring_.empty()) return std::nullopt;
    InFlightBlock entry = std::move(ring_.front());
    ring_.pop_front();
    lk.unlock();
    space_.notify_one();
    return entry;
  }

  /// Consumer, after rejecting the block it holds: discard the queued
  /// suffix (every entry was mined on top of the rejected block),
  /// publish the recovery point and flag the producer. Returns what was
  /// discarded so the caller can account for the dropped transactions.
  DrainResult abort_and_drain(RecoveryPoint point) {
    DrainResult result;
    {
      std::scoped_lock lk(mu_);
      if (abort_pending_) throw std::logic_error("handoff ring: abort already pending");
      for (const InFlightBlock& entry : ring_) {
        ++result.blocks;
        result.transactions += entry.block.transactions.size();
      }
      ring_.clear();
      abort_pending_ = true;
      recovery_ = std::move(point);
      ++stats_.aborts;
      stats_.drained_blocks += result.blocks;
      stats_.drained_transactions += result.transactions;
    }
    space_.notify_all();
    return result;
  }

  /// Producer. True while a re-org is waiting to be acknowledged. Check
  /// between batches so a doomed parent is not mined on a second time.
  [[nodiscard]] bool abort_requested() const {
    std::scoped_lock lk(mu_);
    return abort_pending_;
  }

  /// Producer. Completes the handshake: clears the flag, reopens pushes
  /// and returns the recovery point to resume from. Throws when no abort
  /// is pending (a protocol bug, not a race — see class comment).
  [[nodiscard]] RecoveryPoint acknowledge_abort() {
    std::scoped_lock lk(mu_);
    if (!abort_pending_) throw std::logic_error("handoff ring: no abort to acknowledge");
    abort_pending_ = false;
    RecoveryPoint point = std::move(*recovery_);
    recovery_.reset();
    return point;
  }

  /// Either side. Producer: end-of-stream — the consumer drains what is
  /// queued, then pop() returns nullopt. Consumer (fatal halt): wakes a
  /// producer blocked in push() with kClosed. Idempotent.
  void close() {
    {
      std::scoped_lock lk(mu_);
      closed_ = true;
    }
    space_.notify_all();
    filled_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return ring_.size();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lk(mu_);
    return closed_;
  }

  [[nodiscard]] HandoffRingStats stats() const {
    std::scoped_lock lk(mu_);
    return stats_;
  }

 private:
  std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable space_;   ///< Producer waits here: ring full.
  std::condition_variable filled_;  ///< Consumer waits here: ring empty.
  std::deque<InFlightBlock> ring_;  ///< Front = oldest in-flight block.
  bool closed_ = false;
  bool abort_pending_ = false;
  std::optional<RecoveryPoint> recovery_;
  HandoffRingStats stats_;
};

}  // namespace concord::node
