#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "vm/world.hpp"

namespace concord::node {

/// One accepted block boundary as published to readers: the boundary's
/// number and its frozen world (root seeded from the verified header, so
/// readers never pay the O(state) hash). Readers hold these via
/// shared_ptr — a held pointer IS a pin: eviction from the ring only
/// drops the ring's reference, never the state under an active reader.
struct PublishedBoundary {
  std::uint64_t number = 0;
  vm::WorldSnapshot snapshot;
};

/// Thrown by the pinning API when "as of block N" cannot be served: N is
/// beyond the head, was evicted by the retention window, or disappeared
/// in a re-org. Explicitly NOT a torn read — the ring either returns a
/// complete boundary or nothing.
class SnapshotEvicted : public std::runtime_error {
 public:
  explicit SnapshotEvicted(const std::string& reason) : std::runtime_error(reason) {}
};

/// The MVCC retention window: the last K accepted boundaries, published
/// by exactly one writer (whichever thread runs validate-and-append —
/// the validator stage when pipelined, the main loop otherwise) and read
/// by any number of query threads with no locks.
///
/// Layout: K slots of atomic<shared_ptr<const PublishedBoundary>>, slot
/// number % K, plus an atomic head block number. Publishing stores the
/// slot, then advances head (release); a reader loads head (acquire),
/// checks the window, loads the slot, and verifies the entry's number
/// still matches — a concurrent wrap-around overwrite makes the numbers
/// disagree and the reader simply misses (correct: that boundary left
/// the window). rewind_to() handles re-orgs by clearing the abandoned
/// suffix BEFORE lowering head, so readers never see a head that
/// promises a slot holding a dead branch's state.
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t retain)
      : retain_(retain == 0 ? 1 : retain),
        slots_(std::make_unique<Slot[]>(retain == 0 ? 1 : retain)) {}

  SnapshotRing(const SnapshotRing&) = delete;
  SnapshotRing& operator=(const SnapshotRing&) = delete;

  [[nodiscard]] std::size_t retain() const noexcept { return retain_; }

  /// Publishes boundary `number`. Single-writer; numbers must be
  /// monotonically increasing between rewinds (the chain append order).
  void publish(std::uint64_t number, vm::WorldSnapshot snapshot) {
    auto entry = std::make_shared<const PublishedBoundary>(
        PublishedBoundary{number, std::move(snapshot)});
    slots_[slot_of(number)].store(std::move(entry), std::memory_order_release);
    head_.store(number, std::memory_order_release);
    // Wake read-your-writes waiters (wait_for_head). The empty critical
    // section orders the head store before the notify against a waiter
    // that checked the predicate just before blocking.
    {
      std::scoped_lock lk(wait_mu_);
    }
    head_advanced_.notify_all();
    ++published_;
    const std::size_t resident = static_cast<std::size_t>(std::min<std::uint64_t>(
        number + 1, static_cast<std::uint64_t>(retain_)));
    if (resident > high_water_) high_water_ = resident;
  }

  /// The boundary for block `number`, or nullptr when it is outside the
  /// window (never published, already evicted, or re-orged away).
  [[nodiscard]] std::shared_ptr<const PublishedBoundary> at(std::uint64_t number) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head == kEmpty || number > head) return nullptr;
    if (number + retain_ <= head) return nullptr;  // Evicted by the window.
    auto entry = slots_[slot_of(number)].load(std::memory_order_acquire);
    if (entry == nullptr || entry->number != number) return nullptr;  // Lost a wrap race.
    return entry;
  }

  /// The newest published boundary, or nullptr when nothing is published
  /// yet. Bounded retry: between the head load and the slot load the
  /// writer may lap us, in which case the slot holds an even NEWER
  /// boundary — acceptable for "latest" — so only a cleared slot
  /// (mid-rewind) retries.
  [[nodiscard]] std::shared_ptr<const PublishedBoundary> latest() const {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      if (head == kEmpty) return nullptr;
      auto entry = slots_[slot_of(head)].load(std::memory_order_acquire);
      if (entry != nullptr && entry->number >= head) return entry;
    }
    return nullptr;  // Persistent rewind churn; callers treat as evicted.
  }

  /// Re-org: drop every boundary above `number` (the surviving tip),
  /// keeping the rest of the window intact. Single-writer, same thread
  /// as publish().
  void rewind_to(std::uint64_t number) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == kEmpty || head <= number) return;
    // Clear the abandoned suffix first: a reader that still sees the old
    // head finds empty slots (miss, retry latest()), never stale state.
    const std::uint64_t clear_from =
        head - number > retain_ ? head - retain_ + 1 : number + 1;
    for (std::uint64_t n = clear_from; n <= head; ++n) {
      slots_[slot_of(n)].store(nullptr, std::memory_order_release);
    }
    head_.store(number, std::memory_order_release);
  }

  /// Read-your-writes support: blocks until the head reaches `number`
  /// (true) or the deadline passes (false). A true return means block
  /// `number` WAS published; whether it is still in the window is the
  /// caller's pin to win — under re-org churn the head can drop again,
  /// which is why Node::pin_no_older_than re-checks the pin it gets.
  [[nodiscard]] bool wait_for_head(std::uint64_t number,
                                   std::chrono::steady_clock::time_point deadline) const {
    std::unique_lock lk(wait_mu_);
    return head_advanced_.wait_until(lk, deadline, [&] {
      const std::uint64_t head = head_.load(std::memory_order_acquire);
      return head != kEmpty && head >= number;
    });
  }

  /// Newest published block number (nullopt before the first publish).
  [[nodiscard]] std::optional<std::uint64_t> head_number() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head == kEmpty) return std::nullopt;
    return head;
  }

  /// Lifetime publish count and the most boundaries ever simultaneously
  /// resident (≤ retain). Writer-thread accuracy; diagnostic.
  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::size_t retained_high_water() const noexcept { return high_water_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;
  using Slot = std::atomic<std::shared_ptr<const PublishedBoundary>>;

  [[nodiscard]] std::size_t slot_of(std::uint64_t number) const noexcept {
    return static_cast<std::size_t>(number % retain_);
  }

  std::size_t retain_;
  std::unique_ptr<Slot[]> slots_;  ///< atomics are non-movable; vector won't do.
  std::atomic<std::uint64_t> head_{kEmpty};
  mutable std::mutex wait_mu_;                      ///< Guards only the cv below.
  mutable std::condition_variable head_advanced_;   ///< wait_for_head sleepers.
  std::uint64_t published_ = 0;    ///< Writer-thread only.
  std::size_t high_water_ = 0;     ///< Writer-thread only.
};

}  // namespace concord::node
