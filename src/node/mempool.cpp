#include "node/mempool.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace concord::node {

Mempool::Mempool(BatchPolicy policy, std::size_t capacity, std::uint32_t shards)
    : policy_(policy), capacity_(capacity), shards_(shards) {
  if (policy_.target_txs == 0) {
    throw std::invalid_argument("mempool: target_txs must be positive");
  }
  if (capacity_ != 0 && capacity_ < policy_.target_txs) {
    throw std::invalid_argument(
        "mempool: capacity smaller than target_txs would deadlock producers "
        "against a batch that can never fill");
  }
  if (shards_ == 0) {
    throw std::invalid_argument("mempool: shards must be positive");
  }
  queues_.resize(shards_);
  shard_stats_.resize(shards_);
}

bool Mempool::entry_before(const Entry& a, const Entry& b) const noexcept {
  if (policy_.content_order && a.content != b.content) return a.content < b.content;
  return a.seq < b.seq;  // Arrival order; also the duplicate tiebreak.
}

void Mempool::enqueue(std::uint32_t shard, Entry entry) {
  auto& q = queues_[shard];
  if (policy_.content_order) {
    // Canonical order is not arrival order: insert at the sorted position.
    const auto pos =
        std::lower_bound(q.begin(), q.end(), entry, [this](const Entry& a, const Entry& b) {
          return entry_before(a, b);
        });
    q.insert(pos, std::move(entry));
  } else if (!q.empty() && entry.seq < q.front().seq) {
    q.push_front(std::move(entry));  // Requeued entries carry front stamps.
  } else {
    q.push_back(std::move(entry));
  }
  ++count_;
  ShardStats& ss = shard_stats_[shard];
  ss.high_water = std::max(ss.high_water, q.size());
  stats_.high_water = std::max(stats_.high_water, count_);
}

bool Mempool::submit(chain::Transaction tx) {
  std::unique_lock lk(mu_);
  space_available_.wait(lk,
                        [this] { return closed_ || capacity_ == 0 || count_ < capacity_; });
  if (closed_) {
    ++stats_.rejected;
    return false;
  }
  Entry entry;
  if (policy_.content_order) entry.content = tx.hash();
  entry.seq = next_seq_++;
  queued_gas_ += tx.gas_limit;
  const std::uint32_t shard = shard_of(tx, shards_);
  ++stats_.submitted;
  ++shard_stats_[shard].submitted;
  entry.tx = std::move(tx);
  enqueue(shard, std::move(entry));
  lk.unlock();
  batch_available_.notify_one();
  return true;
}

std::size_t Mempool::submit_many(std::vector<chain::Transaction> txs) {
  std::size_t accepted = 0;
  for (auto& tx : txs) {
    if (!submit(std::move(tx))) {
      // submit() counted the rejection that stopped us; the undelivered
      // tail is dropped here, so it is rejected traffic too.
      const std::size_t dropped = txs.size() - accepted - 1;
      if (dropped > 0) {
        std::scoped_lock lk(mu_);
        stats_.rejected += dropped;
      }
      break;
    }
    ++accepted;
  }
  return accepted;
}

void Mempool::requeue_front(const std::vector<chain::Transaction>& txs) {
  if (txs.empty()) return;
  {
    std::scoped_lock lk(mu_);
    // Stamp the batch with seqs just below the current global front, in
    // the given order, then insert back-to-front so each shard queue
    // receives its members via push_front in the right relative order.
    front_seq_ -= static_cast<std::int64_t>(txs.size());
    for (std::size_t k = txs.size(); k-- > 0;) {
      Entry entry;
      if (policy_.content_order) entry.content = txs[k].hash();
      entry.seq = front_seq_ + static_cast<std::int64_t>(k);
      queued_gas_ += txs[k].gas_limit;
      const std::uint32_t shard = shard_of(txs[k], shards_);
      ++stats_.requeued;
      ++shard_stats_[shard].requeued;
      entry.tx = txs[k];
      enqueue(shard, std::move(entry));
    }
  }
  batch_available_.notify_one();
}

std::optional<std::vector<chain::Transaction>> Mempool::next_batch() {
  std::unique_lock lk(mu_);
  batch_available_.wait(lk, [this] { return batch_ready() || closed_; });
  if (count_ == 0) return std::nullopt;  // Closed and fully drained.
  auto window = cut_window();
  ++stats_.batches;
  lk.unlock();
  space_available_.notify_all();
  std::vector<chain::Transaction> batch;
  batch.reserve(window.size());
  for (auto& [shard, tx] : window) batch.push_back(std::move(tx));
  return batch;
}

std::optional<Mempool::Window> Mempool::next_window() {
  std::unique_lock lk(mu_);
  batch_available_.wait(lk, [this] { return batch_ready() || closed_; });
  if (count_ == 0) return std::nullopt;  // Closed and fully drained.
  auto window = cut_window();
  ++stats_.batches;
  lk.unlock();
  space_available_.notify_all();
  Window w;
  w.lanes.resize(shards_);
  w.transactions = window.size();
  for (auto& [shard, tx] : window) w.lanes[shard].push_back(std::move(tx));
  return w;
}

void Mempool::close() {
  {
    std::scoped_lock lk(mu_);
    closed_ = true;
  }
  batch_available_.notify_all();
  space_available_.notify_all();
}

bool Mempool::closed() const {
  std::scoped_lock lk(mu_);
  return closed_;
}

std::size_t Mempool::size() const {
  std::scoped_lock lk(mu_);
  return count_;
}

MempoolStats Mempool::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

std::vector<ShardStats> Mempool::shard_stats() const {
  std::scoped_lock lk(mu_);
  return shard_stats_;
}

bool Mempool::batch_ready() const {
  // Both cut rules are monotone in queue content (a complete prefix stays
  // complete as more transactions arrive), so batch boundaries depend only
  // on the submission order, never on consumer/producer timing. Gas
  // readiness compares the running queue total: gas limits are
  // non-negative, so total ≥ target implies some prefix reaches the
  // target — no per-wakeup queue walk needed.
  if (count_ >= policy_.target_txs) return true;
  return policy_.target_gas != 0 && queued_gas_ >= policy_.target_gas;
}

std::vector<std::pair<std::uint32_t, chain::Transaction>> Mempool::cut_window() {
  std::vector<std::pair<std::uint32_t, chain::Transaction>> window;
  std::uint64_t gas = 0;
  while (count_ > 0 && window.size() < policy_.target_txs) {
    // Global-order front: the smallest head across the shard queues.
    std::uint32_t best = shards_;
    for (std::uint32_t s = 0; s < shards_; ++s) {
      if (queues_[s].empty()) continue;
      if (best == shards_ || entry_before(queues_[s].front(), queues_[best].front())) {
        best = s;
      }
    }
    Entry entry = std::move(queues_[best].front());
    queues_[best].pop_front();
    --count_;
    gas += entry.tx.gas_limit;
    queued_gas_ -= entry.tx.gas_limit;
    ++shard_stats_[best].cut;
    window.emplace_back(best, std::move(entry.tx));
    if (policy_.target_gas != 0 && gas >= policy_.target_gas) break;
  }
  return window;
}

}  // namespace concord::node
