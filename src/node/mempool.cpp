#include "node/mempool.hpp"

#include <algorithm>
#include <stdexcept>

namespace concord::node {

Mempool::Mempool(BatchPolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity) {
  if (policy_.target_txs == 0) {
    throw std::invalid_argument("mempool: target_txs must be positive");
  }
  if (capacity_ != 0 && capacity_ < policy_.target_txs) {
    throw std::invalid_argument(
        "mempool: capacity smaller than target_txs would deadlock producers "
        "against a batch that can never fill");
  }
}

bool Mempool::submit(chain::Transaction tx) {
  std::unique_lock lk(mu_);
  space_available_.wait(
      lk, [this] { return closed_ || capacity_ == 0 || queue_.size() < capacity_; });
  if (closed_) {
    ++stats_.rejected;
    return false;
  }
  queued_gas_ += tx.gas_limit;
  queue_.push_back(std::move(tx));
  ++stats_.submitted;
  stats_.high_water = std::max(stats_.high_water, queue_.size());
  lk.unlock();
  batch_available_.notify_one();
  return true;
}

std::size_t Mempool::submit_many(std::vector<chain::Transaction> txs) {
  std::size_t accepted = 0;
  for (auto& tx : txs) {
    if (!submit(std::move(tx))) {
      // submit() counted the rejection that stopped us; the undelivered
      // tail is dropped here, so it is rejected traffic too.
      const std::size_t dropped = txs.size() - accepted - 1;
      if (dropped > 0) {
        std::scoped_lock lk(mu_);
        stats_.rejected += dropped;
      }
      break;
    }
    ++accepted;
  }
  return accepted;
}

std::optional<std::vector<chain::Transaction>> Mempool::next_batch() {
  std::unique_lock lk(mu_);
  batch_available_.wait(lk, [this] { return batch_ready() || closed_; });
  if (queue_.empty()) return std::nullopt;  // Closed and fully drained.
  std::vector<chain::Transaction> batch = cut_batch();
  ++stats_.batches;
  lk.unlock();
  space_available_.notify_all();
  return batch;
}

void Mempool::close() {
  {
    std::scoped_lock lk(mu_);
    closed_ = true;
  }
  batch_available_.notify_all();
  space_available_.notify_all();
}

bool Mempool::closed() const {
  std::scoped_lock lk(mu_);
  return closed_;
}

std::size_t Mempool::size() const {
  std::scoped_lock lk(mu_);
  return queue_.size();
}

MempoolStats Mempool::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

bool Mempool::batch_ready() const {
  // Both cut rules are monotone in queue content (a complete prefix stays
  // complete as more transactions arrive), so batch boundaries depend only
  // on the submission order, never on consumer/producer timing. Gas
  // readiness compares the running queue total: gas limits are
  // non-negative, so total ≥ target implies some prefix reaches the
  // target — no per-wakeup queue walk needed.
  if (queue_.size() >= policy_.target_txs) return true;
  return policy_.target_gas != 0 && queued_gas_ >= policy_.target_gas;
}

std::vector<chain::Transaction> Mempool::cut_batch() {
  std::vector<chain::Transaction> batch;
  std::uint64_t gas = 0;
  while (!queue_.empty() && batch.size() < policy_.target_txs) {
    gas += queue_.front().gas_limit;
    queued_gas_ -= queue_.front().gas_limit;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (policy_.target_gas != 0 && gas >= policy_.target_gas) break;
  }
  return batch;
}

}  // namespace concord::node
