#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "chain/transaction.hpp"
#include "stm/lock_table.hpp"
#include "util/sha256.hpp"

namespace concord::node {

/// The deterministic shard router: which of `shards` producer lanes a
/// transaction belongs to. A pure function of transaction *content* —
/// the contract's lock-space partition (stm::lock_partition_of over the
/// contract address digest) — so the same transaction routes identically
/// on every node, in every arrival order, at every queue depth. All of a
/// contract's field locks share its partition, which is what keeps each
/// mining lane's lock traffic inside its own slice of the lock space.
[[nodiscard]] inline std::uint32_t shard_of(const chain::Transaction& tx,
                                            std::uint32_t shards) noexcept {
  return stm::lock_partition_of(tx.contract.stable_hash(), shards);
}

/// When the mempool cuts a block-sized batch. A batch closes as soon as
/// either target is reached; gas is accumulated from each transaction's
/// gas_limit (the only a-priori cost bound a node has before executing).
/// Both policies cut on queue *content*, never on timing, so a given
/// submission order always yields the same batch boundaries — the node's
/// determinism guarantee starts here.
struct BatchPolicy {
  std::size_t target_txs = 100;  ///< Cut after this many transactions.
  /// 0 = no gas bound; else cut at the first transaction whose gas_limit
  /// brings the batch to or past the target (so a batch may overshoot by
  /// up to one transaction's gas_limit — the target is a trigger, not a
  /// hard ceiling).
  std::uint64_t target_gas = 0;
  /// Canonical content ordering: queue and cut in transaction-hash order
  /// instead of arrival order. With this, the batches a given queue
  /// *content* yields are independent even of the submission order — the
  /// strongest determinism the pool offers (the shard-router purity tests
  /// run on it). Off by default: arrival-order FIFO is the fair policy a
  /// real ingress wants, and it is still a pure function of the
  /// submission order.
  bool content_order = false;
};

/// Per-shard slice of the pool's lifetime traffic — the backpressure
/// view of one routing lane.
struct ShardStats {
  std::uint64_t submitted = 0;  ///< Transactions routed to this shard.
  std::uint64_t cut = 0;        ///< Transactions handed to the miner.
  /// Cross-shard merge losers re-queued into this shard.
  std::uint64_t requeued = 0;
  std::size_t high_water = 0;   ///< Max transactions queued in this shard.
};

/// Counters describing the pool's lifetime traffic.
struct MempoolStats {
  std::uint64_t submitted = 0;   ///< Transactions accepted by submit().
  /// Transactions refused because the pool was closed — including the
  /// undelivered tail of a submit_many() stopped mid-stream.
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;     ///< Batches/windows handed to the miner.
  /// Transactions re-entered through requeue_front() (cross-shard merge
  /// losers taking another lap).
  std::uint64_t requeued = 0;
  std::size_t high_water = 0;    ///< Max transactions queued at once.
};

/// Thread-safe transaction queue with block batching — the node's
/// ingress stage. Any number of producer threads submit(); one miner
/// thread consumes next_batch()/next_window(). Producers block while the
/// pool is at capacity (backpressure instead of unbounded memory under
/// sustained overload); the consumer blocks until a full batch is
/// available or the pool is closed, at which point the remainder drains
/// as a final short batch.
///
/// Internally the queue is striped by the deterministic shard router:
/// submit() routes each transaction to shard_of(tx) and each shard keeps
/// its own ordered queue plus backpressure stats. Batch boundaries stay
/// global — a window is the policy-sized prefix of the pool's global
/// order (arrival seq, or content hash under BatchPolicy::content_order)
/// regardless of how it spreads across shards — so a 1-shard pool cuts
/// exactly the batches the pre-shard FIFO pool did.
class Mempool {
 public:
  /// A window: one global batch cut, partitioned by the shard router.
  /// lanes[s] holds the window's shard-s transactions in window order;
  /// lanes.size() == shards(). The flat window (lanes merged back by
  /// global order) is what next_batch() returns.
  struct Window {
    std::vector<std::vector<chain::Transaction>> lanes;
    std::size_t transactions = 0;  ///< Total across lanes.
  };

  /// `capacity` == 0 means unbounded (no producer backpressure). A
  /// bounded capacity must fit a full tx-count batch — otherwise
  /// producers would block at capacity while next_batch() waits for a
  /// count that can never be reached (throws std::invalid_argument).
  /// A target_gas unreachable within `capacity` transactions deadlocks
  /// the same way; the tx-count target (always enforced) is the cap's
  /// safety net, so keep target_txs ≤ capacity sized realistically.
  /// `shards` ≥ 1 is the routing fan-out (throws on 0).
  explicit Mempool(BatchPolicy policy = {}, std::size_t capacity = 0, std::uint32_t shards = 1);

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  /// Enqueues one transaction, blocking while the pool is full. Returns
  /// false (and drops the transaction) when the pool is closed.
  bool submit(chain::Transaction tx);

  /// Enqueues a stream in order; returns how many were accepted (all of
  /// them unless the pool closes mid-stream, in which case the whole
  /// undelivered tail counts as rejected).
  std::size_t submit_many(std::vector<chain::Transaction> txs);

  /// Re-enters transactions at the FRONT of the global order (before
  /// everything currently queued), preserving their given order — the
  /// shard merge's loser lap. Deliberately exempt from both the closed
  /// flag and the capacity gate: losers already consumed ingress
  /// capacity once, and the mining stage must never block on its own
  /// requeue. Under content_order the transactions simply re-enter the
  /// canonical order instead (front position is meaningless there).
  void requeue_front(const std::vector<chain::Transaction>& txs);

  /// Blocks until a policy-complete batch is available, then pops it off
  /// the queue front. After close(), drains whatever remains as one final
  /// (possibly short) batch; returns nullopt once closed *and* empty —
  /// the miner's shutdown signal.
  [[nodiscard]] std::optional<std::vector<chain::Transaction>> next_batch();

  /// The sharded flavor of next_batch(): the same global cut, delivered
  /// pre-partitioned into per-shard lanes for parallel mining. Identical
  /// blocking/drain semantics.
  [[nodiscard]] std::optional<Window> next_window();

  /// Stops accepting submissions and wakes every waiter. Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const BatchPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  [[nodiscard]] MempoolStats stats() const;
  /// Per-shard traffic/backpressure counters, indexed by shard.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

 private:
  /// One queued transaction with its global-order key. `seq` is the
  /// arrival sequence (negative for requeued front entries); `content`
  /// is the transaction hash, computed only under content_order.
  struct Entry {
    util::Hash256 content{};
    std::int64_t seq = 0;
    chain::Transaction tx;
  };

  /// Caller holds mu_. Global-order comparison between two queue heads.
  [[nodiscard]] bool entry_before(const Entry& a, const Entry& b) const noexcept;

  /// Caller holds mu_. Inserts into the shard's queue at the position the
  /// global order dictates (push_back for FIFO arrivals, sorted insert
  /// otherwise) and maintains counters.
  void enqueue(std::uint32_t shard, Entry entry);

  /// Caller holds mu_. True when the queued content satisfies the policy.
  [[nodiscard]] bool batch_ready() const;

  /// Caller holds mu_. Pops the policy-sized global-order prefix across
  /// all shard queues; `.first` of each element is the source shard.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, chain::Transaction>> cut_window();

  BatchPolicy policy_;
  std::size_t capacity_;
  std::uint32_t shards_;

  mutable std::mutex mu_;
  std::condition_variable space_available_;  ///< Producers wait here when full.
  std::condition_variable batch_available_;  ///< The miner waits here when starved.
  std::vector<std::deque<Entry>> queues_;    ///< One ordered queue per shard.
  std::size_t count_ = 0;         ///< Total queued across shards.
  std::uint64_t queued_gas_ = 0;  ///< Sum of gas_limit over queues (O(1) readiness check).
  std::int64_t next_seq_ = 0;     ///< Arrival stamps count up…
  std::int64_t front_seq_ = 0;    ///< …requeue stamps count down.
  bool closed_ = false;
  MempoolStats stats_;
  std::vector<ShardStats> shard_stats_;
};

}  // namespace concord::node
