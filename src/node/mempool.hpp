#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "chain/transaction.hpp"

namespace concord::node {

/// When the mempool cuts a block-sized batch. A batch closes as soon as
/// either target is reached; gas is accumulated from each transaction's
/// gas_limit (the only a-priori cost bound a node has before executing).
/// Both policies cut on queue *content*, never on timing, so a given
/// submission order always yields the same batch boundaries — the node's
/// determinism guarantee starts here.
struct BatchPolicy {
  std::size_t target_txs = 100;  ///< Cut after this many transactions.
  /// 0 = no gas bound; else cut at the first transaction whose gas_limit
  /// brings the batch to or past the target (so a batch may overshoot by
  /// up to one transaction's gas_limit — the target is a trigger, not a
  /// hard ceiling).
  std::uint64_t target_gas = 0;
};

/// Counters describing the pool's lifetime traffic.
struct MempoolStats {
  std::uint64_t submitted = 0;   ///< Transactions accepted by submit().
  /// Transactions refused because the pool was closed — including the
  /// undelivered tail of a submit_many() stopped mid-stream.
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;     ///< Batches handed to the miner.
  std::size_t high_water = 0;    ///< Max transactions queued at once.
};

/// Thread-safe FIFO transaction queue with block batching — the node's
/// ingress stage. Any number of producer threads submit(); one miner
/// thread consumes next_batch(). Producers block while the pool is at
/// capacity (backpressure instead of unbounded memory under sustained
/// overload); the consumer blocks until a full batch is available or the
/// pool is closed, at which point the remainder drains as a final short
/// batch.
class Mempool {
 public:
  /// `capacity` == 0 means unbounded (no producer backpressure). A
  /// bounded capacity must fit a full tx-count batch — otherwise
  /// producers would block at capacity while next_batch() waits for a
  /// count that can never be reached (throws std::invalid_argument).
  /// A target_gas unreachable within `capacity` transactions deadlocks
  /// the same way; the tx-count target (always enforced) is the cap's
  /// safety net, so keep target_txs ≤ capacity sized realistically.
  explicit Mempool(BatchPolicy policy = {}, std::size_t capacity = 0);

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  /// Enqueues one transaction, blocking while the pool is full. Returns
  /// false (and drops the transaction) when the pool is closed.
  bool submit(chain::Transaction tx);

  /// Enqueues a stream in order; returns how many were accepted (all of
  /// them unless the pool closes mid-stream, in which case the whole
  /// undelivered tail counts as rejected).
  std::size_t submit_many(std::vector<chain::Transaction> txs);

  /// Blocks until a policy-complete batch is available, then pops it off
  /// the queue front. After close(), drains whatever remains as one final
  /// (possibly short) batch; returns nullopt once closed *and* empty —
  /// the miner's shutdown signal.
  [[nodiscard]] std::optional<std::vector<chain::Transaction>> next_batch();

  /// Stops accepting submissions and wakes every waiter. Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const BatchPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] MempoolStats stats() const;

 private:
  /// Caller holds mu_. True when the queue front satisfies the policy.
  [[nodiscard]] bool batch_ready() const;

  /// Caller holds mu_. Pops the policy-sized prefix off the queue.
  [[nodiscard]] std::vector<chain::Transaction> cut_batch();

  BatchPolicy policy_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable space_available_;  ///< Producers wait here when full.
  std::condition_variable batch_available_;  ///< The miner waits here when starved.
  std::deque<chain::Transaction> queue_;
  std::uint64_t queued_gas_ = 0;  ///< Sum of gas_limit over queue_ (O(1) readiness check).
  bool closed_ = false;
  MempoolStats stats_;
};

}  // namespace concord::node
