#pragma once

#include <string>
#include <string_view>

namespace concord::util {

/// Escapes `raw` for embedding inside a JSON string literal: quotes,
/// backslashes and control characters per RFC 8259. Shared by the bench
/// harness's JSON sink and ConcordSan's DetectReport export, so free-form
/// text (workload names, violation details) can't corrupt a results file.
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace concord::util
