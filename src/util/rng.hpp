#pragma once

#include <array>
#include <cstdint>

namespace concord::util {

/// Deterministic 64-bit PRNG (xoshiro256** by Blackman & Vigna).
///
/// All workload generation and all synthetic "VM work" in this repository
/// flow through this generator so that every experiment is reproducible
/// from a seed. `std::mt19937_64` is avoided because its state is large
/// and its distributions are not guaranteed to be identical across
/// standard-library implementations; xoshiro256** has a fixed, documented
/// output sequence.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64,
  /// which is the initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed`, as if freshly constructed.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be non-zero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial: true with probability `percent`/100.
  bool chance_percent(unsigned percent) noexcept {
    return below(100) < percent;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace concord::util
