#pragma once

#include <cstdint>

namespace concord::util {

/// Deterministic CPU work generator standing in for EVM interpretation
/// cost.
///
/// The paper's prototype runs contracts on the JVM, where every storage
/// operation and every bytecode step costs on the order of a microsecond;
/// that work-to-synchronization ratio is what shapes the speedup curves in
/// Figure 1. Translated to native C++, the same contract bodies execute in
/// tens of nanoseconds, so thread-pool overhead would dominate everything
/// and every configuration would resemble the paper's 10-transaction
/// blocks. The VM therefore burns a calibrated number of arithmetic
/// iterations per unit of gas charged (see DESIGN.md §2, "Substitutions").
///
/// The loop is a xorshift mix whose result is returned and accumulated by
/// callers into a sink checked at the end of a run, which prevents the
/// optimizer from deleting the work.
[[nodiscard]] std::uint64_t burn_iterations(std::uint64_t iterations) noexcept;

/// Measures, once per process, how many burn iterations fit in one
/// microsecond on this machine, so that gas costs translate to a stable
/// wall-clock cost across hosts. Thread-safe; the first caller pays the
/// calibration cost (~10 ms).
[[nodiscard]] std::uint64_t iterations_per_microsecond() noexcept;

/// Burns approximately `micros` microseconds of CPU.
std::uint64_t burn_microseconds(double micros) noexcept;

}  // namespace concord::util
