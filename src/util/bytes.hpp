#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace concord::util {

/// Error raised by ByteReader when the input is truncated or malformed.
/// Block/schedule deserialization treats this as "reject the block"; it is
/// never a programming error, because the bytes come from the (untrusted)
/// network in the real deployment the paper assumes.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only binary encoder used for block, transaction and schedule
/// serialization. Integers use LEB128 varints so that schedules (mostly
/// small indices) stay compact, matching the paper's concern that the
/// published fork-join schedule must fit in the block.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  /// Little-endian fixed-width 32-bit write (used for hashes and other
  /// fields whose width is part of the wire format).
  void put_u32_fixed(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Little-endian fixed-width 64-bit write.
  void put_u64_fixed(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Unsigned LEB128 varint.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Length-prefixed byte string.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    put_varint(bytes.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes with no length prefix (caller controls framing).
  void put_raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential binary decoder matching ByteWriter's format. Every read
/// checks bounds and throws DecodeError on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32_fixed() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t get_u64_fixed() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      require(1);
      const std::uint8_t byte = data_[pos_++];
      if (shift == 63 && (byte & 0x7e) != 0) throw DecodeError("varint overflows 64 bits");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Canonical (minimal) encodings only: a final 0x00 byte after a
        // continuation adds no value bits, so "80 00" and "00" would
        // decode to the same integer from different bytes. The writer
        // never emits such padding; accepting it would break the wire
        // layer's decode→re-encode byte-identity guarantee and give
        // every framed message a mutable twin.
        if (byte == 0 && shift > 0) throw DecodeError("non-canonical varint padding");
        return v;
      }
      shift += 7;
      if (shift > 63) throw DecodeError("varint too long");
    }
  }

  /// Reads an element count for a collection whose elements occupy at
  /// least `min_item_bytes` each, rejecting counts that could not
  /// possibly fit in the remaining input. This bounds attacker-controlled
  /// pre-allocation: without it, a forged count of 2^60 turns a reserve()
  /// into std::bad_alloc instead of a clean DecodeError.
  std::uint64_t get_count(std::size_t min_item_bytes) {
    const std::uint64_t n = get_varint();
    if (min_item_bytes > 0 && n > remaining() / min_item_bytes) {
      throw DecodeError("collection count exceeds remaining input");
    }
    return n;
  }

  std::vector<std::uint8_t> get_bytes() {
    const std::uint64_t n = get_varint();
    require(n);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const std::uint64_t n = get_varint();
    require(n);
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads exactly `n` bytes with no length prefix.
  std::span<const std::uint8_t> get_raw(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void require(std::uint64_t n) const {
    // Subtraction form, never `pos_ + n`: n is attacker-controlled (a
    // decoded 64-bit length), and the addition can wrap past SIZE_MAX
    // back under size() — turning a forged length into an out-of-bounds
    // read instead of a clean DecodeError. pos_ <= size() always holds.
    if (n > data_.size() - pos_) throw DecodeError("truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding of a byte span ("deadbeef" style, no prefix).
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Inverse of to_hex. Throws DecodeError on odd length or non-hex chars.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace concord::util
