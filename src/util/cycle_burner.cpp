#include "util/cycle_burner.hpp"

#include <atomic>
#include <chrono>

namespace concord::util {

std::uint64_t burn_iterations(std::uint64_t iterations) noexcept {
  // xorshift64 mix; cheap, branch-free, and impossible for the compiler to
  // collapse because every iteration depends on the previous one.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL + iterations;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

namespace {

std::uint64_t calibrate() noexcept {
  using Clock = std::chrono::steady_clock;
  // Warm up the core/frequency governor before timing.
  volatile std::uint64_t sink = burn_iterations(200'000);
  (void)sink;

  constexpr std::uint64_t kProbe = 2'000'000;
  const auto start = Clock::now();
  sink = burn_iterations(kProbe);
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start);
  const auto nanos = static_cast<double>(elapsed.count());
  if (nanos <= 0.0) return 1000;  // Defensive; steady_clock should never do this.
  const double per_us = static_cast<double>(kProbe) * 1000.0 / nanos;
  return per_us < 1.0 ? 1 : static_cast<std::uint64_t>(per_us);
}

}  // namespace

std::uint64_t iterations_per_microsecond() noexcept {
  // Initialization of a local static is thread-safe; calibration runs once.
  static const std::uint64_t cached = calibrate();
  return cached;
}

std::uint64_t burn_microseconds(double micros) noexcept {
  if (micros <= 0.0) return 0;
  const double iters = micros * static_cast<double>(iterations_per_microsecond());
  return burn_iterations(static_cast<std::uint64_t>(iters));
}

}  // namespace concord::util
