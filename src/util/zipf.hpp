#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace concord::util {

/// Bounded Zipf(s) sampler over ranks {0, 1, ..., n-1}: rank k is drawn
/// with probability proportional to 1/(k+1)^s. Real chain traffic is
/// Zipf-skewed — a few hot contracts/accounts take most of the touches —
/// and the million-account workloads (workload::ZipfSpec) use this to
/// reproduce that regime deterministically.
///
/// Implementation: inverse-CDF table + binary search. The table is built
/// once at construction (O(n) pow calls, ~8 bytes/rank — the only
/// allocation this type makes), and each sample is one Rng draw plus an
/// O(log n) upper_bound, with no rejection loop whose iteration count
/// could depend on floating-point platform details. Sampling draws
/// exactly one 64-bit value from the caller's Rng per call, so sequences
/// are reproducible from a seed like everything else rng.hpp feeds.
///
/// s = 0 degenerates to the uniform distribution; s around 0.8–1.2 is
/// the empirical range for contract/account popularity. n must be >= 1.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
    if (!(s >= 0.0)) throw std::invalid_argument("ZipfSampler: s must be >= 0");
    double running = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      running += std::pow(1.0 / static_cast<double>(k + 1), s);
      cdf_[k] = running;
    }
    // Normalize so the last bucket is exactly 1.0 (guards the binary
    // search against accumulated rounding at the top end).
    const double total = cdf_.back();
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;
  }

  /// Draws one rank in [0, n). Rank 0 is the hottest.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform01();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                     : it - cdf_.begin());
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// P(rank < k) — the mass of the k hottest ranks. Used by the
  /// distribution sanity tests (hot-key mass within tolerance) and handy
  /// for sizing conflict expectations in workloads.
  [[nodiscard]] double mass_below(std::size_t k) const noexcept {
    if (k == 0) return 0.0;
    return cdf_[std::min(k, cdf_.size()) - 1];
  }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), normalized.
};

}  // namespace concord::util
