#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace concord::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// The benchmark harness mirrors the paper's §7.2 methodology: each
/// configuration is measured five times after three warm-ups, and the mean
/// and standard deviation are reported (Appendix B plots both).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Summary of a set of timed runs, in milliseconds.
struct TimingSummary {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  std::size_t samples = 0;
};

/// Collapses raw per-run durations into a TimingSummary.
inline TimingSummary summarize_ms(const std::vector<double>& runs_ms) {
  RunningStats stats;
  for (const double ms : runs_ms) stats.add(ms);
  return TimingSummary{stats.mean(), stats.stddev(), stats.count()};
}

}  // namespace concord::util
