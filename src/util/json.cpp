#include "util/json.hpp"

#include <cstdio>

namespace concord::util {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace concord::util
