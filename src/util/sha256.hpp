#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace concord::util {

/// A 256-bit digest value (block hashes, state roots, document hashcodes).
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  friend auto operator<=>(const Hash256&, const Hash256&) = default;

  [[nodiscard]] bool is_zero() const noexcept {
    for (const auto b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// Lowercase hex rendering ("e3b0c442...").
  [[nodiscard]] std::string to_hex() const;

  /// First 8 bytes as a little-endian integer — a convenient short form
  /// for log output and for deterministic map keys in tests.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch so the
/// repository has no external dependencies. Used for block hashes, state
/// roots and EtherDoc document hashcodes.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  /// Restores the initial state.
  void reset() noexcept;

  /// Absorbs `data`.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept {
    update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                         data.size()));
  }

  /// Finishes the computation and returns the digest. The object must be
  /// reset() before reuse.
  [[nodiscard]] Hash256 finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Hash256 sha256(std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] Hash256 sha256(std::string_view data) noexcept;

}  // namespace concord::util
