#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace concord::net {

/// Raised on transport-level failures: writing into a closed connection,
/// or a frame that dies mid-byte-stream. Distinct from util::DecodeError
/// (malformed *content*): a TransportError means the byte stream itself
/// ended or broke, which on a real network is a disconnect, not a
/// protocol violation.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// A bidirectional, ordered, reliable byte stream to one peer — the
/// contract a TCP socket satisfies. Everything above this interface
/// (framing, messages, sessions) is transport-agnostic: the in-process
/// PipeTransport below keeps CI deterministic, and a socket
/// implementation slots in without touching the peer layer.
///
/// Thread contract: one reader thread and one writer thread may operate
/// concurrently; close() may race with both (it is the shutdown signal).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks until at least one byte is available, then copies up to
  /// `out.size()` bytes and returns the count. Returns 0 only when the
  /// stream is closed AND drained — the clean end-of-stream signal.
  [[nodiscard]] virtual std::size_t read_some(std::span<std::uint8_t> out) = 0;

  /// Writes the whole span, blocking on flow control (the peer's receive
  /// buffer is bounded). Throws TransportError when the stream is closed
  /// before every byte is accepted.
  virtual void write_all(std::span<const std::uint8_t> data) = 0;

  /// Shuts the stream down in both directions: blocked readers drain
  /// what was already delivered and then see end-of-stream, blocked
  /// writers throw. Idempotent; callable from any thread.
  virtual void close() = 0;

  /// True once close() was called on either endpoint.
  [[nodiscard]] virtual bool closed() const = 0;
};

/// The in-process socketpair: two Transport endpoints connected by a
/// pair of bounded byte queues (one per direction). Bytes written into
/// endpoint A become readable from endpoint B in order, with writer
/// blocking once `capacity` bytes are in flight — the same backpressure
/// a TCP send window applies, which is what makes the leader/follower
/// flow-control tests honest. Closing either endpoint closes both
/// directions, mirroring a dropped connection.
class PipeTransport final : public Transport {
 public:
  /// Builds a connected endpoint pair. `capacity` bounds each
  /// direction's in-flight bytes (must be >= 1).
  [[nodiscard]] static std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>>
  make_pair(std::size_t capacity = 1 << 20);

  [[nodiscard]] std::size_t read_some(std::span<std::uint8_t> out) override;
  void write_all(std::span<const std::uint8_t> data) override;
  void close() override;
  [[nodiscard]] bool closed() const override;

 private:
  /// One direction's bounded byte stream.
  struct ByteQueue {
    explicit ByteQueue(std::size_t cap) : capacity(cap) {}

    std::size_t capacity;
    std::mutex mu;
    std::condition_variable readable;
    std::condition_variable writable;
    std::deque<std::uint8_t> bytes;
    bool closed = false;
  };

  PipeTransport(std::shared_ptr<ByteQueue> rx, std::shared_ptr<ByteQueue> tx)
      : rx_(std::move(rx)), tx_(std::move(tx)) {}

  std::shared_ptr<ByteQueue> rx_;  ///< Peer writes here; we read.
  std::shared_ptr<ByteQueue> tx_;  ///< We write here; peer reads.
};

/// Wire framing: every message travels as one length-prefixed frame —
/// a fixed little-endian u32 payload length, then exactly that many
/// payload bytes. The length prefix is what turns a byte stream back
/// into message boundaries; it is NOT part of the message encoding, so
/// the decode→re-encode byte-identity guarantee applies to payloads.
///
/// Frames larger than kMaxFrameBytes are rejected before any allocation:
/// the length is attacker-controlled, and a forged 4 GiB frame must die
/// as a typed error, not an OOM.
inline constexpr std::size_t kMaxFrameBytes = 32u << 20;  // 32 MiB.

/// Writes frames onto a transport. Not internally synchronized — the
/// session layer serializes senders (Peer::send).
class FrameWriter {
 public:
  explicit FrameWriter(Transport& transport) : transport_(&transport) {}

  /// One frame: length prefix + payload, as a single write_all (the
  /// transport sees a frame atomically or throws).
  void write_frame(std::span<const std::uint8_t> payload);

 private:
  Transport* transport_;
};

/// Reads frames off a transport, reassembling partial reads. One reader
/// thread per transport.
class FrameReader {
 public:
  explicit FrameReader(Transport& transport) : transport_(&transport) {}

  /// Blocks for the next complete frame's payload. Returns nullopt on a
  /// CLEAN end-of-stream (the transport closed exactly on a frame
  /// boundary). Throws TransportError when the stream dies mid-frame —
  /// a truncated frame is indistinguishable from a Byzantine peer and
  /// must kill the session, never silently deliver a prefix — and
  /// util::DecodeError when the announced length exceeds kMaxFrameBytes.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_frame();

 private:
  /// Reads exactly `n` bytes. `at_boundary` selects the clean-EOF
  /// behavior: between frames an EOF is a normal shutdown (false), mid-
  /// frame it is a truncation (throw).
  [[nodiscard]] bool read_exact(std::span<std::uint8_t> out, bool at_boundary);

  Transport* transport_;
};

}  // namespace concord::net
