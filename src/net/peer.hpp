#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace concord::net {

/// Bounded inbound message ring — the per-peer flavor of the node's
/// depth-k HandoffRing: the receive thread produces decoded messages,
/// the session consumer pops them in order, and a full ring blocks the
/// receiver, which stalls the transport, which backpressures the sender
/// end-to-end (a slow follower slows the leader instead of buffering
/// unboundedly). Mutex + condition variables for the same reason the
/// handoff ring uses them: traffic is one message at a time and
/// shutdown wants the linearization a single mutex gives for free.
class InboundRing {
 public:
  explicit InboundRing(std::size_t depth) : depth_(depth) {
    if (depth == 0) throw std::invalid_argument("inbound ring: depth must be >= 1");
  }

  InboundRing(const InboundRing&) = delete;
  InboundRing& operator=(const InboundRing&) = delete;

  /// Producer (receive thread). Blocks while full; returns false when
  /// the ring closed instead (the message is dropped — the session is
  /// over).
  bool push(Message message) {
    std::unique_lock lk(mu_);
    space_.wait(lk, [&] { return ring_.size() < depth_ || closed_; });
    if (closed_) return false;
    ring_.push_back(std::move(message));
    high_water_ = std::max(high_water_, ring_.size());
    lk.unlock();
    filled_.notify_one();
    return true;
  }

  /// Consumer. Blocks until a message arrives; nullopt once closed AND
  /// drained — the session-over signal.
  [[nodiscard]] std::optional<Message> pop() {
    std::unique_lock lk(mu_);
    filled_.wait(lk, [&] { return !ring_.empty() || closed_; });
    if (ring_.empty()) return std::nullopt;
    Message message = std::move(ring_.front());
    ring_.pop_front();
    lk.unlock();
    space_.notify_one();
    return message;
  }

  /// Either side; idempotent. Queued messages stay poppable (drain).
  void close() {
    {
      std::scoped_lock lk(mu_);
      closed_ = true;
    }
    space_.notify_all();
    filled_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t high_water() const {
    std::scoped_lock lk(mu_);
    return high_water_;
  }

 private:
  std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable space_;
  std::condition_variable filled_;
  std::deque<Message> ring_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

/// Lifetime counters for one peer session.
struct PeerStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::size_t inbound_high_water = 0;  ///< Max messages queued at once.
};

struct PeerConfig {
  std::string name = "peer";       ///< Diagnostic label (error messages).
  std::size_t inbound_depth = 8;   ///< Decoded messages buffered per peer.
};

/// One live session with a remote node: a transport, a receive thread
/// that reassembles frames and decodes messages into the bounded inbound
/// ring, and a serialized send path. The peer OWNS its transport and the
/// session lifecycle around it.
///
/// Failure model — the two ways a session ends, and why they differ:
///  - Clean shutdown: the remote closed on a frame boundary. recv()
///    drains what arrived, then returns nullopt; failed() stays false.
///  - Wire failure: a truncated frame, an oversized length, an unknown
///    type byte, or any malformed message body. A byte stream cannot be
///    re-synchronized after undecodable bytes, and a peer that sends
///    them is Byzantine by definition — the session is torn down
///    immediately, failed() turns true and error() names the cause.
///    The consumer sees nullopt from recv() after the drain, exactly
///    like a disconnect, because that is what it is.
///
/// Thread contract: any number of threads may send() (serialized
/// internally); one consumer thread drives recv().
class Peer {
 public:
  /// Takes ownership of the transport and starts the receive thread.
  explicit Peer(std::unique_ptr<Transport> transport, PeerConfig config = {});

  /// Closes the session and joins the receive thread.
  ~Peer();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Encodes and sends one message as one frame. Thread-safe. Returns
  /// false when the transport is already closed (the message went
  /// nowhere — a session that is over is not an error for senders,
  /// mirroring how a real node treats writes to a dropping peer).
  bool send(const Message& message);

  /// Pre-encoded flavor: a leader broadcasting one block to N peers
  /// encodes once and hands each peer the same payload bytes.
  bool send_payload(const std::vector<std::uint8_t>& payload);

  /// Next decoded inbound message, in arrival order. Blocks; nullopt
  /// once the session is over (clean or failed) and the ring drained.
  [[nodiscard]] std::optional<Message> recv();

  /// Closes transport and ring, wakes everything. Idempotent.
  void close();

  /// True when the session died on a wire error (see class comment).
  [[nodiscard]] bool failed() const;
  /// The wire error description (empty while !failed()).
  [[nodiscard]] std::string error() const;

  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] PeerStats stats() const;

 private:
  void receive_loop();

  PeerConfig config_;
  std::unique_ptr<Transport> transport_;
  InboundRing inbound_;
  FrameWriter writer_;

  mutable std::mutex send_mu_;   ///< Serializes frame writes.
  mutable std::mutex state_mu_;  ///< Guards error_/stats_.
  std::string error_;
  bool failed_ = false;
  PeerStats stats_;

  std::jthread rx_thread_;  ///< Last member: joins before the rest dies.
};

/// The leader-side container: every follower session this node serves.
/// Peers are shared so a service thread can outlive set mutation.
class PeerSet {
 public:
  PeerSet() = default;

  PeerSet(const PeerSet&) = delete;
  PeerSet& operator=(const PeerSet&) = delete;

  void add(std::shared_ptr<Peer> peer);

  /// Encode-once broadcast to every peer currently in the set.
  void broadcast(const Message& message);

  /// Snapshot of the current membership.
  [[nodiscard]] std::vector<std::shared_ptr<Peer>> peers() const;

  [[nodiscard]] std::size_t size() const;

  /// Closes every session. Idempotent.
  void close_all();

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Peer>> peers_;
};

}  // namespace concord::net
