#include "net/peer.hpp"

#include <algorithm>

namespace concord::net {

Peer::Peer(std::unique_ptr<Transport> transport, PeerConfig config)
    : config_(std::move(config)),
      transport_((transport == nullptr
                      ? throw std::invalid_argument("peer: transport must not be null")
                      : std::move(transport))),
      inbound_(config_.inbound_depth),
      writer_(*transport_),
      rx_thread_([this] { receive_loop(); }) {}

Peer::~Peer() {
  close();
  // rx_thread_ (jthread) joins on destruction; members it touches are
  // declared before it, so they outlive the join.
}

bool Peer::send(const Message& message) { return send_payload(encode_message(message)); }

bool Peer::send_payload(const std::vector<std::uint8_t>& payload) {
  std::scoped_lock lk(send_mu_);
  try {
    writer_.write_frame(payload);
  } catch (const TransportError&) {
    return false;  // Session over; senders treat it like a dropped peer.
  }
  std::scoped_lock state(state_mu_);
  ++stats_.frames_sent;
  stats_.bytes_sent += payload.size() + 4;  // Payload + length prefix.
  return true;
}

std::optional<Message> Peer::recv() { return inbound_.pop(); }

void Peer::close() {
  transport_->close();
  inbound_.close();
}

bool Peer::failed() const {
  std::scoped_lock lk(state_mu_);
  return failed_;
}

std::string Peer::error() const {
  std::scoped_lock lk(state_mu_);
  return error_;
}

PeerStats Peer::stats() const {
  std::scoped_lock lk(state_mu_);
  PeerStats stats = stats_;
  stats.inbound_high_water = inbound_.high_water();
  return stats;
}

void Peer::receive_loop() {
  FrameReader reader(*transport_);
  try {
    for (;;) {
      std::optional<std::vector<std::uint8_t>> payload = reader.read_frame();
      if (!payload.has_value()) break;  // Clean end-of-stream.
      Message message = decode_message(*payload);
      {
        std::scoped_lock lk(state_mu_);
        ++stats_.frames_received;
        stats_.bytes_received += payload->size() + 4;
      }
      if (!inbound_.push(std::move(message))) break;  // Ring closed under us.
    }
  } catch (const std::exception& e) {
    // TransportError (truncated frame) or util::DecodeError (malformed
    // length/body): the byte stream is unrecoverable — record the cause
    // and tear the session down. The consumer observes nullopt + failed().
    std::scoped_lock lk(state_mu_);
    failed_ = true;
    error_ = config_.name + ": " + e.what();
  }
  // Wake the consumer (and any blocked sender) no matter how the loop
  // ended; also stops the remote's writer from filling a dead pipe.
  close();
}

void PeerSet::add(std::shared_ptr<Peer> peer) {
  if (peer == nullptr) throw std::invalid_argument("peer set: peer must not be null");
  std::scoped_lock lk(mu_);
  peers_.push_back(std::move(peer));
}

void PeerSet::broadcast(const Message& message) {
  const std::vector<std::uint8_t> payload = encode_message(message);
  for (const auto& peer : peers()) (void)peer->send_payload(payload);
}

std::vector<std::shared_ptr<Peer>> PeerSet::peers() const {
  std::scoped_lock lk(mu_);
  return peers_;
}

std::size_t PeerSet::size() const {
  std::scoped_lock lk(mu_);
  return peers_.size();
}

void PeerSet::close_all() {
  for (const auto& peer : peers()) peer->close();
}

}  // namespace concord::net
