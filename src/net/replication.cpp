#include "net/replication.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace concord::net {

Leader::Leader(std::shared_ptr<PeerSet> peers, util::Hash256 genesis_root)
    : peers_((peers == nullptr ? throw std::invalid_argument("leader: peer set must not be null")
                               : std::move(peers))),
      genesis_root_(genesis_root) {}

Leader::~Leader() { stop(); }

void Leader::start() {
  if (started_) throw std::logic_error("leader: start() may only be called once");
  started_ = true;
  const std::vector<std::shared_ptr<Peer>> peers = peers_->peers();
  {
    std::scoped_lock lk(progress_mu_);
    progress_.resize(peers.size());
    for (std::size_t i = 0; i < peers.size(); ++i) progress_[i].name = peers[i]->name();
  }
  service_threads_.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    // progress_ is fully sized above and never resized again, so the
    // reference each service thread holds stays valid for its lifetime.
    service_threads_.emplace_back(
        [this, peer = peers[i], i] { serve_peer(peer, progress_[i]); });
  }
}

void Leader::stop() {
  peers_->close_all();
  service_threads_.clear();  // jthread dtor joins.
}

void Leader::announce(const chain::Block& block) {
  {
    std::scoped_lock lk(log_mu_);
    log_.push_back(block);
  }
  peers_->broadcast(Message{BlockAnnounce{block}});
}

std::uint64_t Leader::announced() const {
  std::scoped_lock lk(log_mu_);
  return log_.size();
}

std::vector<FollowerProgress> Leader::progress() const {
  std::scoped_lock lk(progress_mu_);
  return progress_;
}

void Leader::serve_peer(const std::shared_ptr<Peer>& peer, FollowerProgress& progress) {
  while (true) {
    std::optional<Message> message = peer->recv();
    if (!message.has_value()) return;  // Session over (clean or failed).

    if (const auto* hello = std::get_if<Hello>(&*message)) {
      if (hello->protocol != kProtocolVersion || hello->genesis_root != genesis_root_) {
        // A peer on a different protocol or chain can never exchange
        // blocks with us; say why, then drop the session.
        (void)peer->send(Message{Nack{0, NackReason::kWrongChain,
                                      hello->protocol != kProtocolVersion
                                          ? "protocol version mismatch"
                                          : "genesis root mismatch"}});
        peer->close();
        return;
      }
      std::uint64_t head = 0;
      {
        std::scoped_lock lk(log_mu_);
        head = log_.size();
      }
      (void)peer->send(Message{Hello{kProtocolVersion, genesis_root_, head}});
      continue;
    }

    if (const auto* request = std::get_if<BlockRequest>(&*message)) {
      // Retransmission / catch-up: served from the private announce log.
      std::optional<chain::Block> block;
      {
        std::scoped_lock lk(log_mu_);
        if (request->number >= 1 && request->number <= log_.size()) {
          block = log_[static_cast<std::size_t>(request->number) - 1];
        }
      }
      if (block.has_value()) {
        (void)peer->send(Message{BlockAnnounce{std::move(*block)}});
        std::scoped_lock lk(progress_mu_);
        ++progress.requests_served;
      }
      continue;
    }

    if (const auto* ack = std::get_if<Ack>(&*message)) {
      bool diverged = false;
      {
        std::scoped_lock lk(log_mu_);
        if (ack->number >= 1 && ack->number <= log_.size()) {
          diverged = log_[static_cast<std::size_t>(ack->number) - 1].header.state_root !=
                     ack->head_root;
        }
      }
      std::scoped_lock lk(progress_mu_);
      progress.acked = std::max(progress.acked, ack->number);
      if (diverged) progress.diverged = true;
      continue;
    }

    if (std::get_if<Nack>(&*message) != nullptr) {
      std::scoped_lock lk(progress_mu_);
      ++progress.nacks;
      continue;
    }

    // BlockAnnounce from a follower: not part of the leader's protocol
    // surface; ignored (a follower cannot push blocks upstream).
  }
}

}  // namespace concord::net
