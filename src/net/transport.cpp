#include "net/transport.hpp"

#include <algorithm>
#include <array>

namespace concord::net {

std::pair<std::unique_ptr<PipeTransport>, std::unique_ptr<PipeTransport>> PipeTransport::make_pair(
    std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("pipe transport: capacity must be >= 1");
  auto a_to_b = std::make_shared<ByteQueue>(capacity);
  auto b_to_a = std::make_shared<ByteQueue>(capacity);
  std::unique_ptr<PipeTransport> a(new PipeTransport(b_to_a, a_to_b));
  std::unique_ptr<PipeTransport> b(new PipeTransport(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

std::size_t PipeTransport::read_some(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  std::unique_lock lk(rx_->mu);
  rx_->readable.wait(lk, [&] { return !rx_->bytes.empty() || rx_->closed; });
  if (rx_->bytes.empty()) return 0;  // Closed and drained: end-of-stream.
  const std::size_t n = std::min(out.size(), rx_->bytes.size());
  std::copy_n(rx_->bytes.begin(), n, out.begin());
  rx_->bytes.erase(rx_->bytes.begin(), rx_->bytes.begin() + static_cast<std::ptrdiff_t>(n));
  lk.unlock();
  rx_->writable.notify_one();
  return n;
}

void PipeTransport::write_all(std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    std::unique_lock lk(tx_->mu);
    tx_->writable.wait(lk, [&] { return tx_->bytes.size() < tx_->capacity || tx_->closed; });
    if (tx_->closed) {
      throw TransportError("pipe transport: write on closed stream (" +
                           std::to_string(data.size() - written) + " bytes undelivered)");
    }
    const std::size_t room = tx_->capacity - tx_->bytes.size();
    const std::size_t n = std::min(room, data.size() - written);
    tx_->bytes.insert(tx_->bytes.end(), data.begin() + static_cast<std::ptrdiff_t>(written),
                      data.begin() + static_cast<std::ptrdiff_t>(written + n));
    written += n;
    lk.unlock();
    tx_->readable.notify_one();
  }
}

void PipeTransport::close() {
  // Both directions: a dropped connection is symmetric. Readers on the
  // other end drain what was already delivered, then see end-of-stream.
  for (const auto& queue : {rx_, tx_}) {
    {
      std::scoped_lock lk(queue->mu);
      queue->closed = true;
    }
    queue->readable.notify_all();
    queue->writable.notify_all();
  }
}

bool PipeTransport::closed() const {
  std::scoped_lock lk(rx_->mu);
  return rx_->closed;
}

void FrameWriter::write_frame(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("frame writer: payload exceeds kMaxFrameBytes");
  }
  util::ByteWriter w;
  w.put_u32_fixed(static_cast<std::uint32_t>(payload.size()));
  w.put_raw(payload);
  transport_->write_all(w.bytes());
}

bool FrameReader::read_exact(std::span<std::uint8_t> out, bool at_boundary) {
  std::size_t have = 0;
  while (have < out.size()) {
    const std::size_t n = transport_->read_some(out.subspan(have));
    if (n == 0) {
      if (at_boundary && have == 0) return false;  // Clean end-of-stream.
      throw TransportError("frame reader: stream ended mid-frame (truncated frame, got " +
                           std::to_string(have) + " of " + std::to_string(out.size()) +
                           " bytes)");
    }
    have += n;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> FrameReader::read_frame() {
  std::array<std::uint8_t, 4> prefix{};
  if (!read_exact(prefix, /*at_boundary=*/true)) return std::nullopt;
  util::ByteReader r(prefix);
  const std::uint32_t length = r.get_u32_fixed();
  if (length > kMaxFrameBytes) {
    throw util::DecodeError("frame length " + std::to_string(length) + " exceeds cap " +
                            std::to_string(kMaxFrameBytes));
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0 && !read_exact(payload, /*at_boundary=*/false)) return std::nullopt;
  return payload;
}

}  // namespace concord::net
