#include "net/wire.hpp"

#include <algorithm>
#include <utility>

#include "vm/codec.hpp"

namespace concord::net {

namespace {

constexpr MsgType msg_type_of(const Hello&) noexcept { return MsgType::kHello; }
constexpr MsgType msg_type_of(const BlockAnnounce&) noexcept { return MsgType::kBlockAnnounce; }
constexpr MsgType msg_type_of(const BlockRequest&) noexcept { return MsgType::kBlockRequest; }
constexpr MsgType msg_type_of(const Ack&) noexcept { return MsgType::kAck; }
constexpr MsgType msg_type_of(const Nack&) noexcept { return MsgType::kNack; }

void put_hash(util::ByteWriter& w, const util::Hash256& h) { w.put_raw(h.bytes); }

util::Hash256 get_hash(util::ByteReader& r) {
  util::Hash256 h;
  const auto raw = r.get_raw(h.bytes.size());
  std::copy(raw.begin(), raw.end(), h.bytes.begin());
  return h;
}

void encode_body(util::ByteWriter& w, const Hello& m) {
  w.put_varint(m.protocol);
  put_hash(w, m.genesis_root);
  w.put_varint(m.head);
}

void encode_body(util::ByteWriter& w, const BlockAnnounce& m) { m.block.encode(w); }

void encode_body(util::ByteWriter& w, const BlockRequest& m) { w.put_varint(m.number); }

void encode_body(util::ByteWriter& w, const Ack& m) {
  w.put_varint(m.number);
  put_hash(w, m.head_root);
}

void encode_body(util::ByteWriter& w, const Nack& m) {
  w.put_varint(m.number);
  w.put_u8(static_cast<std::uint8_t>(m.reason));
  w.put_string(m.detail);
}

}  // namespace

std::string_view to_string(NackReason reason) noexcept {
  switch (reason) {
    case NackReason::kValidationFailed: return "validation-failed";
    case NackReason::kOutOfOrder: return "out-of-order";
    case NackReason::kWrongChain: return "wrong-chain";
  }
  return "?";
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  util::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(
      std::visit([](const auto& m) { return msg_type_of(m); }, message)));
  std::visit([&w](const auto& m) { encode_body(w, m); }, message);
  return std::move(w).take();
}

Message decode_message(std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  const std::uint8_t type = r.get_u8();
  Message message;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello: {
      Hello m;
      vm::decode_value(r, m.protocol);
      m.genesis_root = get_hash(r);
      vm::decode_value(r, m.head);
      message = std::move(m);
      break;
    }
    case MsgType::kBlockAnnounce: {
      BlockAnnounce m;
      m.block = chain::Block::decode(r);
      message = std::move(m);
      break;
    }
    case MsgType::kBlockRequest: {
      BlockRequest m;
      vm::decode_value(r, m.number);
      message = std::move(m);
      break;
    }
    case MsgType::kAck: {
      Ack m;
      vm::decode_value(r, m.number);
      m.head_root = get_hash(r);
      message = std::move(m);
      break;
    }
    case MsgType::kNack: {
      Nack m;
      vm::decode_value(r, m.number);
      const std::uint8_t reason = r.get_u8();
      if (reason > static_cast<std::uint8_t>(NackReason::kWrongChain)) {
        throw util::DecodeError("nack reason code out of range");
      }
      m.reason = static_cast<NackReason>(reason);
      m.detail = r.get_string();
      message = std::move(m);
      break;
    }
    default:
      throw util::DecodeError("unknown message type byte " + std::to_string(type));
  }
  // Byte identity needs exhaustion: a payload with trailing bytes would
  // decode to a message whose re-encoding drops them — a mutable frame.
  if (!r.exhausted()) {
    throw util::DecodeError("trailing bytes after message body (" +
                            std::to_string(r.remaining()) + " left)");
  }
  return message;
}

std::string_view message_name(const Message& message) noexcept {
  switch (message.index()) {
    case 0: return "hello";
    case 1: return "block-announce";
    case 2: return "block-request";
    case 3: return "ack";
    case 4: return "nack";
  }
  return "?";
}

}  // namespace concord::net
