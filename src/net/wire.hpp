#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "chain/block.hpp"
#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace concord::net {

/// Bumped whenever the frame payload encoding changes shape. Peers whose
/// versions disagree cannot exchange blocks; the Hello handshake rejects
/// the session up front instead of letting a decode error masquerade as
/// a Byzantine peer later.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame payload discriminator — the first payload byte of every frame.
enum class MsgType : std::uint8_t {
  kHello = 0,
  kBlockAnnounce = 1,
  kBlockRequest = 2,
  kAck = 3,
  kNack = 4,
};

/// Session opener, sent by both sides. The genesis root pins the two
/// peers to the same chain identity: a follower must never splice blocks
/// from a leader whose world it does not share — that is a different
/// network, not a fork.
struct Hello {
  std::uint32_t protocol = kProtocolVersion;
  util::Hash256 genesis_root;
  std::uint64_t head = 0;  ///< Sender's current chain height.

  friend bool operator==(const Hello&, const Hello&) = default;
};

/// A full serialized block pushed leader → follower. The block carries
/// its complete BlockSchedule (profiles, happens-before edges, serial
/// order, shard lanes), so the follower re-verifies the published
/// schedule across the trust boundary exactly as the paper's validator
/// does — nothing is taken on faith from the wire.
struct BlockAnnounce {
  chain::Block block;

  friend bool operator==(const BlockAnnounce&, const BlockAnnounce&) = default;
};

/// Follower → leader: re-send block `number` (catch-up after a
/// reconnect, or honest retransmission after a Nack).
struct BlockRequest {
  std::uint64_t number = 0;

  friend bool operator==(const BlockRequest&, const BlockRequest&) = default;
};

/// Follower → leader: block `number` validated and appended; `head_root`
/// is the follower's resulting state root, so the leader can observe
/// replication divergence the moment it happens instead of at the next
/// rejected block.
struct Ack {
  std::uint64_t number = 0;
  util::Hash256 head_root;

  friend bool operator==(const Ack&, const Ack&) = default;
};

/// Why a follower refused an announced block. Coarser than
/// core::RejectReason on purpose: the wire code must stay stable across
/// validator-internal refactors, so validation failures map onto one
/// code and the human-readable detail carries the specifics.
enum class NackReason : std::uint8_t {
  kValidationFailed = 0,  ///< The validator rejected the replay (any RejectReason).
  kOutOfOrder = 1,        ///< Announced number skips past the follower's head.
  kWrongChain = 2,        ///< Hello genesis/protocol mismatch.
};

[[nodiscard]] std::string_view to_string(NackReason reason) noexcept;

/// Follower → leader: block `number` was rejected. The follower's chain
/// is unchanged (it recovered to its last accepted boundary); the leader
/// — or an honest relay — is expected to retransmit the real block.
struct Nack {
  std::uint64_t number = 0;
  NackReason reason = NackReason::kValidationFailed;
  std::string detail;

  friend bool operator==(const Nack&, const Nack&) = default;
};

using Message = std::variant<Hello, BlockAnnounce, BlockRequest, Ack, Nack>;

/// Canonical frame-payload encoding of a message: one MsgType byte, then
/// the body. Deterministic — the same message always encodes to the same
/// bytes on every node.
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);

/// Exact inverse of encode_message, with the wire layer's byte-identity
/// guarantee: for any payload this function accepts,
/// encode_message(decode_message(payload)) == payload, byte for byte.
/// Everything else — unknown type byte, truncated field at any depth,
/// non-canonical varint, trailing garbage — throws util::DecodeError.
/// (Violating byte identity would let a relay mutate a block without
/// either endpoint noticing a re-encode mismatch, so trailing bytes and
/// redundant encodings are errors, not slack.)
[[nodiscard]] Message decode_message(std::span<const std::uint8_t> payload);

/// The discriminator of an encoded payload without a full decode —
/// diagnostic/log use only; never a substitute for decode_message.
[[nodiscard]] std::string_view message_name(const Message& message) noexcept;

}  // namespace concord::net
