#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chain/block.hpp"
#include "net/peer.hpp"

namespace concord::net {

/// Per-follower replication progress as the leader observes it.
struct FollowerProgress {
  std::string name;
  std::uint64_t acked = 0;          ///< Highest block number acknowledged.
  std::uint64_t nacks = 0;          ///< Rejections this follower reported.
  std::uint64_t requests_served = 0;  ///< Retransmissions answered.
  bool diverged = false;  ///< An Ack carried a state root we never produced.
};

/// The leader half of block replication: fans every accepted block out
/// to the follower set and services the return channel (Acks, Nacks,
/// retransmission requests) with one thread per peer.
///
/// The leader keeps its own log of announced blocks rather than reading
/// the node's Blockchain: announce() receives each block by value on the
/// validator thread, and serving a BlockRequest from a private mutex-
/// guarded log keeps the service threads entirely off the node's
/// internals (the chain's backing vector reallocates on append — reading
/// it from another thread would be a race, and the trust boundary says
/// the network layer gets serialized blocks, not shared memory).
///
/// Wiring: construct with the peer set, install announcer() as
/// NodeConfig::on_block_accepted, call start() before Node::run() and
/// stop() after it returns. A blocking announce (follower inbound rings
/// full, pipe at capacity) backpressures the validator stage — the
/// replication analogue of the mempool's producer backpressure.
class Leader {
 public:
  /// `genesis_root` identifies the chain in the Hello handshake.
  Leader(std::shared_ptr<PeerSet> peers, util::Hash256 genesis_root);

  ~Leader();

  Leader(const Leader&) = delete;
  Leader& operator=(const Leader&) = delete;

  /// Spawns one service thread per peer (handshake + return channel).
  void start();

  /// Closes every peer session and joins the service threads. Followers
  /// tailing the stream observe a clean end-of-stream. Idempotent.
  void stop();

  /// Appends to the announce log and broadcasts one BlockAnnounce to
  /// every peer (encoded once). Runs on whichever thread accepts blocks.
  void announce(const chain::Block& block);

  /// The announce hook shaped for NodeConfig::on_block_accepted.
  [[nodiscard]] std::function<void(const chain::Block&)> announcer() {
    return [this](const chain::Block& block) { announce(block); };
  }

  /// Progress snapshot, one entry per peer (index-aligned with the set).
  [[nodiscard]] std::vector<FollowerProgress> progress() const;

  /// Blocks announced so far (the log length).
  [[nodiscard]] std::uint64_t announced() const;

 private:
  void serve_peer(const std::shared_ptr<Peer>& peer, FollowerProgress& progress);

  std::shared_ptr<PeerSet> peers_;
  util::Hash256 genesis_root_;

  mutable std::mutex log_mu_;
  std::vector<chain::Block> log_;  ///< log_[i] = announced block number i+1.

  mutable std::mutex progress_mu_;
  std::vector<FollowerProgress> progress_;

  std::vector<std::jthread> service_threads_;
  bool started_ = false;
};

}  // namespace concord::net
