#include "sched/fork_join.hpp"

#include <cassert>
#include <stdexcept>

namespace concord::sched {

ForkJoinPool::ForkJoinPool(unsigned threads) {
  if (threads == 0) throw std::invalid_argument("ForkJoinPool needs at least one worker");
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) deques_.push_back(std::make_unique<WorkStealingDeque>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  {
    std::scoped_lock lk(mu_);
    stopping_ = true;
    ++epoch_;
  }
  epoch_cv_.notify_all();
  // Join the workers here, in the destructor body, NOT via member
  // destruction: `workers_` is declared before `mu_` / `epoch_cv_` /
  // `parked_cv_`, so implicit member destruction would tear down those
  // sync primitives first and only then join — letting a still-exiting
  // worker call parked_cv_.notify_all() / epoch_cv_.wait() on destroyed
  // objects (TSan: pthread_cond_destroy races notify). Every worker must
  // be fully joined before any sync primitive dies.
  workers_.clear();
}

void ForkJoinPool::run_dag(std::size_t n,
                           const std::vector<std::vector<std::uint32_t>>& predecessors,
                           const std::vector<std::vector<std::uint32_t>>& successors,
                           const std::function<void(std::uint32_t)>& body) {
  assert(predecessors.size() == n && successors.size() == n);
  if (n == 0) return;

  Job job;
  job.n = n;
  job.successors = &successors;
  job.body = &body;
  job.pending = std::vector<std::atomic<std::int32_t>>(n);
  job.remaining.store(n, std::memory_order_relaxed);

  std::size_t roots = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto preds = static_cast<std::int32_t>(predecessors[i].size());
    job.pending[i].store(preds, std::memory_order_relaxed);
    if (preds == 0) ++roots;
  }
  if (roots == 0) {
    throw std::invalid_argument("run_dag: graph has no roots (cycle); validate first");
  }

  {
    std::unique_lock lk(mu_);
    // Wait until every worker is parked (startup, or the tail of the
    // previous run), so the single-owner deques are quiescent and the
    // caller may seed roots round-robin.
    parked_cv_.wait(lk, [this] { return parked_ == workers_.size(); });
    unsigned next = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (job.pending[i].load(std::memory_order_relaxed) == 0) {
        deques_[next % deques_.size()]->push(i);
        ++next;
      }
    }
    job_ = &job;
    ++epoch_;
  }
  epoch_cv_.notify_all();

  {
    std::unique_lock lk(mu_);
    // First wait for the DAG to drain, then for every worker to park —
    // `job` lives on this stack frame, so no worker may touch it (even a
    // final remaining-check) once we return.
    done_cv_.wait(lk, [&job] { return job.remaining.load(std::memory_order_acquire) == 0; });
    job_ = nullptr;
    parked_cv_.wait(lk, [this] { return parked_ == workers_.size(); });
  }
}

void ForkJoinPool::worker_loop(unsigned self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lk(mu_);
      ++parked_;
      parked_cv_.notify_all();
      epoch_cv_.wait(lk, [&] { return stopping_ || epoch_ != seen_epoch; });
      seen_epoch = epoch_;
      --parked_;
      if (stopping_) return;
      job = job_;
    }
    if (job == nullptr) continue;  // Raced with a drain; park again.

    while (job->remaining.load(std::memory_order_acquire) != 0) {
      if (auto task = find_work(self)) {
        execute(*job, self, *task);
      } else {
        std::this_thread::yield();
      }
    }
    // remaining is modified outside mu_, so bridge the gap: acquiring and
    // releasing the mutex before notifying guarantees the caller is either
    // past its predicate check or fully asleep.
    { std::scoped_lock lk(mu_); }
    done_cv_.notify_all();
  }
}

void ForkJoinPool::execute(Job& job, unsigned self, std::uint32_t task) {
  (*job.body)(task);
  for (const std::uint32_t succ : (*job.successors)[task]) {
    if (job.pending[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      deques_[self]->push(succ);
    }
  }
  job.remaining.fetch_sub(1, std::memory_order_acq_rel);
}

std::optional<std::uint32_t> ForkJoinPool::find_work(unsigned self) {
  if (auto task = deques_[self]->pop()) return task;
  const std::size_t n = deques_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (auto task = deques_[(self + i) % n]->steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return std::nullopt;
}

}  // namespace concord::sched
