#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/work_stealing_deque.hpp"

namespace concord::sched {

/// Work-stealing fork-join pool executing dependency DAGs — the
/// validator's engine (paper §4 / Algorithm 2).
///
/// Algorithm 2 builds, for each transaction, a fork-join task that "first
/// joins with all tasks according to its in-edges on the happens-before
/// graph" before executing. The standard work-stealing realization of
/// join-on-predecessors is dependency counting: each task carries the
/// number of unfinished predecessors; completing a task decrements its
/// successors and forks (pushes) every task that reaches zero onto the
/// worker's own deque, where idle workers steal from the top. No locks,
/// no conflict detection, no rollback — "the fork-join structure ensures
/// that conflicting actions never execute concurrently."
///
/// Workers are persistent across run_dag calls (the paper's pools are
/// long-lived); the calling thread blocks until the DAG drains.
class ForkJoinPool {
 public:
  explicit ForkJoinPool(unsigned threads);
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  /// Executes tasks 0..n-1. `predecessors[i]` lists the tasks that must
  /// finish before task i starts; `successors[i]` the reverse edges (both
  /// views are required so neither needs recomputation here). `body(i)`
  /// runs exactly once per task and must not throw — record failures in
  /// the task's own result slot instead.
  void run_dag(std::size_t n, const std::vector<std::vector<std::uint32_t>>& predecessors,
               const std::vector<std::vector<std::uint32_t>>& successors,
               const std::function<void(std::uint32_t)>& body);

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Number of successful steals across all run_dag calls (diagnostic;
  /// exercised by the scheduler tests).
  [[nodiscard]] std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    std::size_t n = 0;
    const std::vector<std::vector<std::uint32_t>>* successors = nullptr;
    const std::function<void(std::uint32_t)>* body = nullptr;
    std::vector<std::atomic<std::int32_t>> pending;  ///< Unfinished predecessor counts.
    std::atomic<std::size_t> remaining{0};           ///< Tasks not yet executed.
  };

  void worker_loop(unsigned self);
  /// Runs `task` and forks newly-ready successors onto deque `self`.
  void execute(Job& job, unsigned self, std::uint32_t task);
  /// Finds work for `self`: own deque first, then round-robin stealing.
  [[nodiscard]] std::optional<std::uint32_t> find_work(unsigned self);

  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;
  /// Ordering constraint: workers_ is joined explicitly in the destructor
  /// body (workers_.clear()) because the sync primitives below are
  /// declared after it — implicit member destruction would destroy them
  /// before the jthreads join, racing a worker's final notify/wait
  /// against pthread_cond_destroy.
  std::vector<std::jthread> workers_;

  std::mutex mu_;
  std::condition_variable epoch_cv_;   ///< Wakes workers for a new job.
  std::condition_variable done_cv_;    ///< Wakes the caller when drained.
  std::condition_variable parked_cv_;  ///< Signals all workers quiescent.
  std::uint64_t epoch_ = 0;
  std::size_t parked_ = 0;  ///< Workers currently blocked on epoch_cv_.
  bool stopping_ = false;
  Job* job_ = nullptr;

  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace concord::sched
