#include "sched/thread_pool.hpp"

namespace concord::sched {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  // jthread joins in its destructor; workers drain the queue before exit.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lk(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      work_ready_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::scoped_lock lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace concord::sched
