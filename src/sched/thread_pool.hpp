#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace concord::sched {

/// Fixed-size thread pool with a shared FIFO queue — the C++ analogue of
/// the Java ExecutorService the paper's miner uses ("Miners manage
/// concurrency using Java's ExecutorService. This class provides a pool of
/// threads and runs a collection of callable objects in parallel" — §6.1).
///
/// The miner submits one task per transaction and calls wait_idle() as the
/// barrier at the end of the block. Tasks must not throw (speculative
/// retry loops handle their own exceptions); a task that does throw
/// terminates the process, which is the correct response to a harness bug.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding work, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is
  /// empty. Other threads may keep submitting; this returns at a moment
  /// when the pool *was* idle.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< Tasks currently executing.
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace concord::sched
