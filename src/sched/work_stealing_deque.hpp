#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace concord::sched {

/// Chase–Lev work-stealing deque (D. Chase & Y. Lev, "Dynamic Circular
/// Work-Stealing Deque", SPAA 2005), with the C11 memory-order treatment
/// of Lê, Pop, Cohen & Zappa Nardelli ("Correct and Efficient
/// Work-Stealing for Weak Memory Models", PPoPP 2013).
///
/// One owner thread pushes and pops at the bottom; any number of thieves
/// steal from the top. This is the paper's §4 substrate: "using a
/// work-stealing scheduler, the validator can exploit whatever degree of
/// parallelism it has available" (the citation is to Cilk, whose runtime
/// rests on this structure).
///
/// Elements are task indices (trivially copyable by design — the DAG
/// executor owns the task payloads). Buffer growth retires old buffers to
/// a list freed at destruction, so a thief holding a stale buffer pointer
/// can still read slots safely.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0), buffer_(new Buffer(round_up_pow2(initial_capacity))) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() = default;  // retired_ owns every buffer ever used.

  /// Owner only: pushes a task at the bottom.
  void push(std::uint32_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pops the most recently pushed task (LIFO — depth-first
  /// on own work, which keeps caches warm).
  [[nodiscard]] std::optional<std::uint32_t> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }

    std::optional<std::uint32_t> item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = std::nullopt;  // A thief won.
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steals the oldest task (FIFO end — breadth-first across
  /// the victim's work, which steals big subtrees).
  [[nodiscard]] std::optional<std::uint32_t> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;

    Buffer* buf = buffer_.load(std::memory_order_acquire);
    const std::uint32_t item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // Lost the race; caller may try another victim.
    }
    return item;
  }

  /// Approximate size (diagnostic only; racy by nature).
  [[nodiscard]] std::size_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), mask(cap - 1), slots(new std::atomic<std::uint32_t>[cap]) {}

    void put(std::int64_t i, std::uint32_t v) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint32_t get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(std::memory_order_relaxed);
    }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// Owner only: doubles the buffer, copying live elements. The old
  /// buffer stays on the retired list because thieves may still hold it.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Buffer* raw = bigger.get();
    retired_.push_back(std::move(bigger));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_;
  std::atomic<std::int64_t> bottom_;
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  ///< Owner-mutated (push path only).
};

}  // namespace concord::sched
