#pragma once

#include <string>

#include "graph/happens_before.hpp"

namespace concord::graph {

/// Options for to_dot().
struct DotOptions {
  std::string name = "schedule";
  /// Ranks nodes by longest-path depth (the fork-join "waves"), so the
  /// rendered picture reads as the validator's execution timeline.
  bool rank_by_depth = true;
};

/// Renders a happens-before graph as Graphviz DOT — the paper publishes
/// schedules in blocks so "their degree of parallelism is easily
/// evaluated"; this makes them easy to *look at* too. Used by the
/// schedule-metrics bench and handy in a debugger.
[[nodiscard]] std::string to_dot(const HappensBeforeGraph& graph, const DotOptions& options = {});

}  // namespace concord::graph
