#include "graph/dot_export.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace concord::graph {

std::string to_dot(const HappensBeforeGraph& graph, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph " << options.name << " {\n";
  out << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";

  if (options.rank_by_depth && graph.node_count() > 0) {
    if (const auto order = graph.topological_order()) {
      std::vector<std::size_t> depth(graph.node_count(), 0);
      for (const std::uint32_t u : *order) {
        for (const std::uint32_t v : graph.successors(u)) {
          depth[v] = std::max(depth[v], depth[u] + 1);
        }
      }
      const std::size_t max_depth = *std::max_element(depth.begin(), depth.end());
      for (std::size_t d = 0; d <= max_depth; ++d) {
        out << "  { rank=same;";
        for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
          if (depth[v] == d) out << " t" << v << ";";
        }
        out << " }\n";
      }
    }
  }

  for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
    out << "  t" << v << " [label=\"" << v << "\"];\n";
  }
  for (const auto& [u, v] : graph.edges()) {
    out << "  t" << u << " -> t" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace concord::graph
