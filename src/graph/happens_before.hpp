#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "stm/lock_profile.hpp"

namespace concord::graph {

/// The happens-before graph over a block's transactions (paper §4).
/// Nodes are transaction indices; an edge u → v means v's replay must wait
/// for u. Derived from lock profiles by derive_happens_before() below.
class HappensBeforeGraph {
 public:
  explicit HappensBeforeGraph(std::size_t nodes) : successors_(nodes), predecessors_(nodes) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return successors_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds u → v; duplicate edges are ignored. Self-loops are rejected by
  /// assertion in debug builds and ignored in release (a malformed block
  /// fails the acyclicity check anyway, which is the proper reject path).
  void add_edge(std::uint32_t u, std::uint32_t v);

  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;

  [[nodiscard]] const std::vector<std::uint32_t>& successors(std::uint32_t u) const {
    return successors_[u];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& predecessors(std::uint32_t v) const {
    return predecessors_[v];
  }

  /// All edges as (u, v) pairs, sorted — the canonical serialized form.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> edges() const;

  /// Kahn's algorithm with a smallest-index tie-break, so the serial order
  /// the miner publishes is a deterministic function of the graph.
  /// Returns std::nullopt when the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> topological_order() const;

  [[nodiscard]] bool is_acyclic() const { return topological_order().has_value(); }

  /// True when `order` is a permutation of the nodes consistent with every
  /// edge. Validators use this to check the published serial order S
  /// against the published graph H.
  [[nodiscard]] bool is_topological_order(std::span<const std::uint32_t> order) const;

  /// True when every edge of `other` connects nodes that are ordered the
  /// same way in this graph via some path (i.e. this graph's constraints
  /// imply other's). Used by validators: the published graph must imply
  /// every profile-derived constraint, or conflicting transactions could
  /// race during replay.
  [[nodiscard]] bool implies(const HappensBeforeGraph& other) const;

  /// Transitive reduction (smallest graph with the same reachability).
  /// Diagnostic/metrics use; the derivation below already emits
  /// near-minimal edges on its hot path.
  [[nodiscard]] HappensBeforeGraph transitive_reduction() const;

 private:
  /// Reachability from u (BFS); used by implies() and the reduction.
  [[nodiscard]] std::vector<bool> reachable_from(std::uint32_t u, bool skip_direct) const;

  std::vector<std::vector<std::uint32_t>> successors_;
  std::vector<std::vector<std::uint32_t>> predecessors_;
  std::size_t edge_count_ = 0;
};

/// Builds the happens-before graph from the lock profiles of a block's
/// transactions (the heart of paper Algorithm 1: "If an abstract lock has
/// counter value 1 in A's profile and 2 in C's profile, then C must be
/// scheduled after A" — refined by lock modes: only non-commuting holders
/// are ordered).
///
/// Per lock, holders are sorted by use counter and grouped into maximal
/// runs of mutually-commuting operations; each holder gets edges from
/// every member of the previous run. Cross-run conflicts further back are
/// implied transitively, so the result is near-minimal without an explicit
/// reduction pass. `nodes` is the block's transaction count; profiles may
/// be in any order but must cover tx indices < nodes.
[[nodiscard]] HappensBeforeGraph derive_happens_before(std::span<const stm::LockProfile> profiles,
                                                       std::size_t nodes);

/// Parallelism measures of a schedule (paper §4 suggests rewarding miners
/// "for publishing highly parallel schedules (for example, as measured by
/// critical path length)").
struct ScheduleMetrics {
  std::size_t transactions = 0;
  std::size_t edges = 0;
  /// Longest dependency chain, counting nodes (1 for an edgeless graph
  /// with any transaction).
  std::size_t critical_path = 0;
  /// Transactions divided by critical path — the available speedup with
  /// unlimited validators.
  double parallelism = 0.0;
  /// Size of the largest level when nodes are layered by longest distance
  /// from a root — a cheap width proxy.
  std::size_t max_level_width = 0;
};

[[nodiscard]] ScheduleMetrics compute_metrics(const HappensBeforeGraph& graph);

}  // namespace concord::graph
