#include "graph/happens_before.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <tuple>

#include "stm/lock_mode.hpp"

namespace concord::graph {

void HappensBeforeGraph::add_edge(std::uint32_t u, std::uint32_t v) {
  assert(u < node_count() && v < node_count() && "edge endpoint out of range");
  assert(u != v && "self-edge in happens-before graph");
  if (u == v || u >= node_count() || v >= node_count()) return;
  auto& succ = successors_[u];
  if (std::find(succ.begin(), succ.end(), v) != succ.end()) return;
  succ.push_back(v);
  predecessors_[v].push_back(u);
  ++edge_count_;
}

bool HappensBeforeGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (u >= node_count() || v >= node_count()) return false;
  const auto& succ = successors_[u];
  return std::find(succ.begin(), succ.end(), v) != succ.end();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> HappensBeforeGraph::edges() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(edge_count_);
  for (std::uint32_t u = 0; u < node_count(); ++u) {
    for (const std::uint32_t v : successors_[u]) out.emplace_back(u, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<std::uint32_t>> HappensBeforeGraph::topological_order() const {
  const std::size_t n = node_count();
  std::vector<std::size_t> indegree(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) indegree[v] = predecessors_[v].size();

  // Min-heap on node index: deterministic output for a given graph.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push(v);
  }

  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const std::uint32_t v : successors_[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // Cycle.
  return order;
}

bool HappensBeforeGraph::is_topological_order(std::span<const std::uint32_t> order) const {
  const std::size_t n = node_count();
  if (order.size() != n) return false;
  std::vector<std::size_t> position(n, n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= n || position[order[i]] != n) return false;  // Not a permutation.
    position[order[i]] = i;
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const std::uint32_t v : successors_[u]) {
      if (position[u] >= position[v]) return false;
    }
  }
  return true;
}

std::vector<bool> HappensBeforeGraph::reachable_from(std::uint32_t u, bool skip_direct) const {
  std::vector<bool> seen(node_count(), false);
  std::vector<std::uint32_t> stack;
  const auto push = [&](std::uint32_t w) {
    if (!seen[w]) {
      seen[w] = true;
      stack.push_back(w);
    }
  };
  if (skip_direct) {
    // Seed with successors-of-successors so that direct edges are not
    // counted as paths (used by the transitive reduction).
    for (const std::uint32_t v : successors_[u]) {
      for (const std::uint32_t w : successors_[v]) push(w);
    }
  } else {
    for (const std::uint32_t v : successors_[u]) push(v);
  }
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : successors_[v]) push(w);
  }
  return seen;
}

bool HappensBeforeGraph::implies(const HappensBeforeGraph& other) const {
  if (other.node_count() != node_count()) return false;
  for (std::uint32_t u = 0; u < other.node_count(); ++u) {
    if (other.successors_[u].empty()) continue;
    const std::vector<bool> reach = reachable_from(u, /*skip_direct=*/false);
    for (const std::uint32_t v : other.successors_[u]) {
      if (!reach[v]) return false;
    }
  }
  return true;
}

HappensBeforeGraph HappensBeforeGraph::transitive_reduction() const {
  HappensBeforeGraph reduced(node_count());
  for (std::uint32_t u = 0; u < node_count(); ++u) {
    if (successors_[u].empty()) continue;
    const std::vector<bool> indirect = reachable_from(u, /*skip_direct=*/true);
    for (const std::uint32_t v : successors_[u]) {
      if (!indirect[v]) reduced.add_edge(u, v);
    }
  }
  return reduced;
}

HappensBeforeGraph derive_happens_before(std::span<const stm::LockProfile> profiles,
                                         std::size_t nodes) {
  HappensBeforeGraph graph(nodes);

  struct Holder {
    std::uint64_t counter;
    std::uint32_t tx;
    stm::LockMode mode;
  };
  // Ordered map keyed by LockId gives deterministic per-lock processing;
  // holder order within a lock comes from the use counters.
  std::map<stm::LockId, std::vector<Holder>> by_lock;
  for (const auto& profile : profiles) {
    for (const auto& entry : profile.entries) {
      by_lock[entry.lock].push_back(Holder{entry.counter, profile.tx, entry.mode});
    }
  }

  for (auto& [lock, holders] : by_lock) {
    // Tie-break on tx so the derivation is a deterministic function of the
    // profiles even for malformed input with duplicate counter values
    // (honest miners never produce ties: counters increment per release).
    std::sort(holders.begin(), holders.end(), [](const Holder& a, const Holder& b) {
      return std::tie(a.counter, a.tx) < std::tie(b.counter, b.tx);
    });

    // Group into maximal runs of mutually-commuting holders. Consecutive
    // runs conflict completely (that is what ends a run), so edges from
    // the previous run to each new holder imply all older constraints
    // transitively.
    std::vector<const Holder*> prev_run;
    std::vector<const Holder*> current_run;
    for (const Holder& h : holders) {
      const bool starts_new_run =
          !current_run.empty() && stm::conflicts(current_run.back()->mode, h.mode);
      if (starts_new_run) {
        prev_run = std::move(current_run);
        current_run.clear();
      }
      for (const Holder* p : prev_run) {
        if (p->tx != h.tx) graph.add_edge(p->tx, h.tx);
      }
      current_run.push_back(&h);
    }
  }
  return graph;
}

ScheduleMetrics compute_metrics(const HappensBeforeGraph& graph) {
  ScheduleMetrics metrics;
  metrics.transactions = graph.node_count();
  metrics.edges = graph.edge_count();
  if (graph.node_count() == 0) return metrics;

  const auto order = graph.topological_order();
  if (!order) return metrics;  // Cyclic graphs have no meaningful metrics.

  // Longest path (in nodes) ending at each vertex, computed in topo order.
  std::vector<std::size_t> depth(graph.node_count(), 1);
  for (const std::uint32_t u : *order) {
    for (const std::uint32_t v : graph.successors(u)) {
      depth[v] = std::max(depth[v], depth[u] + 1);
    }
  }
  metrics.critical_path = *std::max_element(depth.begin(), depth.end());
  metrics.parallelism =
      static_cast<double>(metrics.transactions) / static_cast<double>(metrics.critical_path);

  std::vector<std::size_t> width(metrics.critical_path + 1, 0);
  for (const std::size_t d : depth) ++width[d];
  metrics.max_level_width = *std::max_element(width.begin(), width.end());
  return metrics;
}

}  // namespace concord::graph
