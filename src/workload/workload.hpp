#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "vm/types.hpp"
#include "vm/world.hpp"

namespace concord::workload {

/// The paper's four benchmarks (§7.1).
enum class BenchmarkKind : std::uint8_t {
  kBallot = 0,
  kSimpleAuction = 1,
  kEtherDoc = 2,
  kMixed = 3,
};

inline constexpr std::array<BenchmarkKind, 4> kAllBenchmarks = {
    BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction, BenchmarkKind::kEtherDoc,
    BenchmarkKind::kMixed};

[[nodiscard]] std::string_view to_string(BenchmarkKind kind) noexcept;

/// One benchmark configuration. "For each benchmark, our implementation is
/// evaluated on blocks containing between 10 and 400 transactions with 15%
/// data conflict, as well as blocks containing 200 transactions with data
/// conflict percentages ranging from 0% to 100%."
struct WorkloadSpec {
  BenchmarkKind kind = BenchmarkKind::kBallot;
  std::size_t transactions = 200;
  /// "The data conflict percentage is defined to be the percentage of
  /// transactions that contend with at least one other transaction for
  /// shared data."
  unsigned conflict_percent = 15;
  std::uint64_t seed = 42;
  /// Backs the fixture world's COW state with a PageArena (the
  /// production default); false = global-heap baseline. State roots and
  /// transaction bytes are identical either way — this toggles only
  /// where pages live (bench_state_scale's ablation axis).
  bool use_arena = true;
};

/// A freshly-built world in its genesis state plus the block's transaction
/// list. Rebuilt from the spec for every measured run, so repeated
/// executions always start from identical state.
struct Fixture {
  std::unique_ptr<vm::World> world;
  std::vector<chain::Transaction> transactions;
  vm::Address ballot;    ///< Deployed Ballot (zero when absent).
  vm::Address auction;   ///< Deployed SimpleAuction (zero when absent).
  vm::Address etherdoc;  ///< Deployed EtherDoc (zero when absent).
  vm::Address token;     ///< Deployed Token (zero when absent; Zipf fixtures).

  /// Genesis block recording the fixture's initial state root — the
  /// parent every mined block extends.
  [[nodiscard]] chain::Block genesis() const;
};

/// Deterministically builds the world and transactions for `spec`.
/// The same spec (including seed) always produces byte-identical
/// transactions and an identical genesis state root.
[[nodiscard]] Fixture make_fixture(const WorkloadSpec& spec);

/// A sustained multi-block stream for the node pipeline: `blocks` blocks'
/// worth of traffic against one world. The contract state is provisioned
/// for the whole stream up front (every voter registered, every bid
/// escrowed), exactly as make_fixture does for a single block.
struct StreamSpec {
  BenchmarkKind kind = BenchmarkKind::kMixed;
  std::size_t blocks = 20;
  std::size_t txs_per_block = 100;
  unsigned conflict_percent = 15;
  std::uint64_t seed = 42;
  /// See WorkloadSpec::use_arena.
  bool use_arena = true;

  [[nodiscard]] std::size_t total_transactions() const noexcept {
    return blocks * txs_per_block;
  }
};

/// Builds the fixture for a block stream: the world in genesis state and
/// blocks×txs_per_block transactions in deterministic stream order. A
/// mempool batching at txs_per_block recreates the per-block workloads.
/// One build is enough for a whole node: anything that needs a second
/// view of the same genesis forks it (`fixture.world->fork()` or a
/// vm::WorldSnapshot) instead of rebuilding and hoping the two runs
/// agree.
[[nodiscard]] Fixture make_stream_fixture(const StreamSpec& spec);

/// Number of transactions that should be generated as conflicting for a
/// block of `transactions` at `conflict_percent`, honoring the paper's
/// definition (a "conflicting" transaction must have at least one partner,
/// so the count is never exactly 1; Ballot additionally needs it even).
[[nodiscard]] std::size_t conflicting_tx_count(std::size_t transactions,
                                               unsigned conflict_percent);

/// The million-account scenarios: the regime the paper's benchmarks never
/// reach — Zipf-skewed account popularity over a state orders of
/// magnitude larger than one block touches. Which layer each one
/// stresses:
///  - kTokenTransfers: Token transfers with Zipf-drawn senders and
///    recipients. A hot sender's debit is a read-check-write, so skew
///    translates directly into WRITE contention while the state layer
///    serves random-access page detaches across the whole account range.
///  - kHotPool: AMM-style pool contention via SimpleAuction — a
///    conflict_percent fraction of transactions are bidPlusOne() calls
///    hammering the shared pool scalars (the conflict-sweep knob), the
///    rest are withdraws from Zipf-drawn distinct bidders.
///  - kAirdrop: a mint storm — the issuer mints to previously-unseen
///    accounts, so every transaction inserts into the balance table;
///    page growth and directory doubling are the hot path, not
///    contention.
enum class ZipfScenario : std::uint8_t {
  kTokenTransfers = 0,
  kHotPool = 1,
  kAirdrop = 2,
};

inline constexpr std::array<ZipfScenario, 3> kAllZipfScenarios = {
    ZipfScenario::kTokenTransfers, ZipfScenario::kHotPool, ZipfScenario::kAirdrop};

[[nodiscard]] std::string_view to_string(ZipfScenario scenario) noexcept;

/// A Zipf-skewed large-state workload configuration.
struct ZipfSpec {
  ZipfScenario scenario = ZipfScenario::kTokenTransfers;
  /// Accounts provisioned in genesis (the state-scale axis; 1M+ is the
  /// target regime).
  std::size_t accounts = 1'000'000;
  /// Zipf exponent s: 0 = uniform, ~1 = real chain-traffic skew.
  double skew = 0.9;
  std::size_t transactions = 2'000;
  /// kHotPool's conflict-sweep knob: percent of transactions that hit
  /// the shared pool scalars. Ignored by the other scenarios, whose
  /// contention comes from `skew` alone.
  unsigned conflict_percent = 15;
  std::uint64_t seed = 42;
  /// See WorkloadSpec::use_arena.
  bool use_arena = true;
};

/// Deterministically builds a ZipfSpec fixture: a world holding
/// `accounts` genesis accounts (seeded through CowPages::reserve — no
/// doubling walk) and `transactions` Zipf-drawn transactions. Same spec
/// (including seed) → byte-identical genesis root and transaction list,
/// with or without the arena.
[[nodiscard]] Fixture make_zipf_fixture(const ZipfSpec& spec);

}  // namespace concord::workload
