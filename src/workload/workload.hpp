#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "vm/types.hpp"
#include "vm/world.hpp"

namespace concord::workload {

/// The paper's four benchmarks (§7.1).
enum class BenchmarkKind : std::uint8_t {
  kBallot = 0,
  kSimpleAuction = 1,
  kEtherDoc = 2,
  kMixed = 3,
};

inline constexpr std::array<BenchmarkKind, 4> kAllBenchmarks = {
    BenchmarkKind::kBallot, BenchmarkKind::kSimpleAuction, BenchmarkKind::kEtherDoc,
    BenchmarkKind::kMixed};

[[nodiscard]] std::string_view to_string(BenchmarkKind kind) noexcept;

/// One benchmark configuration. "For each benchmark, our implementation is
/// evaluated on blocks containing between 10 and 400 transactions with 15%
/// data conflict, as well as blocks containing 200 transactions with data
/// conflict percentages ranging from 0% to 100%."
struct WorkloadSpec {
  BenchmarkKind kind = BenchmarkKind::kBallot;
  std::size_t transactions = 200;
  /// "The data conflict percentage is defined to be the percentage of
  /// transactions that contend with at least one other transaction for
  /// shared data."
  unsigned conflict_percent = 15;
  std::uint64_t seed = 42;
};

/// A freshly-built world in its genesis state plus the block's transaction
/// list. Rebuilt from the spec for every measured run, so repeated
/// executions always start from identical state.
struct Fixture {
  std::unique_ptr<vm::World> world;
  std::vector<chain::Transaction> transactions;
  vm::Address ballot;    ///< Deployed Ballot (zero when absent).
  vm::Address auction;   ///< Deployed SimpleAuction (zero when absent).
  vm::Address etherdoc;  ///< Deployed EtherDoc (zero when absent).

  /// Genesis block recording the fixture's initial state root — the
  /// parent every mined block extends.
  [[nodiscard]] chain::Block genesis() const;
};

/// Deterministically builds the world and transactions for `spec`.
/// The same spec (including seed) always produces byte-identical
/// transactions and an identical genesis state root.
[[nodiscard]] Fixture make_fixture(const WorkloadSpec& spec);

/// A sustained multi-block stream for the node pipeline: `blocks` blocks'
/// worth of traffic against one world. The contract state is provisioned
/// for the whole stream up front (every voter registered, every bid
/// escrowed), exactly as make_fixture does for a single block.
struct StreamSpec {
  BenchmarkKind kind = BenchmarkKind::kMixed;
  std::size_t blocks = 20;
  std::size_t txs_per_block = 100;
  unsigned conflict_percent = 15;
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t total_transactions() const noexcept {
    return blocks * txs_per_block;
  }
};

/// Builds the fixture for a block stream: the world in genesis state and
/// blocks×txs_per_block transactions in deterministic stream order. A
/// mempool batching at txs_per_block recreates the per-block workloads.
/// One build is enough for a whole node: anything that needs a second
/// view of the same genesis forks it (`fixture.world->fork()` or a
/// vm::WorldSnapshot) instead of rebuilding and hoping the two runs
/// agree.
[[nodiscard]] Fixture make_stream_fixture(const StreamSpec& spec);

/// Number of transactions that should be generated as conflicting for a
/// block of `transactions` at `conflict_percent`, honoring the paper's
/// definition (a "conflicting" transaction must have at least one partner,
/// so the count is never exactly 1; Ballot additionally needs it even).
[[nodiscard]] std::size_t conflicting_tx_count(std::size_t transactions,
                                               unsigned conflict_percent);

}  // namespace concord::workload
