#include "workload/workload.hpp"

#include <algorithm>
#include <cassert>

#include "contracts/ballot.hpp"
#include "contracts/etherdoc.hpp"
#include "contracts/simple_auction.hpp"
#include "contracts/token.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace concord::workload {

namespace {

using contracts::Ballot;
using contracts::EtherDoc;
using contracts::SimpleAuction;
using contracts::Token;

// Address salts keep the actors of different benchmarks distinct even
// when a Mixed fixture deploys all three contracts into one world.
constexpr std::uint8_t kContractSalt = 0xCC;
constexpr std::uint8_t kVoterSalt = 0x01;
constexpr std::uint8_t kBidderSalt = 0x02;
constexpr std::uint8_t kOwnerSalt = 0x03;
constexpr std::uint8_t kPersonaSalt = 0x04;  // chairpersons, beneficiaries, creators
constexpr std::uint8_t kAccountSalt = 0x05;  // Zipf-workload account space

const vm::Address kBallotAddr = vm::Address::from_u64(1, kContractSalt);
const vm::Address kAuctionAddr = vm::Address::from_u64(2, kContractSalt);
const vm::Address kEtherDocAddr = vm::Address::from_u64(3, kContractSalt);
const vm::Address kTokenAddr = vm::Address::from_u64(4, kContractSalt);

const vm::Address kChairperson = vm::Address::from_u64(1, kPersonaSalt);
const vm::Address kBeneficiary = vm::Address::from_u64(2, kPersonaSalt);
const vm::Address kCreator = vm::Address::from_u64(3, kPersonaSalt);
const vm::Address kIssuer = vm::Address::from_u64(4, kPersonaSalt);

/// Account `rank` of a Zipf fixture (rank 0 = hottest).
[[nodiscard]] vm::Address account_addr(std::uint64_t rank) {
  return vm::Address::from_u64(rank, kAccountSalt);
}

/// Fisher–Yates with the fixture RNG: block order is deterministic per
/// seed but uncorrelated with how conflicts were laid out.
void shuffle(std::vector<chain::Transaction>& txs, util::Rng& rng) {
  for (std::size_t i = txs.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(txs[i - 1], txs[j]);
  }
}

/// Ballot (§7.1): "All block transactions for this benchmark are requests
/// to vote on the same proposal. To add data conflict, some voters attempt
/// to double-vote, creating two transactions that contend for the same
/// voter data. 100% data conflict occurs when all voters attempt to vote
/// twice."
void build_ballot(vm::World& world, const WorkloadSpec& spec, std::uint64_t actor_base,
                  std::vector<chain::Transaction>& out) {
  const std::size_t n = spec.transactions;
  const std::size_t conflicting = conflicting_tx_count(n, spec.conflict_percent);
  const std::size_t pairs = conflicting / 2;
  const std::size_t singles = n - 2 * pairs;

  auto ballot = std::make_unique<Ballot>(
      kBallotAddr, kChairperson,
      std::vector<std::string>{"proposal-alpha", "proposal-beta", "proposal-gamma"});
  // "For all benchmarks, the contract is put into an initial state where
  // voters are already registered."
  for (std::size_t v = 0; v < pairs + singles; ++v) {
    ballot->raw_register_voter(vm::Address::from_u64(actor_base + v, kVoterSalt), 1);
  }
  world.contracts().add(std::move(ballot));

  std::size_t voter = 0;
  for (std::size_t p = 0; p < pairs; ++p, ++voter) {
    const vm::Address a = vm::Address::from_u64(actor_base + voter, kVoterSalt);
    out.push_back(Ballot::make_vote_tx(kBallotAddr, a, 0));
    out.push_back(Ballot::make_vote_tx(kBallotAddr, a, 0));  // The double vote.
  }
  for (std::size_t s = 0; s < singles; ++s, ++voter) {
    const vm::Address a = vm::Address::from_u64(actor_base + voter, kVoterSalt);
    out.push_back(Ballot::make_vote_tx(kBallotAddr, a, 0));
  }
}

/// SimpleAuction (§7.1): "the contract state is initialized by several
/// bidders entering a bid. The block consists of transactions that
/// withdraw these bids. Data conflict is added by including new bidders
/// who call bidPlusOne() to read and increase the highest bid... 100% data
/// conflict happens when all transactions are bidPlusOne() bids."
void build_auction(vm::World& world, const WorkloadSpec& spec, std::uint64_t actor_base,
                   std::vector<chain::Transaction>& out) {
  const std::size_t n = spec.transactions;
  const std::size_t conflicting = conflicting_tx_count(n, spec.conflict_percent);
  const std::size_t withdrawers = n - conflicting;
  constexpr vm::Amount kSeedBid = 100;

  auto auction = std::make_unique<SimpleAuction>(kAuctionAddr, kBeneficiary);
  vm::Amount escrow = 0;
  for (std::size_t w = 0; w < withdrawers; ++w) {
    auction->raw_add_pending(vm::Address::from_u64(actor_base + w, kBidderSalt), kSeedBid);
    escrow += kSeedBid;
  }
  // A standing leader so bidPlusOne always has someone to outbid.
  const vm::Address seed_leader = vm::Address::from_u64(actor_base + 900'000, kBidderSalt);
  auction->raw_set_highest(seed_leader, 1'000);
  escrow += 1'000;
  world.contracts().add(std::move(auction));
  // The auction contract holds the escrowed funds it will pay out.
  world.balances().raw_set(kAuctionAddr, world.balances().raw_get(kAuctionAddr) + escrow);

  for (std::size_t w = 0; w < withdrawers; ++w) {
    out.push_back(SimpleAuction::make_withdraw_tx(
        kAuctionAddr, vm::Address::from_u64(actor_base + w, kBidderSalt)));
  }
  for (std::size_t c = 0; c < conflicting; ++c) {
    // Fresh bidders, distinct from withdrawers: their only contention is
    // the shared highestBid/highestBidder scalars.
    out.push_back(SimpleAuction::make_bid_plus_one_tx(
        kAuctionAddr, vm::Address::from_u64(actor_base + 1'000'000 + c, kBidderSalt)));
  }
}

/// EtherDoc (§7.1): "the contract is initialized with a number of
/// documents and owners. Transactions consist of owners checking the
/// existence of the document by hashcode. Data conflict is added by
/// including transactions that transfer ownership to the contract
/// creator... 100% data conflict happens when all transactions are
/// transfers."
void build_etherdoc(vm::World& world, const WorkloadSpec& spec, std::uint64_t actor_base,
                    std::vector<chain::Transaction>& out) {
  const std::size_t n = spec.transactions;
  const std::size_t conflicting = conflicting_tx_count(n, spec.conflict_percent);
  const std::size_t lookups = n - conflicting;

  auto etherdoc = std::make_unique<EtherDoc>(kEtherDocAddr, kCreator);
  // One document per transaction, each with its own owner: lookups touch
  // disjoint documents; transfers conflict only through the creator's
  // document list.
  for (std::size_t d = 0; d < n; ++d) {
    etherdoc->raw_add_document(actor_base + d,
                               vm::Address::from_u64(actor_base + d, kOwnerSalt));
  }
  world.contracts().add(std::move(etherdoc));

  for (std::size_t d = 0; d < lookups; ++d) {
    out.push_back(EtherDoc::make_exists_tx(
        kEtherDocAddr, vm::Address::from_u64(actor_base + d, kOwnerSalt), actor_base + d));
  }
  for (std::size_t d = lookups; d < n; ++d) {
    out.push_back(EtherDoc::make_transfer_tx(kEtherDocAddr,
                                             vm::Address::from_u64(actor_base + d, kOwnerSalt),
                                             actor_base + d, kCreator));
  }
}

/// Deploys a Token provisioned with `accounts` seeded balances. Deploy
/// *first*, then seed: ContractRegistry::add binds the world's arena, so
/// the genesis pages themselves come out of the pool — at 1M accounts
/// genesis is most of the fixture's allocation traffic. raw_reserve
/// pre-sizes the directory so seeding runs without the doubling walk.
Token& deploy_seeded_token(vm::World& world, std::size_t accounts, vm::Amount seed_balance) {
  auto& token = static_cast<Token&>(
      world.contracts().add(std::make_unique<Token>(kTokenAddr, "ZPF", kIssuer)));
  token.raw_reserve(accounts);
  for (std::size_t a = 0; a < accounts; ++a) {
    token.raw_set_balance(account_addr(a), seed_balance);
  }
  return token;
}

/// kTokenTransfers: skew → sender-side WRITE contention, uniform page
/// pressure across the whole table.
void build_zipf_transfers(vm::World& world, const ZipfSpec& spec, util::Rng& rng,
                          std::vector<chain::Transaction>& out) {
  constexpr vm::Amount kSeedBalance = 1'000'000;
  deploy_seeded_token(world, spec.accounts, kSeedBalance);
  const util::ZipfSampler zipf(spec.accounts, spec.skew);
  for (std::size_t t = 0; t < spec.transactions; ++t) {
    const vm::Address sender = account_addr(zipf.sample(rng));
    const vm::Address to = account_addr(zipf.sample(rng));
    out.push_back(Token::make_transfer_tx(kTokenAddr, sender, to, 1));
  }
}

/// kHotPool: conflict_percent of the block hits the shared pool scalars
/// (bidPlusOne), the rest withdraw their escrowed stake — the AMM shape:
/// a tiny redline-hot core inside a huge cold table.
void build_zipf_hot_pool(vm::World& world, const ZipfSpec& spec, util::Rng& rng,
                         std::vector<chain::Transaction>& out) {
  constexpr vm::Amount kSeedBid = 100;
  auto& auction = static_cast<SimpleAuction&>(
      world.contracts().add(std::make_unique<SimpleAuction>(kAuctionAddr, kBeneficiary)));
  auction.raw_reserve(spec.accounts);
  for (std::size_t a = 0; a < spec.accounts; ++a) {
    auction.raw_add_pending(account_addr(a), kSeedBid);
  }
  const vm::Address seed_leader = account_addr(spec.accounts);  // Outside the bidder range.
  auction.raw_set_highest(seed_leader, 1'000);
  const auto escrow =
      static_cast<vm::Amount>(spec.accounts) * kSeedBid + 1'000;
  world.balances().raw_set(kAuctionAddr, escrow);

  const std::size_t pool_txs =
      spec.transactions * std::min(spec.conflict_percent, 100u) / 100;
  const util::ZipfSampler zipf(spec.accounts, spec.skew);
  // Every pool bid comes from one whale outside the withdrawer range.
  // bid-plus-one refunds the previous leader, so *distinct* bidders
  // would make the refund ledger depend on the miner's commit order and
  // the final root would vary run to run — the arena ablation's
  // byte-identical-roots check needs order-independent state. A whale
  // rebidding against itself keeps the scalars exactly as contended
  // (each bid still takes the exclusive for-update lock) while any
  // serial order of its identical transactions lands on the same state.
  const vm::Address whale = account_addr(spec.accounts + 1);
  for (std::size_t t = 0; t < spec.transactions; ++t) {
    if (t < pool_txs) {
      out.push_back(SimpleAuction::make_bid_plus_one_tx(kAuctionAddr, whale));
    } else {
      // Zipf-drawn withdrawers. A repeated draw withdraws an
      // already-zeroed slot — a no-op by the withdrawal pattern — which
      // mirrors real traffic re-touching a hot account.
      out.push_back(
          SimpleAuction::make_withdraw_tx(kAuctionAddr, account_addr(zipf.sample(rng))));
    }
  }
}

/// kAirdrop: every transaction credits a previously-unseen account, so
/// the block is pure table growth — insert traffic, page splits and
/// directory doubling over a table that is already `accounts` large.
void build_zipf_airdrop(vm::World& world, const ZipfSpec& spec, util::Rng& rng,
                        std::vector<chain::Transaction>& out) {
  constexpr vm::Amount kSeedBalance = 1'000'000;
  (void)rng;  // Recipients are sequential-fresh; nothing to draw.
  deploy_seeded_token(world, spec.accounts, kSeedBalance);
  for (std::size_t t = 0; t < spec.transactions; ++t) {
    out.push_back(
        Token::make_mint_tx(kTokenAddr, kIssuer, account_addr(spec.accounts + t), 1));
  }
}

}  // namespace

std::string_view to_string(BenchmarkKind kind) noexcept {
  switch (kind) {
    case BenchmarkKind::kBallot: return "Ballot";
    case BenchmarkKind::kSimpleAuction: return "SimpleAuction";
    case BenchmarkKind::kEtherDoc: return "EtherDoc";
    case BenchmarkKind::kMixed: return "Mixed";
  }
  return "?";
}

std::size_t conflicting_tx_count(std::size_t transactions, unsigned conflict_percent) {
  std::size_t count = transactions * conflict_percent / 100;
  if (count % 2 != 0) ++count;  // Conflicts come in pairs at minimum.
  return std::min(count, transactions - transactions % 2);
}

chain::Block Fixture::genesis() const {
  chain::Block genesis;
  genesis.header.number = 0;
  genesis.header.state_root = world->state_root();
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  return genesis;
}

Fixture make_stream_fixture(const StreamSpec& spec) {
  // A stream is a single oversized workload cut into blocks downstream:
  // conflicts are laid out across the whole stream (a conflicting pair
  // may straddle a block boundary), which is exactly the regime a real
  // mempool produces — contention does not respect block edges.
  WorkloadSpec flat;
  flat.kind = spec.kind;
  flat.transactions = spec.total_transactions();
  flat.conflict_percent = spec.conflict_percent;
  flat.seed = spec.seed;
  flat.use_arena = spec.use_arena;
  return make_fixture(flat);
}

std::string_view to_string(ZipfScenario scenario) noexcept {
  switch (scenario) {
    case ZipfScenario::kTokenTransfers: return "TokenTransfers";
    case ZipfScenario::kHotPool: return "HotPool";
    case ZipfScenario::kAirdrop: return "Airdrop";
  }
  return "?";
}

Fixture make_zipf_fixture(const ZipfSpec& spec) {
  Fixture fixture;
  fixture.world = std::make_unique<vm::World>(spec.use_arena ? vm::make_arena()
                                                             : vm::ArenaHandle{});
  // Salt the RNG stream per scenario so e.g. HotPool and TokenTransfers
  // at the same seed draw uncorrelated sequences.
  util::Rng rng(spec.seed ^ 0x5A1Full ^ (static_cast<std::uint64_t>(spec.scenario) << 56));

  switch (spec.scenario) {
    case ZipfScenario::kTokenTransfers:
      build_zipf_transfers(*fixture.world, spec, rng, fixture.transactions);
      fixture.token = kTokenAddr;
      break;
    case ZipfScenario::kHotPool:
      build_zipf_hot_pool(*fixture.world, spec, rng, fixture.transactions);
      fixture.auction = kAuctionAddr;
      break;
    case ZipfScenario::kAirdrop:
      build_zipf_airdrop(*fixture.world, spec, rng, fixture.transactions);
      fixture.token = kTokenAddr;
      break;
  }

  shuffle(fixture.transactions, rng);
  return fixture;
}

Fixture make_fixture(const WorkloadSpec& spec) {
  Fixture fixture;
  fixture.world = std::make_unique<vm::World>(spec.use_arena ? vm::make_arena()
                                                             : vm::ArenaHandle{});
  util::Rng rng(spec.seed ^ (static_cast<std::uint64_t>(spec.kind) << 56));

  switch (spec.kind) {
    case BenchmarkKind::kBallot:
      build_ballot(*fixture.world, spec, 0, fixture.transactions);
      fixture.ballot = kBallotAddr;
      break;
    case BenchmarkKind::kSimpleAuction:
      build_auction(*fixture.world, spec, 0, fixture.transactions);
      fixture.auction = kAuctionAddr;
      break;
    case BenchmarkKind::kEtherDoc:
      build_etherdoc(*fixture.world, spec, 0, fixture.transactions);
      fixture.etherdoc = kEtherDocAddr;
      break;
    case BenchmarkKind::kMixed: {
      // "This benchmark combines transactions on the above smart
      // contracts in equal proportions, and data conflict is added the
      // same way in equal proportions from their corresponding
      // benchmarks."
      WorkloadSpec third = spec;
      third.transactions = spec.transactions / 3;
      WorkloadSpec first = third;
      first.transactions += spec.transactions - 3 * third.transactions;  // Remainder.
      build_ballot(*fixture.world, first, 0, fixture.transactions);
      build_auction(*fixture.world, third, 10'000'000, fixture.transactions);
      build_etherdoc(*fixture.world, third, 20'000'000, fixture.transactions);
      fixture.ballot = kBallotAddr;
      fixture.auction = kAuctionAddr;
      fixture.etherdoc = kEtherDocAddr;
      break;
    }
  }

  shuffle(fixture.transactions, rng);
  return fixture;
}

}  // namespace concord::workload
