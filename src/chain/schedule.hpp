#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/happens_before.hpp"
#include "stm/lock_profile.hpp"
#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace concord::chain {

/// The scheduling metadata a miner publishes in the block (paper §4):
/// per-transaction lock profiles, the happens-before edges they induce,
/// and the equivalent serial order S from the topological sort.
///
/// The edges are technically recomputable from the profiles; publishing
/// both matches the paper (the validator "transforms this happens-before
/// graph into a fork-join program") and gives the validator a cheap
/// cross-check: a block whose published graph does not imply the
/// profile-derived constraints is rejected before any replay happens.
struct BlockSchedule {
  std::vector<stm::LockProfile> profiles;                    ///< Indexed by tx.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  ///< Happens-before.
  std::vector<std::uint32_t> serial_order;                   ///< S, a topo sort.
  /// Sub-schedule structure of a shard-merged block: how many of the
  /// block's transactions (in merged order) each producing shard lane
  /// contributed. Empty for single-miner blocks. Validators replay the
  /// merged schedule unchanged — the lane boundaries exist so depth-k
  /// recovery, re-org resume and lane-level diagnostics can recover the
  /// per-shard sub-blocks without re-running the shard router.
  std::vector<std::uint32_t> shard_lanes;

  friend bool operator==(const BlockSchedule&, const BlockSchedule&) = default;

  /// Materializes the published graph over `nodes` transactions.
  [[nodiscard]] graph::HappensBeforeGraph to_graph(std::size_t nodes) const {
    graph::HappensBeforeGraph g(nodes);
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    return g;
  }

  void encode(util::ByteWriter& w) const;
  [[nodiscard]] static BlockSchedule decode(util::ByteReader& r);

  /// Digest over the canonical encoding (folded into the block header, so
  /// tampering with the schedule invalidates the block hash).
  [[nodiscard]] util::Hash256 hash() const;

  /// Total serialized size in bytes — the paper's implicit cost of
  /// "including scheduling metadata in blocks"; reported by benches.
  [[nodiscard]] std::size_t encoded_size() const;
};

}  // namespace concord::chain
