#pragma once

#include <cstdint>
#include <vector>

#include "chain/schedule.hpp"
#include "chain/transaction.hpp"
#include "util/bytes.hpp"
#include "util/sha256.hpp"
#include "vm/runner.hpp"

namespace concord::chain {

/// Block header: hash-links to the parent and commits to the
/// transactions, their outcomes, the resulting state and the published
/// schedule. "Ethereum blocks thus contain both transactions' smart
/// contracts and the final state produced by executing those contracts"
/// (paper §2) — plus, under this proposal, the §4 scheduling metadata.
struct BlockHeader {
  std::uint64_t number = 0;
  util::Hash256 parent_hash;
  util::Hash256 tx_root;        ///< Digest over the transaction list.
  util::Hash256 state_root;     ///< World state after executing the block.
  util::Hash256 schedule_hash;  ///< Digest of the published BlockSchedule.
  util::Hash256 status_root;    ///< Digest over the per-tx status vector.

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;

  void encode(util::ByteWriter& w) const;
  [[nodiscard]] static BlockHeader decode(util::ByteReader& r);

  /// The block hash: digest of the encoded header.
  [[nodiscard]] util::Hash256 hash() const;
};

/// A full block: header, transactions, their deterministic outcomes, and
/// the miner's published schedule.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;
  std::vector<vm::TxStatus> statuses;
  BlockSchedule schedule;

  friend bool operator==(const Block&, const Block&) = default;

  [[nodiscard]] util::Hash256 hash() const { return header.hash(); }

  /// Digest over the transaction list (order-sensitive).
  [[nodiscard]] util::Hash256 compute_tx_root() const;

  /// Digest over the status vector.
  [[nodiscard]] util::Hash256 compute_status_root() const;

  /// True when the header's commitments (tx root, schedule hash, status
  /// root) match the body. Does NOT re-execute anything; that is the
  /// Validator's job.
  [[nodiscard]] bool commitments_consistent() const;

  void encode(util::ByteWriter& w) const;
  [[nodiscard]] static Block decode(util::ByteReader& r);
};

}  // namespace concord::chain
