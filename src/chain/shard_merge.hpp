#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "stm/lock_profile.hpp"
#include "vm/runner.hpp"

namespace concord::chain {

/// One shard miner's output for a block window: the sub-block it cut from
/// its lane of the mempool, already in the lane's *equivalent serial
/// order* (the topological sort of the lane's own happens-before graph),
/// with statuses and lock profiles aligned to that order.
///
/// Preconditions merge_shards() relies on:
///  - `profiles[i].tx == i` (lane-local indices) with canonical entries,
///  - the transaction order IS a topological order of the graph the
///    profiles derive — a loser's happens-before successors always sit
///    after it, so the intra-lane abort cascade is a single forward pass.
struct ShardLane {
  std::uint32_t shard = 0;  ///< Shard index; the arbitration priority.
  std::vector<Transaction> transactions;
  std::vector<vm::TxStatus> statuses;
  std::vector<stm::LockProfile> profiles;
};

/// Where a merged transaction came from, so the caller can replay winners
/// of lanes it has not executed yet (lane > 0 on the primary world).
struct ShardOrigin {
  std::uint32_t lane = 0;   ///< Index into the merge input, not shard id.
  std::uint32_t local = 0;  ///< Position inside that lane.
};

/// The stitched block body: winners only, in the canonical merged order
/// (lane 0's schedule order, then lane 1's, …), with profiles re-indexed
/// and use counters renumbered as if the merged order had executed
/// serially. Losers come back in a deterministic requeue order.
struct ShardMergeResult {
  std::vector<Transaction> transactions;
  std::vector<vm::TxStatus> statuses;
  std::vector<stm::LockProfile> profiles;
  std::vector<ShardOrigin> origins;        ///< Aligned with transactions.
  /// Winners per input lane, in lane order — the sub-schedule structure
  /// recorded in the block (BlockSchedule::shard_lanes) so validators and
  /// depth-k recovery can see the lane boundaries inside the merged order.
  std::vector<std::uint32_t> lane_counts;
  /// Cross-shard losers: every transaction arbitrated out of the block,
  /// ordered by (lane, schedule position) — the order they re-enter the
  /// mempool in, so requeueing is as deterministic as the merge itself.
  std::vector<Transaction> requeued;
  /// Losers that conflicted with a lower lane directly (the rest of
  /// `requeued` is their intra-lane happens-before cascade).
  std::uint64_t cross_shard_conflicts = 0;
};

/// Stitches per-shard sub-blocks into ONE byte-reproducible block body.
///
/// Deterministic arbitration (paper §4 semantics, shard-extended): shard
/// order is fixed by position in `lanes`, intra-shard order by the lane's
/// own schedule. A transaction loses when any of its lock-profile entries
/// conflicts (stm::conflicts) with the combined footprint of the winners
/// of LOWER lanes — lower shard wins — and losing cascades to its
/// happens-before successors inside its own lane (their executions could
/// have observed the loser's effects). Same-lane conflicts never abort:
/// the lane's schedule already orders them.
///
/// Winners' footprints across lanes are pairwise commuting-or-disjoint by
/// construction, so replaying the merged order serially reproduces every
/// lane-local execution exactly — which is why renumbering the use
/// counters in merged order yields a schedule identical to serial-mining
/// the merged order, and why it still passes the schedule-soundness
/// oracle. The result is a pure function of the input lanes.
[[nodiscard]] ShardMergeResult merge_shards(const std::vector<ShardLane>& lanes);

}  // namespace concord::chain
