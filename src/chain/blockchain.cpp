#include "chain/blockchain.hpp"

namespace concord::chain {

Blockchain::Blockchain(util::Hash256 genesis_state_root) {
  Block genesis;
  genesis.header.number = 0;
  genesis.header.state_root = genesis_state_root;
  genesis.header.tx_root = genesis.compute_tx_root();
  genesis.header.status_root = genesis.compute_status_root();
  genesis.header.schedule_hash = genesis.schedule.hash();
  blocks_.push_back(std::move(genesis));
}

void Blockchain::append(Block block) {
  if (block.header.number != blocks_.size()) {
    throw ChainError("block number " + std::to_string(block.header.number) +
                     " does not extend height " + std::to_string(height()));
  }
  if (block.header.parent_hash != tip().hash()) {
    throw ChainError("parent hash mismatch at block " + std::to_string(block.header.number));
  }
  if (!block.commitments_consistent()) {
    throw ChainError("header commitments do not match block body");
  }
  blocks_.push_back(std::move(block));
}

bool Blockchain::verify_links() const {
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.header.number != i) return false;
    if (b.header.parent_hash != blocks_[i - 1].hash()) return false;
    if (!b.commitments_consistent()) return false;
  }
  return true;
}

}  // namespace concord::chain
