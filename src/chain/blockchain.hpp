#pragma once

#include <stdexcept>
#include <vector>

#include "chain/block.hpp"

namespace concord::chain {

/// Raised when a block fails the structural checks on append.
class ChainError : public std::runtime_error {
 public:
  explicit ChainError(const std::string& what) : std::runtime_error(what) {}
};

/// The distributed ledger: "a publicly-readable tamper-proof record of a
/// sequence of events... Each block contains a cryptographic hash of the
/// previous block" (paper §1). This class maintains the hash links and
/// header commitments; *semantic* validation (re-executing a block and
/// checking its state root and schedule) is the core::Validator's job.
class Blockchain {
 public:
  /// Starts a chain whose genesis records `genesis_state_root`.
  explicit Blockchain(util::Hash256 genesis_state_root);

  /// Appends a block after structural validation: correct height, correct
  /// parent hash, internally consistent commitments. Throws ChainError.
  void append(Block block);

  [[nodiscard]] const Block& tip() const { return blocks_.back(); }
  [[nodiscard]] const Block& at(std::uint64_t number) const { return blocks_.at(number); }
  [[nodiscard]] std::uint64_t height() const noexcept { return blocks_.size() - 1; }
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

  /// Re-checks every hash link and commitment from genesis to tip.
  [[nodiscard]] bool verify_links() const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace concord::chain
