#include "chain/schedule.hpp"

#include <span>

namespace concord::chain {

namespace {

void encode_profile(util::ByteWriter& w, const stm::LockProfile& p) {
  w.put_varint(p.tx);
  w.put_u8(p.reverted ? 1 : 0);
  w.put_varint(p.entries.size());
  for (const auto& e : p.entries) {
    w.put_u64_fixed(e.lock.space);
    w.put_u64_fixed(e.lock.key);
    w.put_u8(static_cast<std::uint8_t>(e.mode));
    w.put_varint(e.counter);
  }
}

stm::LockProfile decode_profile(util::ByteReader& r) {
  stm::LockProfile p;
  p.tx = static_cast<std::uint32_t>(r.get_varint());
  p.reverted = r.get_u8() != 0;
  const std::uint64_t n = r.get_count(/*min_item_bytes=*/18);  // 8+8 lock, mode, counter.
  p.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    stm::LockProfileEntry e;
    e.lock.space = r.get_u64_fixed();
    e.lock.key = r.get_u64_fixed();
    const std::uint8_t mode = r.get_u8();
    if (mode > 2) throw util::DecodeError("invalid lock mode in profile");
    e.mode = static_cast<stm::LockMode>(mode);
    e.counter = r.get_varint();
    p.entries.push_back(e);
  }
  return p;
}

}  // namespace

void BlockSchedule::encode(util::ByteWriter& w) const {
  w.put_varint(profiles.size());
  for (const auto& p : profiles) encode_profile(w, p);
  w.put_varint(edges.size());
  for (const auto& [u, v] : edges) {
    w.put_varint(u);
    w.put_varint(v);
  }
  w.put_varint(serial_order.size());
  for (const std::uint32_t t : serial_order) w.put_varint(t);
  w.put_varint(shard_lanes.size());
  for (const std::uint32_t c : shard_lanes) w.put_varint(c);
}

BlockSchedule BlockSchedule::decode(util::ByteReader& r) {
  BlockSchedule s;
  const std::uint64_t np = r.get_count(/*min_item_bytes=*/3);  // tx, reverted, entry count.
  s.profiles.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) s.profiles.push_back(decode_profile(r));
  const std::uint64_t ne = r.get_count(/*min_item_bytes=*/2);  // Two varints.
  s.edges.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    const auto u = static_cast<std::uint32_t>(r.get_varint());
    const auto v = static_cast<std::uint32_t>(r.get_varint());
    s.edges.emplace_back(u, v);
  }
  const std::uint64_t no = r.get_count(/*min_item_bytes=*/1);
  s.serial_order.reserve(no);
  for (std::uint64_t i = 0; i < no; ++i) {
    s.serial_order.push_back(static_cast<std::uint32_t>(r.get_varint()));
  }
  const std::uint64_t nl = r.get_count(/*min_item_bytes=*/1);
  s.shard_lanes.reserve(nl);
  for (std::uint64_t i = 0; i < nl; ++i) {
    s.shard_lanes.push_back(static_cast<std::uint32_t>(r.get_varint()));
  }
  return s;
}

util::Hash256 BlockSchedule::hash() const {
  util::ByteWriter w;
  encode(w);
  return util::sha256(std::span<const std::uint8_t>(w.bytes()));
}

std::size_t BlockSchedule::encoded_size() const {
  util::ByteWriter w;
  encode(w);
  return w.size();
}

}  // namespace concord::chain
