#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/sha256.hpp"
#include "vm/contract.hpp"
#include "vm/gas.hpp"
#include "vm/msg.hpp"
#include "vm/types.hpp"

namespace concord::chain {

/// One smart-contract invocation as recorded in a block: who calls which
/// function of which contract with what arguments and gas allowance.
/// (Following the paper's terminology, a "transaction" is a client
/// request, not a synchronization unit — the synchronization unit is the
/// SpeculativeAction a miner wraps around it.)
struct Transaction {
  vm::Address contract;
  vm::Address sender;
  vm::Selector selector = 0;
  std::vector<std::uint8_t> args;
  vm::Amount value = 0;
  std::uint64_t gas_limit = vm::gas::kDefaultTxGasLimit;

  friend bool operator==(const Transaction&, const Transaction&) = default;

  /// The VM call this transaction performs (args viewed, not copied).
  [[nodiscard]] vm::Call to_call() const {
    return vm::Call{selector, std::span<const std::uint8_t>(args)};
  }

  /// The outermost msg frame.
  [[nodiscard]] vm::MsgContext to_msg() const {
    return vm::MsgContext{.sender = sender, .receiver = contract, .value = value};
  }

  void encode(util::ByteWriter& w) const;
  [[nodiscard]] static Transaction decode(util::ByteReader& r);

  /// Digest of the canonical encoding (used in the block's tx root).
  [[nodiscard]] util::Hash256 hash() const;
};

/// Convenience builder used by contracts' make_*_tx helpers.
class TxBuilder {
 public:
  TxBuilder(vm::Address contract, vm::Address sender, vm::Selector selector)
      : contract_(contract), sender_(sender), selector_(selector) {}

  TxBuilder& value(vm::Amount v) {
    value_ = v;
    return *this;
  }
  TxBuilder& gas_limit(std::uint64_t g) {
    gas_ = g;
    return *this;
  }
  TxBuilder& arg_u64(std::uint64_t v) {
    args_.put_varint(v);
    return *this;
  }
  TxBuilder& arg_address(const vm::Address& a) {
    args_.put_raw(a.bytes);
    return *this;
  }
  TxBuilder& arg_string(std::string_view s) {
    args_.put_string(s);
    return *this;
  }

  /// Consumes the builder's argument buffer; call once, last.
  [[nodiscard]] Transaction build() {
    return Transaction{contract_, sender_, selector_, std::move(args_).take(), value_, gas_};
  }

 private:
  vm::Address contract_;
  vm::Address sender_;
  vm::Selector selector_;
  util::ByteWriter args_;
  vm::Amount value_ = 0;
  std::uint64_t gas_ = vm::gas::kDefaultTxGasLimit;
};

}  // namespace concord::chain
