#include "chain/block.hpp"

#include <span>

namespace concord::chain {

void BlockHeader::encode(util::ByteWriter& w) const {
  w.put_u64_fixed(number);
  w.put_raw(parent_hash.bytes);
  w.put_raw(tx_root.bytes);
  w.put_raw(state_root.bytes);
  w.put_raw(schedule_hash.bytes);
  w.put_raw(status_root.bytes);
}

BlockHeader BlockHeader::decode(util::ByteReader& r) {
  BlockHeader h;
  h.number = r.get_u64_fixed();
  const auto read_hash = [&r](util::Hash256& out) {
    const auto raw = r.get_raw(out.bytes.size());
    std::copy(raw.begin(), raw.end(), out.bytes.begin());
  };
  read_hash(h.parent_hash);
  read_hash(h.tx_root);
  read_hash(h.state_root);
  read_hash(h.schedule_hash);
  read_hash(h.status_root);
  return h;
}

util::Hash256 BlockHeader::hash() const {
  util::ByteWriter w;
  encode(w);
  return util::sha256(std::span<const std::uint8_t>(w.bytes()));
}

util::Hash256 Block::compute_tx_root() const {
  util::Sha256 h;
  for (const auto& tx : transactions) h.update(tx.hash().bytes);
  return h.finish();
}

util::Hash256 Block::compute_status_root() const {
  util::ByteWriter w;
  w.put_varint(statuses.size());
  for (const vm::TxStatus s : statuses) w.put_u8(static_cast<std::uint8_t>(s));
  return util::sha256(std::span<const std::uint8_t>(w.bytes()));
}

bool Block::commitments_consistent() const {
  return header.tx_root == compute_tx_root() && header.status_root == compute_status_root() &&
         header.schedule_hash == schedule.hash() && statuses.size() == transactions.size();
}

void Block::encode(util::ByteWriter& w) const {
  header.encode(w);
  w.put_varint(transactions.size());
  for (const auto& tx : transactions) tx.encode(w);
  w.put_varint(statuses.size());
  for (const vm::TxStatus s : statuses) w.put_u8(static_cast<std::uint8_t>(s));
  schedule.encode(w);
}

Block Block::decode(util::ByteReader& r) {
  Block b;
  b.header = BlockHeader::decode(r);
  const std::uint64_t nt = r.get_count(/*min_item_bytes=*/54);  // Two addresses + selector + framing.
  b.transactions.reserve(nt);
  for (std::uint64_t i = 0; i < nt; ++i) b.transactions.push_back(Transaction::decode(r));
  const std::uint64_t ns = r.get_count(/*min_item_bytes=*/1);
  b.statuses.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    const std::uint8_t s = r.get_u8();
    if (s > 2) throw util::DecodeError("invalid tx status");
    b.statuses.push_back(static_cast<vm::TxStatus>(s));
  }
  b.schedule = BlockSchedule::decode(r);
  return b;
}

}  // namespace concord::chain
