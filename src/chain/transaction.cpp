#include "chain/transaction.hpp"

namespace concord::chain {

void Transaction::encode(util::ByteWriter& w) const {
  w.put_raw(contract.bytes);
  w.put_raw(sender.bytes);
  w.put_u32_fixed(selector);
  w.put_bytes(args);
  w.put_u64_fixed(static_cast<std::uint64_t>(value));
  w.put_varint(gas_limit);
}

Transaction Transaction::decode(util::ByteReader& r) {
  Transaction tx;
  auto contract_bytes = r.get_raw(tx.contract.bytes.size());
  std::copy(contract_bytes.begin(), contract_bytes.end(), tx.contract.bytes.begin());
  auto sender_bytes = r.get_raw(tx.sender.bytes.size());
  std::copy(sender_bytes.begin(), sender_bytes.end(), tx.sender.bytes.begin());
  tx.selector = r.get_u32_fixed();
  tx.args = r.get_bytes();
  tx.value = static_cast<vm::Amount>(r.get_u64_fixed());
  tx.gas_limit = r.get_varint();
  return tx;
}

util::Hash256 Transaction::hash() const {
  util::ByteWriter w;
  encode(w);
  return util::sha256(std::span<const std::uint8_t>(w.bytes()));
}

}  // namespace concord::chain
