#include "chain/shard_merge.hpp"

#include <stdexcept>
#include <unordered_map>

#include "graph/happens_before.hpp"
#include "stm/lock_mode.hpp"

namespace concord::chain {

namespace {

using Footprint = std::unordered_map<stm::LockId, stm::LockMode, stm::LockIdHash>;

/// True when any of the transaction's lock entries conflicts with the
/// lower-lane winner footprint.
bool conflicts_with(const Footprint& footprint, const stm::LockProfile& profile) {
  for (const auto& entry : profile.entries) {
    const auto it = footprint.find(entry.lock);
    if (it != footprint.end() && stm::conflicts(it->second, entry.mode)) return true;
  }
  return false;
}

void absorb(Footprint& footprint, const stm::LockProfile& profile) {
  for (const auto& entry : profile.entries) {
    auto [it, inserted] = footprint.try_emplace(entry.lock, entry.mode);
    if (!inserted) it->second = stm::combine(it->second, entry.mode);
  }
}

}  // namespace

ShardMergeResult merge_shards(const std::vector<ShardLane>& lanes) {
  ShardMergeResult result;
  result.lane_counts.reserve(lanes.size());

  // Winner footprint of strictly lower lanes only: same-lane conflicts
  // are ordered by the lane's schedule, never arbitrated.
  Footprint lower;

  for (const ShardLane& lane : lanes) {
    const std::size_t n = lane.transactions.size();
    if (lane.statuses.size() != n || lane.profiles.size() != n) {
      throw std::invalid_argument("merge_shards: lane body/status/profile sizes disagree");
    }

    // One forward pass decides the lane (the lane order is a topological
    // order of its own graph, so every predecessor is decided first).
    const graph::HappensBeforeGraph hb = graph::derive_happens_before(lane.profiles, n);
    std::vector<bool> lost(n, false);
    std::uint32_t winners = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (const std::uint32_t p : hb.predecessors(i)) {
        if (lost[p]) {
          lost[i] = true;
          break;
        }
      }
      if (!lost[i] && conflicts_with(lower, lane.profiles[i])) {
        lost[i] = true;
        ++result.cross_shard_conflicts;
      }
      if (lost[i]) {
        result.requeued.push_back(lane.transactions[i]);
        continue;
      }
      ++winners;
      result.transactions.push_back(lane.transactions[i]);
      result.statuses.push_back(lane.statuses[i]);
      result.profiles.push_back(lane.profiles[i]);
      result.origins.push_back(
          ShardOrigin{static_cast<std::uint32_t>(result.lane_counts.size()), i});
    }
    result.lane_counts.push_back(winners);

    // This lane's winners join the footprint the NEXT lane loses against.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!lost[i]) absorb(lower, lane.profiles[i]);
    }
  }

  // Re-index and renumber: counters become what a serial execution of the
  // merged order would have produced (1, 2, 3… per lock in merged order),
  // exactly mine_serial's synthesis. Renumbering by a linear extension
  // preserves each lock's run structure — commuting holders stay
  // commuting, conflicting holders keep their relative order — so the
  // derived happens-before graph is the lane graphs plus the (already
  // commuting-free) cross-lane orderings, and validator replay, which
  // compares (lock, mode) sets only, is unaffected.
  std::unordered_map<stm::LockId, std::uint64_t, stm::LockIdHash> counters;
  for (std::size_t m = 0; m < result.profiles.size(); ++m) {
    stm::LockProfile& profile = result.profiles[m];
    profile.tx = static_cast<std::uint32_t>(m);
    for (auto& entry : profile.entries) entry.counter = ++counters[entry.lock];
  }
  return result;
}

}  // namespace concord::chain
