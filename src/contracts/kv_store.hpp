#pragma once

#include <cstdint>

#include "chain/transaction.hpp"
#include "vm/boosted_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"
#include "vm/lazy_map.hpp"

namespace concord::contracts {

/// A plain key-value store contract with a switchable version-management
/// backend: eager (BoostedMap: apply + inverse log) or lazy (LazyMap:
/// buffer + apply-on-commit). Both present identical semantics and
/// identical abstract-lock footprints, so a block mined against one
/// backend validates against the other — which is exactly what makes
/// `bench_ablation_lazy` a clean apples-to-apples measurement of the
/// paper's §3 eager-vs-lazy design choice.
///
/// The put path intentionally does read-check-write (reject overwriting a
/// "locked" tombstone value) so that hot-key workloads produce genuine
/// read-write contention rather than blind stores.
class KvStore final : public vm::Contract {
 public:
  static constexpr vm::Selector kPut = 1;
  static constexpr vm::Selector kGet = 2;
  static constexpr vm::Selector kErase = 3;

  enum class Backend : std::uint8_t { kEager, kLazy };

  KvStore(vm::Address address, Backend backend);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override {
    eager_.set_arena(arena);
    lazy_.set_arena(arena);
  }

  /// Pre-sizes the active backend's table for `entries` keys (genesis
  /// seeding).
  void raw_reserve(std::size_t entries) {
    eager_.raw_reserve(entries);
    lazy_.raw_reserve(entries);
  }

  // --- Typed API --------------------------------------------------------

  /// Binds key → value; reverts when the key holds the reserved tombstone.
  void put(vm::ExecContext& ctx, std::uint64_t key, std::int64_t value);

  [[nodiscard]] std::int64_t get(vm::ExecContext& ctx, std::uint64_t key) const;

  void erase(vm::ExecContext& ctx, std::uint64_t key);

  // --- Genesis & inspection --------------------------------------------
  void raw_put(std::uint64_t key, std::int64_t value);
  [[nodiscard]] std::int64_t raw_get(std::uint64_t key) const;
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// The value that marks a key as immutable (puts against it revert).
  static constexpr std::int64_t kTombstone = -1;

  // --- Transaction builders --------------------------------------------
  [[nodiscard]] static chain::Transaction make_put_tx(const vm::Address& contract,
                                                      const vm::Address& sender,
                                                      std::uint64_t key, std::int64_t value);
  [[nodiscard]] static chain::Transaction make_get_tx(const vm::Address& contract,
                                                      const vm::Address& sender,
                                                      std::uint64_t key);

 private:
  static constexpr std::uint64_t kOpComputeGas = 3'000;

  const Backend backend_;
  vm::BoostedMap<std::uint64_t, std::int64_t> eager_;
  vm::LazyMap<std::uint64_t, std::int64_t> lazy_;
};

}  // namespace concord::contracts
