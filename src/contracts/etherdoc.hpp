#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"

namespace concord::contracts {

/// EtherDoc, the "Proof of Existence" DAPP the paper benchmarks (§7.1):
/// "tracks per-document metadata including hashcode [and] owner. It
/// permits new document creation, metadata retrieval, and ownership
/// transfer."
///
/// Conflict structure:
///  - exists()/get() are pure reads of one document slot — a block of
///    lookups on distinct documents is embarrassingly parallel, and
///    concurrent lookups of the *same* document also commute (shared READ
///    mode).
///  - transferOwnership() writes the document slot and appends to the new
///    owner's document list. The benchmark transfers every conflicting
///    document to the *contract creator*, so all conflicting transactions
///    serialize on the creator's list — matching the paper's observation
///    that EtherDoc's conflicts "touch the same shared data" and cause the
///    fastest speedup drop-off.
class EtherDoc final : public vm::Contract {
 public:
  static constexpr vm::Selector kCreateDocument = 1;
  static constexpr vm::Selector kExists = 2;
  static constexpr vm::Selector kTransferOwnership = 3;
  static constexpr vm::Selector kGetDocument = 4;

  /// Per-document metadata.
  struct Doc {
    vm::Address owner;
    std::uint64_t version = 0;  ///< Bumped on every ownership transfer.

    friend bool operator==(const Doc&, const Doc&) = default;

    void encode(util::ByteWriter& w) const {
      vm::encode_value(w, owner);
      vm::encode_value(w, version);
    }
  };

  EtherDoc(vm::Address address, vm::Address creator);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override {
    documents_.set_arena(arena);
    owner_counts_.set_arena(arena);
    owner_docs_.set_arena(arena);
  }

  /// Pre-sizes the document table for `documents` entries (genesis
  /// seeding).
  void raw_reserve(std::size_t documents) { documents_.raw_reserve(documents); }

  // --- Typed API --------------------------------------------------------

  /// Registers a new document owned by the caller; reverts if the
  /// hashcode is already registered.
  void create_document(vm::ExecContext& ctx, std::uint64_t hashcode);

  /// Proof-of-existence check — the benchmark's read transaction.
  [[nodiscard]] bool exists_document(vm::ExecContext& ctx, std::uint64_t hashcode) const;

  /// Metadata retrieval; reverts when the document does not exist.
  [[nodiscard]] Doc get_document(vm::ExecContext& ctx, std::uint64_t hashcode) const;

  /// Transfers ownership; only the current owner may call. The benchmark's
  /// conflict transaction (all transfers target the creator).
  void transfer_ownership(vm::ExecContext& ctx, std::uint64_t hashcode, const vm::Address& to);

  // --- Genesis & inspection --------------------------------------------

  void raw_add_document(std::uint64_t hashcode, const vm::Address& owner);
  [[nodiscard]] Doc raw_document(std::uint64_t hashcode) const;
  [[nodiscard]] bool raw_exists(std::uint64_t hashcode) const;
  [[nodiscard]] std::int64_t raw_owner_count(const vm::Address& owner) const {
    return owner_counts_.raw_get(owner);
  }
  [[nodiscard]] std::vector<std::uint64_t> raw_owner_docs(const vm::Address& owner) const {
    return owner_docs_.raw_get(owner).value_or(std::vector<std::uint64_t>{});
  }
  [[nodiscard]] const vm::Address& creator() const noexcept { return creator_; }

  // --- Transaction builders --------------------------------------------

  [[nodiscard]] static chain::Transaction make_create_tx(const vm::Address& contract,
                                                         const vm::Address& sender,
                                                         std::uint64_t hashcode);
  [[nodiscard]] static chain::Transaction make_exists_tx(const vm::Address& contract,
                                                         const vm::Address& sender,
                                                         std::uint64_t hashcode);
  [[nodiscard]] static chain::Transaction make_transfer_tx(const vm::Address& contract,
                                                           const vm::Address& sender,
                                                           std::uint64_t hashcode,
                                                           const vm::Address& to);

 private:
  static constexpr std::uint64_t kCreateComputeGas = 3'000;
  static constexpr std::uint64_t kExistsComputeGas = 4'000;
  static constexpr std::uint64_t kTransferComputeGas = 3'500;
  static constexpr std::uint64_t kGetComputeGas = 2'000;

  const vm::Address creator_;  ///< Immutable after genesis.
  vm::BoostedMap<std::uint64_t, Doc> documents_;
  vm::BoostedCounterMap<vm::Address> owner_counts_;
  vm::BoostedMap<vm::Address, std::vector<std::uint64_t>> owner_docs_;
};

}  // namespace concord::contracts
