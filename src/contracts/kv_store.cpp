#include "contracts/kv_store.hpp"

#include "util/bytes.hpp"
#include "vm/gas.hpp"

namespace concord::contracts {

KvStore::KvStore(vm::Address address, Backend backend)
    : Contract(address, "KvStore"),
      backend_(backend),
      // Both backends share one lock space: the conflict structure (and
      // therefore the published schedules) are identical by construction.
      eager_(field_space("entries")),
      lazy_(field_space("entries")) {}

void KvStore::execute(const vm::Call& call, vm::ExecContext& ctx) {
  try {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kPut: {
        const std::uint64_t key = args.get_varint();
        put(ctx, key, static_cast<std::int64_t>(args.get_varint()));
        return;
      }
      case kGet:
        (void)get(ctx, args.get_varint());
        return;
      case kErase:
        erase(ctx, args.get_varint());
        return;
      default:
        throw vm::BadCall("KvStore: unknown selector");
    }
  } catch (const util::DecodeError& e) {
    throw vm::BadCall(std::string("KvStore: malformed arguments: ") + e.what());
  }
}

void KvStore::put(vm::ExecContext& ctx, std::uint64_t key, std::int64_t value) {
  ctx.gas().charge(kOpComputeGas * vm::gas::kStep);
  const std::int64_t current = backend_ == Backend::kEager
                                   ? eager_.get_for_update(ctx, key).value_or(0)
                                   : lazy_.get_for_update(ctx, key).value_or(0);
  if (current == kTombstone) throw vm::RevertError("key is immutable");
  if (backend_ == Backend::kEager) {
    eager_.put(ctx, key, value);
  } else {
    lazy_.put(ctx, key, value);
  }
}

std::int64_t KvStore::get(vm::ExecContext& ctx, std::uint64_t key) const {
  ctx.gas().charge(kOpComputeGas * vm::gas::kStep);
  return backend_ == Backend::kEager ? eager_.get(ctx, key).value_or(0)
                                     : lazy_.get(ctx, key).value_or(0);
}

void KvStore::erase(vm::ExecContext& ctx, std::uint64_t key) {
  ctx.gas().charge(kOpComputeGas * vm::gas::kStep);
  if (backend_ == Backend::kEager) {
    (void)eager_.erase(ctx, key);
  } else {
    (void)lazy_.erase(ctx, key);
  }
}

void KvStore::raw_put(std::uint64_t key, std::int64_t value) {
  if (backend_ == Backend::kEager) {
    eager_.raw_put(key, value);
  } else {
    lazy_.raw_put(key, value);
  }
}

std::int64_t KvStore::raw_get(std::uint64_t key) const {
  return backend_ == Backend::kEager ? eager_.raw_get(key).value_or(0)
                                     : lazy_.raw_get(key).value_or(0);
}

void KvStore::hash_state(vm::StateHasher& hasher) const {
  if (backend_ == Backend::kEager) {
    eager_.hash_state(hasher, "entries");
  } else {
    lazy_.hash_state(hasher, "entries");
  }
}

std::unique_ptr<vm::Contract> KvStore::fork() const {
  auto copy = std::make_unique<KvStore>(address(), backend_);
  copy->eager_.fork_state_from(eager_);
  copy->lazy_.fork_state_from(lazy_);
  return copy;
}

chain::Transaction KvStore::make_put_tx(const vm::Address& contract, const vm::Address& sender,
                                        std::uint64_t key, std::int64_t value) {
  return chain::TxBuilder(contract, sender, kPut)
      .arg_u64(key)
      .arg_u64(static_cast<std::uint64_t>(value))
      .build();
}

chain::Transaction KvStore::make_get_tx(const vm::Address& contract, const vm::Address& sender,
                                        std::uint64_t key) {
  return chain::TxBuilder(contract, sender, kGet).arg_u64(key).build();
}

}  // namespace concord::contracts
