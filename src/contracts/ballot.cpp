#include "contracts/ballot.hpp"

#include "util/bytes.hpp"
#include "vm/gas.hpp"

namespace concord::contracts {

namespace {
vm::Address read_address(util::ByteReader& r) {
  vm::Address a;
  const auto raw = r.get_raw(a.bytes.size());
  std::copy(raw.begin(), raw.end(), a.bytes.begin());
  return a;
}
}  // namespace

Ballot::Ballot(vm::Address address, vm::Address chairperson,
               std::vector<std::string> proposal_names)
    : Contract(address, "Ballot"),
      chairperson_(chairperson),
      names_(std::move(proposal_names)),
      voters_(field_space("voters")),
      vote_counts_(field_space("voteCounts")) {
  if (names_.empty()) throw vm::BadCall("Ballot needs at least one proposal");
  voters_.raw_put(chairperson_, Voter{.weight = 1, .voted = false, .delegate_to = {}, .vote = 0});
}

void Ballot::execute(const vm::Call& call, vm::ExecContext& ctx) {
  try {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kGiveRightToVote:
        give_right_to_vote(ctx, read_address(args));
        return;
      case kDelegate:
        delegate(ctx, read_address(args));
        return;
      case kVote:
        vote(ctx, args.get_varint());
        return;
      case kWinningProposal:
        (void)winning_proposal(ctx);
        return;
      case kWinnerName:
        (void)winner_name(ctx);
        return;
      default:
        throw vm::BadCall("Ballot: unknown selector");
    }
  } catch (const util::DecodeError& e) {
    throw vm::BadCall(std::string("Ballot: malformed arguments: ") + e.what());
  }
}

void Ballot::give_right_to_vote(vm::ExecContext& ctx, const vm::Address& voter) {
  ctx.gas().charge(kGiveRightComputeGas * vm::gas::kStep);
  // "if (msg.sender != chairperson || voters[voter].voted) throw;"
  if (ctx.msg().sender != chairperson_) throw vm::RevertError("only chairperson");
  if (voters_.get_or(ctx, voter, Voter{}).voted) throw vm::RevertError("voter already voted");
  voters_.update(ctx, voter, Voter{}, [](Voter& v) { v.weight = 1; });
}

void Ballot::delegate(vm::ExecContext& ctx, vm::Address to) {
  const vm::Address self = ctx.msg().sender;
  const Voter sender = voters_.get_for_update(ctx, self).value_or(Voter{});
  if (sender.voted) throw vm::RevertError("already voted");
  ctx.gas().charge(kDelegateComputeGas * vm::gas::kStep);

  // "Forward the delegation as long as `to` also delegated." Each hop is
  // a charged storage read, so runaway chains exhaust gas exactly as the
  // Appendix A comment warns.
  for (;;) {
    const Voter target = voters_.get_or(ctx, to, Voter{});
    if (target.delegate_to.is_zero() || target.delegate_to == self) break;
    to = target.delegate_to;
  }
  if (to == self) throw vm::RevertError("delegation loop");

  voters_.update(ctx, self, Voter{}, [&](Voter& v) {
    v.voted = true;
    v.delegate_to = to;
  });
  const Voter delegate_voter = voters_.get_or(ctx, to, Voter{});
  if (delegate_voter.voted) {
    // "If the delegate already voted, directly add to the number of votes."
    vote_counts_.add(ctx, delegate_voter.vote, sender.weight);
  } else {
    // "If the delegate did not vote yet, add to her weight."
    voters_.update(ctx, to, Voter{}, [&](Voter& v) { v.weight += sender.weight; });
  }
}

void Ballot::vote(vm::ExecContext& ctx, std::uint64_t proposal) {
  const vm::Address self = ctx.msg().sender;
  // For-update: a successful vote always writes the voter entry it just
  // read. This makes a double-vote pair queue instead of deadlock — with
  // the same final outcome (the second observes voted == true and
  // reverts).
  const Voter sender = voters_.get_for_update(ctx, self).value_or(Voter{});
  if (sender.voted) throw vm::RevertError("already voted");
  ctx.gas().charge(kVoteComputeGas * vm::gas::kStep);

  voters_.update(ctx, self, Voter{}, [&](Voter& v) {
    v.voted = true;
    v.vote = proposal;
  });
  // "If proposal is out of the range of the array, this will throw
  // automatically and revert all changes."
  if (proposal >= names_.size()) throw vm::RevertError("proposal out of range");
  vote_counts_.add(ctx, proposal, sender.weight);
}

std::uint64_t Ballot::winning_proposal(vm::ExecContext& ctx) const {
  ctx.gas().charge(kTallyComputeGas * vm::gas::kStep);
  std::uint64_t winner = 0;
  std::int64_t winning_count = 0;
  for (std::uint64_t p = 0; p < names_.size(); ++p) {
    const std::int64_t count = vote_counts_.get(ctx, p);
    if (count > winning_count) {
      winning_count = count;
      winner = p;
    }
  }
  return winner;
}

std::string Ballot::winner_name(vm::ExecContext& ctx) const {
  return names_[winning_proposal(ctx)];
}

void Ballot::raw_register_voter(const vm::Address& voter, std::int64_t weight) {
  voters_.raw_put(voter, Voter{.weight = weight, .voted = false, .delegate_to = {}, .vote = 0});
}

Ballot::Voter Ballot::raw_voter(const vm::Address& voter) const {
  return voters_.raw_get(voter).value_or(Voter{});
}

std::int64_t Ballot::raw_vote_count(std::uint64_t proposal) const {
  return vote_counts_.raw_get(proposal);
}

void Ballot::hash_state(vm::StateHasher& hasher) const {
  hasher.begin_section("chairperson");
  hasher.put_bytes(chairperson_.bytes);
  hasher.begin_section("proposals");
  hasher.put_u64(names_.size());
  for (const auto& name : names_) hasher.put_bytes(vm::encoded_bytes(name));
  voters_.hash_state(hasher, "voters");
  vote_counts_.hash_state(hasher, "voteCounts");
}

std::unique_ptr<vm::Contract> Ballot::fork() const {
  auto copy = std::make_unique<Ballot>(address(), chairperson_, names_);
  copy->voters_.fork_state_from(voters_);
  copy->vote_counts_.fork_state_from(vote_counts_);
  return copy;
}

chain::Transaction Ballot::make_vote_tx(const vm::Address& contract, const vm::Address& sender,
                                        std::uint64_t proposal) {
  return chain::TxBuilder(contract, sender, kVote).arg_u64(proposal).build();
}

chain::Transaction Ballot::make_delegate_tx(const vm::Address& contract,
                                            const vm::Address& sender, const vm::Address& to) {
  return chain::TxBuilder(contract, sender, kDelegate).arg_address(to).build();
}

chain::Transaction Ballot::make_give_right_tx(const vm::Address& contract,
                                              const vm::Address& chairperson,
                                              const vm::Address& voter) {
  return chain::TxBuilder(contract, chairperson, kGiveRightToVote).arg_address(voter).build();
}

chain::Transaction Ballot::make_winning_proposal_tx(const vm::Address& contract,
                                                    const vm::Address& sender) {
  return chain::TxBuilder(contract, sender, kWinningProposal).build();
}

}  // namespace concord::contracts
