#include "contracts/token.hpp"

#include "util/bytes.hpp"
#include "vm/gas.hpp"

namespace concord::contracts {

namespace {
vm::Address read_address(util::ByteReader& r) {
  vm::Address a;
  const auto raw = r.get_raw(a.bytes.size());
  std::copy(raw.begin(), raw.end(), a.bytes.begin());
  return a;
}
}  // namespace

Token::Token(vm::Address address, std::string symbol, vm::Address issuer)
    : Contract(address, "Token"),
      symbol_(std::move(symbol)),
      issuer_(issuer),
      balances_(field_space("balances")) {}

void Token::execute(const vm::Call& call, vm::ExecContext& ctx) {
  try {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kTransfer: {
        const vm::Address to = read_address(args);
        transfer(ctx, to, static_cast<vm::Amount>(args.get_varint()));
        return;
      }
      case kMint: {
        const vm::Address to = read_address(args);
        mint(ctx, to, static_cast<vm::Amount>(args.get_varint()));
        return;
      }
      case kBalanceOf:
        (void)balance_of(ctx, read_address(args));
        return;
      default:
        throw vm::BadCall("Token: unknown selector");
    }
  } catch (const util::DecodeError& e) {
    throw vm::BadCall(std::string("Token: malformed arguments: ") + e.what());
  }
}

void Token::transfer(vm::ExecContext& ctx, const vm::Address& to, vm::Amount amount) {
  ctx.gas().charge(kTransferComputeGas * vm::gas::kStep);
  if (amount <= 0) throw vm::RevertError("non-positive transfer");
  const vm::Address from = ctx.msg().sender;
  // Overdraft check forces an exclusive read-modify-write on the sender's
  // balance; the credit side stays commutative.
  const vm::Amount available = balances_.get_for_update(ctx, from);
  if (available < amount) throw vm::RevertError("insufficient balance");
  balances_.set(ctx, from, available - amount);
  balances_.add(ctx, to, amount);
}

void Token::mint(vm::ExecContext& ctx, const vm::Address& to, vm::Amount amount) {
  ctx.gas().charge(kTransferComputeGas * vm::gas::kStep);
  if (ctx.msg().sender != issuer_) throw vm::RevertError("only issuer may mint");
  if (amount <= 0) throw vm::RevertError("non-positive mint");
  balances_.add(ctx, to, amount);
}

vm::Amount Token::balance_of(vm::ExecContext& ctx, const vm::Address& who) const {
  return balances_.get(ctx, who);
}

void Token::raw_mint(const vm::Address& to, vm::Amount amount) {
  balances_.raw_set(to, balances_.raw_get(to) + amount);
}

void Token::hash_state(vm::StateHasher& hasher) const {
  hasher.begin_section("symbol");
  hasher.put_bytes(vm::encoded_bytes(symbol_));
  hasher.begin_section("issuer");
  hasher.put_bytes(issuer_.bytes);
  balances_.hash_state(hasher, "balances");
}

std::unique_ptr<vm::Contract> Token::fork() const {
  auto copy = std::make_unique<Token>(address(), symbol_, issuer_);
  copy->balances_.fork_state_from(balances_);
  return copy;
}

chain::Transaction Token::make_transfer_tx(const vm::Address& contract,
                                           const vm::Address& sender, const vm::Address& to,
                                           vm::Amount amount) {
  return chain::TxBuilder(contract, sender, kTransfer)
      .arg_address(to)
      .arg_u64(static_cast<std::uint64_t>(amount))
      .build();
}

chain::Transaction Token::make_mint_tx(const vm::Address& contract, const vm::Address& issuer,
                                       const vm::Address& to, vm::Amount amount) {
  return chain::TxBuilder(contract, issuer, kMint)
      .arg_address(to)
      .arg_u64(static_cast<std::uint64_t>(amount))
      .build();
}

}  // namespace concord::contracts
