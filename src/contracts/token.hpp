#pragma once

#include <cstdint>
#include <string>

#include "chain/transaction.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"

namespace concord::contracts {

/// A minimal fungible-token contract (ERC20-style balances + transfer).
/// Not one of the paper's three benchmarks — it exists to exercise the
/// parts of the runtime they do not: cross-contract calls target it from
/// PaymentSplitter (nested speculative actions), and its transfer path is
/// the canonical example of boosting's judgment call between a
/// commutative credit and a checked, serializing debit.
class Token final : public vm::Contract {
 public:
  static constexpr vm::Selector kTransfer = 1;
  static constexpr vm::Selector kMint = 2;
  static constexpr vm::Selector kBalanceOf = 3;

  Token(vm::Address address, std::string symbol, vm::Address issuer);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override { balances_.set_arena(arena); }

  /// Pre-sizes the balance table for `holders` accounts (genesis seeding
  /// of million-account worlds; see CowPages::reserve).
  void raw_reserve(std::size_t holders) { balances_.raw_reserve(holders); }

  /// Moves `amount` from msg.sender to `to`. The debit reads the sender's
  /// balance (overdraft check) and writes it — an exclusive for-update
  /// access — while the credit is a commutative add, so transfers with
  /// distinct senders and any receivers run in parallel.
  void transfer(vm::ExecContext& ctx, const vm::Address& to, vm::Amount amount);

  /// Issues new tokens; only the issuer may call.
  void mint(vm::ExecContext& ctx, const vm::Address& to, vm::Amount amount);

  [[nodiscard]] vm::Amount balance_of(vm::ExecContext& ctx, const vm::Address& who) const;

  // --- Genesis & inspection --------------------------------------------
  void raw_mint(const vm::Address& to, vm::Amount amount);
  void raw_set_balance(const vm::Address& who, vm::Amount amount) {
    balances_.raw_set(who, amount);
  }
  [[nodiscard]] vm::Amount raw_balance(const vm::Address& who) const {
    return balances_.raw_get(who);
  }
  [[nodiscard]] vm::Amount raw_total_supply() const { return balances_.raw_total(); }
  /// Accounts holding a non-zero balance (the Zipf fixtures seed one per
  /// genesis account).
  [[nodiscard]] std::size_t holder_count() const { return balances_.size(); }
  [[nodiscard]] const std::string& symbol() const noexcept { return symbol_; }
  [[nodiscard]] const vm::Address& issuer() const noexcept { return issuer_; }

  // --- Transaction builders --------------------------------------------
  [[nodiscard]] static chain::Transaction make_transfer_tx(const vm::Address& contract,
                                                           const vm::Address& sender,
                                                           const vm::Address& to,
                                                           vm::Amount amount);
  [[nodiscard]] static chain::Transaction make_mint_tx(const vm::Address& contract,
                                                       const vm::Address& issuer,
                                                       const vm::Address& to, vm::Amount amount);

 private:
  static constexpr std::uint64_t kTransferComputeGas = 3'000;

  const std::string symbol_;   ///< Immutable after genesis.
  const vm::Address issuer_;   ///< Immutable after genesis.
  vm::BoostedCounterMap<vm::Address> balances_;
};

}  // namespace concord::contracts
