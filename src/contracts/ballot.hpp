#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/transaction.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"

namespace concord::contracts {

/// The Ballot voting contract from the Solidity documentation, translated
/// function-for-function from the paper's Appendix A.
///
/// Storage model (and its conflict structure, which drives the Ballot
/// benchmark curves):
///  - `voters`: boosted map Address → Voter. vote()/delegate() read and
///    then write the sender's own entry, so two transactions conflict on
///    it only when they come from the *same* voter (the benchmark's
///    double-vote conflicts).
///  - vote counts: a boosted counter map (proposal index → votes).
///    `proposals[p].voteCount += sender.weight` is a commutative
///    increment, so a whole block voting for the same proposal still
///    mines in parallel.
///  - chairperson and proposal names are fixed at construction (genesis)
///    and therefore need no boosting — constants cannot conflict.
class Ballot final : public vm::Contract {
 public:
  static constexpr vm::Selector kGiveRightToVote = 1;
  static constexpr vm::Selector kDelegate = 2;
  static constexpr vm::Selector kVote = 3;
  static constexpr vm::Selector kWinningProposal = 4;
  static constexpr vm::Selector kWinnerName = 5;

  /// Appendix A's Voter struct. A plain value: map updates copy it, which
  /// is exactly how the paper's prototype treats Solidity structs
  /// ("solidity struct types were translated into immutable case classes").
  struct Voter {
    std::int64_t weight = 0;
    bool voted = false;
    vm::Address delegate_to;  ///< Appendix A's `delegate` field.
    std::uint64_t vote = 0;

    friend bool operator==(const Voter&, const Voter&) = default;

    void encode(util::ByteWriter& w) const {
      vm::encode_value(w, weight);
      vm::encode_value(w, voted);
      vm::encode_value(w, delegate_to);
      vm::encode_value(w, vote);
    }
  };

  /// Deploys the ballot: the chairperson gets weight 1, as in Appendix A's
  /// constructor.
  Ballot(vm::Address address, vm::Address chairperson, std::vector<std::string> proposal_names);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override {
    voters_.set_arena(arena);
    vote_counts_.set_arena(arena);
  }

  /// Pre-sizes the voter roll for `voters` entries (genesis seeding).
  void raw_reserve(std::size_t voters) { voters_.raw_reserve(voters); }

  // --- Typed API (Appendix A functions) --------------------------------

  /// "Give voter the right to vote on this ballot. May only be called by
  /// chairperson."
  void give_right_to_vote(vm::ExecContext& ctx, const vm::Address& voter);

  /// "Delegate your vote to the voter `to`", following delegation chains
  /// and reverting on loops.
  void delegate(vm::ExecContext& ctx, vm::Address to);

  /// "Give your vote (including votes delegated to you) to proposal
  /// proposals[proposal]." Reverts on double votes — the benchmark's
  /// conflict source.
  void vote(vm::ExecContext& ctx, std::uint64_t proposal);

  /// "Computes the winning proposal taking all previous votes into
  /// account."
  [[nodiscard]] std::uint64_t winning_proposal(vm::ExecContext& ctx) const;

  /// Returns the name of the winner.
  [[nodiscard]] std::string winner_name(vm::ExecContext& ctx) const;

  // --- Genesis & inspection (non-transactional) ------------------------

  /// Registers a voter with the given weight directly in genesis state.
  void raw_register_voter(const vm::Address& voter, std::int64_t weight);

  [[nodiscard]] Voter raw_voter(const vm::Address& voter) const;
  [[nodiscard]] std::int64_t raw_vote_count(std::uint64_t proposal) const;
  [[nodiscard]] std::size_t proposal_count() const noexcept { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& proposal_names() const noexcept { return names_; }
  [[nodiscard]] const vm::Address& chairperson() const noexcept { return chairperson_; }

  // --- Transaction builders --------------------------------------------

  [[nodiscard]] static chain::Transaction make_vote_tx(const vm::Address& contract,
                                                       const vm::Address& sender,
                                                       std::uint64_t proposal);
  [[nodiscard]] static chain::Transaction make_delegate_tx(const vm::Address& contract,
                                                           const vm::Address& sender,
                                                           const vm::Address& to);
  [[nodiscard]] static chain::Transaction make_give_right_tx(const vm::Address& contract,
                                                             const vm::Address& chairperson,
                                                             const vm::Address& voter);
  [[nodiscard]] static chain::Transaction make_winning_proposal_tx(const vm::Address& contract,
                                                                   const vm::Address& sender);

 private:
  /// Modeled bytecode cost of each function body (see GasMeter).
  static constexpr std::uint64_t kVoteComputeGas = 4'000;
  static constexpr std::uint64_t kDelegateComputeGas = 3'000;
  static constexpr std::uint64_t kGiveRightComputeGas = 2'000;
  static constexpr std::uint64_t kTallyComputeGas = 2'000;

  const vm::Address chairperson_;
  const std::vector<std::string> names_;  ///< Immutable after genesis.
  vm::BoostedMap<vm::Address, Voter> voters_;
  vm::BoostedCounterMap<std::uint64_t> vote_counts_;
};

}  // namespace concord::contracts
