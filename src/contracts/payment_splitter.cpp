#include "contracts/payment_splitter.hpp"

#include "contracts/token.hpp"
#include "util/bytes.hpp"
#include "vm/gas.hpp"
#include "vm/world.hpp"

namespace concord::contracts {

PaymentSplitter::PaymentSplitter(vm::Address address, vm::Address token,
                                 std::vector<vm::Address> payees)
    : Contract(address, "PaymentSplitter"),
      token_(token),
      payees_(std::move(payees)),
      stats_(field_space("stats")) {
  if (payees_.empty()) throw vm::BadCall("PaymentSplitter needs at least one payee");
}

void PaymentSplitter::execute(const vm::Call& call, vm::ExecContext& ctx) {
  try {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kDistribute:
        distribute(ctx, static_cast<vm::Amount>(args.get_varint()));
        return;
      default:
        throw vm::BadCall("PaymentSplitter: unknown selector");
    }
  } catch (const util::DecodeError& e) {
    throw vm::BadCall(std::string("PaymentSplitter: malformed arguments: ") + e.what());
  }
}

void PaymentSplitter::distribute(vm::ExecContext& ctx, vm::Amount amount) {
  ctx.gas().charge(kDistributeComputeGas * vm::gas::kStep);
  const vm::Amount share = amount / static_cast<vm::Amount>(payees_.size());
  if (share <= 0) throw vm::RevertError("amount too small to split");

  auto& token = ctx.world().contracts().as<Token>(token_);
  std::int64_t failed = 0;
  for (const vm::Address& payee : payees_) {
    // Each leg is a nested action: the Token sees msg.sender == the
    // splitter contract; a reverting leg undoes only itself.
    const bool ok = ctx.nested_call(token_, 0, [&](vm::ExecContext& inner) {
      token.transfer(inner, payee, share);
    });
    if (!ok) ++failed;
  }
  if (failed == static_cast<std::int64_t>(payees_.size())) {
    throw vm::RevertError("every distribution leg failed");
  }
  stats_.add(ctx, kDistributions, 1);
  if (failed > 0) stats_.add(ctx, kFailedLegs, failed);
}

void PaymentSplitter::hash_state(vm::StateHasher& hasher) const {
  hasher.begin_section("token");
  hasher.put_bytes(token_.bytes);
  hasher.begin_section("payees");
  hasher.put_u64(payees_.size());
  for (const auto& payee : payees_) hasher.put_bytes(payee.bytes);
  stats_.hash_state(hasher, "stats");
}

std::unique_ptr<vm::Contract> PaymentSplitter::fork() const {
  auto copy = std::make_unique<PaymentSplitter>(address(), token_, payees_);
  copy->stats_.fork_state_from(stats_);
  return copy;
}

chain::Transaction PaymentSplitter::make_distribute_tx(const vm::Address& contract,
                                                       const vm::Address& sender,
                                                       vm::Amount amount) {
  return chain::TxBuilder(contract, sender, kDistribute)
      .arg_u64(static_cast<std::uint64_t>(amount))
      .build();
}

}  // namespace concord::contracts
