#include "contracts/etherdoc.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "vm/gas.hpp"

namespace concord::contracts {

namespace {
vm::Address read_address(util::ByteReader& r) {
  vm::Address a;
  const auto raw = r.get_raw(a.bytes.size());
  std::copy(raw.begin(), raw.end(), a.bytes.begin());
  return a;
}
}  // namespace

EtherDoc::EtherDoc(vm::Address address, vm::Address creator)
    : Contract(address, "EtherDoc"),
      creator_(creator),
      documents_(field_space("documents")),
      owner_counts_(field_space("ownerCounts")),
      owner_docs_(field_space("ownerDocs")) {}

void EtherDoc::execute(const vm::Call& call, vm::ExecContext& ctx) {
  try {
    util::ByteReader args(call.args);
    switch (call.selector) {
      case kCreateDocument:
        create_document(ctx, args.get_varint());
        return;
      case kExists:
        (void)exists_document(ctx, args.get_varint());
        return;
      case kTransferOwnership: {
        const std::uint64_t hashcode = args.get_varint();
        transfer_ownership(ctx, hashcode, read_address(args));
        return;
      }
      case kGetDocument:
        (void)get_document(ctx, args.get_varint());
        return;
      default:
        throw vm::BadCall("EtherDoc: unknown selector");
    }
  } catch (const util::DecodeError& e) {
    throw vm::BadCall(std::string("EtherDoc: malformed arguments: ") + e.what());
  }
}

void EtherDoc::create_document(vm::ExecContext& ctx, std::uint64_t hashcode) {
  ctx.gas().charge(kCreateComputeGas * vm::gas::kStep);
  if (documents_.contains(ctx, hashcode)) throw vm::RevertError("document already exists");
  const vm::Address owner = ctx.msg().sender;
  documents_.put(ctx, hashcode, Doc{owner, 0});
  owner_counts_.add(ctx, owner, 1);
  owner_docs_.update(ctx, owner, {}, [&](std::vector<std::uint64_t>& docs) {
    docs.push_back(hashcode);
  });
}

bool EtherDoc::exists_document(vm::ExecContext& ctx, std::uint64_t hashcode) const {
  ctx.gas().charge(kExistsComputeGas * vm::gas::kStep);
  return documents_.contains(ctx, hashcode);
}

EtherDoc::Doc EtherDoc::get_document(vm::ExecContext& ctx, std::uint64_t hashcode) const {
  ctx.gas().charge(kGetComputeGas * vm::gas::kStep);
  auto doc = documents_.get(ctx, hashcode);
  if (!doc) throw vm::RevertError("no such document");
  return *doc;
}

void EtherDoc::transfer_ownership(vm::ExecContext& ctx, std::uint64_t hashcode,
                                  const vm::Address& to) {
  const vm::Address caller = ctx.msg().sender;
  const auto doc = documents_.get_for_update(ctx, hashcode);
  if (!doc || doc->owner != caller) throw vm::RevertError("caller does not own document");

  // Move the document between the owner indexes first: the recipient's
  // list is the shared datum when many transfers target one owner (the
  // benchmark's contract creator), and its exclusive lock is held from
  // here to commit — so concurrent transfers to the same recipient
  // serialize over essentially the whole transfer body, which is the
  // behaviour the paper observes for EtherDoc under data conflict.
  owner_docs_.update(ctx, to, {}, [&](std::vector<std::uint64_t>& docs) {
    docs.push_back(hashcode);
  });
  owner_docs_.update(ctx, caller, {}, [&](std::vector<std::uint64_t>& docs) {
    docs.erase(std::remove(docs.begin(), docs.end(), hashcode), docs.end());
  });
  ctx.gas().charge(kTransferComputeGas * vm::gas::kStep);
  documents_.put(ctx, hashcode, Doc{to, doc->version + 1});
  owner_counts_.add(ctx, caller, -1);
  owner_counts_.add(ctx, to, 1);
}

void EtherDoc::raw_add_document(std::uint64_t hashcode, const vm::Address& owner) {
  documents_.raw_put(hashcode, Doc{owner, 0});
  owner_counts_.raw_set(owner, owner_counts_.raw_get(owner) + 1);
  auto docs = owner_docs_.raw_get(owner).value_or(std::vector<std::uint64_t>{});
  docs.push_back(hashcode);
  owner_docs_.raw_put(owner, std::move(docs));
}

EtherDoc::Doc EtherDoc::raw_document(std::uint64_t hashcode) const {
  return documents_.raw_get(hashcode).value_or(Doc{});
}

bool EtherDoc::raw_exists(std::uint64_t hashcode) const {
  return documents_.raw_get(hashcode).has_value();
}

void EtherDoc::hash_state(vm::StateHasher& hasher) const {
  hasher.begin_section("creator");
  hasher.put_bytes(creator_.bytes);
  documents_.hash_state(hasher, "documents");
  owner_counts_.hash_state(hasher, "ownerCounts");
  owner_docs_.hash_state(hasher, "ownerDocs");
}

std::unique_ptr<vm::Contract> EtherDoc::fork() const {
  auto copy = std::make_unique<EtherDoc>(address(), creator_);
  copy->documents_.fork_state_from(documents_);
  copy->owner_counts_.fork_state_from(owner_counts_);
  copy->owner_docs_.fork_state_from(owner_docs_);
  return copy;
}

chain::Transaction EtherDoc::make_create_tx(const vm::Address& contract,
                                            const vm::Address& sender, std::uint64_t hashcode) {
  return chain::TxBuilder(contract, sender, kCreateDocument).arg_u64(hashcode).build();
}

chain::Transaction EtherDoc::make_exists_tx(const vm::Address& contract,
                                            const vm::Address& sender, std::uint64_t hashcode) {
  return chain::TxBuilder(contract, sender, kExists).arg_u64(hashcode).build();
}

chain::Transaction EtherDoc::make_transfer_tx(const vm::Address& contract,
                                              const vm::Address& sender, std::uint64_t hashcode,
                                              const vm::Address& to) {
  return chain::TxBuilder(contract, sender, kTransferOwnership)
      .arg_u64(hashcode)
      .arg_address(to)
      .build();
}

}  // namespace concord::contracts
