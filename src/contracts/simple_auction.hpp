#pragma once

#include <cstdint>

#include "chain/transaction.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/boosted_scalar.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"

namespace concord::contracts {

/// The SimpleAuction contract from the Solidity documentation (paper
/// §7.1): "There is a single owner who initiates the auction, while any
/// participant can place bids with the bid() method. A mapping tracks how
/// much money needs to be returned to which bidder once the auction is
/// over. Bidders can then withdraw() their money."
///
/// Conflict structure:
///  - withdraw() touches only the caller's own pendingReturns slot, so
///    withdrawals from distinct bidders commute — the benchmark's
///    parallel-friendly transactions.
///  - bid()/bidPlusOne() read and then overwrite `highestBid` and
///    `highestBidder`, so *every pair* of them conflicts on the same two
///    scalars — the benchmark's conflict generator ("all contending
///    transactions touch the same shared data, so we expect a faster
///    drop-off in speedup with increased data conflict").
///  - outbidding credits the previous leader's pendingReturns with a
///    commutative add.
class SimpleAuction final : public vm::Contract {
 public:
  static constexpr vm::Selector kBid = 1;
  static constexpr vm::Selector kWithdraw = 2;
  static constexpr vm::Selector kBidPlusOne = 3;
  static constexpr vm::Selector kAuctionEnd = 4;

  SimpleAuction(vm::Address address, vm::Address beneficiary);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override {
    highest_bidder_.set_arena(arena);
    highest_bid_.set_arena(arena);
    pending_returns_.set_arena(arena);
    ended_.set_arena(arena);
  }

  /// Pre-sizes pendingReturns for `bidders` entries (genesis seeding).
  void raw_reserve(std::size_t bidders) { pending_returns_.raw_reserve(bidders); }

  // --- Typed API --------------------------------------------------------

  /// Places a bid of msg.value; reverts unless it beats the current
  /// highest. The outbid leader's stake moves to pendingReturns.
  void bid(vm::ExecContext& ctx);

  /// Returns the caller's refundable balance to their account.
  void withdraw(vm::ExecContext& ctx);

  /// The benchmark's conflict transaction: reads the current highest bid
  /// and outbids it by exactly one unit (paper §7.1: "new bidders who call
  /// bidPlusOne() to read and increase the highest bid").
  void bid_plus_one(vm::ExecContext& ctx);

  /// Closes the auction and pays the beneficiary.
  void auction_end(vm::ExecContext& ctx);

  // --- Genesis & inspection --------------------------------------------

  /// Seeds the auction as if `bidder` had bid `amount` (genesis only).
  void raw_set_highest(const vm::Address& bidder, vm::Amount amount);
  /// Seeds a refundable balance (genesis only).
  void raw_add_pending(const vm::Address& bidder, vm::Amount amount);

  [[nodiscard]] vm::Amount raw_highest_bid() const { return highest_bid_.raw_get(); }
  [[nodiscard]] vm::Address raw_highest_bidder() const { return highest_bidder_.raw_get(); }
  [[nodiscard]] vm::Amount raw_pending(const vm::Address& bidder) const {
    return pending_returns_.raw_get(bidder);
  }
  [[nodiscard]] bool raw_ended() const { return ended_.raw_get(); }
  [[nodiscard]] const vm::Address& beneficiary() const noexcept { return beneficiary_; }

  // --- Transaction builders --------------------------------------------

  [[nodiscard]] static chain::Transaction make_bid_tx(const vm::Address& contract,
                                                      const vm::Address& sender,
                                                      vm::Amount amount);
  [[nodiscard]] static chain::Transaction make_withdraw_tx(const vm::Address& contract,
                                                           const vm::Address& sender);
  [[nodiscard]] static chain::Transaction make_bid_plus_one_tx(const vm::Address& contract,
                                                               const vm::Address& sender);
  [[nodiscard]] static chain::Transaction make_auction_end_tx(const vm::Address& contract,
                                                              const vm::Address& sender);

 private:
  static constexpr std::uint64_t kBidComputeGas = 3'500;
  static constexpr std::uint64_t kWithdrawComputeGas = 3'500;
  static constexpr std::uint64_t kEndComputeGas = 2'000;

  const vm::Address beneficiary_;  ///< Immutable after genesis.
  vm::BoostedScalar<vm::Address> highest_bidder_;
  vm::BoostedScalar<vm::Amount> highest_bid_;
  vm::BoostedCounterMap<vm::Address> pending_returns_;
  vm::BoostedScalar<bool> ended_;
};

}  // namespace concord::contracts
