#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "vm/boosted_counter_map.hpp"
#include "vm/contract.hpp"
#include "vm/errors.hpp"

namespace concord::contracts {

/// Splits incoming token payments across a fixed set of payees by calling
/// into a Token contract — the repository's exercise of the paper's
/// nested-speculative-action machinery ("When one smart contract calls
/// another, the run-time system creates a nested speculative action,
/// which can commit or abort independently of its parent").
///
/// distribute(amount) makes one nested Token.transfer call per payee. A
/// failing leg (e.g. the splitter's token balance running dry mid-way)
/// aborts only that nested action; the splitter records the failure and
/// carries on — exactly the child-abort-does-not-abort-parent semantics.
class PaymentSplitter final : public vm::Contract {
 public:
  static constexpr vm::Selector kDistribute = 1;

  /// `token` is the Token contract payments are denominated in; `payees`
  /// the fixed recipient list (equal shares).
  PaymentSplitter(vm::Address address, vm::Address token, std::vector<vm::Address> payees);

  void execute(const vm::Call& call, vm::ExecContext& ctx) override;
  void hash_state(vm::StateHasher& hasher) const override;
  [[nodiscard]] std::unique_ptr<vm::Contract> fork() const override;
  void bind_arena(const vm::ArenaHandle& arena) override { stats_.set_arena(arena); }

  /// Pays each payee `amount / payees` tokens from the splitter's own
  /// token balance via nested calls. Reverts if every leg fails; partial
  /// success commits the successful legs and counts the failures.
  void distribute(vm::ExecContext& ctx, vm::Amount amount);

  // --- Inspection -------------------------------------------------------
  [[nodiscard]] std::int64_t raw_distributions() const { return stats_.raw_get(kDistributions); }
  [[nodiscard]] std::int64_t raw_failed_legs() const { return stats_.raw_get(kFailedLegs); }
  [[nodiscard]] const std::vector<vm::Address>& payees() const noexcept { return payees_; }
  [[nodiscard]] const vm::Address& token() const noexcept { return token_; }

  // --- Transaction builders ---------------------------------------------
  [[nodiscard]] static chain::Transaction make_distribute_tx(const vm::Address& contract,
                                                             const vm::Address& sender,
                                                             vm::Amount amount);

 private:
  static constexpr std::uint64_t kDistributeComputeGas = 2'000;
  // Keys in the stats counter map.
  static constexpr std::uint64_t kDistributions = 1;
  static constexpr std::uint64_t kFailedLegs = 2;

  const vm::Address token_;                 ///< Immutable after genesis.
  const std::vector<vm::Address> payees_;   ///< Immutable after genesis.
  vm::BoostedCounterMap<std::uint64_t> stats_;
};

}  // namespace concord::contracts
