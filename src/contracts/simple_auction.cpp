#include "contracts/simple_auction.hpp"

#include "vm/gas.hpp"
#include "vm/world.hpp"

namespace concord::contracts {

SimpleAuction::SimpleAuction(vm::Address address, vm::Address beneficiary)
    : Contract(address, "SimpleAuction"),
      beneficiary_(beneficiary),
      highest_bidder_(field_space("highestBidder"), vm::kZeroAddress),
      highest_bid_(field_space("highestBid"), 0),
      pending_returns_(field_space("pendingReturns")),
      ended_(field_space("ended"), false) {}

void SimpleAuction::execute(const vm::Call& call, vm::ExecContext& ctx) {
  switch (call.selector) {
    case kBid:
      bid(ctx);
      return;
    case kWithdraw:
      withdraw(ctx);
      return;
    case kBidPlusOne:
      bid_plus_one(ctx);
      return;
    case kAuctionEnd:
      auction_end(ctx);
      return;
    default:
      throw vm::BadCall("SimpleAuction: unknown selector");
  }
}

void SimpleAuction::bid(vm::ExecContext& ctx) {
  if (ended_.get(ctx)) throw vm::RevertError("auction already ended");
  ctx.gas().charge(kBidComputeGas * vm::gas::kStep);
  // For-update reads: every bid overwrites both scalars, so take the
  // exclusive lock at first access (read-then-upgrade would deadlock
  // against concurrent bids instead of queueing behind them).
  const vm::Amount current = highest_bid_.get_for_update(ctx);
  if (ctx.msg().value <= current) throw vm::RevertError("there is already a higher bid");
  const vm::Address previous = highest_bidder_.get_for_update(ctx);
  if (!previous.is_zero()) {
    // "Sending back the money by simply using highestBidder.send(highestBid)
    // is a security risk... let the recipients withdraw their money
    // themselves." — commutative credit.
    pending_returns_.add(ctx, previous, current);
  }
  highest_bidder_.set(ctx, ctx.msg().sender);
  highest_bid_.set(ctx, ctx.msg().value);
}

void SimpleAuction::withdraw(vm::ExecContext& ctx) {
  ctx.gas().charge(kWithdrawComputeGas * vm::gas::kStep);
  const vm::Address caller = ctx.msg().sender;
  const vm::Amount amount = pending_returns_.get_for_update(ctx, caller);
  if (amount > 0) {
    // Zero first, then pay — the withdrawal pattern from the Solidity
    // docs (prevents re-entrant double-withdraw).
    pending_returns_.set(ctx, caller, 0);
    ctx.world().transfer(ctx, address(), caller, amount);
  }
}

void SimpleAuction::bid_plus_one(vm::ExecContext& ctx) {
  if (ended_.get(ctx)) throw vm::RevertError("auction already ended");
  ctx.gas().charge(kBidComputeGas * vm::gas::kStep);
  // "read and increase the highest bid": the read-to-write window spans
  // the whole body, so take the exclusive lock up front (see bid()).
  const vm::Amount current = highest_bid_.get_for_update(ctx);
  const vm::Address previous = highest_bidder_.get_for_update(ctx);
  if (!previous.is_zero()) pending_returns_.add(ctx, previous, current);
  highest_bidder_.set(ctx, ctx.msg().sender);
  highest_bid_.set(ctx, current + 1);
}

void SimpleAuction::auction_end(vm::ExecContext& ctx) {
  ctx.gas().charge(kEndComputeGas * vm::gas::kStep);
  if (ended_.get_for_update(ctx)) throw vm::RevertError("auctionEnd already called");
  ended_.set(ctx, true);
  const vm::Amount winning = highest_bid_.get(ctx);
  if (winning > 0) ctx.world().transfer(ctx, address(), beneficiary_, winning);
}

void SimpleAuction::raw_set_highest(const vm::Address& bidder, vm::Amount amount) {
  highest_bidder_.raw_set(bidder);
  highest_bid_.raw_set(amount);
}

void SimpleAuction::raw_add_pending(const vm::Address& bidder, vm::Amount amount) {
  pending_returns_.raw_set(bidder, pending_returns_.raw_get(bidder) + amount);
}

void SimpleAuction::hash_state(vm::StateHasher& hasher) const {
  hasher.begin_section("beneficiary");
  hasher.put_bytes(beneficiary_.bytes);
  highest_bidder_.hash_state(hasher, "highestBidder");
  highest_bid_.hash_state(hasher, "highestBid");
  pending_returns_.hash_state(hasher, "pendingReturns");
  ended_.hash_state(hasher, "ended");
}

std::unique_ptr<vm::Contract> SimpleAuction::fork() const {
  auto copy = std::make_unique<SimpleAuction>(address(), beneficiary_);
  copy->highest_bidder_.fork_state_from(highest_bidder_);
  copy->highest_bid_.fork_state_from(highest_bid_);
  copy->pending_returns_.fork_state_from(pending_returns_);
  copy->ended_.fork_state_from(ended_);
  return copy;
}

chain::Transaction SimpleAuction::make_bid_tx(const vm::Address& contract,
                                              const vm::Address& sender, vm::Amount amount) {
  return chain::TxBuilder(contract, sender, kBid).value(amount).build();
}

chain::Transaction SimpleAuction::make_withdraw_tx(const vm::Address& contract,
                                                   const vm::Address& sender) {
  return chain::TxBuilder(contract, sender, kWithdraw).build();
}

chain::Transaction SimpleAuction::make_bid_plus_one_tx(const vm::Address& contract,
                                                       const vm::Address& sender) {
  return chain::TxBuilder(contract, sender, kBidPlusOne).build();
}

chain::Transaction SimpleAuction::make_auction_end_tx(const vm::Address& contract,
                                                      const vm::Address& sender) {
  return chain::TxBuilder(contract, sender, kAuctionEnd).build();
}

}  // namespace concord::contracts
