#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"

namespace concord::stm {

/// One abstract lock held by a committing (or reverting) transaction,
/// together with the lock's use-counter value observed at release time.
///
/// Counters implement the paper's §4 mechanism: "Each speculative lock
/// includes a use counter that keeps track of the number of times it has
/// been released by a committing action during the construction of the
/// current block." Comparing counter values across transactions yields the
/// happens-before graph the validator replays.
struct LockProfileEntry {
  LockId lock;
  LockMode mode = LockMode::kRead;  ///< Combined (strongest) mode this tx used.
  std::uint64_t counter = 0;        ///< Lock's use counter after this tx's release.

  friend bool operator==(const LockProfileEntry&, const LockProfileEntry&) = default;
};

/// The lock profile a transaction "registers with the VM" when it
/// finishes (paper §4). Reverted transactions publish profiles too: a
/// transaction aborted by Solidity `throw` still observed state under its
/// locks, so its position in the schedule is semantically meaningful (a
/// double vote must replay *after* the first vote or it would not throw).
struct LockProfile {
  std::uint32_t tx = 0;    ///< Index of the transaction in the block.
  bool reverted = false;   ///< True when the contract threw (state undone).
  std::vector<LockProfileEntry> entries;  ///< Sorted by LockId (canonical form).

  /// Sorts entries into the canonical (space, key) order used for
  /// serialization and equality.
  void canonicalize() {
    std::sort(entries.begin(), entries.end(),
              [](const LockProfileEntry& a, const LockProfileEntry& b) { return a.lock < b.lock; });
  }

  friend bool operator==(const LockProfile&, const LockProfile&) = default;
};

}  // namespace concord::stm
