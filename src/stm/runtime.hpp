#pragma once

#include <atomic>
#include <cstdint>

#include "stm/deadlock.hpp"
#include "stm/lock_table.hpp"

namespace concord::stm {

/// Per-miner boosting runtime: the lock table, the deadlock detector and
/// the birth-stamp allocator shared by all speculative actions of one
/// block's parallel execution.
///
/// reset() must be called between blocks (paper §4 zeroes the use counters
/// at block start); it may only run while no speculative action is live.
class BoostingRuntime {
 public:
  BoostingRuntime() = default;
  BoostingRuntime(const BoostingRuntime&) = delete;
  BoostingRuntime& operator=(const BoostingRuntime&) = delete;

  [[nodiscard]] LockTable& locks() noexcept { return locks_; }
  [[nodiscard]] DeadlockDetector& deadlocks() noexcept { return deadlocks_; }

  /// Allocates a fresh birth stamp for a new transaction lineage. Stamps
  /// are monotone: larger = younger = preferred deadlock victim.
  [[nodiscard]] std::uint64_t next_birth() noexcept {
    return birth_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Zeroes all use counters (recycling lock allocations — see
  /// LockTable::reset), deadlock state and stamps.
  void reset() {
    locks_.reset();
    deadlocks_.reset();
    birth_.store(1, std::memory_order_relaxed);
  }

 private:
  LockTable locks_;
  DeadlockDetector deadlocks_;
  std::atomic<std::uint64_t> birth_{1};
};

}  // namespace concord::stm
