#pragma once

#include <cstdint>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"

namespace concord::stm {

/// One entry in a transaction's ConcordSan access log.
///
/// Two event kinds share the record:
///  - kDeclare: the transaction declared a storage operation on an
///    abstract lock (ExecContext::on_storage_op) — in speculative mode
///    this is the point the lock is acquired, so under strict two-phase
///    locking "declared earlier in this attempt" ≡ "held now".
///  - kAccess: a boosted collection actually touched data under
///    (lock, mode) — the physical truth the lockset checker verifies
///    against the declared set.
///
/// `op` is a static string literal naming the collection operation
/// ("counter.add", "map.put", …); it is never owned or freed.
struct AccessEvent {
  enum class Kind : std::uint8_t { kDeclare = 0, kAccess = 1 };

  Kind kind = Kind::kDeclare;
  LockId lock;
  LockMode mode = LockMode::kRead;  ///< Declared mode / physical access class.
  const char* op = "";              ///< Operation label (kAccess only).
};

/// Per-transaction-attempt access log for ConcordSan (the abstract-lock
/// race detector). One recorder covers one speculative attempt (or one
/// traced serial execution); the engine clears it on retry so only the
/// final attempt's events survive into analysis.
///
/// A lineage (root action plus nested descendants) runs on one thread, so
/// the recorder needs no synchronization; distinct transactions get
/// distinct recorders.
class AccessRecorder {
 public:
  void declare(const LockId& id, LockMode mode) {
    events_.push_back(AccessEvent{AccessEvent::Kind::kDeclare, id, mode, ""});
  }

  void access(const LockId& id, LockMode mode, const char* op) {
    events_.push_back(AccessEvent{AccessEvent::Kind::kAccess, id, mode, op});
  }

  void clear() noexcept { events_.clear(); }

  [[nodiscard]] const std::vector<AccessEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Number of kAccess events (physical data touches).
  [[nodiscard]] std::size_t access_count() const noexcept {
    std::size_t n = 0;
    for (const AccessEvent& ev : events_) {
      if (ev.kind == AccessEvent::Kind::kAccess) ++n;
    }
    return n;
  }

 private:
  std::vector<AccessEvent> events_;
};

}  // namespace concord::stm
