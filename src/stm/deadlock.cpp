#include "stm/deadlock.hpp"

#include <algorithm>
#include <unordered_set>

#include "stm/speculative_action.hpp"

namespace concord::stm {

void DeadlockDetector::register_action(std::uint64_t root_id, SpeculativeAction* action) {
  std::scoped_lock lk(mu_);
  actions_[root_id] = action;
}

void DeadlockDetector::deregister_action(std::uint64_t root_id) {
  std::scoped_lock lk(mu_);
  actions_.erase(root_id);
  waits_for_.erase(root_id);
}

bool DeadlockDetector::will_wait(std::uint64_t waiter,
                                 const std::vector<std::uint64_t>& blockers) {
  std::scoped_lock lk(mu_);
  waits_for_[waiter] = blockers;

  std::vector<std::uint64_t> cycle;
  if (!find_cycle(waiter, cycle)) return false;

  // Resolve: doom the youngest (largest birth stamp) on the cycle. Retried
  // actions keep their original stamp, so repeated victims age into
  // immunity and the system makes progress.
  const std::uint64_t victim = *std::max_element(cycle.begin(), cycle.end());
  if (auto it = actions_.find(victim); it != actions_.end()) {
    it->second->doom();
    ++victims_;
  }
  waits_for_.erase(victim);  // The victim will stop waiting to abort.
  return victim == waiter;
}

void DeadlockDetector::done_waiting(std::uint64_t waiter) {
  std::scoped_lock lk(mu_);
  waits_for_.erase(waiter);
}

void DeadlockDetector::reset() {
  std::scoped_lock lk(mu_);
  waits_for_.clear();
  actions_.clear();
  victims_ = 0;
}

std::uint64_t DeadlockDetector::victims() const {
  std::scoped_lock lk(mu_);
  return victims_;
}

bool DeadlockDetector::find_cycle(std::uint64_t start, std::vector<std::uint64_t>& cycle) const {
  // Iterative DFS from `start`; a cycle through `start` exists iff `start`
  // is reachable from one of its successors. Cycles not through `start`
  // are found by their own participants' will_wait calls.
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::uint64_t> path;  // Current DFS chain, for cycle extraction.

  struct Frame {
    std::uint64_t node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{start});
  visited.insert(start);
  path.push_back(start);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto edges_it = waits_for_.find(frame.node);
    const std::vector<std::uint64_t>* edges =
        edges_it != waits_for_.end() ? &edges_it->second : nullptr;

    if (edges == nullptr || frame.next_child >= edges->size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }

    const std::uint64_t next = (*edges)[frame.next_child++];
    if (next == start) {
      cycle = path;  // Every node currently on the DFS chain is on the cycle.
      return true;
    }
    if (visited.insert(next).second) {
      stack.push_back(Frame{next});
      path.push_back(next);
    }
  }
  return false;
}

}  // namespace concord::stm
