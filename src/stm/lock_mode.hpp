#pragma once

#include <cstdint>
#include <string_view>

namespace concord::stm {

/// Access mode of a storage operation on an abstract lock.
///
/// The paper's abstract locks are mutually exclusive, with footnote 3
/// noting that "it is not hard to accommodate shared and exclusive modes".
/// Commutativity is the *definition* of the abstract-lock assignment ("if
/// two storage operations map to distinct abstract locks, then they must
/// commute"), so we carry the operation class on the lock itself and let
/// commuting classes share it:
///
///  - kRead:      observes a value (map lookup, contains, scalar read).
///  - kWrite:     replaces a value or changes structure (bind, erase,
///                scalar store). Conflicts with everything.
///  - kIncrement: commutative read-modify-write (`+= delta` on a numeric
///                cell). Two increments commute with each other but not
///                with reads or writes.
///
/// `bench_ablation_modes` measures the effect of collapsing every mode to
/// kWrite (the paper's strictly-exclusive baseline).
enum class LockMode : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kIncrement = 2,
};

/// True when operations of the two modes do NOT commute and therefore the
/// lock cannot be shared between distinct transactions holding them.
[[nodiscard]] constexpr bool conflicts(LockMode a, LockMode b) noexcept {
  if (a == LockMode::kWrite || b == LockMode::kWrite) return true;
  return a != b;  // READ vs INCREMENT conflict; READ/READ and INC/INC do not.
}

/// True when a holder in mode `held` already subsumes a request for `want`
/// (no strengthening necessary).
[[nodiscard]] constexpr bool covers(LockMode held, LockMode want) noexcept {
  return held == LockMode::kWrite || held == want;
}

/// The weakest mode that subsumes both arguments. READ+INCREMENT has no
/// weaker common cover than WRITE.
[[nodiscard]] constexpr LockMode combine(LockMode a, LockMode b) noexcept {
  if (a == b) return a;
  return LockMode::kWrite;
}

[[nodiscard]] constexpr std::string_view to_string(LockMode m) noexcept {
  switch (m) {
    case LockMode::kRead: return "read";
    case LockMode::kWrite: return "write";
    case LockMode::kIncrement: return "increment";
  }
  return "?";
}

}  // namespace concord::stm
