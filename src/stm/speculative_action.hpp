#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "stm/abstract_lock.hpp"
#include "stm/lock_mode.hpp"
#include "stm/lock_profile.hpp"
#include "stm/undo_log.hpp"

namespace concord::stm {

class BoostingRuntime;

/// A speculative atomic action (paper §3) — the unit a miner runs one
/// smart-contract transaction inside.
///
/// Root actions are created by the miner, one per transaction attempt.
/// Nested actions model one contract calling another: "a nested
/// speculative action inherits the abstract locks held by its parent, and
/// it creates its own inverse log. If the nested action commits, any
/// abstract locks it acquired are passed to its parent, and its inverse
/// log is appended to its parent's log. If the nested action aborts, its
/// inverse log is replayed to undo its effects, and any abstract locks it
/// acquired are released."
///
/// Threading model: a lineage (root plus its nested descendants) executes
/// on a single thread; distinct lineages run on distinct miner threads and
/// synchronize only through abstract locks. The destructor aborts an
/// action that is still active, so the miner's retry loop is exception
/// safe by construction (RAII).
class SpeculativeAction {
 public:
  /// Root action for transaction `tx`. `birth` must be unique per lineage
  /// within the block and *monotone in creation order*; retries must reuse
  /// the original birth stamp (deadlock-victim fairness; see
  /// DeadlockDetector). Registers with the runtime's deadlock detector.
  SpeculativeAction(BoostingRuntime& rt, std::uint32_t tx, std::uint64_t birth);

  /// Nested child of `parent` (same thread, same lineage).
  explicit SpeculativeAction(SpeculativeAction& parent);

  SpeculativeAction(const SpeculativeAction&) = delete;
  SpeculativeAction& operator=(const SpeculativeAction&) = delete;

  /// Aborts if still active, then (for roots) deregisters from the
  /// deadlock detector.
  ~SpeculativeAction();

  /// Acquires `lock` in `mode` on behalf of this lineage, blocking while a
  /// conflicting lineage holds it. Re-acquisition in a covered mode is a
  /// no-op; a stronger request upgrades in place once all conflicting
  /// lineages have drained. Throws ConflictAbort when this action is
  /// chosen as a deadlock victim or otherwise doomed.
  void acquire(AbstractLock& lock, LockMode mode);

  /// Records the inverse of an operation just applied (boosted storage
  /// calls this immediately after each mutating operation).
  void log_inverse(UndoLog::Inverse inverse);

  /// Lifecycle hook pair for *lazy* version management (the paper's §3
  /// alternative: "An alternative lazy implementation could buffer
  /// changes to a contract's storage, applying them only on commit").
  /// `on_commit` applies the buffered changes; `on_abort` discards them.
  struct LifecycleHook {
    std::function<void()> on_commit;
    std::function<void()> on_abort;
  };

  /// Registers a hook. On root commit the on_commit callbacks run, in
  /// registration order, while every lock is still held (so deferred
  /// writes are as isolated as eager ones); on abort — or on a root
  /// commit with reverted == true — the on_abort callbacks run instead.
  /// Nested commit transfers hooks to the parent; nested abort runs the
  /// child's on_abort only.
  void add_hook(LifecycleHook hook);

  /// Commits a root action: bumps the use counter of every held lock,
  /// captures the lock profile, releases everything. With
  /// `reverted == true` (Solidity `throw`) the undo log is replayed first
  /// but the profile is still published — a reverted transaction's
  /// schedule position is semantically meaningful (see LockProfile).
  /// Throws ConflictAbort (after undoing) if this action was doomed.
  [[nodiscard]] LockProfile commit(bool reverted = false);

  /// Commits a nested action: transfers its locks and its undo log to the
  /// parent.
  void commit_nested();

  /// Aborts: replays the undo log. A root action releases its locks; an
  /// aborted *nested* action transfers its locks to its parent instead
  /// (closed nesting — the parent observed the child's outcome, so the
  /// child's footprint stays in the lineage; see the comment in the
  /// implementation for why the paper's release-on-child-abort wording is
  /// unsound for deterministic replay).
  void abort() noexcept;

  [[nodiscard]] bool is_root() const noexcept { return parent_ == nullptr; }
  [[nodiscard]] std::uint32_t tx() const noexcept { return tx_; }
  [[nodiscard]] std::uint64_t root_id() const noexcept { return root_id_; }
  [[nodiscard]] bool active() const noexcept { return state_ == State::kActive; }
  [[nodiscard]] std::size_t held_lock_count() const noexcept { return held_.size(); }
  [[nodiscard]] std::size_t undo_size() const noexcept { return undo_.size(); }

  /// True when this lineage has been selected as a deadlock victim.
  [[nodiscard]] bool doomed() const noexcept {
    return root_->doomed_.load(std::memory_order_acquire);
  }

  /// Marks the lineage for abort. Called by the deadlock detector (under
  /// its own mutex) and safe to call concurrently with the action running.
  void doom() noexcept { root_->doomed_.store(true, std::memory_order_release); }

 private:
  enum class State : std::uint8_t { kActive, kCommitted, kAborted };

  /// Removes this action's holder entries, optionally bumping use counters
  /// into `profile`.
  void release_held(LockProfile* profile) noexcept;

  BoostingRuntime& rt_;
  SpeculativeAction* parent_ = nullptr;  ///< Null for roots.
  SpeculativeAction* root_ = nullptr;    ///< This, for roots.
  std::uint32_t tx_ = 0;
  std::uint64_t root_id_ = 0;  ///< Birth stamp of the root (lineage id).
  std::atomic<bool> doomed_{false};
  UndoLog undo_;
  std::vector<AbstractLock*> held_;  ///< Locks whose holder entry this action owns.
  std::vector<LifecycleHook> hooks_;  ///< Lazy-storage commit/abort callbacks.
  State state_ = State::kActive;
};

}  // namespace concord::stm
