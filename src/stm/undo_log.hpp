#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace concord::stm {

/// Log of inverse operations for one speculative action (paper §3:
/// "Once the lock is acquired, the thread records an inverse operation in
/// a log, and proceeds with the operation").
///
/// On abort the log is replayed "most recent operation first". Inverses
/// are closures provided by the boosted storage objects; each closure is
/// responsible for taking the storage object's internal mutex, so replay
/// is safe while other speculative actions operate on disjoint abstract
/// locks of the same object.
class UndoLog {
 public:
  using Inverse = std::function<void()>;

  /// Records the inverse of an operation that has just been applied.
  void record(Inverse inverse) { entries_.push_back(std::move(inverse)); }

  /// Applies all recorded inverses in reverse order, leaving the log empty.
  void replay_and_clear() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) (*it)();
    entries_.clear();
  }

  /// Discards the log without applying it (commit path).
  void clear() noexcept { entries_.clear(); }

  /// Position marker for partial rollback (serial-mode nested calls).
  [[nodiscard]] std::size_t mark() const noexcept { return entries_.size(); }

  /// Applies, newest first, only the inverses recorded after `from`, then
  /// discards them. Used by non-speculative execution to roll back a
  /// reverted nested call without disturbing the caller's earlier effects.
  void replay_tail_and_discard(std::size_t from) {
    while (entries_.size() > from) {
      entries_.back()();
      entries_.pop_back();
    }
  }

  /// Moves this log's entries to the *end* of `parent`, preserving order,
  /// so that a later parent abort undoes the child's operations at the
  /// right point. Implements the paper's nested-commit rule: "its inverse
  /// log is appended to its parent's log".
  void append_to(UndoLog& parent) {
    parent.entries_.insert(parent.entries_.end(), std::make_move_iterator(entries_.begin()),
                           std::make_move_iterator(entries_.end()));
    entries_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<Inverse> entries_;
};

}  // namespace concord::stm
