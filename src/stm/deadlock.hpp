#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace concord::stm {

class SpeculativeAction;

/// Centralized wait-for-graph deadlock detector (paper §3: "The abstract
/// locking mechanism also detects and resolves deadlocks, which are
/// expected to be rare").
///
/// Every root speculative action registers itself on creation. Before a
/// thread blocks on an abstract lock it records a wait edge to each
/// current conflicting holder and a cycle check runs; if a cycle through
/// the waiter exists, the *youngest* action on the cycle (largest birth
/// stamp) is doomed and will raise ConflictAbort. Retried actions keep
/// their original birth stamp, so an action that keeps losing eventually
/// becomes the oldest on any cycle and can no longer be chosen — this
/// yields progress (no livelock).
///
/// A single mutex guards the graph. Detection work is proportional to the
/// number of *blocked* threads, which the paper's setting caps at the
/// mining pool size (3), so a global detector is not a scalability
/// concern; the lock fast path never touches it.
class DeadlockDetector {
 public:
  /// Makes `action` eligible as a deadlock victim. Called by root actions
  /// on construction.
  void register_action(std::uint64_t root_id, SpeculativeAction* action);

  /// Removes the action from the victim registry. Must be called before
  /// the action is destroyed.
  void deregister_action(std::uint64_t root_id);

  /// Declares that `waiter` is about to block on holders `blockers`,
  /// replacing any previous wait edges, then runs cycle detection.
  /// Returns true when `waiter` itself was selected as the victim (the
  /// caller should abort immediately instead of sleeping).
  bool will_wait(std::uint64_t waiter, const std::vector<std::uint64_t>& blockers);

  /// Clears `waiter`'s wait edges (called after every wake-up).
  void done_waiting(std::uint64_t waiter);

  /// Drops all state between blocks.
  void reset();

  /// Total number of deadlock victims doomed since the last reset
  /// (exposed for tests and the benchmark harness's abort accounting).
  [[nodiscard]] std::uint64_t victims() const;

 private:
  /// Finds a cycle through `start`; fills `cycle` with its nodes.
  /// Caller holds mu_.
  bool find_cycle(std::uint64_t start, std::vector<std::uint64_t>& cycle) const;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> waits_for_;
  std::unordered_map<std::uint64_t, SpeculativeAction*> actions_;
  std::uint64_t victims_ = 0;
};

}  // namespace concord::stm
