#pragma once

#include <exception>

namespace concord::stm {

/// Thrown inside a speculative action when the runtime decides this action
/// must abort for synchronization reasons (it was chosen as a deadlock
/// victim, or it observed its doom flag while waiting on an abstract
/// lock).
///
/// This is the "conflict, roll back and restart" control flow of paper §3;
/// the miner catches it, lets the action's destructor undo its effects and
/// release its locks, and re-executes the transaction. It is deliberately
/// distinct from vm::RevertError (Solidity `throw`), which is a *semantic*
/// outcome that must NOT be retried.
class ConflictAbort : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "speculative action aborted due to synchronization conflict";
  }
};

}  // namespace concord::stm
