#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "stm/abstract_lock.hpp"
#include "stm/lock_id.hpp"

namespace concord::stm {

/// Striped, on-demand table of abstract locks.
///
/// Locks are created the first time any transaction touches their LockId
/// and live until the table is reset at the next block boundary (paper §4:
/// "When a miner starts a block, it sets these counters to zero" — we
/// reset by dropping the locks wholesale). Pointers returned by get() are
/// stable until reset(), which the runtime only calls between blocks when
/// no speculative action is live.
class LockTable {
 public:
  LockTable() = default;
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Returns the lock for `id`, creating it if needed.
  [[nodiscard]] AbstractLock& get(const LockId& id) {
    Stripe& stripe = stripes_[stripe_index(id)];
    std::scoped_lock lk(stripe.mu);
    auto [it, inserted] = stripe.locks.try_emplace(id, nullptr);
    if (inserted) it->second = std::make_unique<AbstractLock>(id);
    return *it->second;
  }

  /// Drops every lock (and therefore every use counter). Caller must
  /// guarantee no action holds or waits on any lock.
  void reset() {
    for (auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      stripe.locks.clear();
    }
  }

  /// Total number of distinct abstract locks materialized (diagnostic).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      n += stripe.locks.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kStripes = 64;

  [[nodiscard]] static std::size_t stripe_index(const LockId& id) noexcept {
    return LockIdHash{}(id) % kStripes;
  }

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<LockId, std::unique_ptr<AbstractLock>, LockIdHash> locks;
  };

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace concord::stm
