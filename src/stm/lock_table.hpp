#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "stm/abstract_lock.hpp"
#include "stm/lock_id.hpp"

namespace concord::stm {

/// Striped, on-demand table of abstract locks.
///
/// Locks are created the first time any transaction touches their LockId
/// and live across block boundaries: reset() implements the paper's §4
/// "When a miner starts a block, it sets these counters to zero" by
/// zeroing every lock's counter in place, reusing the node and the
/// holder-vector capacity — under a sustained block stream this removes a
/// full drop-and-reallocate of the table per block. A table that has
/// grown past `shrink_threshold` distinct locks (a long stream touching
/// disjoint ids every block) is dropped wholesale instead, bounding
/// memory. Pointers returned by get() are stable until a shrinking
/// reset(); reset() only runs between blocks when no speculative action
/// is live.
class LockTable {
 public:
  /// Above this many retained locks, reset() falls back to dropping the
  /// table instead of recycling it (memory bound for long streams).
  static constexpr std::size_t kDefaultShrinkThreshold = 1u << 18;

  LockTable() = default;
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Returns the lock for `id`, creating it if needed.
  [[nodiscard]] AbstractLock& get(const LockId& id) {
    Stripe& stripe = stripes_[stripe_index(id)];
    std::scoped_lock lk(stripe.mu);
    auto [it, inserted] = stripe.locks.try_emplace(id, nullptr);
    if (inserted) it->second = std::make_unique<AbstractLock>(id);
    return *it->second;
  }

  /// Zeroes every use counter for the next block, keeping allocations
  /// (see class comment for the shrink fallback). Caller must guarantee
  /// no action holds or waits on any lock.
  void reset(std::size_t shrink_threshold = kDefaultShrinkThreshold) {
    const std::size_t current = size();
    if (std::size_t hw = high_water_.load(std::memory_order_relaxed); current > hw) {
      high_water_.store(current, std::memory_order_relaxed);
    }
    for (auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      if (current > shrink_threshold) {
        stripe.locks.clear();
      } else {
        for (auto& [id, lock] : stripe.locks) lock->reset_for_next_block();
      }
    }
  }

  /// Total number of distinct abstract locks materialized (diagnostic).
  /// Counters recycled by reset() stay counted — the retained set *is*
  /// the table's working set.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      n += stripe.locks.size();
    }
    return n;
  }

  /// Largest size() ever observed at a reset() boundary or now —
  /// surfaced as MinerStats::lock_table_high_water.
  [[nodiscard]] std::size_t high_water() const {
    return std::max(high_water_.load(std::memory_order_relaxed), size());
  }

 private:
  static constexpr std::size_t kStripes = 64;

  [[nodiscard]] static std::size_t stripe_index(const LockId& id) noexcept {
    return LockIdHash{}(id) % kStripes;
  }

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<LockId, std::unique_ptr<AbstractLock>, LockIdHash> locks;
  };

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace concord::stm
