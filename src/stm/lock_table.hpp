#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "stm/abstract_lock.hpp"
#include "stm/lock_id.hpp"

namespace concord::stm {

/// Deterministic partition of the abstract-lock space into `shards`
/// disjoint groups, keyed by the 64-bit root identity an owner's lock
/// spaces derive from (for a contract: its address digest — every
/// field_space() of one contract mixes the same root, so the whole lock
/// family lands in one partition). This is the lock-space view behind the
/// node's shard router: dispatching transactions by their contract's
/// partition keeps each producer lane's lock traffic inside its own
/// partition, which is why cross-shard conflicts reduce to explicitly
/// shared spaces (the world balance map, nested cross-contract calls)
/// and the merge layer's arbitration stays rare instead of constant.
/// Content-only and table-state-free — the same inputs give the same
/// partition on every node, in every arrival order. Each shard miner
/// owns a whole BoostingRuntime, so the per-shard lock *tables* exist by
/// construction; this function is the partition they mirror.
[[nodiscard]] constexpr std::uint32_t lock_partition_of(std::uint64_t root_id,
                                                        std::uint32_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::uint32_t>(mix64(root_id) % shards);
}

/// Striped, on-demand table of abstract locks.
///
/// Locks are created the first time any transaction touches their LockId
/// and live across block boundaries: reset() implements the paper's §4
/// "When a miner starts a block, it sets these counters to zero" by
/// zeroing every lock's counter in place, reusing the node and the
/// holder-vector capacity — under a sustained block stream this removes a
/// full drop-and-reallocate of the table per block.
///
/// Between that in-place recycle and the wholesale drop sits a decay
/// sweep: each lock remembers the block (reset epoch) it was last
/// touched in, and reset() evicts locks idle for `decay_blocks`
/// consecutive blocks. Under a stream touching disjoint ids every block,
/// cold locks age out within decay_blocks while the hot working set
/// survives indefinitely — instead of the whole table (hot locks
/// included) periodically hitting the shrink fallback. That fallback
/// remains the hard bound: a table past `shrink_threshold` distinct
/// locks (e.g. one block touching more ids than the decay horizon can
/// shed) is still dropped wholesale.
///
/// Pointers returned by get() are stable until a reset() evicts that
/// lock (decay) or drops the table (shrink); reset() only runs between
/// blocks when no speculative action is live.
class LockTable {
 public:
  /// Above this many retained locks, reset() falls back to dropping the
  /// table instead of recycling it (memory bound for long streams).
  static constexpr std::size_t kDefaultShrinkThreshold = 1u << 18;

  /// A lock untouched for this many consecutive blocks is evicted by the
  /// decay sweep. 0 disables decay (pure recycle-or-drop, the pre-decay
  /// behavior).
  static constexpr std::size_t kDefaultDecayBlocks = 64;

  LockTable() = default;
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Returns the lock for `id`, creating it if needed, and stamps it as
  /// touched in the current block (the decay sweep's freshness signal).
  [[nodiscard]] AbstractLock& get(const LockId& id) {
    Stripe& stripe = stripes_[stripe_index(id)];
    std::scoped_lock lk(stripe.mu);
    auto [it, inserted] = stripe.locks.try_emplace(id);
    if (inserted) it->second.lock = std::make_unique<AbstractLock>(id);
    it->second.touched_epoch = epoch_.load(std::memory_order_relaxed);
    return *it->second.lock;
  }

  /// Zeroes every use counter for the next block, keeping allocations;
  /// evicts locks idle for `decay_blocks` consecutive blocks; drops the
  /// table wholesale past `shrink_threshold` (see class comment). Caller
  /// must guarantee no action holds or waits on any lock.
  void reset(std::size_t shrink_threshold = kDefaultShrinkThreshold,
             std::size_t decay_blocks = kDefaultDecayBlocks) {
    const std::size_t current = size();
    if (std::size_t hw = high_water_.load(std::memory_order_relaxed); current > hw) {
      high_water_.store(current, std::memory_order_relaxed);
    }
    if (std::size_t bytes = approx_memory_bytes();
        bytes > memory_high_water_.load(std::memory_order_relaxed)) {
      memory_high_water_.store(bytes, std::memory_order_relaxed);
    }
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    for (auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      if (current > shrink_threshold) {
        // Not clear(): that keeps the bucket array, and after a
        // million-id block those arrays *are* the footprint. A fresh map
        // releases them; rebuilds can reserve() their way back.
        decltype(stripe.locks){}.swap(stripe.locks);
        continue;
      }
      for (auto it = stripe.locks.begin(); it != stripe.locks.end();) {
        // blocks-since-last-touch: 0 = touched in the block just ended.
        if (decay_blocks > 0 && epoch - it->second.touched_epoch >= decay_blocks) {
          it = stripe.locks.erase(it);
          evicted_.fetch_add(1, std::memory_order_relaxed);
        } else {
          it->second.lock->reset_for_next_block();
          ++it;
        }
      }
    }
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total number of distinct abstract locks materialized (diagnostic).
  /// Counters recycled by reset() stay counted — the retained set *is*
  /// the table's working set.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      n += stripe.locks.size();
    }
    return n;
  }

  /// Largest size() ever observed at a reset() boundary or now —
  /// surfaced as MinerStats::lock_table_high_water.
  [[nodiscard]] std::size_t high_water() const {
    return std::max(high_water_.load(std::memory_order_relaxed), size());
  }

  /// Total hash-table buckets across all stripes — the table's slot
  /// footprint, which unordered_map never shrinks on erase. Together
  /// with approx_memory_bytes() this is what the million-id regression
  /// test bounds: decay eviction must keep *entries* bounded, and the
  /// wholesale-drop fallback must keep *buckets* bounded.
  [[nodiscard]] std::size_t bucket_count() const {
    std::size_t n = 0;
    for (const auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      n += stripe.locks.bucket_count();
    }
    return n;
  }

  /// Estimated resident bytes of the table: bucket array plus per-entry
  /// node + lock object. Holder-vector capacities inside the locks are
  /// not visible from here, so this is a floor — but it tracks exactly
  /// the components that grow with distinct-id count, which is what the
  /// memory bound is about.
  [[nodiscard]] std::size_t approx_memory_bytes() const {
    constexpr std::size_t kPerBucket = sizeof(void*);
    // Node: the pair, the unordered_map's next pointer + cached hash, and
    // the heap AbstractLock the Entry points at.
    constexpr std::size_t kPerEntry = sizeof(std::pair<const LockId, Entry>) +
                                      2 * sizeof(void*) + sizeof(AbstractLock);
    std::size_t bytes = 0;
    for (const auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      bytes += stripe.locks.bucket_count() * kPerBucket +
               stripe.locks.size() * kPerEntry;
    }
    return bytes;
  }

  /// Largest approx_memory_bytes() observed at a reset() boundary or now.
  [[nodiscard]] std::size_t memory_high_water() const {
    return std::max(memory_high_water_.load(std::memory_order_relaxed),
                    approx_memory_bytes());
  }

  /// Workload hint: pre-buckets every stripe for `expected_locks` total
  /// distinct ids, so a block stream with a known working set (the
  /// Zipfian benchmarks seed this from the account count) skips the
  /// incremental rehashing a million try_emplace calls would pay.
  /// Never shrinks; safe to call between blocks only (like reset()).
  void reserve(std::size_t expected_locks) {
    const std::size_t per_stripe = expected_locks / kStripes + 1;
    for (auto& stripe : stripes_) {
      std::scoped_lock lk(stripe.mu);
      stripe.locks.reserve(per_stripe);
    }
  }

  /// Locks removed by the decay sweep over the table's lifetime
  /// (diagnostic; wholesale drops are not counted here).
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 64;

  [[nodiscard]] static std::size_t stripe_index(const LockId& id) noexcept {
    return LockIdHash{}(id) % kStripes;
  }

  /// Map value: the lock plus the reset epoch it was last touched in.
  /// The stamp lives beside the pointer (not inside AbstractLock) — it
  /// is table bookkeeping, written under the stripe mutex get() already
  /// holds.
  struct Entry {
    std::unique_ptr<AbstractLock> lock;
    std::uint64_t touched_epoch = 0;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<LockId, Entry, LockIdHash> locks;
  };

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> memory_high_water_{0};
  /// Number of completed reset()s — the "current block" stamp get()
  /// writes. Atomic so diagnostic reads stay clean; get()/reset() are
  /// already excluded by the reset contract.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace concord::stm
