#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"

namespace concord::stm {

class SpeculativeAction;

/// One abstract lock (paper §3). Distinct LockIds are held by operations
/// that commute; a single AbstractLock serializes the operations that do
/// not — subject to the mode compatibility matrix in lock_mode.hpp.
///
/// The lock also carries the §4 use counter: each finishing transaction
/// increments it while releasing and records the value in its lock
/// profile, which is how the miner's discovered schedule is captured for
/// the validator.
///
/// The acquisition protocol itself lives in SpeculativeAction (which needs
/// coordinated access to the undo log, the lineage and the deadlock
/// detector); AbstractLock exposes the holder table to it as a friend.
class AbstractLock {
 public:
  explicit AbstractLock(LockId id) noexcept : id_(id) {}

  AbstractLock(const AbstractLock&) = delete;
  AbstractLock& operator=(const AbstractLock&) = delete;

  [[nodiscard]] const LockId& id() const noexcept { return id_; }

  /// Number of times the lock has been released by a finishing action
  /// since the block started (test/diagnostic view; the authoritative
  /// reads happen inside SpeculativeAction under mutex_).
  [[nodiscard]] std::uint64_t use_counter() const {
    std::scoped_lock lk(mutex_);
    return use_counter_;
  }

  /// Number of lineages currently holding the lock (diagnostic).
  [[nodiscard]] std::size_t holder_count() const {
    std::scoped_lock lk(mutex_);
    return holders_.size();
  }

  /// Zeroes the §4 use counter for the next block while keeping the node
  /// (and its holder-vector capacity) allocated. Caller must guarantee no
  /// action holds or waits on the lock — same contract as
  /// LockTable::reset(), which is the only intended caller.
  void reset_for_next_block() {
    std::scoped_lock lk(mutex_);
    holders_.clear();
    use_counter_ = 0;
  }

 private:
  friend class SpeculativeAction;

  /// One holding lineage. `root` identifies the top-level action;
  /// `owner` is the (possibly nested) action that releases the entry on
  /// abort, and whose commit passes the entry to its parent.
  struct Holder {
    std::uint64_t root = 0;
    SpeculativeAction* owner = nullptr;
    LockMode mode = LockMode::kRead;
  };

  /// Caller holds mutex_. Returns the entry for `root` or nullptr.
  [[nodiscard]] Holder* find_holder(std::uint64_t root) {
    for (auto& h : holders_) {
      if (h.root == root) return &h;
    }
    return nullptr;
  }

  /// Caller holds mutex_. Removes the entry for `root`.
  void remove_holder(std::uint64_t root) {
    for (auto it = holders_.begin(); it != holders_.end(); ++it) {
      if (it->root == root) {
        holders_.erase(it);
        return;
      }
    }
  }

  LockId id_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Holder> holders_;
  std::uint64_t use_counter_ = 0;
};

}  // namespace concord::stm
