#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string_view>

namespace concord::stm {

/// Identity of an abstract lock.
///
/// `space` names a storage object (one per contract state variable —
/// derived deterministically from the contract address and field name so
/// that miners and validators on different machines agree), and `key`
/// names the slot within it (a hash of the map key, the array index, or 0
/// for scalars).
///
/// Lock identities appear on the wire inside published lock profiles, so
/// both components must be computed with the deterministic hashes below,
/// never with std::hash (whose value is implementation-defined).
struct LockId {
  std::uint64_t space = 0;
  std::uint64_t key = 0;

  friend auto operator<=>(const LockId&, const LockId&) = default;
};

/// FNV-1a 64-bit hash; the deterministic string hash used for lock spaces
/// and string map keys.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer; the deterministic integer mix used for integer
/// map keys (avoids pathological stripe/bucket clustering for sequential
/// keys without sacrificing reproducibility).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// In-process hasher for LockId (hash-map usage only; never serialized).
struct LockIdHash {
  [[nodiscard]] std::size_t operator()(const LockId& id) const noexcept {
    return static_cast<std::size_t>(mix64(id.space ^ mix64(id.key)));
  }
};

}  // namespace concord::stm
