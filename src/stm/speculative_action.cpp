#include "stm/speculative_action.hpp"

#include <cassert>
#include <chrono>

#include "stm/conflict.hpp"
#include "stm/runtime.hpp"

namespace concord::stm {

namespace {
/// How long a blocked acquirer sleeps before re-checking its doom flag.
/// Lock releases notify the condition variable directly, so this bounds
/// only the latency of noticing a deadlock-victim decision.
constexpr auto kDoomPollInterval = std::chrono::microseconds(200);
}  // namespace

SpeculativeAction::SpeculativeAction(BoostingRuntime& rt, std::uint32_t tx, std::uint64_t birth)
    : rt_(rt), root_(this), tx_(tx), root_id_(birth) {
  rt_.deadlocks().register_action(root_id_, this);
}

SpeculativeAction::SpeculativeAction(SpeculativeAction& parent)
    : rt_(parent.rt_), parent_(&parent), root_(parent.root_), tx_(parent.tx_),
      root_id_(parent.root_id_) {
  assert(parent.state_ == State::kActive && "nested action requires an active parent");
}

SpeculativeAction::~SpeculativeAction() {
  if (state_ == State::kActive) abort();
  if (is_root()) rt_.deadlocks().deregister_action(root_id_);
}

void SpeculativeAction::acquire(AbstractLock& lock, LockMode want) {
  assert(state_ == State::kActive && "storage op on a finished action");
  if (doomed()) throw ConflictAbort{};

  std::unique_lock lk(lock.mutex_);
  for (;;) {
    AbstractLock::Holder* mine = lock.find_holder(root_id_);
    if (mine != nullptr && covers(mine->mode, want)) return;  // Already held strongly enough.
    const LockMode target = mine != nullptr ? combine(mine->mode, want) : want;

    // Collect the lineages we would have to wait for.
    std::vector<std::uint64_t> blockers;
    for (const auto& h : lock.holders_) {
      if (h.root != root_id_ && conflicts(h.mode, target)) blockers.push_back(h.root);
    }

    if (blockers.empty()) {
      if (mine != nullptr) {
        mine->mode = target;  // Upgrade in place; the original owner keeps the entry.
      } else {
        lock.holders_.push_back(AbstractLock::Holder{root_id_, this, target});
        held_.push_back(&lock);
      }
      return;
    }

    // Conflicting holders exist: register the wait edges, let the detector
    // look for a cycle, then sleep until a release (or the doom poll).
    if (rt_.deadlocks().will_wait(root_id_, blockers) || doomed()) {
      rt_.deadlocks().done_waiting(root_id_);
      throw ConflictAbort{};
    }
    lock.cv_.wait_for(lk, kDoomPollInterval);
    rt_.deadlocks().done_waiting(root_id_);
    if (doomed()) throw ConflictAbort{};
  }
}

void SpeculativeAction::log_inverse(UndoLog::Inverse inverse) {
  assert(state_ == State::kActive && "inverse logged on a finished action");
  undo_.record(std::move(inverse));
}

void SpeculativeAction::add_hook(LifecycleHook hook) {
  assert(state_ == State::kActive && "hook added to a finished action");
  hooks_.push_back(std::move(hook));
}

LockProfile SpeculativeAction::commit(bool reverted) {
  assert(is_root() && "commit() is for root actions; use commit_nested()");
  assert(state_ == State::kActive && "double commit");

  if (doomed()) {
    // Selected as a deadlock victim while running: give up before
    // publishing anything. abort() undoes our effects and releases locks.
    abort();
    throw ConflictAbort{};
  }

  if (reverted) {
    // Solidity `throw`: undo eager effects (and overlay mutations — undo
    // runs first so hook cleanup sees the restored overlays), then let
    // lazy storage drop its buffers. All locks are still held.
    undo_.replay_and_clear();
    for (auto& hook : hooks_) {
      if (hook.on_abort) hook.on_abort();
    }
  } else {
    // Apply deferred (lazy) writes under full isolation, then drop the
    // eager undo log.
    for (auto& hook : hooks_) {
      if (hook.on_commit) hook.on_commit();
    }
    undo_.clear();
  }
  hooks_.clear();

  LockProfile profile;
  profile.tx = tx_;
  profile.reverted = reverted;
  release_held(&profile);
  profile.canonicalize();
  state_ = State::kCommitted;
  return profile;
}

void SpeculativeAction::commit_nested() {
  assert(!is_root() && "commit_nested() is for nested actions");
  assert(state_ == State::kActive && "double commit");
  assert(parent_->state_ == State::kActive && "parent finished before child");

  undo_.append_to(parent_->undo_);
  for (auto& hook : hooks_) parent_->hooks_.push_back(std::move(hook));
  hooks_.clear();
  for (AbstractLock* lock : held_) {
    std::scoped_lock lk(lock->mutex_);
    AbstractLock::Holder* mine = lock->find_holder(root_id_);
    assert(mine != nullptr && mine->owner == this);
    mine->owner = parent_;  // "any abstract locks it acquired are passed to its parent"
    parent_->held_.push_back(lock);
  }
  held_.clear();
  state_ = State::kCommitted;
}

void SpeculativeAction::abort() noexcept {
  if (state_ != State::kActive) return;
  undo_.replay_and_clear();  // Before hooks: undo also restores lazy overlays.
  for (auto& hook : hooks_) {
    if (hook.on_abort) hook.on_abort();
  }
  hooks_.clear();
  if (parent_ != nullptr && parent_->state_ == State::kActive) {
    // Closed nesting: an aborted child's *effects* are undone, but the
    // locks it acquired transfer to the parent instead of being released.
    // This deliberately deviates from the paper's §3 wording ("any
    // abstract locks it acquired are released"): the parent has observed
    // the child's failure and may branch on it, so the child's reads are
    // part of the lineage's serialization footprint. Releasing them early
    // would let a conflicting transaction slip between the child's
    // observation and the parent's commit — and the published profile
    // would no longer cover the locks the validator's replay trace
    // records for the (deterministically re-failing) nested call.
    for (AbstractLock* lock : held_) {
      std::scoped_lock lk(lock->mutex_);
      AbstractLock::Holder* mine = lock->find_holder(root_id_);
      assert(mine != nullptr && mine->owner == this);
      mine->owner = parent_;
      parent_->held_.push_back(lock);
    }
    held_.clear();
  } else {
    release_held(nullptr);
  }
  state_ = State::kAborted;
}

void SpeculativeAction::release_held(LockProfile* profile) noexcept {
  for (AbstractLock* lock : held_) {
    std::scoped_lock lk(lock->mutex_);
    if (profile != nullptr) {
      const AbstractLock::Holder* mine = lock->find_holder(root_id_);
      assert(mine != nullptr);
      ++lock->use_counter_;
      profile->entries.push_back(LockProfileEntry{lock->id(), mine->mode, lock->use_counter_});
    }
    lock->remove_holder(root_id_);
    lock->cv_.notify_all();
  }
  held_.clear();
}

}  // namespace concord::stm
