#include "detect/detect.hpp"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/json.hpp"

namespace concord::detect {

namespace {

/// One transaction's physical footprint: every lock its data accesses
/// touched, with the combined (weakest-covering) access class.
using Footprint = std::unordered_map<stm::LockId, stm::LockMode, stm::LockIdHash>;

Footprint footprint_of(const stm::AccessRecorder& log) {
  Footprint fp;
  for (const stm::AccessEvent& ev : log.events()) {
    if (ev.kind != stm::AccessEvent::Kind::kAccess) continue;
    auto [it, fresh] = fp.try_emplace(ev.lock, ev.mode);
    if (!fresh) it->second = stm::combine(it->second, ev.mode);
  }
  return fp;
}

/// Nodes reachable from `u` (u excluded) over the published graph.
std::vector<bool> reachable_from(const graph::HappensBeforeGraph& hb, std::uint32_t u) {
  std::vector<bool> seen(hb.node_count(), false);
  std::deque<std::uint32_t> frontier{u};
  while (!frontier.empty()) {
    const std::uint32_t node = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t succ : hb.successors(node)) {
      if (!seen[succ]) {
        seen[succ] = true;
        frontier.push_back(succ);
      }
    }
  }
  return seen;
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  out += buf;
}

std::string lock_to_string(const stm::LockId& lock) {
  std::string out = "(";
  append_hex_u64(out, lock.space);
  out += ", ";
  append_hex_u64(out, lock.key);
  out += ")";
  return out;
}

}  // namespace

std::string Violation::describe() const {
  std::string out = "tx " + std::to_string(tx) + " [" + contract +
                    " sel=" + std::to_string(selector) + "]: " + op + " (" +
                    std::string(stm::to_string(access)) + ") on lock " + lock_to_string(lock);
  if (declared) {
    out += " — held mode '" + std::string(stm::to_string(held)) + "' does not cover the access";
  } else {
    out += " — lock never declared";
  }
  return out;
}

std::string SoundnessViolation::describe() const {
  return "unordered pair (tx " + std::to_string(tx_a) + ", tx " + std::to_string(tx_b) +
         ") conflict on lock " + lock_to_string(lock) + ": " +
         std::string(stm::to_string(mode_a)) + " vs " + std::string(stm::to_string(mode_b));
}

void check_lockset(std::uint32_t tx, const chain::Transaction& txn,
                   const stm::AccessRecorder& log, DetectReport& report) {
  // Held set of this attempt so far. Strict two-phase locking means a
  // declaration is held for the remainder of the transaction; re-declares
  // strengthen via combine (matching SpeculativeAction's upgrade path).
  Footprint held;
  for (const stm::AccessEvent& ev : log.events()) {
    if (ev.kind == stm::AccessEvent::Kind::kDeclare) {
      auto [it, fresh] = held.try_emplace(ev.lock, ev.mode);
      if (!fresh) it->second = stm::combine(it->second, ev.mode);
      continue;
    }
    ++report.accesses;
    const auto it = held.find(ev.lock);
    if (it != held.end() && stm::covers(it->second, ev.mode)) continue;
    Violation v;
    v.tx = tx;
    v.contract = txn.contract.to_hex();
    v.selector = txn.selector;
    v.lock = ev.lock;
    v.access = ev.mode;
    v.op = ev.op;
    v.declared = it != held.end();
    if (v.declared) v.held = it->second;
    report.lockset.push_back(std::move(v));
  }
}

void check_schedule_soundness(const graph::HappensBeforeGraph& hb,
                              std::span<const stm::AccessRecorder> logs, DetectReport& report) {
  const std::size_t n = logs.size();
  std::vector<Footprint> footprints;
  footprints.reserve(n);
  for (const stm::AccessRecorder& log : logs) footprints.push_back(footprint_of(log));

  std::vector<std::vector<bool>> reach;
  reach.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u) reach.push_back(reachable_from(hb, u));

  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (reach[a][b] || reach[b][a]) continue;  // Ordered — replay serializes them.
      // Iterate the smaller footprint against the larger.
      const bool a_smaller = footprints[a].size() <= footprints[b].size();
      const Footprint& small = a_smaller ? footprints[a] : footprints[b];
      const Footprint& large = a_smaller ? footprints[b] : footprints[a];
      for (const auto& [lock, mode] : small) {
        const auto it = large.find(lock);
        if (it == large.end() || !stm::conflicts(mode, it->second)) continue;
        SoundnessViolation v;
        v.tx_a = a;
        v.tx_b = b;
        v.lock = lock;
        v.mode_a = a_smaller ? mode : it->second;
        v.mode_b = a_smaller ? it->second : mode;
        report.soundness.push_back(v);
      }
    }
  }
}

DetectReport analyze_block(const chain::Block& block, std::span<const stm::AccessRecorder> logs) {
  DetectReport report;
  report.block_number = block.header.number;
  report.transactions = block.transactions.size();
  const auto n = static_cast<std::uint32_t>(logs.size());
  for (std::uint32_t i = 0; i < n && i < block.transactions.size(); ++i) {
    check_lockset(i, block.transactions[i], logs[i], report);
  }
  check_schedule_soundness(block.schedule.to_graph(block.transactions.size()), logs, report);
  return report;
}

std::string DetectReport::to_json() const {
  std::ostringstream out;
  out << "{\"block\": " << block_number << ", \"transactions\": " << transactions
      << ", \"accesses\": " << accesses << ", \"clean\": " << (clean() ? "true" : "false")
      << ", \"lockset_violations\": [";
  for (std::size_t i = 0; i < lockset.size(); ++i) {
    const Violation& v = lockset[i];
    if (i > 0) out << ", ";
    out << "{\"tx\": " << v.tx << ", \"contract\": \"" << util::json_escape(v.contract)
        << "\", \"selector\": " << v.selector << ", \"op\": \"" << util::json_escape(v.op)
        << "\", \"lock_space\": " << v.lock.space << ", \"lock_key\": " << v.lock.key
        << ", \"access\": \"" << stm::to_string(v.access) << "\", \"declared\": "
        << (v.declared ? "true" : "false") << ", \"held\": \""
        << (v.declared ? stm::to_string(v.held) : "none") << "\"}";
  }
  out << "], \"soundness_violations\": [";
  for (std::size_t i = 0; i < soundness.size(); ++i) {
    const SoundnessViolation& v = soundness[i];
    if (i > 0) out << ", ";
    out << "{\"tx_a\": " << v.tx_a << ", \"tx_b\": " << v.tx_b
        << ", \"lock_space\": " << v.lock.space << ", \"lock_key\": " << v.lock.key
        << ", \"mode_a\": \"" << stm::to_string(v.mode_a) << "\", \"mode_b\": \""
        << stm::to_string(v.mode_b) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string write_report_artifact(const DetectReport& report, const std::string& tag) {
  const char* dir = std::getenv("CONCORD_DETECT_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  std::error_code ec;  // Best-effort: an unwritable dir degrades to "no artifact".
  std::filesystem::create_directories(dir, ec);
  const std::string path = std::string(dir) + "/" + tag + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return {};
  out << report.to_json() << "\n";
  return path;
}

}  // namespace concord::detect
