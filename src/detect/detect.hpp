#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "graph/happens_before.hpp"
#include "stm/access_log.hpp"
#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"

namespace concord::detect {

/// ConcordSan — the abstract-lock race detector.
///
/// The paper's whole construction rests on one precondition: "if two
/// storage operations map to distinct abstract locks, then they must
/// commute", and every operation declares (and under speculation,
/// acquires) the abstract lock covering it *before* touching data. The
/// boosted collections uphold this by construction — but a hand-written
/// contract layered on new storage types, or a future lazy/OCC path,
/// could silently break it, and nothing in the miner would notice: the
/// block still assembles, the validator still replays it, and the race
/// only shows up as a state-root divergence on some other machine.
///
/// ConcordSan makes the precondition checkable. During an instrumented
/// run every boosted operation emits two events into a per-transaction
/// AccessRecorder: the *declaration* (what lock, what mode — the point
/// the lock is acquired under strict two-phase locking) and the *physical
/// access* (what data was actually touched, with its true commutativity
/// class). Two checks consume the logs:
///
///  1. Lockset check (Eraser lifted to abstract locks): replay each
///     transaction's event stream; every access must be covered by a
///     previously-declared lock in a compatible mode. Because boosting
///     uses strict two-phase locking, "declared earlier in this attempt"
///     is exactly "held now" — no lock-release events needed.
///
///  2. Schedule-soundness oracle (paper Theorem 1 as an executable
///     assertion): transactions left unordered by the published
///     happens-before graph must have non-conflicting access footprints,
///     otherwise the fork-join replay could race.
struct Violation {
  std::uint32_t tx = 0;               ///< Block index of the offending transaction.
  std::string contract;               ///< Target contract address (hex).
  std::uint32_t selector = 0;         ///< Method selector.
  stm::LockId lock;                   ///< The abstract lock the access maps to.
  stm::LockMode access = stm::LockMode::kRead;  ///< Physical access class.
  const char* op = "";                ///< Collection operation label.
  bool declared = false;              ///< Lock declared at all this transaction?
  stm::LockMode held = stm::LockMode::kRead;  ///< Combined held mode (when declared).

  /// "tx 3 token.transfer: map.put on (5f3a…, 91c2…) — lock never declared"
  [[nodiscard]] std::string describe() const;
};

/// Two transactions the published schedule allows to run concurrently
/// whose physical footprints conflict on `lock`.
struct SoundnessViolation {
  std::uint32_t tx_a = 0;
  std::uint32_t tx_b = 0;
  stm::LockId lock;
  stm::LockMode mode_a = stm::LockMode::kRead;  ///< tx_a's combined access class.
  stm::LockMode mode_b = stm::LockMode::kRead;  ///< tx_b's combined access class.

  [[nodiscard]] std::string describe() const;
};

/// Everything one block's instrumented run produced.
struct DetectReport {
  std::uint64_t block_number = 0;
  std::uint64_t transactions = 0;
  std::uint64_t accesses = 0;  ///< Physical accesses checked.
  std::vector<Violation> lockset;
  std::vector<SoundnessViolation> soundness;

  [[nodiscard]] bool clean() const noexcept { return lockset.empty() && soundness.empty(); }
  [[nodiscard]] std::size_t total_violations() const noexcept {
    return lockset.size() + soundness.size();
  }

  /// Machine-readable form (one JSON object) — uploaded as a CI artifact
  /// when the detect lane fails, so a red run carries its own evidence.
  [[nodiscard]] std::string to_json() const;
};

/// Lockset check over one transaction's event stream (check 1 above).
/// Appends any violations to `report`; `tx` indexes the transaction in
/// its block and `txn` supplies contract/selector for the report.
void check_lockset(std::uint32_t tx, const chain::Transaction& txn,
                   const stm::AccessRecorder& log, DetectReport& report);

/// Schedule-soundness oracle (check 2 above) over a whole block: for
/// every pair of transactions unordered by `hb` (neither reaches the
/// other), their combined physical footprints must be pairwise
/// non-conflicting. O(n² · footprint) with BFS reachability — blocks are
/// a few hundred transactions, so this stays well under replay cost.
void check_schedule_soundness(const graph::HappensBeforeGraph& hb,
                              std::span<const stm::AccessRecorder> logs, DetectReport& report);

/// Runs both checks over a freshly-mined block and its per-transaction
/// access logs (logs[i] belongs to block.transactions[i]).
[[nodiscard]] DetectReport analyze_block(const chain::Block& block,
                                         std::span<const stm::AccessRecorder> logs);

/// Writes `report.to_json()` to `$CONCORD_DETECT_REPORT_DIR/<tag>.json`
/// when that environment variable is set (the CI detect lane points it at
/// an artifact directory). Returns the path written, or empty when the
/// variable is unset or the file could not be created.
std::string write_report_artifact(const DetectReport& report, const std::string& tag);

}  // namespace concord::detect
