#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>

namespace concord::vm {

/// Counters describing a PageArena's traffic (all monotone except the
/// live gauges). Surfaced through MinerStats/NodeStats and the bench
/// --json schema so the allocator's behaviour under a workload is a
/// first-class measurement, not a profiler session.
struct ArenaStats {
  std::uint64_t chunks = 0;         ///< Slab chunks carved from the OS heap.
  std::uint64_t chunk_bytes = 0;    ///< Total bytes reserved in those chunks.
  std::uint64_t live_blocks = 0;    ///< Blocks handed out and not yet freed.
  std::uint64_t live_bytes = 0;     ///< Size-class bytes in live blocks.
  std::uint64_t live_high_water = 0;  ///< Max live_blocks ever observed.
  std::uint64_t fresh_allocs = 0;   ///< Served by carving fresh slab space.
  std::uint64_t recycle_hits = 0;   ///< Served from a size-class free list.
  std::uint64_t oversize_allocs = 0;  ///< Past the largest class; plain heap.
  /// Cross-stripe contention: how often a dry stripe probed a sibling's
  /// free list (a try_lock each) and how often a probe adopted one. High
  /// attempts with low hits means stripes are fighting over the same
  /// recycled pages — the signal the per-shard stripe affinity exists to
  /// drive down.
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
};

/// A size-class slab allocator for the COW state layer's page traffic.
///
/// The COW structures allocate three kinds of object, all small and all
/// churning at block cadence: shared_ptr control blocks + their payloads
/// (pages, chunks, boxed scalars), the pages' entry buffers, and the
/// per-collection directories. Under a sustained stream every block
/// detaches a fresh copy of each dirty page and, one boundary later,
/// frees the page the retired snapshot was holding — the next block's
/// detach then needs a block of exactly the size just freed. The global
/// heap serves that pattern through malloc's general machinery; the
/// arena serves it from a per-size-class free list, so steady-state
/// mining recycles its own pages instead of hammering the allocator
/// (the ROADMAP's million-account unlock).
///
/// Design (the givy superpage/size-class idiom, scaled down):
///  - memory is carved from cache-line-aligned kChunkBytes slabs; slabs
///    hand out per-stripe bump runs so the central lock is rare;
///  - requests are rounded up to a power-of-two size class in
///    [kMinBlockBytes, kMaxBlockBytes]; each class stripe keeps an
///    intrusive free list threaded through the freed blocks themselves;
///  - allocate = pop the stripe's free list, else bump-carve from its
///    open run, else bulk-steal a sibling stripe's free list, else carve
///    a fresh run (exhaustion never fails until the OS does);
///  - larger requests (big directories, 1M-account CDF tables) fall
///    through to the global heap, counted but not pooled — they are rare
///    and reuse-friendly there;
///  - slabs are only returned to the OS when the arena dies.
///
/// Thread safety: fully thread-safe. Each size class is split into
/// kStripeCount stripes; threads are round-robined onto stripes, so the
/// hot path takes an uncontended mutex on a cache line the thread
/// already owns, and all traffic counters are plain fields under that
/// same lock — no shared atomics ping-ponging between miner threads.
/// Pages are freed by whichever thread drops the last reference (a
/// validator or a snapshot-holding ring entry, not necessarily the miner
/// that allocated them); frees land in the freeing thread's stripe, and
/// an allocating stripe whose own free list and bump run are empty
/// bulk-steals a sibling's list (try_lock only, so no lock-order cycle)
/// before carving fresh slab space. The refcount protocol above the
/// arena is untouched: ownership is still plain shared_ptr machinery,
/// and the `sole_owner` acquire-fence check in cow.hpp works exactly as
/// before because the arena only ever sees memory whose last reference
/// is already gone.
///
/// Lifetime: the arena is owned by ArenaHandle (shared_ptr) copies held
/// at the *collection* level — every World and every COW collection
/// (CowPages/CowChunks/CowBox) keeps one, declared before its page
/// pointers so the pages die first. ArenaAllocator itself carries only a
/// non-owning PageArena*: embedding the handle in every allocate_shared
/// control block would put an atomic refcount bump/drop on one shared
/// cache line into every page detach and release, which measurably
/// throttles million-account mining. See ArenaAllocator's comment for
/// the exact contract.
class PageArena {
 public:
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 20;   ///< 1 MiB slabs.
  static constexpr std::size_t kMinBlockBytes = 64;                  ///< Smallest class.
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 16;  ///< 64 KiB.
  static constexpr unsigned kStripeCount = 8;  ///< Per-class contention shards.

  PageArena() = default;
  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;
  ~PageArena();

  /// Rounds `bytes` up to its size class (or returns `bytes` unchanged
  /// when it falls through to the heap).
  [[nodiscard]] static std::size_t class_bytes(std::size_t bytes) noexcept;

  /// True when a request of `bytes` is served from the slabs (as opposed
  /// to the oversize heap fallback).
  [[nodiscard]] static bool pooled(std::size_t bytes) noexcept {
    return bytes <= kMaxBlockBytes;
  }

  /// Never returns nullptr (throws std::bad_alloc downstream). Pooled
  /// blocks are kMinBlockBytes-aligned — cache-line alignment, so no two
  /// blocks share a line and adjacent pages owned by different threads
  /// cannot false-share. (Oversize requests get the global heap's usual
  /// max_align_t alignment.)
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// `bytes` must be the size passed to the matching allocate().
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Pins the calling thread onto stripe `stripe % kStripeCount` (for
  /// every arena — the override is thread-local, not per-instance),
  /// replacing the default lifetime round-robin. The per-shard affinity
  /// hook: a lane miner binds its workers to the lane's stripe slice so
  /// lane-local page churn recycles within the lane instead of meeting
  /// other lanes on shared free lists (and falling back to try_lock
  /// steals). Persists until the thread rebinds; unbound threads keep
  /// the round-robin mapping.
  static void bind_thread_stripe(unsigned stripe) noexcept;

  /// A consistent-enough snapshot for diagnostics (counters are atomics;
  /// cross-field skew is harmless).
  [[nodiscard]] ArenaStats stats() const noexcept;

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  /// One contention shard of a size class: its own free list, its own
  /// bump run carved from the shared slabs, and plain traffic counters —
  /// everything a hot-path allocate/deallocate touches lives under this
  /// one mutex, on this one (alignas-isolated) cache-line group. The
  /// free-list head is atomic only so sibling stripes can peek at it
  /// lock-free when deciding whether a steal is worth a try_lock; every
  /// mutation still happens under mu.
  struct alignas(64) Stripe {
    mutable std::mutex mu;  ///< mutable: stats() locks stripes of a const arena.
    std::atomic<FreeBlock*> free_list{nullptr};
    std::byte* bump = nullptr;   ///< Next unserved byte of the open run.
    std::byte* bump_end = nullptr;
    std::uint64_t fresh = 0;
    std::uint64_t recycles = 0;
    std::uint64_t steal_attempts = 0;  ///< Sibling free lists this stripe probed.
    std::uint64_t steal_hits = 0;      ///< Probes that adopted a sibling's list.
    std::int64_t live_blocks = 0;  ///< Cross-stripe frees can dip negative.
    std::int64_t live_bytes = 0;
    std::int64_t live_high = 0;    ///< Per-stripe peak; stats() sums them.
  };

  /// One power-of-two size class: kStripeCount stripes, each recycling
  /// blocks at exactly the class size with no splitting/coalescing.
  struct SizeClass {
    Stripe stripes[kStripeCount];
  };

  [[nodiscard]] static unsigned class_index(std::size_t bytes) noexcept;

  /// Carves a bump run of [block, preferred] bytes (a multiple of block)
  /// for one stripe from the shared open slab, starting a new slab when
  /// the open one cannot fit even a single block. Central lock taken once
  /// per run — a small fraction of allocations.
  [[nodiscard]] std::pair<std::byte*, std::size_t> carve_run(std::size_t block,
                                                             std::size_t preferred);

  /// All slabs ever carved, so the destructor can return them, plus the
  /// open slab's carve frontier. Guarded by chunks_mu_.
  mutable std::mutex chunks_mu_;
  std::byte* chunk_head_ = nullptr;  ///< Intrusive list through slab headers.
  std::byte* chunk_bump_ = nullptr;  ///< Next run starts here…
  std::byte* chunk_end_ = nullptr;   ///< …and may extend to here.
  std::uint64_t chunks_ = 0;         ///< Guarded by chunks_mu_.
  std::uint64_t chunk_bytes_ = 0;    ///< Guarded by chunks_mu_.

  static constexpr unsigned kClassCount = 11;  // 64B .. 64KiB, powers of two.
  SizeClass classes_[kClassCount];

  std::atomic<std::uint64_t> oversize_allocs_{0};
};

/// The World-scoped handle the COW layer carries around. Null = arena
/// disabled, every allocation goes to the global heap — the baseline
/// side of bench_state_scale's arena ablation.
using ArenaHandle = std::shared_ptr<PageArena>;

/// A fresh arena for one World lineage (forks share it through the
/// handle; see World::fork).
[[nodiscard]] inline ArenaHandle make_arena() { return std::make_shared<PageArena>(); }

/// Standard-allocator adaptor over a PageArena. A null arena falls back
/// to the global heap, so one container type serves both the
/// arena-backed and the baseline configuration — which is what keeps
/// state roots trivially byte-identical across the ablation.
///
/// The pointer is NON-OWNING, deliberately: a copy of this allocator
/// sits inside every arena-backed container and allocate_shared control
/// block, and at million-account scale those are copied and destroyed
/// ~10^5 times per block across the miner threads. An owning
/// ArenaHandle here would turn each of those into an atomic RMW on the
/// arena's one refcount cache line — a measured double-digit-percent
/// hit on sustained tx/s. Instead the lifetime contract is: whoever
/// roots arena-backed memory (World, and each COW collection via its
/// `arena_` member, declared before the page pointers it covers) holds
/// an ArenaHandle that outlives every block allocated through it. New
/// holders of arena-backed shared_ptrs outside those types must keep
/// their own handle alive alongside.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(const ArenaHandle& arena) noexcept : arena_(arena.get()) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = checked_bytes(n);
    if (arena_ != nullptr) return static_cast<T*>(arena_->allocate(bytes));
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      arena_->deallocate(p, bytes);
    } else {
      ::operator delete(p, bytes);
    }
  }

  /// The arena this allocator routes to (non-owning; null = heap).
  [[nodiscard]] PageArena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  [[nodiscard]] static std::size_t checked_bytes(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return n * sizeof(T);
  }

  PageArena* arena_ = nullptr;
};

/// make_shared that routes both the control block and the payload through
/// `arena` (global heap when the handle is null). The construction
/// arguments are forwarded unchanged, so allocator-aware payloads (the
/// COW page vectors) can take their own element allocator on top. The
/// returned shared_ptr does NOT keep the arena alive — the caller's
/// lineage must (see ArenaAllocator).
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> arena_make_shared(const ArenaHandle& arena, Args&&... args) {
  if (!arena) return std::make_shared<T>(std::forward<Args>(args)...);
  return std::allocate_shared<T>(ArenaAllocator<T>(arena), std::forward<Args>(args)...);
}

}  // namespace concord::vm
