#pragma once

#include <algorithm>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "stm/speculative_action.hpp"
#include "vm/boosted_map.hpp"
#include "vm/codec.hpp"
#include "vm/cow.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/state_hasher.hpp"
#include "vm/types.hpp"

namespace concord::vm {

/// Lazy-version-management boosted map — the paper's §3 alternative:
/// "The scheme described here is eager, acquiring locks, applying
/// operations, and recording inverses. An alternative lazy implementation
/// could buffer changes to a contract's storage, applying them only on
/// commit."
///
/// Locking is unchanged (encounter-time abstract locks, strict two-phase),
/// so conflict behaviour and published profiles are identical to
/// BoostedMap. What changes is version management:
///  - writes go to a per-lineage overlay; main storage is untouched;
///  - reads consult the own overlay first (read-your-writes);
///  - commit applies the overlay while all locks are still held;
///  - abort just discards the overlay — no inverse log, no undo replay.
///
/// The trade: aborts become O(1) and inverses are never allocated, but
/// every read pays an overlay lookup and commit pays a second pass.
/// bench_ablation_lazy measures both sides against the eager BoostedMap.
///
/// In serial and replay modes there is no speculation to buffer for, so
/// operations behave exactly like BoostedMap (eager + local undo).
template <typename K, typename V>
class LazyMap {
 public:
  explicit LazyMap(std::uint64_t space) : space_(space) {}

  LazyMap(const LazyMap&) = delete;
  LazyMap& operator=(const LazyMap&) = delete;

  // --- Transactional storage operations -------------------------------

  [[nodiscard]] std::optional<V> get(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kRead);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "lazy.get");
    std::scoped_lock lk(mu_);
    // Own writes win — including buffered erases, which read as absent.
    if (const auto* buffered = find_buffered_entry(ctx, key)) return *buffered;
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  [[nodiscard]] V get_or(ExecContext& ctx, const K& key, V fallback) const {
    auto v = get(ctx, key);
    return v ? std::move(*v) : std::move(fallback);
  }

  [[nodiscard]] std::optional<V> get_for_update(ExecContext& ctx, const K& key) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kRead, "lazy.get_for_update");
    std::scoped_lock lk(mu_);
    if (const auto* buffered = find_buffered_entry(ctx, key)) return *buffered;
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  [[nodiscard]] bool contains(ExecContext& ctx, const K& key) const {
    return get(ctx, key).has_value();
  }

  void put(ExecContext& ctx, const K& key, V value) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "lazy.put");
    write(ctx, key, std::optional<V>(std::move(value)));
  }

  bool erase(ExecContext& ctx, const K& key) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(lock_id(key), stm::LockMode::kWrite);
    ctx.on_data_access(lock_id(key), stm::LockMode::kWrite, "lazy.erase");
    std::scoped_lock lk(mu_);
    const bool existed = [&] {
      if (const auto* buffered = find_buffered_entry(ctx, key)) return buffered->has_value();
      return data_.contains(key);
    }();
    write_locked(ctx, key, std::nullopt);
    return existed;
  }

  // --- Non-transactional access ----------------------------------------

  /// Copy-on-write fork (World::fork): adopts `other`'s *committed* state
  /// as a shared-page replica in O(1). Forks are taken at block
  /// boundaries, when no speculative action is live — a lineage with a
  /// buffered overlay would make "the state" ambiguous, so forking a
  /// non-quiescent map throws. Overlays created in `other` *after* the
  /// fork never reach this replica: buffered writes live outside the
  /// shared pages, and applying them at commit detaches `other`'s touched
  /// pages first (see the fork-precondition tests in lazy_test).
  void fork_state_from(const LazyMap& other) {
    if (space_ != other.space_) {
      throw std::logic_error("LazyMap::fork_state_from: lock-space mismatch");
    }
    std::scoped_lock lk(mu_, other.mu_);
    if (!other.overlays_.empty()) {
      throw std::logic_error("LazyMap::fork_state_from: live overlays (fork between blocks)");
    }
    data_ = other.data_.fork();
    overlays_.clear();
  }

  void raw_put(const K& key, V value) {
    std::scoped_lock lk(mu_);
    data_.insert_or_assign(key, std::move(value));
  }

  /// Routes future page allocations of the *committed* store through
  /// `arena` (overlays are transient per-lineage heap objects and stay on
  /// the heap). See CowPages::set_arena.
  void set_arena(ArenaHandle arena) {
    std::scoped_lock lk(mu_);
    data_.set_arena(std::move(arena));
  }

  /// Pre-sizes the committed store's page directory. See
  /// CowPages::reserve.
  void raw_reserve(std::size_t expected_entries) {
    std::scoped_lock lk(mu_);
    data_.reserve(expected_entries);
  }

  [[nodiscard]] std::optional<V> raw_get(const K& key) const {
    std::scoped_lock lk(mu_);
    const V* value = data_.find(key);
    return value != nullptr ? std::optional<V>(*value) : std::nullopt;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return data_.size();
  }

  /// Number of lineages with live overlays (diagnostic; 0 when quiescent).
  [[nodiscard]] std::size_t pending_lineages() const {
    std::scoped_lock lk(mu_);
    return overlays_.size();
  }

  void hash_state(StateHasher& hasher, std::string_view label) const {
    hasher.begin_section(label);
    std::scoped_lock lk(mu_);
    // Flat-buffer fold, same as BoostedMap::hash_state: one encoding
    // buffer + offset index instead of two heap vectors per entry.
    util::ByteWriter flat;
    struct Item {
      std::size_t key_begin, key_end, value_end;
    };
    std::vector<Item> items;
    items.reserve(data_.size());
    data_.for_each([&flat, &items](const K& key, const V& value) {
      const std::size_t key_begin = flat.size();
      encode_value(flat, key);
      const std::size_t key_end = flat.size();
      encode_value(flat, value);
      items.push_back(Item{key_begin, key_end, flat.size()});
    });
    const std::uint8_t* buf = flat.bytes().data();
    std::sort(items.begin(), items.end(), [buf](const Item& a, const Item& b) {
      return std::lexicographical_compare(buf + a.key_begin, buf + a.key_end,
                                          buf + b.key_begin, buf + b.key_end);
    });
    hasher.put_u64(items.size());
    for (const Item& item : items) {
      hasher.put_bytes(std::span(buf + item.key_begin, item.key_end - item.key_begin));
      hasher.put_bytes(std::span(buf + item.key_end, item.value_end - item.key_end));
    }
  }

  [[nodiscard]] std::uint64_t space() const noexcept { return space_; }

 private:
  /// nullopt value in an overlay = buffered erase.
  using Overlay = std::unordered_map<K, std::optional<V>, StableKeyHash>;

  [[nodiscard]] stm::LockId lock_id(const K& key) const noexcept {
    return stm::LockId{space_, lock_key_of(key)};
  }

  /// Caller holds mu_. The buffered optional-entry for this lineage, or
  /// nullptr when none exists.
  [[nodiscard]] const std::optional<V>* find_buffered_entry(const ExecContext& ctx,
                                                            const K& key) const {
    const stm::SpeculativeAction* action = ctx.speculative_action();
    if (action == nullptr) return nullptr;
    const auto overlay_it = overlays_.find(action->root_id());
    if (overlay_it == overlays_.end()) return nullptr;
    const auto it = overlay_it->second.find(key);
    return it != overlay_it->second.end() ? &it->second : nullptr;
  }

  void write(ExecContext& ctx, const K& key, std::optional<V> value) {
    std::scoped_lock lk(mu_);
    write_locked(ctx, key, std::move(value));
  }

  /// Caller holds mu_.
  void write_locked(ExecContext& ctx, const K& key, std::optional<V> value) {
    stm::SpeculativeAction* action = ctx.speculative_action();
    if (action == nullptr) {
      // Serial/replay: eager with local undo, exactly like BoostedMap.
      std::optional<V> old;
      const V* existing = data_.find(key);
      if (existing != nullptr) old = *existing;
      apply(key, std::move(value));
      ctx.log_inverse([this, key, old = std::move(old)]() {
        std::scoped_lock relock(mu_);
        apply(key, old);
      });
      return;
    }

    const std::uint64_t root = action->root_id();
    auto [overlay_it, fresh] = overlays_.try_emplace(root);
    if (fresh) {
      // First buffered write of this lineage: hook its fate to the action.
      // (If `action` is nested and later commits, the hook transfers to
      // its parent along with its locks.)
      action->add_hook(stm::SpeculativeAction::LifecycleHook{
          .on_commit = [this, root] { apply_overlay(root); },
          .on_abort = [this, root] { discard_overlay(root); },
      });
    }

    // Overlay mutations are themselves undoable: a nested child that
    // aborts must restore the overlay to the parent's view (the child's
    // buffered writes vanish; the parent's survive). The inverse touches
    // only the overlay, never main storage — aborting a lazy transaction
    // still never has to patch committed state.
    std::optional<std::optional<V>> previous;
    if (const auto it = overlay_it->second.find(key); it != overlay_it->second.end()) {
      previous = it->second;
    }
    ctx.log_inverse([this, root, key, previous = std::move(previous)]() {
      std::scoped_lock relock(mu_);
      const auto it = overlays_.find(root);
      if (it == overlays_.end()) return;
      if (previous) {
        it->second.insert_or_assign(key, *previous);
      } else {
        it->second.erase(key);
      }
    });
    overlay_it->second.insert_or_assign(key, std::move(value));
  }

  /// Caller holds mu_. Applies a present-or-erase write to main storage.
  void apply(const K& key, const std::optional<V>& value) {
    if (value) {
      data_.insert_or_assign(key, *value);
    } else {
      data_.erase(key);
    }
  }

  void apply_overlay(std::uint64_t root) {
    std::scoped_lock lk(mu_);
    const auto it = overlays_.find(root);
    if (it == overlays_.end()) return;
    for (const auto& [key, value] : it->second) apply(key, value);
    overlays_.erase(it);
  }

  void discard_overlay(std::uint64_t root) {
    std::scoped_lock lk(mu_);
    overlays_.erase(root);
  }

  std::uint64_t space_;
  mutable std::mutex mu_;
  /// Committed state: COW pages, shared across forked lineages.
  CowPages<K, V, StableKeyHash> data_;
  /// Buffered speculative writes: strictly per-instance, never forked.
  mutable std::unordered_map<std::uint64_t, Overlay> overlays_;
};

}  // namespace concord::vm
