#include "vm/arena.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>

namespace concord::vm {

namespace {

/// Slab layout: a raw kChunkBytes block whose first kMinBlockBytes-sized
/// slot stores the next-slab pointer; the rest is carve space. Keeping
/// the link inside the slab avoids a per-slab node allocation (which
/// would itself be heap traffic the arena exists to remove). The header
/// is a full cache line and the slab itself is allocated line-aligned,
/// so every block offset — all class sizes are multiples of
/// kMinBlockBytes — lands on a line boundary: no block straddles two
/// lines and no two blocks share one.
constexpr std::size_t kChunkHeaderBytes = PageArena::kMinBlockBytes;
constexpr std::align_val_t kChunkAlign{PageArena::kMinBlockBytes};
static_assert(kChunkHeaderBytes >= sizeof(std::byte*));

/// Bytes a stripe asks for per bump run: enough blocks that the central
/// chunk lock is a rounding error, small enough that eleven classes times
/// eight stripes of half-open runs stay a few MiB.
constexpr std::size_t run_preferred_bytes(std::size_t block) noexcept {
  return std::max<std::size_t>(block * 8, 16 * 1024);
}

/// Sentinel for "no explicit stripe bound"; see bind_thread_stripe.
constexpr unsigned kNoBoundStripe = ~0u;
thread_local unsigned bound_stripe = kNoBoundStripe;

/// Round-robins threads onto stripes. A thread keeps its stripe for life
/// (and across arenas): the point is that concurrent miner threads land
/// on different stripes, not that the mapping is balanced per arena. An
/// explicit bind_thread_stripe() — the per-shard affinity path — takes
/// precedence over the round-robin.
unsigned stripe_index() noexcept {
  if (bound_stripe != kNoBoundStripe) return bound_stripe;
  static std::atomic<unsigned> next{0};
  static thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % PageArena::kStripeCount;
}

}  // namespace

void PageArena::bind_thread_stripe(unsigned stripe) noexcept {
  bound_stripe = stripe % kStripeCount;
}

PageArena::~PageArena() {
  std::byte* chunk = chunk_head_;
  while (chunk != nullptr) {
    std::byte* next = nullptr;
    std::memcpy(&next, chunk, sizeof(next));
    ::operator delete(chunk, kChunkBytes, kChunkAlign);
    chunk = next;
  }
}

std::size_t PageArena::class_bytes(std::size_t bytes) noexcept {
  if (!pooled(bytes)) return bytes;
  return std::bit_ceil(bytes < kMinBlockBytes ? kMinBlockBytes : bytes);
}

unsigned PageArena::class_index(std::size_t bytes) noexcept {
  // class 0 = 64B, 1 = 128B, ... kClassCount-1 = 64KiB.
  const auto width = static_cast<unsigned>(std::bit_width(class_bytes(bytes) - 1));
  constexpr auto kMinWidth = static_cast<unsigned>(std::bit_width(kMinBlockBytes - 1));
  return width - kMinWidth;
}

std::pair<std::byte*, std::size_t> PageArena::carve_run(std::size_t block,
                                                        std::size_t preferred) {
  std::scoped_lock lk(chunks_mu_);
  if (static_cast<std::size_t>(chunk_end_ - chunk_bump_) < block) {
    // Open slab exhausted (or first use): start a fresh one. The slab's
    // leftover tail, if any, is abandoned — bounded waste of < one block
    // per slab, never leaked (the slab list owns it).
    auto* chunk = static_cast<std::byte*>(::operator new(kChunkBytes, kChunkAlign));
    std::memcpy(chunk, &chunk_head_, sizeof(chunk_head_));
    chunk_head_ = chunk;
    ++chunks_;
    chunk_bytes_ += kChunkBytes;
    chunk_bump_ = chunk + kChunkHeaderBytes;
    chunk_end_ = chunk + kChunkBytes;
  }
  const auto avail = static_cast<std::size_t>(chunk_end_ - chunk_bump_);
  const std::size_t len = std::min(preferred, avail / block * block);
  std::byte* run = chunk_bump_;
  chunk_bump_ += len;
  return {run, len};
}

void* PageArena::allocate(std::size_t bytes) {
  if (!pooled(bytes)) {
    oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  const std::size_t block = class_bytes(bytes);
  SizeClass& cls = classes_[class_index(bytes)];
  Stripe& mine = cls.stripes[stripe_index()];

  std::scoped_lock lk(mine.mu);
  void* result = nullptr;
  if (FreeBlock* head = mine.free_list.load(std::memory_order_relaxed)) {
    mine.free_list.store(head->next, std::memory_order_relaxed);
    result = head;
    ++mine.recycles;
  } else if (static_cast<std::size_t>(mine.bump_end - mine.bump) >= block) {
    result = mine.bump;
    mine.bump += block;
    ++mine.fresh;
  } else {
    // Own list and run are dry. Blocks freed by other threads pile up in
    // *their* stripes; adopt a sibling's whole list before carving fresh
    // memory. try_lock only — two stripes stealing from each other must
    // skip, not deadlock — and the unlocked peek is what the atomic
    // free-list head is for.
    for (unsigned probe = 1; probe < kStripeCount && result == nullptr; ++probe) {
      Stripe& victim = cls.stripes[(stripe_index() + probe) % kStripeCount];
      if (victim.free_list.load(std::memory_order_relaxed) == nullptr) continue;
      ++mine.steal_attempts;
      if (!victim.mu.try_lock()) continue;
      FreeBlock* stolen = victim.free_list.exchange(nullptr, std::memory_order_relaxed);
      victim.mu.unlock();
      if (stolen != nullptr) {
        result = stolen;
        mine.free_list.store(stolen->next, std::memory_order_relaxed);
        ++mine.recycles;
        ++mine.steal_hits;
      }
    }
    if (result == nullptr) {
      const auto [run, len] = carve_run(block, run_preferred_bytes(block));
      mine.bump = run + block;
      mine.bump_end = run + len;
      result = run;
      ++mine.fresh;
    }
  }

  mine.live_blocks += 1;
  mine.live_bytes += static_cast<std::int64_t>(block);
  mine.live_high = std::max(mine.live_high, mine.live_blocks);
  return result;
}

void PageArena::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (!pooled(bytes)) {
    ::operator delete(p, bytes);
    return;
  }
  const std::size_t block = class_bytes(bytes);
  Stripe& mine = classes_[class_index(bytes)].stripes[stripe_index()];
  auto* freed = static_cast<FreeBlock*>(p);

  std::scoped_lock lk(mine.mu);
  freed->next = mine.free_list.load(std::memory_order_relaxed);
  mine.free_list.store(freed, std::memory_order_relaxed);
  mine.live_blocks -= 1;
  mine.live_bytes -= static_cast<std::int64_t>(block);
}

ArenaStats PageArena::stats() const noexcept {
  ArenaStats s;
  {
    std::scoped_lock lk(chunks_mu_);
    s.chunks = chunks_;
    s.chunk_bytes = chunk_bytes_;
  }
  // Per-stripe gauges can individually dip negative (blocks allocated in
  // one stripe, freed into another); the sums are exact. live_high_water
  // is the sum of per-stripe peaks — exact single-threaded, an upper
  // bound under concurrency. Diagnostic, not load-bearing.
  std::int64_t live_blocks = 0;
  std::int64_t live_bytes = 0;
  std::int64_t live_high = 0;
  for (const SizeClass& cls : classes_) {
    for (const Stripe& stripe : cls.stripes) {
      std::scoped_lock lk(stripe.mu);
      s.fresh_allocs += stripe.fresh;
      s.recycle_hits += stripe.recycles;
      s.steal_attempts += stripe.steal_attempts;
      s.steal_hits += stripe.steal_hits;
      live_blocks += stripe.live_blocks;
      live_bytes += stripe.live_bytes;
      live_high += stripe.live_high;
    }
  }
  s.live_blocks = static_cast<std::uint64_t>(std::max<std::int64_t>(live_blocks, 0));
  s.live_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(live_bytes, 0));
  s.live_high_water = static_cast<std::uint64_t>(std::max<std::int64_t>(live_high, 0));
  s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace concord::vm
