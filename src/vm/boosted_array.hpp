#pragma once

#include <concepts>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "stm/lock_id.hpp"
#include "stm/lock_mode.hpp"
#include "vm/codec.hpp"
#include "vm/cow.hpp"
#include "vm/errors.hpp"
#include "vm/exec_context.hpp"
#include "vm/gas.hpp"
#include "vm/state_hasher.hpp"

namespace concord::vm {

/// A boosted dynamically-sized array (Solidity `T[]`), with per-index
/// abstract locks plus one dedicated lock for the length.
///
/// Lock discipline:
///  - element reads/writes lock `(space, index)` — operations on distinct
///    indices commute, concurrent reads of one index commute;
///  - `length()` READ-locks the length lock: it commutes with element
///    updates and with other length reads, but not with push/pop;
///  - `push_back`/`pop_back` WRITE-lock the length lock *and* the slot
///    they create/destroy.
///
/// Out-of-range element access reverts, mirroring Solidity ("If proposal
/// is out of the range of the array, this will throw automatically").
/// The bounds check reads the length — so it takes the length READ lock,
/// which is exactly what makes "index i exists" a stable fact for the
/// rest of the transaction.
template <typename T>
class BoostedArray {
 public:
  explicit BoostedArray(std::uint64_t space) : space_(space) {}

  BoostedArray(const BoostedArray&) = delete;
  BoostedArray& operator=(const BoostedArray&) = delete;

  // --- Transactional storage operations -------------------------------

  [[nodiscard]] std::size_t length(ExecContext& ctx) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(length_lock(), stm::LockMode::kRead);
    ctx.on_data_access(length_lock(), stm::LockMode::kRead, "array.length");
    std::scoped_lock lk(mu_);
    return data_.size();
  }

  [[nodiscard]] T get(ExecContext& ctx, std::uint64_t index) const {
    check_bounds(ctx, index);
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(element_lock(index), stm::LockMode::kRead);
    ctx.on_data_access(element_lock(index), stm::LockMode::kRead, "array.get");
    std::scoped_lock lk(mu_);
    return data_.at(index);
  }

  void set(ExecContext& ctx, std::uint64_t index, T value) {
    check_bounds(ctx, index);
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(element_lock(index), stm::LockMode::kWrite);
    ctx.on_data_access(element_lock(index), stm::LockMode::kWrite, "array.set");
    T old;
    {
      std::scoped_lock lk(mu_);
      old = data_.at(index);
      data_.set(index, std::move(value));
    }
    ctx.log_inverse([this, index, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      if (index < data_.size()) data_.set(index, old);
    });
  }

  /// Commutative add on an integral element. INCREMENT mode: a block of
  /// `voteCount += w` on the same index mines in parallel.
  void add(ExecContext& ctx, std::uint64_t index, T delta)
    requires std::integral<T>
  {
    check_bounds(ctx, index);
    ctx.gas().charge(gas::kSinc);
    ctx.on_storage_op(element_lock(index), stm::LockMode::kIncrement);
    ctx.on_data_access(element_lock(index), stm::LockMode::kIncrement, "array.add");
    {
      std::scoped_lock lk(mu_);
      data_.mutate(index, [delta](T& value) { value += delta; });
    }
    ctx.log_inverse([this, index, delta]() {
      std::scoped_lock lk(mu_);
      if (index < data_.size()) data_.mutate(index, [delta](T& value) { value -= delta; });
    });
  }

  /// Appends a value; returns its index.
  std::uint64_t push_back(ExecContext& ctx, T value) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(length_lock(), stm::LockMode::kWrite);
    ctx.on_data_access(length_lock(), stm::LockMode::kWrite, "array.push_back");
    std::uint64_t index = 0;
    {
      std::scoped_lock lk(mu_);
      index = data_.size();
    }
    ctx.on_storage_op(element_lock(index), stm::LockMode::kWrite);
    ctx.on_data_access(element_lock(index), stm::LockMode::kWrite, "array.push_back");
    {
      std::scoped_lock lk(mu_);
      data_.push_back(std::move(value));
    }
    ctx.log_inverse([this]() {
      std::scoped_lock lk(mu_);
      data_.pop_back();
    });
    return index;
  }

  /// Removes the last element; reverts when empty.
  void pop_back(ExecContext& ctx) {
    ctx.gas().charge(gas::kSstore);
    ctx.on_storage_op(length_lock(), stm::LockMode::kWrite);
    ctx.on_data_access(length_lock(), stm::LockMode::kWrite, "array.pop_back");
    std::uint64_t index = 0;
    {
      std::scoped_lock lk(mu_);
      if (data_.empty()) throw RevertError("pop_back on empty array");
      index = data_.size() - 1;
    }
    ctx.on_storage_op(element_lock(index), stm::LockMode::kWrite);
    ctx.on_data_access(element_lock(index), stm::LockMode::kWrite, "array.pop_back");
    T old;
    {
      std::scoped_lock lk(mu_);
      old = data_.back();
      data_.pop_back();
    }
    ctx.log_inverse([this, old = std::move(old)]() {
      std::scoped_lock lk(mu_);
      data_.push_back(old);
    });
  }

  // --- Non-transactional access ----------------------------------------

  /// Copy-on-write fork (World::fork): shares `other`'s element chunks in
  /// O(1); the first set/push/pop on either side detaches only the
  /// touched chunk.
  void fork_state_from(const BoostedArray& other) {
    if (space_ != other.space_) {
      throw std::logic_error("BoostedArray::fork_state_from: lock-space mismatch");
    }
    std::scoped_lock lk(mu_, other.mu_);
    data_ = other.data_.fork();
  }

  void raw_push_back(T value) {
    std::scoped_lock lk(mu_);
    data_.push_back(std::move(value));
  }

  /// Routes future chunk allocations through `arena`. See
  /// CowChunks::set_arena.
  void set_arena(ArenaHandle arena) {
    std::scoped_lock lk(mu_);
    data_.set_arena(std::move(arena));
  }

  [[nodiscard]] T raw_get(std::uint64_t index) const {
    std::scoped_lock lk(mu_);
    if (index >= data_.size()) throw std::out_of_range("BoostedArray::raw_get");
    return data_.at(index);
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return data_.size();
  }

  void hash_state(StateHasher& hasher, std::string_view label) const {
    hasher.begin_section(label);
    std::scoped_lock lk(mu_);
    hasher.put_u64(data_.size());
    data_.for_each([&hasher](const T& value) { hasher.put_bytes(encoded_bytes(value)); });
  }

  [[nodiscard]] std::uint64_t space() const noexcept { return space_; }

 private:
  [[nodiscard]] stm::LockId element_lock(std::uint64_t index) const noexcept {
    return stm::LockId{space_, stm::mix64(index)};
  }
  /// Distinct from every element lock: key = ~0 is never a mix64 image we
  /// rely on; the length lock gets its own derived space instead.
  [[nodiscard]] stm::LockId length_lock() const noexcept {
    return stm::LockId{stm::mix64(space_ ^ 0x9e3779b97f4a7c15ULL), 0};
  }

  void check_bounds(ExecContext& ctx, std::uint64_t index) const {
    ctx.gas().charge(gas::kSload);
    ctx.on_storage_op(length_lock(), stm::LockMode::kRead);
    ctx.on_data_access(length_lock(), stm::LockMode::kRead, "array.bounds");
    std::scoped_lock lk(mu_);
    if (index >= data_.size()) throw RevertError("array index out of range");
  }

  std::uint64_t space_;
  mutable std::mutex mu_;
  CowChunks<T> data_;
};

}  // namespace concord::vm
